#!/usr/bin/env python3
"""Platform countermeasures: stop nanotargeting without hurting advertisers.

Reproduces the Section 8.3 argument in three steps:

1. run the nanotargeting experiment on the unprotected platform (baseline);
2. re-run it with the two proposed rules enabled — audiences capped at 9
   interests and a minimum active audience of 1,000 users;
3. measure how many campaigns of a realistic benign advertiser workload the
   interest cap would reject (the paper expects fewer than 1%).

Run with::

    python examples/countermeasures_eval.py
"""

from __future__ import annotations

from repro import PlatformConfig, build_simulation, quick_config
from repro.adsapi import AdsManagerAPI
from repro.campaigns import AdvertiserWorkloadGenerator
from repro.core import NanotargetingExperiment
from repro.countermeasures import (
    evaluate_attack_protection,
    evaluate_workload_impact,
    recommended_rules,
    run_protected_experiment,
)
from repro.delivery import DeliveryEngine
from repro.simclock import SimClock


def main() -> None:
    simulation = build_simulation(quick_config(factor=20))
    engine = DeliveryEngine(simulation.catalog, seed=1)
    config = simulation.config.experiment

    # Baseline: the permissive 2020 platform.
    baseline_api = AdsManagerAPI(
        simulation.reach_model, platform=PlatformConfig.modern_2020(), clock=SimClock()
    )
    baseline_experiment = NanotargetingExperiment(baseline_api, engine, config, seed=5)
    targets = baseline_experiment.select_targets(simulation.panel.users)
    baseline = baseline_experiment.run(targets)
    print(
        f"Baseline platform: {baseline.success_count} of {baseline.n_campaigns} "
        f"campaigns nanotargeted their user "
        f"(total cost €{baseline.total_cost_eur():.2f})."
    )

    # Protected platform: the same attack with the two rules installed.
    protected_api = AdsManagerAPI(
        simulation.reach_model, platform=PlatformConfig.modern_2020(), clock=SimClock()
    )
    protected_experiment = NanotargetingExperiment(protected_api, engine, config, seed=5)
    protected = run_protected_experiment(
        protected_api, engine, targets, list(recommended_rules()),
        experiment=protected_experiment,
    )
    effectiveness = evaluate_attack_protection(baseline, protected)
    print(
        f"Protected platform: {protected.success_count} successful campaigns, "
        f"{effectiveness.rejected_campaigns} rejected outright "
        f"({effectiveness.attack_reduction:.0%} attack reduction)."
    )

    # Advertiser impact of the interest cap.
    interest_cap, _ = recommended_rules()
    workload = AdvertiserWorkloadGenerator(simulation.catalog).generate(1_000, seed=9)
    impact = evaluate_workload_impact(protected_api, workload, [interest_cap])
    print(
        f"Benign workload impact: {impact.rejected_campaigns} of "
        f"{impact.total_campaigns} campaigns rejected by the 9-interest cap "
        f"({impact.rejection_rate:.2%}; the paper expects < 1%)."
    )


if __name__ == "__main__":
    main()
