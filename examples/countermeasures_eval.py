#!/usr/bin/env python3
"""Platform countermeasures: stop nanotargeting without hurting advertisers.

Reproduces the Section 8.3 argument as a three-scenario sweep:

1. ``baseline``  — the nanotargeting attack on the permissive 2020 platform;
2. ``protected`` — the same attack (same seed, hence the same targets) with
   the two proposed rules installed: audiences capped at 9 interests and a
   minimum active audience of 1,000 users;
3. ``workload``  — the fraction of a realistic benign advertiser workload
   the interest cap would reject (the paper expects fewer than 1%).

All three are declarative specs fanned through one
:class:`~repro.scenarios.SweepRunner` — the same shard-runner backends the
collection layer uses.

Run with::

    python examples/countermeasures_eval.py
"""

from __future__ import annotations

from repro.scenarios import ScenarioSpec, SweepRunner

SEED = 5
FACTOR = 20

SPECS = (
    ScenarioSpec(
        name="baseline", study="nanotargeting", factor=FACTOR, seed=SEED,
    ),
    ScenarioSpec(
        name="protected", study="nanotargeting", factor=FACTOR, seed=SEED,
        countermeasures=("interest_cap:9", "min_active_audience:1000"),
    ),
    ScenarioSpec(
        name="workload", study="workload_impact", factor=FACTOR, seed=SEED,
        workload_size=1_000, countermeasures=("interest_cap:9",),
    ),
)


def main() -> None:
    results = SweepRunner().run(SPECS)
    baseline, protected, workload = (results.get(s.name) for s in SPECS)

    print(
        f"Baseline platform: {baseline.metric('success_count'):.0f} of "
        f"{baseline.metric('n_campaigns'):.0f} campaigns nanotargeted their user "
        f"(total cost €{baseline.metric('total_cost_eur'):.2f})."
    )
    baseline_successes = baseline.metric("success_count")
    reduction = (
        1.0 - protected.metric("success_count") / baseline_successes
        if baseline_successes
        else 0.0
    )
    print(
        f"Protected platform: {protected.metric('success_count'):.0f} successful "
        f"campaigns, {protected.metric('rejected_campaigns'):.0f} rejected outright "
        f"({reduction:.0%} attack reduction)."
    )
    print(
        f"Benign workload impact: {workload.metric('rejected_campaigns'):.0f} of "
        f"{workload.metric('total_campaigns'):.0f} campaigns rejected by the "
        f"9-interest cap ({workload.metric('rejection_rate'):.2%}; "
        f"the paper expects < 1%)."
    )


if __name__ == "__main__":
    main()
