#!/usr/bin/env python3
"""Scenario sweeps: a grid of experiments over the shard-runner backends.

Expands one ~20-line base spec into an eight-scenario grid (four seeds x
two strategy mixes), derives a deterministic per-scenario seed for every
grid row, and fans the grid across the thread-pool backend — the same
:class:`~repro.exec.runner.ShardRunner` machinery panel-scale collection
uses.  The merged :class:`~repro.core.results.ResultSet` lists scenarios in
grid order and is bit-identical on every backend and worker count (run it
twice with different ``workers`` to check).

Run with::

    python examples/scenario_sweep.py
"""

from __future__ import annotations

from repro.analysis import format_records
from repro.exec import ShardExecutor
from repro.scenarios import ScenarioSpec, SweepRunner, expand_grid


def main() -> None:
    base = ScenarioSpec(
        name="uniqueness",
        study="uniqueness",
        description="N_0.9 across seeds and strategy mixes",
        factor=40,
        probabilities=(0.9,),
        n_bootstrap=200,
    )
    grid = expand_grid(
        base,
        {
            "seed": [1, 2, 3, 4],
            "strategies": [("least_popular",), ("random",)],
        },
    )
    runner = SweepRunner(
        executor=ShardExecutor(backend="thread", workers=4, shard_size=1),
        seed=2021,
    )
    results = runner.run(grid)

    print(f"swept {len(results)} scenarios on {runner.executor.describe()}")
    print(format_records(results.table_rows()))
    spread = [
        result.metrics[0][1] for result in results if "random" in result.scenario
    ]
    print()
    print(
        f"N_0.9 (random strategy) across seeds: "
        f"min={min(spread):.2f} max={max(spread):.2f}"
    )


if __name__ == "__main__":
    main()
