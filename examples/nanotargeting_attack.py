#!/usr/bin/env python3
"""Nanotargeting experiment: deliver an ad to exactly one Facebook user.

Reproduces Section 5: three "authors" are picked from the synthetic panel,
and for each of them seven worldwide campaigns are configured with 5, 7, 9,
12, 18, 20 and 22 randomly known interests (nested subsets).  Every campaign
runs on the paper's 33-active-hour schedule with a ~10 EUR/day budget, and a
campaign counts as a successful nanotargeting attack only when the dashboard
reports exactly one user reached, the click log shows the target's click,
and the captured "Why am I seeing this ad?" disclosure matches the
configured audience.

Run with::

    python examples/nanotargeting_attack.py
"""

from __future__ import annotations

from repro import build_simulation, quick_config
from repro.analysis import format_records, format_table


def main() -> None:
    simulation = build_simulation(quick_config(factor=20))
    experiment = simulation.nanotargeting_experiment(seed=2020)

    targets = experiment.select_targets(simulation.panel.users)
    print("Targets selected for the experiment:")
    for index, target in enumerate(targets, start=1):
        print(
            f"  User {index}: panel user #{target.user_id} "
            f"({target.interest_count} interests, {target.country})"
        )

    report = experiment.run(targets)

    print()
    print("Table 2 — campaign outcomes")
    print(format_records(report.table_rows()))

    print()
    print("Success rate by number of interests used:")
    rows = [
        [n_interests, f"{rate:.0%}"]
        for n_interests, rate in report.success_rate_by_interests().items()
    ]
    print(format_table(["interests", "nanotargeting success"], rows))

    print()
    print(f"Successful nanotargeting campaigns : {report.success_count} / {report.n_campaigns}")
    print(f"Total advertising cost             : €{report.total_cost_eur():.2f}")
    print(f"Cost of the successful campaigns   : €{report.successful_cost_eur():.2f}")
    if report.account_suspended:
        print(
            "The advertiser account was suspended after the campaigns ended — "
            "a reactive measure that did not prevent the attack (Section 8.2)."
        )

    print()
    print("Example 'Why am I seeing this ad?' disclosure captured by a target:")
    for record in report.successful_records[:1]:
        disclosure = record.outcome.disclosure
        print(f"  campaign   : {disclosure.campaign_id}")
        print(f"  advertiser : {disclosure.advertiser}")
        print(f"  locations  : {', '.join(disclosure.locations)}")
        print(f"  interests  : {len(disclosure.interest_names)} listed, e.g.")
        for name in disclosure.interest_names[:5]:
            print(f"    - {name}")


if __name__ == "__main__":
    main()
