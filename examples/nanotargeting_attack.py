#!/usr/bin/env python3
"""Nanotargeting experiment: deliver an ad to exactly one Facebook user.

Reproduces Section 5 through the scenario layer: the registered
``nanotargeting-table2`` spec picks three "authors" from the synthetic
panel and, for each of them, runs seven worldwide campaigns with 5, 7, 9,
12, 18, 20 and 22 randomly known interests (nested subsets) on the paper's
33-active-hour schedule.  A campaign counts as a successful nanotargeting
attack only when the dashboard reports exactly one user reached, the click
log shows the target's click, and the captured "Why am I seeing this ad?"
disclosure matches the configured audience.

Run with::

    python examples/nanotargeting_attack.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import format_records, format_table
from repro.scenarios import get_scenario, run_scenario


def main() -> None:
    spec = replace(get_scenario("nanotargeting-table2"), seed=2020)
    result = run_scenario(spec)
    report = result.raw  # the study's native ExperimentReport

    print("Table 2 — campaign outcomes")
    print(format_records(list(result.table)))

    print()
    print("Success rate by number of interests used:")
    rows = [
        [n_interests, f"{rate:.0%}"]
        for n_interests, rate in report.success_rate_by_interests().items()
    ]
    print(format_table(["interests", "nanotargeting success"], rows))

    print()
    for line in result.summary:
        print(line)
    if report.account_suspended:
        print(
            "The advertiser account was suspended after the campaigns ended — "
            "a reactive measure that did not prevent the attack (Section 8.2)."
        )

    print()
    print("Example 'Why am I seeing this ad?' disclosure captured by a target:")
    for record in report.successful_records[:1]:
        disclosure = record.outcome.disclosure
        print(f"  campaign   : {disclosure.campaign_id}")
        print(f"  advertiser : {disclosure.advertiser}")
        print(f"  locations  : {', '.join(disclosure.locations)}")
        print(f"  interests  : {len(disclosure.interest_names)} listed, e.g.")
        for name in disclosure.interest_names[:5]:
            print(f"    - {name}")


if __name__ == "__main__":
    main()
