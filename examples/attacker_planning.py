#!/usr/bin/env python3
"""Attacker planning: from partial interest knowledge to an attack decision.

Ties the two halves of the paper together.  The Section 4 uniqueness model
is estimated once, and an :class:`~repro.core.AttackPlanner` then answers the
attacker's operational questions for a concrete victim:

* how many interests do I need to know for a 50% / 90% success chance?
* given the interests I actually managed to infer (some of them wrong),
  what audience will my campaign have and how likely is it to reach only
  the victim?
* is a 95%-confidence attack even possible under the 25-interest cap?

Run with::

    python examples/attacker_planning.py
"""

from __future__ import annotations

from repro import build_simulation, quick_config
from repro.analysis import format_table
from repro.core import AttackPlanner
from repro.errors import ModelError


def main() -> None:
    simulation = build_simulation(quick_config(factor=20))
    model = simulation.uniqueness_model()
    _, random_selection = simulation.strategies()

    print("Estimating the uniqueness model (random interest selection) ...")
    report = model.estimate(random_selection, probabilities=(0.5, 0.8, 0.9))
    planner = AttackPlanner(report)

    print()
    print("How many interests does the attacker need?")
    rows = []
    for target in (0.5, 0.8, 0.9):
        try:
            needed = planner.interests_needed(target)
            rows.append([f"{target:.0%}", needed, "yes"])
        except ModelError:
            rows.append([f"{target:.0%}", "> 25", "no (platform cap)"])
    print(format_table(["success target", "interests needed", "actionable"], rows))

    # The attacker profiles a victim but only learns part of their interests,
    # and guesses a few wrong ones.
    victim = max(simulation.panel.users, key=lambda u: u.interest_count)
    known = list(victim.interest_ids[:20]) + [10**6, 10**6 + 1]  # 2 wrong guesses
    plan = planner.plan(victim, known)

    print()
    print(f"Victim: panel user #{victim.user_id} with {victim.interest_count} interests")
    print(f"Attacker inferred {len(known)} interests (2 of them wrong).")
    print(f"Usable interests            : {plan.assessment.n_interests_known}")
    print(f"Interests used in the attack: {plan.assessment.n_interests_used}")
    print(f"Predicted audience          : {plan.assessment.predicted_audience:,.0f} users")
    print(f"Predicted success chance    : {plan.assessment.success_probability:.0%}")

    # Sanity-check the prediction against the platform.
    from repro.adsapi import TargetingSpec

    estimate = simulation.campaign_api.estimate_reach(
        TargetingSpec.for_interests(plan.interests)
    )
    print(
        f"Potential Reach reported by the Ads Manager for that audience: "
        f"{estimate.potential_reach:,} users"
        + (" (reporting floor)" if estimate.floored else "")
    )


if __name__ == "__main__":
    main()
