#!/usr/bin/env python3
"""Full uniqueness study: Table 1, Figures 3-5 and the demographic breakdown.

Reproduces the Section 4 analysis end to end:

1. collect audience sizes from the simulated Ads Manager API for every
   panel user and every combination of 1..25 interests (both strategies);
2. compute the VAS(Q) quantile curves and their log-log fits (Figures 3-5);
3. estimate N_P with bootstrap confidence intervals (Table 1);
4. repeat the N_0.9 estimation per gender, age group and country
   (Figures 8-10).

The default scale factor keeps the run in the minutes range; pass a smaller
factor (or 1) for a larger, slower study.

Run with::

    python examples/uniqueness_study.py [scale_factor]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import build_simulation, quick_config
from repro.adsapi import AdsManagerAPI
from repro.analysis import (
    demographic_bar_series,
    figures4_5_quantile_curves,
    format_records,
    format_table,
)
from repro.config import PlatformConfig, UniquenessConfig
from repro.core import DemographicAnalysis, UniquenessModel
from repro.reach import country_codes
from repro.simclock import SimClock


def main(scale_factor: int = 12) -> None:
    simulation = build_simulation(quick_config(factor=scale_factor))
    api = AdsManagerAPI(
        simulation.reach_model, platform=PlatformConfig.legacy_2017(), clock=SimClock()
    )
    config = UniquenessConfig(n_bootstrap=500, seed=42)
    model = UniquenessModel(api, simulation.panel, config, locations=country_codes())
    least_popular, random_selection = simulation.strategies()

    # -- Table 1 -----------------------------------------------------------
    print("Collecting audience sizes from the simulated Ads Manager API ...")
    reports = {
        strategy.name: model.estimate(strategy)
        for strategy in (least_popular, random_selection)
    }
    print()
    print("Table 1 — N_P with 95% CIs and R^2")
    print(format_records([report.table_row() for report in reports.values()]))

    # -- Figures 4 and 5 -----------------------------------------------------
    for strategy, figure in ((least_popular, "Figure 4"), (random_selection, "Figure 5")):
        samples = model.collect(strategy)
        curves = figures4_5_quantile_curves(samples)
        print()
        print(f"{figure} — VAS(Q) for the {strategy.name} strategy")
        rows = []
        for curve in curves:
            finite = curve.audience_sizes[~np.isnan(curve.audience_sizes)]
            rows.append(
                [
                    f"Q={curve.quantile_percent:.0f}",
                    f"{finite[0]:.3g}",
                    f"{finite[min(9, finite.size - 1)]:.3g}",
                    round(curve.fit.cutpoint, 2),
                    round(curve.fit.r_squared, 2),
                ]
            )
        print(format_table(["quantile", "VAS(1)", "VAS(10)", "cutpoint", "R2"], rows))

    # -- Figures 8-10 ---------------------------------------------------------
    analysis = DemographicAnalysis(
        api,
        simulation.panel,
        strategies=[least_popular, random_selection],
        probability=0.9,
        config=UniquenessConfig(n_bootstrap=200, seed=43),
        locations=country_codes(),
        min_group_size=15,
    )
    for label, groups in (
        ("Figure 8 — gender", analysis.by_gender()),
        ("Figure 9 — age group", analysis.by_age_group()),
        ("Figure 10 — country", analysis.by_country()),
    ):
        print()
        print(f"{label}: N_0.9 per group")
        bar = demographic_bar_series(
            [(g.group_label, _as_report(g)) for g in groups], probability=0.9
        )
        rows = [
            [group_label, round(value, 2), f"[{low:.2f}, {high:.2f}]"]
            for group_label, value, low, high in zip(
                bar.labels, bar.values, bar.ci_low, bar.ci_high
            )
        ]
        print(format_table(["group", "N(R)_0.9", "95% CI"], rows))


def _as_report(group):
    """Adapt a GroupEstimate to the mapping shape demographic_bar_series expects."""
    from repro.core.results import UniquenessReport

    estimate = group.estimate_for("random")
    return UniquenessReport(
        strategy_name="random",
        estimates={0.9: estimate},
        vas_curves={0.9: np.array([])},
        n_users=group.n_users,
        floor=20,
    )


if __name__ == "__main__":
    factor = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    main(factor)
