#!/usr/bin/env python3
"""Full uniqueness study: Table 1, Figures 3-5 and the demographic breakdown.

Reproduces the Section 4 analysis end to end.  Table 1 runs through the
scenario layer — one declarative spec, compiled and executed via the
uniform Experiment protocol — and the same compiled simulation then feeds
the figure and demographic analyses:

1. collect audience sizes from the simulated Ads Manager API for every
   panel user and every combination of 1..25 interests (both strategies);
2. compute the VAS(Q) quantile curves and their log-log fits (Figures 3-5);
3. estimate N_P with bootstrap confidence intervals (Table 1);
4. repeat the N_0.9 estimation per gender, age group and country
   (Figures 8-10).

The default scale factor keeps the run in the minutes range; pass a smaller
factor (or 1) for a larger, slower study.

Run with::

    python examples/uniqueness_study.py [scale_factor]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.analysis import (
    demographic_bar_series,
    figures4_5_quantile_curves,
    format_records,
    format_table,
)
from repro.config import UniquenessConfig
from repro.core import DemographicAnalysis
from repro.reach import country_codes
from repro.scenarios import ScenarioSpec, UniquenessStudy, run_experiment


def main(scale_factor: int = 12) -> None:
    spec = ScenarioSpec(
        name="uniqueness-study",
        study="uniqueness",
        factor=scale_factor,
        seed=42,
        n_bootstrap=500,
    )
    simulation = spec.compile()

    # -- Table 1, through the Experiment protocol ---------------------------
    print("Collecting audience sizes from the simulated Ads Manager API ...")
    study = UniquenessStudy(spec, simulation)
    result = run_experiment(study)
    print()
    print("Table 1 — N_P with 95% CIs and R^2")
    print(format_records(list(result.table)))

    # -- Figures 4 and 5 -----------------------------------------------------
    # The study's model already collected both strategies' matrices for
    # Table 1; reusing it makes the figure curves cache hits.
    model = study.model
    least_popular, random_selection = simulation.strategies()
    for strategy, figure in ((least_popular, "Figure 4"), (random_selection, "Figure 5")):
        samples = model.collect(strategy)
        curves = figures4_5_quantile_curves(samples)
        print()
        print(f"{figure} — VAS(Q) for the {strategy.name} strategy")
        rows = []
        for curve in curves:
            finite = curve.audience_sizes[~np.isnan(curve.audience_sizes)]
            rows.append(
                [
                    f"Q={curve.quantile_percent:.0f}",
                    f"{finite[0]:.3g}",
                    f"{finite[min(9, finite.size - 1)]:.3g}",
                    round(curve.fit.cutpoint, 2),
                    round(curve.fit.r_squared, 2),
                ]
            )
        print(format_table(["quantile", "VAS(1)", "VAS(10)", "cutpoint", "R2"], rows))

    # -- Figures 8-10 ---------------------------------------------------------
    analysis = DemographicAnalysis(
        simulation.uniqueness_api,
        simulation.panel,
        strategies=[least_popular, random_selection],
        probability=0.9,
        config=UniquenessConfig(n_bootstrap=200, seed=43),
        locations=country_codes(),
        min_group_size=15,
    )
    for label, groups in (
        ("Figure 8 — gender", analysis.by_gender()),
        ("Figure 9 — age group", analysis.by_age_group()),
        ("Figure 10 — country", analysis.by_country()),
    ):
        print()
        print(f"{label}: N_0.9 per group")
        bar = demographic_bar_series(
            [(g.group_label, _as_report(g)) for g in groups], probability=0.9
        )
        rows = [
            [group_label, round(value, 2), f"[{low:.2f}, {high:.2f}]"]
            for group_label, value, low, high in zip(
                bar.labels, bar.values, bar.ci_low, bar.ci_high
            )
        ]
        print(format_table(["group", "N(R)_0.9", "95% CI"], rows))


def _as_report(group):
    """Adapt a GroupEstimate to the mapping shape demographic_bar_series expects."""
    from repro.core.results import UniquenessReport

    estimate = group.estimate_for("random")
    return UniquenessReport(
        strategy_name="random",
        estimates={0.9: estimate},
        vas_curves={0.9: np.array([])},
        n_users=group.n_users,
        floor=20,
    )


if __name__ == "__main__":
    factor = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    main(factor)
