#!/usr/bin/env python3
"""Quickstart: how many interests make a Facebook user unique?

Builds a scaled-down synthetic simulation (interest catalog, world-scale
reach model, Ads Manager API, FDVT panel), runs the paper's uniqueness model
for both interest-selection strategies and prints a Table-1-style summary.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import build_simulation, quick_config
from repro.analysis import format_records


def main() -> None:
    # A 1/20-scale configuration keeps the run under a minute; replace
    # quick_config() with repro.default_config() for the full-scale study.
    simulation = build_simulation(quick_config(factor=20))
    print(
        f"Simulation ready: {len(simulation.catalog):,} interests, "
        f"{len(simulation.panel):,} FDVT panellists, "
        f"world size {simulation.reach_model.world_size() / 1e9:.2f}B users"
    )

    model = simulation.uniqueness_model()
    least_popular, random_selection = simulation.strategies()

    rows = []
    for strategy in (least_popular, random_selection):
        report = model.estimate(strategy, probabilities=(0.5, 0.9))
        rows.append(report.table_row())
        for line in report.summary_lines():
            print(line)

    print()
    print("Table 1 (reduced scale)")
    print(format_records(rows))
    print()
    print(
        "Reading: N_P is the number of interests that make a user unique with "
        "probability P. Knowing a user's rarest interests identifies them with "
        "a handful of items; random interests need a few dozen."
    )


if __name__ == "__main__":
    main()
