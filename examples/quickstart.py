#!/usr/bin/env python3
"""Quickstart: how many interests make a Facebook user unique?

The whole study is one declarative :class:`~repro.scenarios.ScenarioSpec`:
the scenario layer compiles it to a fully wired simulation (interest
catalog, world-scale reach model, Ads Manager API, FDVT panel), runs the
paper's uniqueness model through the uniform Experiment protocol and hands
back a canonical result.  Swap any field — study, scale, strategies, API
tier — and re-run; there is no wiring to touch.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import format_records
from repro.scenarios import ScenarioSpec, run_scenario


def main() -> None:
    # factor=20 keeps the run under a minute; factor=1 is the full-scale study.
    spec = ScenarioSpec(
        name="quickstart-uniqueness",
        study="uniqueness",
        description="Table 1 at 1/20 scale",
        factor=20,
        probabilities=(0.5, 0.9),
    )
    result = run_scenario(spec)

    for line in result.summary:
        print(line)
    print()
    print("Table 1 (reduced scale)")
    print(format_records(list(result.table)))
    print()
    print(
        "Reading: N_P is the number of interests that make a user unique with "
        "probability P. Knowing a user's rarest interests identifies them with "
        "a handful of items; random interests need a few dozen."
    )


if __name__ == "__main__":
    main()
