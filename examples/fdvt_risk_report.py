#!/usr/bin/env python3
"""FDVT defence: inspect and clean a user's risky interests (Section 6).

Shows the "Risks of my FB interests" view for one synthetic panellist:
interests sorted from least to most popular, colour-coded by privacy risk,
and one-click removal of the high-risk ones.  After the clean-up the script
re-evaluates how narrow an audience an attacker could build from the user's
remaining interests.

Run with::

    python examples/fdvt_risk_report.py
"""

from __future__ import annotations

from repro import build_simulation, quick_config
from repro.adsapi import TargetingSpec
from repro.analysis import format_table
from repro.core import LeastPopularSelection


def audience_of_rarest_interests(simulation, user, n_interests: int = 3) -> int:
    """Potential Reach of the user's N rarest interests (attacker's view).

    Uses the 2017 platform (reporting floor of 20 users, 50-country query)
    so that small audiences stay visible in the output.
    """
    from repro.reach import country_codes

    ordered = LeastPopularSelection().order_interests(
        user, simulation.catalog, n_interests
    )
    spec = TargetingSpec.for_interests(ordered, locations=country_codes())
    return simulation.uniqueness_api.estimate_reach(spec).potential_reach


def main() -> None:
    simulation = build_simulation(quick_config(factor=20))
    extension = simulation.fdvt_extension()

    # Pick a panellist with a moderate profile so the report stays readable.
    user = next(
        u for u in sorted(simulation.panel.users, key=lambda u: u.interest_count)
        if u.interest_count >= 40
    )
    print(
        f"Panellist #{user.user_id} ({user.country}): "
        f"{user.interest_count} interests assigned by Facebook"
    )

    report = extension.build_risk_report(user)
    counts = report.risk_counts()
    print(
        "Risk breakdown: "
        + ", ".join(f"{level.value}={count}" for level, count in counts.items())
    )

    print()
    print("Least popular interests (most dangerous first):")
    rows = [
        [entry.name[:42], entry.risk.value, f"{entry.audience_size:,}"]
        for entry in report.entries[:10]
    ]
    print(format_table(["interest", "risk", "audience"], rows))

    before = audience_of_rarest_interests(simulation, user)
    print()
    print(f"Audience an attacker can build from the 3 rarest interests: {before:,} users")

    protected_user, protected_report = extension.remove_risky_interests(user, report)
    removed = user.interest_count - protected_user.interest_count
    print(f"Removed {removed} high-risk (red) interests with one click each.")

    after = audience_of_rarest_interests(simulation, protected_user)
    print(
        f"After the clean-up the same attack reaches {after:,} users "
        f"(floor = {simulation.uniqueness_api.platform.reach_floor})."
    )
    if after > before:
        print("The user is now strictly harder to single out.")


if __name__ == "__main__":
    main()
