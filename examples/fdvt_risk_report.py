#!/usr/bin/env python3
"""FDVT defence: inspect and clean a user's risky interests (Section 6).

The bulk view rides the ``fdvt-risk`` scenario: one declarative spec builds
the simulation, fetches every covered panellist's "Risks of my FB
interests" report through the deduplicated (and shardable) bulk query, and
summarises the risk mix.  The second half keeps the interactive part of the
story — one-click removal of the high-risk interests and how much harder
the user becomes to single out afterwards.

Run with::

    python examples/fdvt_risk_report.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.adsapi import TargetingSpec
from repro.analysis import format_table
from repro.core import LeastPopularSelection
from repro.fdvt import FDVTExtension
from repro.scenarios import get_scenario, run_scenario


def audience_of_rarest_interests(simulation, user, n_interests: int = 3) -> int:
    """Potential Reach of the user's N rarest interests (attacker's view)."""
    from repro.reach import country_codes

    ordered = LeastPopularSelection().order_interests(
        user, simulation.catalog, n_interests
    )
    spec = TargetingSpec.for_interests(ordered, locations=country_codes())
    return simulation.uniqueness_api.estimate_reach(spec).potential_reach


def main() -> None:
    spec = replace(get_scenario("fdvt-risk"), risk_users=40)
    simulation = spec.compile()
    result = run_scenario(spec, simulation=simulation)
    print(result.summary[0])
    print()
    print("Risk mix per panellist (first rows):")
    rows = [
        [row["user_id"], row["interests"], row["red"], row["orange"], row["green"]]
        for row in result.table[:8]
    ]
    print(format_table(["user", "interests", "red", "orange", "green"], rows))

    # -- the interactive half: clean one panellist's preferences ---------------
    extension = FDVTExtension(simulation.uniqueness_api, simulation.catalog)
    user = next(
        u for u in sorted(simulation.panel.users, key=lambda u: u.interest_count)
        if u.interest_count >= 40
    )
    report = extension.build_risk_report(user)
    print()
    print(
        f"Panellist #{user.user_id} ({user.country}): {user.interest_count} "
        f"interests; least popular first:"
    )
    rows = [
        [entry.name[:42], entry.risk.value, f"{entry.audience_size:,}"]
        for entry in report.entries[:10]
    ]
    print(format_table(["interest", "risk", "audience"], rows))

    before = audience_of_rarest_interests(simulation, user)
    protected_user, _ = extension.remove_risky_interests(user, report)
    removed = user.interest_count - protected_user.interest_count
    after = audience_of_rarest_interests(simulation, protected_user)
    print()
    print(f"Audience an attacker can build from the 3 rarest interests: {before:,} users")
    print(f"Removed {removed} high-risk (red) interests with one click each.")
    print(
        f"After the clean-up the same attack reaches {after:,} users "
        f"(floor = {simulation.uniqueness_api.platform.reach_floor})."
    )
    if after > before:
        print("The user is now strictly harder to single out.")


if __name__ == "__main__":
    main()
