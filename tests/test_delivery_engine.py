"""Tests for the delivery engine and disclosures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adsapi import TargetingSpec
from repro.delivery import (
    AdCreative,
    Campaign,
    CampaignSchedule,
    ClickLog,
    DeliveryConfig,
    DeliveryEngine,
    build_disclosure,
)
from repro.delivery.clicklog import pseudonymize_ip
from repro.errors import DeliveryError


def _campaign(catalog, n_interests: int, campaign_id: str = "c1") -> Campaign:
    interests = [interest.interest_id for interest in list(catalog)[:n_interests]]
    return Campaign(
        campaign_id=campaign_id,
        spec=TargetingSpec.for_interests(interests),
        creative=AdCreative.for_experiment("User 1", n_interests),
        schedule=CampaignSchedule.paper_schedule(),
        daily_budget_eur=10.0,
        initial_budget_eur=70.0,
    )


@pytest.fixture()
def engine(catalog) -> DeliveryEngine:
    return DeliveryEngine(catalog, seed=7)


class TestDeliveryEngine:
    def test_single_user_audience_is_nanotargeted(self, catalog, engine):
        log = ClickLog()
        outcome = engine.run(
            _campaign(catalog, 22),
            audience_size=1.0,
            target_user_id=42,
            click_log=log,
        )
        metrics = outcome.metrics
        assert metrics.reached == 1
        assert metrics.seen
        assert metrics.impressions >= 1
        assert metrics.cost_eur < 0.2
        assert log.has_target_click("c1")
        assert outcome.disclosure is not None

    def test_large_audience_reaches_many_users(self, catalog, engine):
        outcome = engine.run(
            _campaign(catalog, 5),
            audience_size=5_000_000.0,
            target_user_id=42,
        )
        metrics = outcome.metrics
        assert metrics.reached > 1_000
        assert metrics.impressions >= metrics.reached
        assert metrics.cost_eur > 1.0

    def test_large_audience_rarely_hits_the_target(self, catalog):
        engine = DeliveryEngine(catalog, seed=3)
        seen = 0
        for index in range(10):
            outcome = engine.run(
                _campaign(catalog, 5, campaign_id=f"c{index}"),
                audience_size=50_000_000.0,
                target_user_id=42,
            )
            seen += int(outcome.metrics.seen)
        assert seen <= 3

    def test_small_audience_usually_hits_the_target(self, catalog):
        engine = DeliveryEngine(catalog, seed=3)
        seen = 0
        for index in range(10):
            outcome = engine.run(
                _campaign(catalog, 18, campaign_id=f"s{index}"),
                audience_size=2.0,
                target_user_id=42,
            )
            seen += int(outcome.metrics.seen)
        assert seen >= 8

    def test_target_not_in_audience_is_never_seen(self, catalog, engine):
        outcome = engine.run(
            _campaign(catalog, 9),
            audience_size=500.0,
            target_user_id=42,
            target_in_audience=False,
        )
        assert not outcome.metrics.seen
        assert outcome.disclosure is None

    def test_zero_audience_produces_empty_outcome(self, catalog, engine):
        outcome = engine.run(
            _campaign(catalog, 9),
            audience_size=0.0,
            target_user_id=42,
            target_in_audience=False,
        )
        assert outcome.metrics.impressions == 0
        assert outcome.metrics.reached == 0
        assert outcome.metrics.cost_eur == 0.0

    def test_tfi_is_within_active_hours(self, catalog, engine):
        outcome = engine.run(
            _campaign(catalog, 20),
            audience_size=1.0,
            target_user_id=42,
        )
        tfi = outcome.metrics.time_to_first_impression_hours
        assert tfi is not None
        assert 0.0 <= tfi <= 33.0

    def test_negative_audience_rejected(self, catalog, engine):
        with pytest.raises(DeliveryError):
            engine.run(_campaign(catalog, 5), audience_size=-1.0, target_user_id=1)

    def test_deterministic_given_seed(self, catalog):
        results = []
        for _ in range(2):
            engine = DeliveryEngine(catalog, seed=11)
            outcome = engine.run(
                _campaign(catalog, 12), audience_size=300.0, target_user_id=9
            )
            results.append(
                (outcome.metrics.reached, outcome.metrics.impressions, outcome.metrics.seen)
            )
        assert results[0] == results[1]

    def test_clicks_match_click_log(self, catalog, engine):
        log = ClickLog()
        outcome = engine.run(
            _campaign(catalog, 7),
            audience_size=20_000.0,
            target_user_id=42,
            click_log=log,
        )
        assert outcome.metrics.clicks == len(log.entries_for("c1"))
        assert outcome.metrics.unique_click_ips <= outcome.metrics.clicks

    def test_non_target_click_draw_order_is_pinned(self, catalog):
        """The bulk generator's per-campaign draw order is a contract.

        Four vectorised draws of ``n_clicks`` values each, in this order:
        hour indices, third IP octets, fourth IP octets, fractional hour
        offsets.  A same-seeded reference Generator must reproduce every
        click exactly.
        """
        engine = DeliveryEngine(catalog)
        campaign = _campaign(catalog, 5)
        active_hours = list(campaign.schedule.active_hours())
        n_clicks = 7
        clicks = engine._non_target_clicks(
            campaign, n_clicks, active_hours, np.random.default_rng(99)
        )
        reference = np.random.default_rng(99)
        hours = np.asarray(active_hours)[
            reference.integers(0, len(active_hours), size=n_clicks)
        ]
        thirds = reference.integers(0, 255, size=n_clicks)
        fourths = reference.integers(1, 255, size=n_clicks)
        offsets = reference.uniform(0.0, 1.0, size=n_clicks)
        assert len(clicks) == n_clicks
        for index, click in enumerate(clicks):
            assert click.hour == float(hours[index]) + float(offsets[index])
            assert click.ip_address == f"203.0.{thirds[index]}.{fourths[index]}"
            assert click.user_id == -(index + 1)
            assert not click.is_target

    def test_no_non_target_clicks_requested(self, catalog):
        engine = DeliveryEngine(catalog)
        campaign = _campaign(catalog, 5)
        clicks = engine._non_target_clicks(
            campaign, 0, [0.0, 1.0], np.random.default_rng(1)
        )
        assert clicks == []


class TestClickLogRecordMany:
    def test_bulk_matches_per_click_records(self):
        records = [(1.5, "203.0.1.2", False), (2.5, "203.0.1.2", True), (3.0, "203.0.9.9", False)]
        bulk_log = ClickLog()
        bulk_entries = bulk_log.record_many(
            iter(records), campaign_id="c1", landing_url="https://x/c1"
        )
        loop_log = ClickLog()
        loop_entries = [
            loop_log.record(
                campaign_id="c1",
                landing_url="https://x/c1",
                hour=hour,
                ip_address=ip,
                is_target=is_target,
            )
            for hour, ip, is_target in records
        ]
        assert list(bulk_entries) == loop_entries
        assert bulk_log.entries == loop_log.entries
        assert bulk_log.unique_ips_for("c1") == 2
        assert bulk_entries[0].pseudonymized_ip == pseudonymize_ip(
            "203.0.1.2", bulk_log.secret_key
        )


class TestDeliveryConfig:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(DeliveryError):
            DeliveryConfig(hourly_activity=0.0)
        with pytest.raises(DeliveryError):
            DeliveryConfig(frequency_cap=0)
        with pytest.raises(DeliveryError):
            DeliveryConfig(non_target_ctr=1.5)


class TestDisclosure:
    def test_disclosure_matches_campaign_spec(self, catalog):
        campaign = _campaign(catalog, 12)
        disclosure = build_disclosure(campaign, catalog, captured_at_hour=5.0)
        assert disclosure.matches_spec(campaign)
        assert len(disclosure.interest_names) == 12

    def test_disclosure_detects_mismatched_campaign(self, catalog):
        campaign = _campaign(catalog, 12)
        other = _campaign(catalog, 5, campaign_id="c2")
        disclosure = build_disclosure(campaign, catalog, captured_at_hour=5.0)
        assert not disclosure.matches_spec(other)
