"""The scenario orchestration layer: specs, experiments, sweeps, registry.

Pins the layer's core contracts:

* every study adapter is **bit-identical** to its pre-refactor direct
  invocation (UniquenessModel.estimate, NanotargetingExperiment.run,
  evaluate_workload_impact, FDVTExtension.build_risk_reports);
* the same ScenarioSpec produces an identical ScenarioResult on every
  run, and a sweep's ResultSet is identical across serial/thread backends,
  worker counts, and to running each grid row directly;
* specs round-trip losslessly through to_dict/from_dict and the registry;
* the mergeable ResultSet preserves grid order and rejects duplicates.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.campaigns import AdvertiserWorkloadGenerator
from repro.core import ResultSet, ScenarioResult
from repro.countermeasures import InterestCapRule, evaluate_workload_impact
from repro.errors import ConfigurationError, ModelError
from repro.exec import ShardExecutor
from repro.fdvt import FDVTExtension
from _builders import build_cached_simulation
from repro.scenarios import (
    ScenarioSpec,
    SweepRunner,
    build_experiment,
    expand_grid,
    get_scenario,
    list_scenarios,
    parse_rules,
    register_scenario,
    run_scenario,
)

FACTOR = 50


def uniqueness_spec(**overrides) -> ScenarioSpec:
    defaults = dict(
        name="test-uniqueness",
        study="uniqueness",
        factor=FACTOR,
        seed=11,
        strategies=("random",),
        probabilities=(0.9,),
        n_bootstrap=30,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestScenarioSpec:
    def test_unknown_study_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="x", study="nope")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            uniqueness_spec(strategies=("most_popular",))

    def test_unknown_api_tier_and_locations_rejected(self):
        with pytest.raises(ConfigurationError):
            uniqueness_spec(api_tier="legacy_2016")
        with pytest.raises(ConfigurationError):
            uniqueness_spec(locations="mars")

    def test_round_trip_through_dict(self):
        spec = uniqueness_spec(countermeasures=("interest_cap:9",))
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        payload = uniqueness_spec().to_dict()
        payload["n_bootstraps"] = 10
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict(payload)

    def test_from_dict_coerces_lists_to_tuples(self):
        payload = uniqueness_spec().to_dict()
        payload["probabilities"] = [0.5, 0.9]
        spec = ScenarioSpec.from_dict(payload)
        assert spec.probabilities == (0.5, 0.9)

    def test_derived_seed_is_deterministic_and_name_keyed(self):
        spec = uniqueness_spec(seed=None)
        assert spec.derived(7) == spec.derived(7)
        assert spec.derived(7).seed != replace(spec, name="other").derived(7).seed
        # an explicit seed is never overridden
        assert uniqueness_spec(seed=3).derived(7).seed == 3

    def test_config_applies_overrides(self):
        spec = uniqueness_spec(panel_users=33, n_bootstrap=17, probabilities=(0.8,))
        config = spec.config()
        assert config.panel.n_users == 33
        assert config.panel.n_men + config.panel.n_women + config.panel.n_gender_undisclosed == 33
        assert config.uniqueness.n_bootstrap == 17
        assert config.uniqueness.probabilities == (0.8,)

    def test_parse_rules(self):
        cap, floor_rule = parse_rules(("interest_cap:5", "min_active_audience:1000"))
        assert cap.max_interests == 5
        assert floor_rule.min_active_users == 1000
        assert parse_rules(("interest_cap",))[0].max_interests == 9
        with pytest.raises(ConfigurationError):
            parse_rules(("frequency_cap",))


class TestRegistry:
    def test_builtins_cover_the_four_studies(self):
        studies = {spec.study for spec in list_scenarios()}
        assert studies == {"uniqueness", "nanotargeting", "workload_impact", "fdvt_risk"}

    def test_get_unknown_raises_with_available_names(self):
        with pytest.raises(ConfigurationError, match="uniqueness-table1"):
            get_scenario("does-not-exist")

    def test_register_duplicate_raises_unless_replaced(self):
        spec = get_scenario("uniqueness-table1")
        with pytest.raises(ConfigurationError):
            register_scenario(spec)
        assert register_scenario(spec, replace=True) == spec

    def test_registry_specs_round_trip(self):
        for spec in list_scenarios():
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec


class TestStudyParity:
    """Every adapter is bit-identical to its hand-wired direct invocation."""

    def test_uniqueness_matches_direct_model(self):
        spec = uniqueness_spec()
        result = run_scenario(spec)
        simulation = build_cached_simulation(spec.config(), seed=spec.seed)
        _, random_strategy = simulation.strategies()
        report = simulation.uniqueness_model().estimate(
            random_strategy, probabilities=(0.9,)
        )
        assert result.metric("random:n_p@0.9") == report.estimates[0.9].n_p
        assert result.table == (report.table_row(),)

    def test_nanotargeting_matches_direct_experiment(self):
        spec = ScenarioSpec(
            name="test-nano", study="nanotargeting", factor=FACTOR, seed=5
        )
        result = run_scenario(spec)
        simulation = build_cached_simulation(spec.config(), seed=5)
        report = simulation.nanotargeting_experiment(seed=5).run(
            candidates=simulation.panel.users
        )
        assert result.table == tuple(report.table_rows())
        assert result.metric("success_count") == report.success_count
        assert result.metric("total_cost_eur") == report.total_cost_eur()

    def test_workload_impact_matches_direct_evaluation(self):
        spec = ScenarioSpec(
            name="test-workload",
            study="workload_impact",
            factor=FACTOR,
            seed=9,
            workload_size=120,
        )
        result = run_scenario(spec)
        simulation = build_cached_simulation(spec.config(), seed=9)
        workload = AdvertiserWorkloadGenerator(simulation.catalog).generate(120, seed=9)
        impact = evaluate_workload_impact(
            simulation.campaign_api, workload, [InterestCapRule()]
        )
        assert result.metric("rejected_campaigns") == impact.rejected_campaigns
        assert result.metric("total_campaigns") == impact.total_campaigns

    def test_fdvt_risk_matches_direct_reports(self):
        spec = ScenarioSpec(
            name="test-fdvt", study="fdvt_risk", factor=FACTOR, seed=3, risk_users=8
        )
        result = run_scenario(spec)
        simulation = build_cached_simulation(spec.config(), seed=3)
        extension = FDVTExtension(simulation.uniqueness_api, simulation.catalog)
        reports = extension.build_risk_reports(simulation.panel.users[:8])
        assert result.raw == reports
        assert result.metric("n_users") == len(reports)

    def test_protected_nanotargeting_rejects_campaigns(self):
        spec = ScenarioSpec(
            name="test-protected",
            study="nanotargeting",
            factor=FACTOR,
            seed=5,
            countermeasures=("interest_cap:9", "min_active_audience:1000"),
        )
        result = run_scenario(spec)
        baseline = run_scenario(
            ScenarioSpec(name="test-base", study="nanotargeting", factor=FACTOR, seed=5)
        )
        assert result.metric("rejected_campaigns") > 0
        assert result.metric("success_count") <= baseline.metric("success_count")

    def test_experiment_protocol_stages_compose(self):
        spec = uniqueness_spec()
        experiment = build_experiment(spec)
        units = experiment.plan()
        assert len(units) == 1
        parts = experiment.execute()
        summarized = experiment.summarize(experiment.merge(parts))
        assert summarized == run_scenario(spec)


class TestScenarioDeterminism:
    def test_same_spec_same_result(self):
        spec = uniqueness_spec()
        assert run_scenario(spec) == run_scenario(spec)

    @pytest.mark.parametrize(
        "executor",
        [
            ShardExecutor(),
            pytest.param(
                ShardExecutor(backend="thread", workers=2), marks=pytest.mark.slow
            ),
            pytest.param(
                ShardExecutor(backend="thread", workers=4, shard_size=7),
                marks=pytest.mark.slow,
            ),
        ],
        ids=["serial", "thread-2", "thread-4-small-shards"],
    )
    def test_executor_does_not_change_results(self, executor):
        for spec in (
            uniqueness_spec(),
            ScenarioSpec(
                name="w", study="workload_impact", factor=FACTOR, seed=9, workload_size=60
            ),
            ScenarioSpec(
                name="f", study="fdvt_risk", factor=FACTOR, seed=3, risk_users=6
            ),
        ):
            assert run_scenario(spec, executor=executor) == run_scenario(spec)


class TestSweep:
    def grid(self) -> tuple[ScenarioSpec, ...]:
        base = uniqueness_spec(name="sweep", seed=None, n_bootstrap=20)
        specs = expand_grid(
            base,
            {
                "seed": [1, 2, 3, 4],
                "strategies": [("least_popular",), ("random",)],
            },
        )
        assert len(specs) == 8
        return specs

    def test_grid_naming_and_order(self):
        specs = self.grid()
        assert specs[0].name == "sweep/seed=1/strategies=least_popular"
        assert specs[-1].name == "sweep/seed=4/strategies=random"

    def test_expand_grid_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError):
            expand_grid(uniqueness_spec(), {"n_bootstraps": [1]})
        with pytest.raises(ConfigurationError):
            expand_grid(uniqueness_spec(), {"name": ["a"]})

    def test_sweep_is_bit_identical_across_backends(self):
        specs = self.grid()
        serial = SweepRunner(executor=ShardExecutor(), seed=77).run(specs)
        threaded = SweepRunner(
            executor=ShardExecutor(backend="thread", workers=4, shard_size=1), seed=77
        ).run(specs)
        threaded_coarse = SweepRunner(
            executor=ShardExecutor(backend="thread", workers=2, shard_size=3), seed=77
        ).run(specs)
        assert serial == threaded
        assert serial == threaded_coarse
        assert serial.names == tuple(spec.name for spec in specs)

    def test_sweep_matches_direct_single_runs(self):
        specs = self.grid()[:2]
        runner = SweepRunner(seed=77)
        swept = runner.run(specs)
        for spec in runner.resolve(specs):
            assert swept.get(spec.name) == run_scenario(spec)

    def test_sweep_derives_per_scenario_seeds(self):
        base = uniqueness_spec(name="seedless", seed=None)
        specs = expand_grid(
            base, {"strategies": [("least_popular",), ("random",)]}
        )
        resolved = SweepRunner(seed=77).resolve(specs)
        assert all(spec.seed is not None for spec in resolved)
        # seeds key on the scenario name, so distinct grid rows diverge
        assert resolved[0].seed != resolved[1].seed
        assert SweepRunner(seed=77).resolve(specs) == resolved
        # explicit seeds are preserved (the seed-axis grid pins them)
        pinned = SweepRunner(seed=77).resolve(self.grid()[:2])
        assert [spec.seed for spec in pinned] == [1, 1]

    def test_duplicate_names_rejected(self):
        spec = uniqueness_spec()
        with pytest.raises(ConfigurationError):
            SweepRunner().run([spec, spec])

    def test_empty_sweep(self):
        assert len(SweepRunner().run([])) == 0


class TestResultSet:
    def result(self, name: str) -> ScenarioResult:
        return ScenarioResult(
            scenario=name,
            study="uniqueness",
            seed=1,
            metrics=(("m", 1.0),),
            table=({"m": 1.0},),
            summary=(f"{name} done",),
        )

    def test_add_merge_preserve_order(self):
        left = ResultSet([self.result("a"), self.result("b")])
        right = ResultSet([self.result("c")])
        left.merge(right)
        assert left.names == ("a", "b", "c")
        assert left.get("c") == self.result("c")
        assert "b" in left and "z" not in left

    def test_duplicates_rejected(self):
        results = ResultSet([self.result("a")])
        with pytest.raises(ModelError):
            results.add(self.result("a"))

    def test_sink_protocol(self):
        from repro.exec import Sink, drain

        results = ResultSet()
        assert isinstance(results, Sink)
        merged = drain(
            [ResultSet([self.result("a")]), self.result("b")], results
        )
        assert merged.names == ("a", "b")

    def test_equality_is_order_sensitive(self):
        forward = ResultSet([self.result("a"), self.result("b")])
        backward = ResultSet([self.result("b"), self.result("a")])
        assert forward != backward

    def test_metric_lookup_and_serialisation(self):
        result = self.result("a")
        assert result.metric("m") == 1.0
        with pytest.raises(ModelError):
            result.metric("missing")
        assert result.to_dict()["metrics"] == {"m": 1.0}
        rows = ResultSet([result]).table_rows()
        assert rows == [{"scenario": "a", "study": "uniqueness", "m": 1.0}]
