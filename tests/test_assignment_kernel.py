"""Parity suite for the batched interest-assignment kernel.

Pins :meth:`InterestAssigner.assign_rows` — the kernel behind
:func:`run_interest_shard` — against the scalar reference path bit-for-bit:

* **row parity** — ``assign_rows`` reproduces :meth:`InterestAssigner.assign`
  row by row for ragged and zero counts, clipped counts, preferred topics
  given as names or index arrays (including duplicates), default and
  per-row biases, and the multi-bias stacked-search path;
* **shard parity** — :func:`run_interest_shard` matches
  :func:`run_interest_shard_reference` for population- and panel-shaped
  tasks (jittered biases, in-stream age draws) and is invariant to how a
  row range is split into shards;
* **validation** — the kernel raises the same
  :class:`~repro.errors.PopulationError`\\ s as the scalar path;
* **bounded state** — the per-assigner derived-table caches and the
  per-process spec memos stay LRU-bounded under adversarial key streams
  (the long-lived-process leak this suite exists to prevent).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np
import pytest

from repro._rng import derive_generator
from repro.cache import SpecMemo
from repro.catalog import InterestCatalog
from repro.config import CatalogConfig
from repro.errors import ConfigurationError, PopulationError
from repro.exec import clear_spec_memo as clear_exec_spec_memo
from repro.population import (
    AssignerSpec,
    InterestAssigner,
    InterestShardTask,
    clear_spec_memo,
    resolve_assigner,
    run_interest_shard,
    run_interest_shard_reference,
)
from repro.population.assignment import (
    BIAS_TABLE_CACHE_SIZE,
    TOPIC_SELECTION_CACHE_SIZE,
)

TOPICS_PER_USER = 3

#: Ragged counts: zeros, singletons, mid-sized rows, one row clipped to the
#: catalog (forcing the rejection tail and the deterministic top-up).
RAGGED_COUNTS = np.array([0, 1, 3, 12, 37, 4, 0, 25, 7, 999, 5, 2], dtype=np.int64)


@pytest.fixture(scope="module")
def catalog():
    return InterestCatalog.generate(CatalogConfig(n_interests=400, n_topics=8, seed=9))


@pytest.fixture(scope="module")
def assigner(catalog):
    return InterestAssigner(catalog)


def kernel_rows(assigner, counts, seed, key, *, as_names=False, biases=None):
    """Run ``assign_rows`` on per-row derived streams (stages 3–4 only)."""
    streams, preferred = [], []
    for row in range(len(counts)):
        rng = derive_generator(seed, key, row)
        indices = assigner.sample_preferred_topic_indices(TOPICS_PER_USER, rng)
        if as_names:
            preferred.append(tuple(assigner.topics[int(i)] for i in indices))
        else:
            preferred.append(indices)
        streams.append(rng)
    return assigner.assign_rows(
        counts, streams, preferred_topics=preferred, popularity_biases=biases
    )


def reference_rows(assigner, counts, seed, key, *, biases=None):
    """One :meth:`assign` call per row on the row's own stream."""
    flat: list[int] = []
    lens: list[int] = []
    for row, n in enumerate(counts):
        rng = derive_generator(seed, key, row)
        names = assigner.sample_preferred_topics(TOPICS_PER_USER, rng)
        bias = None if biases is None else biases[row]
        ids = assigner.assign(
            int(n), rng, preferred_topics=names, popularity_bias=bias
        )
        lens.append(len(ids))
        flat.extend(ids)
    return np.array(flat, dtype=np.int64), np.array(lens, dtype=np.int64)


def assert_rows_equal(kernel, reference):
    flat_k, counts_k = kernel
    flat_r, counts_r = reference
    np.testing.assert_array_equal(counts_k, counts_r)
    np.testing.assert_array_equal(flat_k, flat_r)


class TestRowParity:
    """assign_rows vs per-row assign on identical streams."""

    @pytest.mark.parametrize("key", ["user", "panel-user"])
    def test_ragged_counts_both_seed_keys(self, assigner, key):
        assert_rows_equal(
            kernel_rows(assigner, RAGGED_COUNTS, 71, key),
            reference_rows(assigner, RAGGED_COUNTS, 71, key),
        )

    def test_seed_keys_are_distinct_streams(self, assigner):
        flat_user, _ = kernel_rows(assigner, RAGGED_COUNTS, 71, "user")
        flat_panel, _ = kernel_rows(assigner, RAGGED_COUNTS, 71, "panel-user")
        assert not np.array_equal(flat_user, flat_panel)

    def test_counts_clip_to_the_catalog(self, assigner, catalog):
        _, row_counts = kernel_rows(assigner, RAGGED_COUNTS, 71, "user")
        np.testing.assert_array_equal(
            row_counts, np.minimum(RAGGED_COUNTS, len(catalog))
        )

    def test_names_and_indices_agree(self, assigner):
        # Topic names route through the cached scalar CDF builder, index
        # arrays through the batched one; the outputs must not differ.
        by_index = kernel_rows(assigner, RAGGED_COUNTS, 13, "user")
        by_name = kernel_rows(assigner, RAGGED_COUNTS, 13, "user", as_names=True)
        assert_rows_equal(by_name, by_index)
        assert_rows_equal(by_index, reference_rows(assigner, RAGGED_COUNTS, 13, "user"))

    def test_per_row_biases_including_duplicates_and_defaults(self, assigner):
        # None entries mean the default bias; repeated values share cached
        # tables; distinct values exercise the stacked multi-bias search.
        counts = np.array([9, 14, 6, 11, 9, 16, 3, 8], dtype=np.int64)
        biases = [None, 0.3, 0.77, 1.2, 0.3, None, 0.51, 0.9]
        assert_rows_equal(
            kernel_rows(assigner, counts, 37, "user", biases=biases),
            reference_rows(assigner, counts, 37, "user", biases=biases),
        )

    def test_single_shared_bias_uses_the_fast_stack(self, assigner):
        counts = np.array([7, 5, 21, 9], dtype=np.int64)
        biases = [0.45, 0.45, 0.45, 0.45]
        assert_rows_equal(
            kernel_rows(assigner, counts, 41, "user", biases=biases),
            reference_rows(assigner, counts, 41, "user", biases=biases),
        )

    def test_duplicate_preferred_indices_match_the_scalar_boost(self, assigner):
        # A duplicated preferred topic is boosted once per occurrence in
        # the scalar path; the kernel must reproduce that, not dedup it.
        counts = np.array([11, 11], dtype=np.int64)
        streams = [derive_generator(5, "user", row) for row in range(2)]
        dup = np.array([2, 2, 5], dtype=np.int64)
        flat, lens = assigner.assign_rows(
            counts, streams, preferred_topics=[dup, np.array([1, 4, 6])]
        )
        names = tuple(assigner.topics[i] for i in (2, 2, 5))
        expected = assigner.assign(
            11, derive_generator(5, "user", 0), preferred_topics=names
        )
        np.testing.assert_array_equal(flat[: lens[0]], np.array(expected))

    def test_no_preferred_topics(self, assigner):
        counts = np.array([6, 0, 13], dtype=np.int64)
        streams = [derive_generator(3, "user", row) for row in range(3)]
        flat, lens = assigner.assign_rows(counts, streams)
        expected_flat: list[int] = []
        for row in range(3):
            expected_flat.extend(
                assigner.assign(int(counts[row]), derive_generator(3, "user", row))
            )
        np.testing.assert_array_equal(flat, np.array(expected_flat, dtype=np.int64))
        np.testing.assert_array_equal(lens, counts)

    def test_empty_shard(self, assigner):
        flat, lens = assigner.assign_rows(np.zeros(0, dtype=np.int64), [])
        assert flat.size == 0
        assert lens.size == 0

    def test_all_zero_counts(self, assigner):
        counts = np.zeros(5, dtype=np.int64)
        streams = [derive_generator(1, "user", row) for row in range(5)]
        flat, lens = assigner.assign_rows(counts, streams)
        assert flat.size == 0
        np.testing.assert_array_equal(lens, counts)


class TestShardParity:
    """run_interest_shard vs its reference, and shard-split invariance."""

    def _population_task(self, assigner, start, stop, counts):
        return InterestShardTask(
            assigner=assigner,
            base_seed=101,
            seed_key="user",
            start=start,
            stop=stop,
            counts=counts[start:stop],
            topics_per_user=TOPICS_PER_USER,
        )

    def _panel_task(self, assigner, start, stop, counts):
        rng = np.random.default_rng(77)
        ages = rng.integers(0, 5, counts.size).astype(np.int16)
        return InterestShardTask(
            assigner=assigner,
            base_seed=202,
            seed_key="panel-user",
            start=start,
            stop=stop,
            counts=counts[start:stop],
            topics_per_user=TOPICS_PER_USER,
            age_group_index=ages[start:stop],
            base_bias=np.full(stop - start, 0.5),
            bias_jitter=0.1,
        )

    @pytest.mark.parametrize("shape", ["_population_task", "_panel_task"])
    def test_kernel_matches_reference(self, assigner, shape):
        counts = np.tile(RAGGED_COUNTS, 3)
        task = getattr(self, shape)(assigner, 0, counts.size, counts)
        flat_k, lens_k, ages_k = run_interest_shard(task)
        flat_r, lens_r, ages_r = run_interest_shard_reference(task)
        np.testing.assert_array_equal(flat_k, flat_r)
        np.testing.assert_array_equal(lens_k, lens_r)
        if ages_r is None:
            assert ages_k is None
        else:
            np.testing.assert_array_equal(ages_k, ages_r)

    @pytest.mark.parametrize("splits", [[36], [1, 7, 20, 36], [12, 24, 36]])
    def test_shard_splits_concatenate_identically(self, assigner, splits):
        counts = np.tile(RAGGED_COUNTS, 3)
        whole = run_interest_shard_reference(
            self._panel_task(assigner, 0, counts.size, counts)
        )
        pieces = []
        start = 0
        for stop in splits:
            pieces.append(
                run_interest_shard(self._panel_task(assigner, start, stop, counts))
            )
            start = stop
        np.testing.assert_array_equal(
            np.concatenate([p[0] for p in pieces]), whole[0]
        )
        np.testing.assert_array_equal(
            np.concatenate([p[1] for p in pieces]), whole[1]
        )
        np.testing.assert_array_equal(
            np.concatenate([p[2] for p in pieces]), whole[2]
        )

    def test_assigners_without_the_batch_api_fall_back(self, assigner):
        class Legacy:
            """A duck-typed payload missing assign_rows (pre-kernel shape)."""

            def sample_preferred_topics(self, n, seed):
                return assigner.sample_preferred_topics(n, seed)

            def assign(self, *args, **kwargs):
                return assigner.assign(*args, **kwargs)

        counts = RAGGED_COUNTS
        legacy_task = InterestShardTask(
            assigner=Legacy(),
            base_seed=101,
            seed_key="user",
            start=0,
            stop=counts.size,
            counts=counts,
            topics_per_user=TOPICS_PER_USER,
        )
        kernel_task = self._population_task(assigner, 0, counts.size, counts)
        flat_l, lens_l, _ = run_interest_shard(legacy_task)
        flat_k, lens_k, _ = run_interest_shard(kernel_task)
        np.testing.assert_array_equal(flat_l, flat_k)
        np.testing.assert_array_equal(lens_l, lens_k)


class TestValidation:
    def test_one_stream_per_row_required(self, assigner):
        with pytest.raises(PopulationError, match="one stream per row"):
            assigner.assign_rows(np.array([3, 3]), [derive_generator(1, "user", 0)])

    def test_one_preferred_entry_per_row_required(self, assigner):
        streams = [derive_generator(1, "user", r) for r in range(2)]
        with pytest.raises(PopulationError, match="one preferred-topic entry"):
            assigner.assign_rows(
                np.array([3, 3]), streams, preferred_topics=[np.array([1])]
            )

    def test_one_bias_per_row_required(self, assigner):
        streams = [derive_generator(1, "user", r) for r in range(2)]
        with pytest.raises(PopulationError, match="one popularity bias"):
            assigner.assign_rows(np.array([3, 3]), streams, popularity_biases=[0.5])

    def test_negative_counts_rejected(self, assigner):
        with pytest.raises(PopulationError, match="non-negative"):
            assigner.assign_rows(np.array([3, -1]), [None, None])

    def test_unknown_topic_name_rejected(self, assigner):
        streams = [derive_generator(1, "user", 0)]
        with pytest.raises(PopulationError, match="unknown preferred topic"):
            assigner.assign_rows(
                np.array([3]), streams, preferred_topics=[("no-such-topic",)]
            )

    @pytest.mark.parametrize("bad", [999, -1])
    def test_out_of_range_topic_index_rejected(self, assigner, bad):
        # Index arrays take the batched CDF path, which must surface the
        # scalar path's canonical error, not an indexing crash.
        streams = [derive_generator(1, "user", 0)]
        with pytest.raises(PopulationError, match="unknown preferred topic index"):
            assigner.assign_rows(
                np.array([3]),
                streams,
                preferred_topics=[np.array([bad], dtype=np.int64)],
            )


class TestBoundedCaches:
    """The per-assigner derived-table caches never grow past their bounds."""

    def test_bias_tables_bounded_under_adversarial_biases(self, catalog):
        fresh = InterestAssigner(catalog)
        for step in range(BIAS_TABLE_CACHE_SIZE + 150):
            fresh.assign(2, seed=step, popularity_bias=0.001 * step)
        info = fresh.cache_info()
        assert info["bias_tables"] == BIAS_TABLE_CACHE_SIZE
        assert info["bias_tables_max"] == BIAS_TABLE_CACHE_SIZE

    def test_bias_tables_bounded_through_the_kernel(self, catalog):
        fresh = InterestAssigner(catalog)
        n_rows = BIAS_TABLE_CACHE_SIZE + 40
        counts = np.full(n_rows, 2, dtype=np.int64)
        streams = [derive_generator(9, "user", row) for row in range(n_rows)]
        biases = [0.001 * row for row in range(n_rows)]
        fresh.assign_rows(counts, streams, popularity_biases=biases)
        assert fresh.cache_info()["bias_tables"] <= BIAS_TABLE_CACHE_SIZE

    def test_topic_selections_bounded_under_adversarial_keys(self, catalog):
        fresh = InterestAssigner(catalog)
        topics = fresh.topics
        step = 0
        pairs = list(combinations(range(len(topics)), 2))
        while step < TOPIC_SELECTION_CACHE_SIZE + 100:
            i, j = pairs[step % len(pairs)]
            fresh.assign(
                1,
                seed=step,
                preferred_topics=(topics[i], topics[j]),
                popularity_bias=0.4 + 0.01 * (step // len(pairs)),
            )
            step += 1
        info = fresh.cache_info()
        assert info["topic_selections"] == TOPIC_SELECTION_CACHE_SIZE
        assert info["topic_selections_max"] == TOPIC_SELECTION_CACHE_SIZE

    def test_panel_bias_space_never_evicts(self, catalog):
        # The jitter draw rounds to 2 decimals in [0.1, 0.95]: at most 86
        # distinct biases, comfortably inside the default bound, so the
        # panel path keeps every table resident.
        fresh = InterestAssigner(catalog)
        for step, bias in enumerate(np.round(np.arange(0.10, 0.96, 0.01), 2)):
            fresh.assign(2, seed=step, popularity_bias=float(bias))
        assert fresh.cache_info()["bias_tables"] <= 86


@dataclass(frozen=True)
class _FakeSpec:
    token: str

    def fingerprint(self) -> str:
        return f"fake:{self.token}"


class TestSpecMemoBounds:
    """The per-process spec memos are LRU-bounded with a clear() hook."""

    def test_maxsize_is_validated(self):
        with pytest.raises(ConfigurationError):
            SpecMemo(maxsize=0)

    def test_lru_eviction_and_rebuild(self):
        built: list[str] = []

        def build(spec):
            built.append(spec.token)
            return spec.token.upper()

        memo = SpecMemo(maxsize=2)
        a, b, c = _FakeSpec("a"), _FakeSpec("b"), _FakeSpec("c")
        assert memo.get_or_build(a, build) == "A"
        assert memo.get_or_build(b, build) == "B"
        assert memo.get_or_build(a, build) == "A"  # hit: a becomes MRU
        assert memo.get_or_build(c, build) == "C"  # evicts b, the LRU
        assert len(memo) == 2
        assert memo.get_or_build(b, build) == "B"  # miss again: rebuilt
        assert built == ["a", "b", "c", "b"]

    def test_clear_drops_everything(self):
        builds = []
        memo = SpecMemo(maxsize=4)
        spec = _FakeSpec("x")
        memo.get_or_build(spec, lambda s: builds.append(1) or object())
        memo.clear()
        assert len(memo) == 0
        memo.get_or_build(spec, lambda s: builds.append(1) or object())
        assert len(builds) == 2

    def test_resolve_assigner_memoises_per_process(self):
        spec = AssignerSpec(
            catalog_config=CatalogConfig(n_interests=60, n_topics=4, seed=3),
            catalog_seed=3,
        )
        try:
            first = resolve_assigner(spec)
            assert resolve_assigner(spec) is first
            clear_spec_memo()
            assert resolve_assigner(spec) is not first
        finally:
            clear_spec_memo()

    def test_exec_memo_exposes_the_same_hook(self):
        # The reach-model memo in repro.exec mirrors the assigner memo;
        # both clear hooks must be importable and runnable for test
        # isolation (the suite's fixtures call them between sessions).
        clear_exec_spec_memo()
