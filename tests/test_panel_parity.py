"""Parity of the panel-scale collection kernel with the per-user tiers.

The panel tier (vectorised strategy ordering + ``prefix_audiences_panel`` +
``estimate_reach_matrix``) must produce **bit-identical** matrices to the
per-user batch tier and the scalar reference — including ragged panels
(users with fewer interests than the matrix width), users without any
interests, and demographic sub-panels.  These tests pin that contract, plus
the dedup semantics of the batched FDVT risk reports that ride the same
bulk endpoint.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adsapi import AdsManagerAPI, TargetingSpec
from repro.catalog import InterestCatalog
from repro.config import CatalogConfig, PlatformConfig, ReachModelConfig
from repro.core import (
    AudienceSizeCollector,
    LeastPopularSelection,
    RandomSelection,
    ordered_interest_matrix,
)
from repro.errors import (
    ModelError,
    PanelError,
    RateLimitExceededError,
    TargetingValidationError,
    UnknownInterestError,
)
from repro.fdvt import FDVTExtension, FDVTPanel
from repro.population import SyntheticUser
from repro.reach import StatisticalReachModel, country_codes
from repro.simclock import SimClock


@pytest.fixture(scope="module")
def model():
    catalog = InterestCatalog.generate(CatalogConfig(n_interests=600, seed=37))
    return StatisticalReachModel(catalog, ReachModelConfig(seed=37))


@pytest.fixture(scope="module")
def id_pool(model):
    rng = np.random.default_rng(5)
    ids = model.catalog.interest_ids
    return [int(i) for i in rng.choice(ids, size=60, replace=False)]


def _ragged_matrix(id_pool, counts, width):
    matrix = np.full((len(counts), width), -1, dtype=np.int64)
    rng = np.random.default_rng(19)
    for row, count in enumerate(counts):
        matrix[row, :count] = rng.choice(id_pool, size=count, replace=False)
    return matrix


class TestPrefixAudiencesPanel:
    @pytest.mark.parametrize("locations", [None, ("US", "ES"), None])
    def test_rows_bit_identical_to_per_user_kernel(self, model, id_pool, locations):
        counts = np.array([0, 1, 5, 25, 13, 2, 25, 0, 7], dtype=np.int64)
        matrix = _ragged_matrix(id_pool, counts, 25)
        panel = model.prefix_audiences_panel(matrix, counts, locations)
        for row, count in enumerate(counts):
            expected = model.prefix_audiences(matrix[row, :count], locations)
            assert np.array_equal(panel[row, :count], expected)
            assert np.isnan(panel[row, count:]).all()

    def test_matches_scalar_audience_for(self, model, id_pool):
        counts = np.array([4, 9], dtype=np.int64)
        matrix = _ragged_matrix(id_pool, counts, 9)
        panel = model.prefix_audiences_panel(matrix, counts, ("MX",))
        for row, count in enumerate(counts):
            for k in range(count):
                scalar = model.audience_for(matrix[row, : k + 1], ("MX",))
                assert panel[row, k] == scalar

    def test_empty_panel_and_empty_rows(self, model):
        empty = model.prefix_audiences_panel(
            np.empty((0, 5), dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert empty.shape == (0, 5)
        all_empty = model.prefix_audiences_panel(
            np.full((3, 4), -1, dtype=np.int64), np.zeros(3, dtype=np.int64)
        )
        assert np.isnan(all_empty).all()

    def test_padding_values_are_ignored(self, model, id_pool):
        counts = np.array([3, 6], dtype=np.int64)
        matrix = _ragged_matrix(id_pool, counts, 6)
        garbage = matrix.copy()
        garbage[0, 3:] = 10**9  # unknown id in the padding region
        assert np.array_equal(
            model.prefix_audiences_panel(matrix, counts),
            model.prefix_audiences_panel(garbage, counts),
            equal_nan=True,
        )

    def test_unknown_interest_in_valid_region_raises(self, model, id_pool):
        counts = np.array([3], dtype=np.int64)
        matrix = _ragged_matrix(id_pool, counts, 3)
        matrix[0, 1] = 10**9
        with pytest.raises(UnknownInterestError):
            model.prefix_audiences_panel(matrix, counts)

    def test_protocol_default_matches_vectorised_kernel(self, model, id_pool):
        from repro.reach.backend import ReachBackend

        counts = np.array([0, 8, 3], dtype=np.int64)
        matrix = _ragged_matrix(id_pool, counts, 8)
        fallback = ReachBackend.prefix_audiences_panel(model, matrix, counts)
        assert np.array_equal(
            fallback, model.prefix_audiences_panel(matrix, counts), equal_nan=True
        )

    def test_invalid_shapes_rejected(self, model, id_pool):
        with pytest.raises(Exception):
            model.prefix_audiences_panel(np.zeros(4, dtype=np.int64), [4])
        with pytest.raises(Exception):
            model.prefix_audiences_panel(
                np.zeros((2, 4), dtype=np.int64), np.array([5, 0])
            )


class TestEstimateReachMatrix:
    @pytest.fixture()
    def api(self, model):
        return AdsManagerAPI(
            model, platform=PlatformConfig.legacy_2017(), clock=SimClock()
        )

    def test_cells_match_batched_specs(self, api, id_pool):
        locations = country_codes()
        counts = np.array([5, 0, 12], dtype=np.int64)
        matrix = _ragged_matrix(id_pool, counts, 12)
        values = api.estimate_reach_matrix(matrix, counts, locations=locations)
        for row, count in enumerate(counts):
            if count == 0:
                assert np.isnan(values[row]).all()
                continue
            specs = TargetingSpec.prefix_chain(
                matrix[row, :count], locations=locations
            )
            estimates = api.estimate_reach_batch(specs)
            assert np.array_equal(
                values[row, :count],
                np.array([float(e.potential_reach) for e in estimates]),
            )

    def test_floor_respected(self, api, id_pool):
        counts = np.full(4, 20, dtype=np.int64)
        matrix = _ragged_matrix(id_pool, counts, 20)
        values = api.estimate_reach_matrix(matrix, counts, locations=("AR",))
        assert (values[~np.isnan(values)] >= api.platform.reach_floor).all()

    def test_call_stats_match_scalar_loop(self, model, id_pool):
        counts = np.array([7, 3, 0, 25], dtype=np.int64)
        matrix = _ragged_matrix(id_pool, counts, 25)
        locations = ("US", "BR")
        bulk_api = AdsManagerAPI(
            model, platform=PlatformConfig.legacy_2017(), clock=SimClock()
        )
        loop_api = AdsManagerAPI(
            model, platform=PlatformConfig.legacy_2017(), clock=SimClock()
        )
        bulk_api.estimate_reach_matrix(matrix, counts, locations=locations)
        for row, count in enumerate(counts):
            for k in range(1, count + 1):
                loop_api.estimate_reach(
                    TargetingSpec.for_interests(matrix[row, :k], locations=locations)
                )
        assert bulk_api.call_stats() == loop_api.call_stats()

    def test_rate_limit_without_auto_wait_raises(self, model, id_pool):
        api = AdsManagerAPI(
            model,
            platform=PlatformConfig.legacy_2017(),
            clock=SimClock(),
            auto_wait=False,
        )
        counts = np.full(10, 25, dtype=np.int64)
        matrix = _ragged_matrix(id_pool, counts, 25)
        with pytest.raises(RateLimitExceededError):
            api.estimate_reach_matrix(matrix, counts, locations=("US",))
        assert api.call_stats().reach_estimates == 0
        # The scalar loop aborts on its first failed acquire, having
        # recorded exactly one rate-limit event; the bulk path matches.
        assert api.call_stats().rate_limited == 1

    @pytest.mark.parametrize("locations", [(), None, ("WW",)])
    def test_worldwide_location_spellings_match_spec_path(
        self, model, id_pool, locations
    ):
        api = AdsManagerAPI(
            model, platform=PlatformConfig.modern_2020(), clock=SimClock()
        )
        counts = np.array([4], dtype=np.int64)
        matrix = _ragged_matrix(id_pool, counts, 4)
        values = api.estimate_reach_matrix(matrix, counts, locations=locations)
        for k in range(4):
            spec = TargetingSpec.for_interests(matrix[0, : k + 1], locations=locations)
            assert values[0, k] == float(api.estimate_reach(spec).potential_reach)

    def test_validation_failures(self, api, id_pool):
        counts = np.array([3], dtype=np.int64)
        matrix = _ragged_matrix(id_pool, counts, 3)
        with pytest.raises(TargetingValidationError):
            api.estimate_reach_matrix(matrix, counts)  # worldwide not allowed (2017)
        with pytest.raises(TargetingValidationError):
            api.estimate_reach_matrix(matrix, np.array([5]), locations=("US",))
        duplicated = matrix.copy()
        duplicated[0, 2] = duplicated[0, 0]
        with pytest.raises(TargetingValidationError):
            api.estimate_reach_matrix(duplicated, counts, locations=("US",))
        negative = matrix.copy()
        negative[0, 1] = -7
        with pytest.raises(TargetingValidationError):
            api.estimate_reach_matrix(negative, counts, locations=("US",))
        wide = np.zeros((1, 30), dtype=np.int64)
        with pytest.raises(TargetingValidationError):
            api.estimate_reach_matrix(wide, np.array([30]), locations=("US",))


class TestPrefixChainSpecs:
    def test_chain_matches_individual_constructors(self, id_pool):
        chain = TargetingSpec.prefix_chain(id_pool[:6], locations=("US", "ES"))
        assert len(chain) == 6
        for k, spec in enumerate(chain, start=1):
            assert spec == TargetingSpec.for_interests(
                id_pool[:k], locations=("US", "ES")
            )

    def test_chain_validates_the_longest_spec(self, id_pool):
        with pytest.raises(TargetingValidationError):
            TargetingSpec.prefix_chain([id_pool[0], id_pool[0]])
        assert TargetingSpec.prefix_chain([]) == ()


class TestCollectorThreeTierParity:
    @pytest.fixture(scope="class")
    def stack(self, simulation):
        def fresh_api():
            return AdsManagerAPI(
                simulation.reach_model,
                platform=PlatformConfig.legacy_2017(),
                clock=SimClock(),
            )

        return simulation, fresh_api

    @pytest.mark.parametrize("strategy_seed", [None, 13])
    def test_all_tiers_bit_identical(self, stack, strategy_seed):
        simulation, fresh_api = stack
        strategy = (
            LeastPopularSelection()
            if strategy_seed is None
            else RandomSelection(seed=strategy_seed)
        )
        kwargs = dict(max_interests=8, locations=country_codes())
        samples = {}
        stats = {}
        for mode in ("panel", "batch", "scalar"):
            api = fresh_api()
            collector = AudienceSizeCollector(api, simulation.panel, **kwargs)
            samples[mode] = collector.collect(strategy, mode=mode)
            stats[mode] = api.call_stats()
        for mode in ("batch", "scalar"):
            assert np.array_equal(
                samples["panel"].matrix, samples[mode].matrix, equal_nan=True
            )
            assert samples["panel"].user_ids == samples[mode].user_ids
            assert stats["panel"] == stats[mode]

    def test_ragged_panel_with_empty_user(self, stack):
        simulation, fresh_api = stack
        catalog = simulation.catalog
        pool = [int(i) for i in catalog.interest_ids[:40]]
        users = [
            SyntheticUser(user_id=1, country="US", interest_ids=tuple(pool[:25])),
            SyntheticUser(user_id=2, country="ES", interest_ids=()),
            SyntheticUser(user_id=3, country="MX", interest_ids=tuple(pool[25:28])),
            SyntheticUser(user_id=4, country="AR", interest_ids=tuple(pool[28:29])),
        ]
        panel = FDVTPanel(users, catalog)
        matrices = {}
        for mode in ("panel", "batch", "scalar"):
            collector = AudienceSizeCollector(
                fresh_api(), panel, max_interests=10, locations=country_codes()
            )
            matrices[mode] = collector.collect(LeastPopularSelection(), mode=mode)
        assert np.isnan(matrices["panel"].matrix[1]).all()
        for mode in ("batch", "scalar"):
            assert np.array_equal(
                matrices["panel"].matrix, matrices[mode].matrix, equal_nan=True
            )

    def test_collect_for_users_subset_order_on_panel_tier(self, stack):
        simulation, fresh_api = stack
        collector = AudienceSizeCollector(
            fresh_api(), simulation.panel, max_interests=4, locations=country_codes()
        )
        wanted = [user.user_id for user in list(simulation.panel)[:6]]
        reversed_ids = list(reversed(wanted))
        panel_samples = collector.collect_for_users(
            LeastPopularSelection(), reversed_ids
        )
        scalar_samples = collector.collect_for_users(
            LeastPopularSelection(), reversed_ids, mode="scalar"
        )
        assert list(panel_samples.user_ids) == reversed_ids
        assert np.array_equal(
            panel_samples.matrix, scalar_samples.matrix, equal_nan=True
        )

    def test_legacy_batch_flag_still_selects_tiers(self, stack):
        simulation, fresh_api = stack
        collector = AudienceSizeCollector(
            fresh_api(), simulation.panel, max_interests=3, locations=country_codes()
        )
        legacy = collector.collect(LeastPopularSelection(), batch=True)
        modern = collector.collect(LeastPopularSelection(), mode="batch")
        assert np.array_equal(legacy.matrix, modern.matrix, equal_nan=True)
        with pytest.raises(ModelError):
            collector.collect(LeastPopularSelection(), mode="panel", batch=True)
        with pytest.raises(ModelError):
            collector.collect(LeastPopularSelection(), mode="warp")


class TestOrderedInterestMatrix:
    def test_matches_scalar_ordering_for_both_strategies(self, simulation):
        users = simulation.panel.users
        for strategy in (LeastPopularSelection(), RandomSelection(seed=3)):
            matrix, counts = ordered_interest_matrix(
                strategy, users, simulation.catalog, 6
            )
            assert matrix.shape[1] <= 6
            for row, user in enumerate(users):
                expected = strategy.order_interests(user, simulation.catalog, 6)
                assert counts[row] == len(expected)
                assert tuple(matrix[row, : counts[row]]) == expected
                assert (matrix[row, counts[row] :] == -1).all()

    def test_unknown_interest_raises(self, simulation):
        users = (
            SyntheticUser(user_id=1, country="US", interest_ids=(10**9,)),
        )
        with pytest.raises(UnknownInterestError):
            ordered_interest_matrix(
                LeastPopularSelection(), users, simulation.catalog, 5
            )

    def test_invalid_max_interests(self, simulation):
        with pytest.raises(ModelError):
            ordered_interest_matrix(
                LeastPopularSelection(), simulation.panel.users, simulation.catalog, 0
            )


class TestBatchedRiskReports:
    @pytest.fixture()
    def modern_api(self, simulation):
        return AdsManagerAPI(
            simulation.reach_model,
            platform=PlatformConfig.modern_2020(),
            clock=SimClock(),
        )

    @pytest.fixture()
    def users(self, simulation):
        candidates = sorted(simulation.panel.users, key=lambda u: u.interest_count)
        return [u for u in candidates if u.interest_count >= 5][:4]

    def test_reports_identical_to_scalar_path(self, simulation, modern_api, users):
        extension = FDVTExtension(modern_api, simulation.catalog)
        batched = extension.build_risk_reports(users)
        scalar_extension = FDVTExtension(
            AdsManagerAPI(
                simulation.reach_model,
                platform=PlatformConfig.modern_2020(),
                clock=SimClock(),
            ),
            simulation.catalog,
        )
        for user, report in zip(users, batched):
            assert report == scalar_extension.build_risk_report(user)

    def test_unique_interests_queried_once(self, simulation, modern_api, users):
        extension = FDVTExtension(modern_api, simulation.catalog)
        extension.build_risk_reports(users)
        unique = {i for user in users for i in user.interest_ids}
        assert modern_api.call_stats().reach_estimates == len(unique)

    def test_empty_user_rejected_before_any_query(self, simulation, modern_api):
        extension = FDVTExtension(modern_api, simulation.catalog)
        users = [
            simulation.panel.users[0],
            SyntheticUser(user_id=10**6, country="US", interest_ids=()),
        ]
        with pytest.raises(PanelError):
            extension.build_risk_reports(users)
        assert modern_api.call_stats().reach_estimates == 0

    def test_no_users_yields_no_reports(self, simulation, modern_api):
        extension = FDVTExtension(modern_api, simulation.catalog)
        assert extension.build_risk_reports([]) == ()
