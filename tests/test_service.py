"""Tests for the always-on reach service (repro.service).

Everything runs on virtual time: deadlines, backoff, breaker cooldowns
and queue trajectories are all driven tick by tick through the injected
clocks, so each scenario — including the chaos ones — is
bit-reproducible.  The load-bearing contracts pinned here:

* queue/deadline/shedding semantics (typed rejections, never unbounded
  waits);
* circuit-breaker state transitions (closed → open → half-open →
  closed/reopen) and per-tenant isolation;
* coalescer batching boundaries and per-tenant fairness under a hot
  tenant;
* admitted-query bit-parity with direct ``estimate_reach_matrix`` calls,
  with and without injected faults;
* exactly-once billing of coalesced batches across retries.
"""

from __future__ import annotations

import pytest

from _builders import build_cached_simulation, fresh_modern_api

from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    OverloadedError,
    RequestFailedError,
    TargetingValidationError,
    TenantThrottledError,
)
from repro.faults import FaultPlan, RetryPolicy, WallClockRetryPolicy
from repro.service import (
    CircuitBreaker,
    PendingQueue,
    QueuedRequest,
    ReachRequest,
    ReachResponse,
    ReachService,
    RequestTrace,
    ServiceConfig,
    coalesce_reach,
    direct_reach,
    run_trace,
)


@pytest.fixture(scope="module")
def simulation():
    return build_cached_simulation()


@pytest.fixture(scope="module")
def interest_pool(simulation):
    return [int(x) for x in simulation.catalog.interest_ids]


def make_service(simulation, **kwargs):
    config = kwargs.pop("config", None) or ServiceConfig(**kwargs.pop("knobs", {}))
    return ReachService(fresh_modern_api(simulation), config=config, **kwargs)


def request_for(interest_pool, tenant="tenant-a", n=4, offset=0, timeout=None):
    return ReachRequest(
        tenant=tenant,
        interests=tuple(interest_pool[offset : offset + n]),
        timeout_seconds=timeout,
    )


def entry_for(interest_pool, index, tenant="tenant-a", n=2, **kwargs):
    request = ReachRequest(
        tenant=tenant, interests=tuple(interest_pool[index * n : index * n + n])
    )
    defaults = dict(submitted_at=0.0, deadline=100.0)
    defaults.update(kwargs)
    return QueuedRequest(index=index, request=request, **defaults)


class TestRequestAndResponse:
    def test_request_normalises_and_costs_per_prefix(self, interest_pool):
        request = ReachRequest(tenant="t", interests=[interest_pool[0], interest_pool[1]])
        assert request.interests == (interest_pool[0], interest_pool[1])
        assert request.cost == 2

    def test_request_rejects_empty_tenant_and_bad_timeout(self, interest_pool):
        with pytest.raises(ConfigurationError):
            ReachRequest(tenant="", interests=(interest_pool[0],))
        with pytest.raises(ConfigurationError):
            ReachRequest(tenant="t", interests=(interest_pool[0],), timeout_seconds=0)

    def test_response_status_and_values_are_coupled(self, interest_pool):
        request = request_for(interest_pool)
        with pytest.raises(ConfigurationError):
            ReachResponse(request=request, status="ok")  # ok needs values
        with pytest.raises(ConfigurationError):
            ReachResponse(request=request, status="failed", values=(1.0,))
        with pytest.raises(ConfigurationError):
            ReachResponse(request=request, status="nonsense")

    @pytest.mark.parametrize(
        "status, error_type",
        [
            ("invalid", TargetingValidationError),
            ("throttled", TenantThrottledError),
            ("overloaded", OverloadedError),
            ("deadline_exceeded", DeadlineExceededError),
            ("circuit_open", CircuitOpenError),
            ("failed", RequestFailedError),
        ],
    )
    def test_raise_for_status_maps_to_typed_errors(
        self, interest_pool, status, error_type
    ):
        response = ReachResponse(
            request=request_for(interest_pool),
            status=status,
            retry_after_seconds=3.5,
        )
        with pytest.raises(error_type):
            response.raise_for_status()
        ok = ReachResponse(
            request=request_for(interest_pool, n=1), status="ok", values=(1000.0,)
        )
        ok.raise_for_status()  # no-op

    def test_retry_after_hint_survives_raise(self, interest_pool):
        response = ReachResponse(
            request=request_for(interest_pool),
            status="overloaded",
            retry_after_seconds=2.0,
        )
        with pytest.raises(OverloadedError) as exc_info:
            response.raise_for_status()
        assert exc_info.value.retry_after_seconds == 2.0


class TestPendingQueue:
    def test_capacity_is_in_cells(self, interest_pool):
        queue = PendingQueue(max_cells=4)
        queue.push(entry_for(interest_pool, 0, n=2))
        assert queue.has_room(2) and not queue.has_room(3)
        queue.push(entry_for(interest_pool, 1, n=2))
        assert not queue.has_room(1)
        with pytest.raises(ConfigurationError):
            queue.push(entry_for(interest_pool, 2, n=1))

    def test_pop_batch_round_robins_across_tenants(self, interest_pool):
        queue = PendingQueue(max_cells=100)
        for i in range(3):
            queue.push(entry_for(interest_pool, i, tenant="hot", n=2))
        queue.push(entry_for(interest_pool, 10, tenant="cold", n=2))
        popped = queue.pop_batch(now=1.0, max_cells=4)
        tenants = {entry.request.tenant for entry in popped}
        # Budget of 4 cells = two entries; fairness gives each tenant one
        # before the hot tenant gets a second slot.
        assert tenants == {"hot", "cold"}

    def test_pop_batch_skips_lane_heads_backing_off(self, interest_pool):
        queue = PendingQueue(max_cells=100)
        head = entry_for(interest_pool, 0, tenant="a", n=2, not_before=10.0)
        queue.push(head)
        queue.push(entry_for(interest_pool, 1, tenant="a", n=2))
        queue.push(entry_for(interest_pool, 2, tenant="b", n=2))
        popped = queue.pop_batch(now=1.0, max_cells=10)
        # Tenant a's backoff head blocks its whole lane (FIFO preserved);
        # tenant b proceeds.
        assert [entry.request.tenant for entry in popped] == ["b"]
        popped = queue.pop_batch(now=11.0, max_cells=10)
        assert [entry.index for entry in popped] == [0, 1]

    def test_purge_expired_frees_cells(self, interest_pool):
        queue = PendingQueue(max_cells=4)
        queue.push(entry_for(interest_pool, 0, n=2, deadline=5.0))
        queue.push(entry_for(interest_pool, 1, n=2, deadline=50.0))
        expired = queue.purge_expired(now=6.0)
        assert [entry.index for entry in expired] == [0]
        assert queue.queued_cells == 2 and queue.has_room(2)

    def test_requeue_restores_lane_front(self, interest_pool):
        queue = PendingQueue(max_cells=10)
        first = entry_for(interest_pool, 0, n=2)
        queue.push(first)
        queue.push(entry_for(interest_pool, 1, n=2))
        popped = queue.pop_batch(now=0.0, max_cells=2)
        assert popped == [first]
        queue.requeue(first)
        assert queue.pop_batch(now=0.0, max_cells=2) == [first]


class TestCircuitBreaker:
    def test_trips_open_on_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_seconds=10.0)
        for _ in range(2):
            breaker.record_failure(now=0.0)
        assert breaker.state == "closed" and breaker.allow(0.0)
        breaker.record_failure(now=0.0)
        assert breaker.state == "open"
        assert not breaker.allow(5.0)
        assert breaker.retry_after(2.0) == pytest.approx(8.0)

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(now=0.0)
        breaker.record_success()
        breaker.record_failure(now=0.0)
        assert breaker.state == "closed"

    def test_half_open_probe_closes_on_success(self):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=10.0, half_open_probes=1
        )
        breaker.record_failure(now=0.0)
        assert not breaker.allow(9.9)
        assert breaker.allow(10.0)  # the probe
        assert breaker.state == "half_open"
        assert not breaker.allow(10.0)  # probe budget spent
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow(10.0)

    def test_half_open_probe_reopens_on_failure(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=10.0)
        breaker.record_failure(now=0.0)
        assert breaker.allow(10.0)
        breaker.record_failure(now=10.0)
        assert breaker.state == "open"
        assert not breaker.allow(19.9)
        assert breaker.allow(20.0)


class TestAdmission:
    def test_admits_and_serves_one_request(self, simulation, interest_pool):
        service = make_service(simulation)
        request = request_for(interest_pool)
        assert service.submit(request) is None
        responses = service.run_until_idle()
        assert len(responses) == 1 and responses[0].ok
        assert len(responses[0].values) == request.cost

    def test_invalid_requests_shed_immediately(self, simulation, interest_pool):
        service = make_service(simulation)
        empty = ReachRequest(tenant="t", interests=())
        assert service.submit(empty).status == "invalid"
        dup = ReachRequest(
            tenant="t", interests=(interest_pool[0], interest_pool[0])
        )
        assert service.submit(dup).status == "invalid"
        huge = ReachRequest(
            tenant="t", interests=tuple(interest_pool[: 65])
        )
        response = service.submit(huge)
        assert response.status == "invalid"
        assert "batch budget" in response.detail

    def test_throttles_when_tenant_bucket_empties(self, simulation, interest_pool):
        service = make_service(
            simulation,
            knobs=dict(tenant_requests_per_minute=60.0, tenant_burst=8),
        )
        assert service.submit(request_for(interest_pool, n=8)) is None
        response = service.submit(request_for(interest_pool, n=8, offset=8))
        assert response.status == "throttled"
        assert response.retry_after_seconds > 0
        # A different tenant has its own bucket.
        assert service.submit(request_for(interest_pool, tenant="other", n=8)) is None

    def test_sheds_overloaded_when_queue_full(self, simulation, interest_pool):
        service = make_service(
            simulation,
            knobs=dict(
                max_queue_cells=8,
                tenant_requests_per_minute=6000.0,
                tenant_burst=50,
            ),
        )
        assert service.submit(request_for(interest_pool, n=4)) is None
        assert service.submit(request_for(interest_pool, n=4, offset=4)) is None
        response = service.submit(request_for(interest_pool, n=4, offset=8))
        assert response.status == "overloaded"
        assert response.retry_after_seconds == service.config.tick_seconds
        assert service.counters.shed_overloaded == 1

    def test_every_submission_gets_exactly_one_response(
        self, simulation, interest_pool
    ):
        service = make_service(
            simulation, knobs=dict(max_queue_cells=8, max_batch_cells=4)
        )
        submitted = 12
        responses = []
        for i in range(submitted):
            rejection = service.submit(
                request_for(interest_pool, tenant=f"t{i % 3}", n=2, offset=2 * i)
            )
            if rejection is not None:
                responses.append(rejection)
        responses.extend(service.run_until_idle())
        assert len(responses) == submitted


class TestDeadlines:
    def test_expired_entries_shed_with_deadline_exceeded(
        self, simulation, interest_pool
    ):
        service = make_service(
            simulation, knobs=dict(max_batch_cells=4, tick_seconds=1.0)
        )
        # Cheap deadline: the second request cannot run in tick 1 (batch
        # budget) and its 1.5s deadline passes before tick 2.
        assert (
            service.submit(request_for(interest_pool, n=4, timeout=1.5)) is None
        )
        assert (
            service.submit(
                request_for(interest_pool, n=4, offset=4, timeout=1.5)
            )
            is None
        )
        responses = service.run_until_idle()
        statuses = sorted(r.status for r in responses)
        assert statuses == ["deadline_exceeded", "ok"]
        shed = next(r for r in responses if not r.ok)
        assert shed.latency_seconds >= 1.5

    def test_deadline_uses_service_default_when_unset(
        self, simulation, interest_pool
    ):
        service = make_service(simulation, knobs=dict(default_timeout_seconds=5.0))
        assert service.submit(request_for(interest_pool)) is None
        responses = service.run_until_idle()
        assert responses[0].ok


class TestCoalescer:
    def test_batches_respect_the_cell_budget(self, simulation, interest_pool):
        service = make_service(simulation, knobs=dict(max_batch_cells=4))
        for i in range(3):
            assert (
                service.submit(request_for(interest_pool, n=2, offset=2 * i))
                is None
            )
        first = service.tick()
        # 4-cell budget fits exactly two 2-cell requests.
        assert len(first) == 2 and all(r.ok for r in first)
        second = service.tick()
        assert len(second) == 1 and second[0].ok
        assert service.counters.batches == 2

    def test_one_bulk_call_per_tick_bills_exactly_once(
        self, simulation, interest_pool
    ):
        service = make_service(simulation)
        total_cells = 0
        for i, tenant in enumerate(["a", "b", "c"]):
            request = request_for(interest_pool, tenant=tenant, n=3, offset=3 * i)
            total_cells += request.cost
            assert service.submit(request) is None
        responses = service.run_until_idle()
        assert all(r.ok for r in responses)
        # One merged bill: the API recorded exactly one token per cell.
        assert service.api.call_stats().reach_estimates == total_cells
        assert service.counters.batches == 1

    def test_coalesced_values_equal_direct_calls(self, simulation, interest_pool):
        api = fresh_modern_api(simulation)
        requests = [
            request_for(interest_pool, tenant=f"t{i}", n=4, offset=4 * i)
            for i in range(4)
        ]
        folded = coalesce_reach(api, requests)
        for request, values in zip(requests, folded):
            assert values == direct_reach(fresh_modern_api(simulation), request)


class TestServiceParity:
    def test_admitted_queries_bit_identical_to_direct_calls(
        self, simulation, interest_pool
    ):
        service = make_service(simulation, knobs=dict(max_batch_cells=8))
        requests = [
            request_for(interest_pool, tenant=f"t{i % 2}", n=3, offset=3 * i)
            for i in range(6)
        ]
        for request in requests:
            assert service.submit(request) is None
        responses = {r.request: r for r in service.run_until_idle()}
        reference = fresh_modern_api(simulation)
        for request in requests:
            response = responses[request]
            assert response.ok
            assert response.values == direct_reach(reference, request)

    def test_parity_holds_under_fault_injection(self, simulation, interest_pool):
        faults = FaultPlan(
            seed=97, transient_rate=0.25, error_rate=0.1, slow_rate=0.15
        )
        service = make_service(
            simulation,
            knobs=dict(max_batch_cells=8, default_timeout_seconds=120.0),
            retry=RetryPolicy(max_attempts=4),
            faults=faults,
        )
        requests = [
            request_for(interest_pool, tenant=f"t{i % 3}", n=3, offset=3 * i)
            for i in range(8)
        ]
        for request in requests:
            assert service.submit(request) is None
        responses = service.run_until_idle()
        served = [r for r in responses if r.ok]
        assert served, "chaos run must still serve requests"
        assert any(r.attempts > 1 for r in served) or service.counters.retries >= 0
        reference = fresh_modern_api(simulation)
        for response in served:
            assert response.values == direct_reach(reference, response.request)

    def test_billing_exactly_once_despite_retries(self, simulation, interest_pool):
        faults = FaultPlan(seed=11, transient_rate=0.5, max_faults_per_task=2)
        service = make_service(
            simulation,
            knobs=dict(default_timeout_seconds=300.0),
            retry=RetryPolicy(max_attempts=4),
            faults=faults,
        )
        requests = [
            request_for(interest_pool, tenant="t", n=2, offset=2 * i)
            for i in range(5)
        ]
        for request in requests:
            assert service.submit(request) is None
        responses = service.run_until_idle()
        assert all(r.ok for r in responses)
        assert service.counters.retries > 0, "the plan must actually fire"
        served_cells = sum(r.request.cost for r in responses)
        # Failed attempts never reach the billing stage: tokens spent ==
        # cells served, no matter how many retries preceded them.
        assert service.api.call_stats().reach_estimates == served_cells


class TestFaultDegradation:
    def test_retry_budget_exhaustion_fails_with_typed_response(
        self, simulation, interest_pool
    ):
        faults = FaultPlan(seed=5, error_rate=1.0, max_faults_per_task=10)
        service = make_service(
            simulation,
            retry=RetryPolicy(max_attempts=2),
            faults=faults,
        )
        assert service.submit(request_for(interest_pool)) is None
        responses = service.run_until_idle()
        assert len(responses) == 1
        assert responses[0].status == "failed"
        assert responses[0].attempts == 2
        assert "retry budget exhausted" in responses[0].detail

    def test_backoff_past_deadline_sheds_early(self, simulation, interest_pool):
        faults = FaultPlan(seed=5, transient_rate=1.0, max_faults_per_task=10)
        service = make_service(
            simulation,
            retry=RetryPolicy(max_attempts=10, base_delay_seconds=100.0),
            faults=faults,
        )
        assert (
            service.submit(request_for(interest_pool, timeout=5.0)) is None
        )
        responses = service.run_until_idle()
        assert responses[0].status == "deadline_exceeded"
        assert "backoff" in responses[0].detail

    def test_slow_fault_latency_can_blow_the_deadline_before_billing(
        self, simulation, interest_pool
    ):
        faults = FaultPlan(
            seed=3, slow_rate=1.0, slow_seconds=50.0, max_faults_per_task=10
        )
        service = make_service(
            simulation, retry=RetryPolicy(max_attempts=2), faults=faults
        )
        assert service.submit(request_for(interest_pool, timeout=10.0)) is None
        responses = service.run_until_idle()
        assert responses[0].status == "deadline_exceeded"
        assert "latency" in responses[0].detail
        # Shed before the coalescer: nothing was billed.
        assert service.api.call_stats().reach_estimates == 0

    def test_crash_faults_are_stripped_from_service_plans(
        self, simulation, interest_pool
    ):
        faults = FaultPlan(seed=9, crash_rate=1.0, max_faults_per_task=10)
        service = make_service(simulation, faults=faults)
        assert service.submit(request_for(interest_pool)) is None
        responses = service.run_until_idle()
        assert responses[0].ok


class TestBreakerIntegration:
    def _failing_service(self, simulation):
        # Every attempt errors and retries are off: each request burns its
        # budget immediately, tripping the breaker threshold.
        faults = FaultPlan(seed=2, error_rate=1.0, max_faults_per_task=1000)
        return make_service(
            simulation,
            knobs=dict(
                breaker_failure_threshold=3,
                breaker_cooldown_seconds=10.0,
                tick_seconds=1.0,
            ),
            retry=RetryPolicy(max_attempts=1),
            faults=faults,
        )

    def test_breaker_opens_after_failures_and_sheds_admission(
        self, simulation, interest_pool
    ):
        service = self._failing_service(simulation)
        for i in range(3):
            assert (
                service.submit(request_for(interest_pool, n=2, offset=2 * i))
                is None
            )
        responses = service.run_until_idle()
        assert [r.status for r in responses] == ["failed"] * 3
        assert service.breaker_state("tenant-a") == "open"
        rejected = service.submit(request_for(interest_pool, n=2, offset=6))
        assert rejected.status == "circuit_open"
        assert rejected.retry_after_seconds > 0

    def test_open_breaker_isolates_one_tenant(self, simulation, interest_pool):
        service = self._failing_service(simulation)
        for i in range(3):
            assert (
                service.submit(
                    request_for(interest_pool, tenant="bad", n=2, offset=2 * i)
                )
                is None
            )
        service.run_until_idle()
        assert service.breaker_state("bad") == "open"
        # The healthy tenant is admitted; its requests only fail because
        # the global plan injects for everyone, but admission is open.
        assert service.breaker_state("good") == "closed"
        assert (
            service.submit(
                request_for(interest_pool, tenant="good", n=2, offset=8)
            )
            is None
        )

    def test_breaker_recovers_through_half_open_probe(
        self, simulation, interest_pool
    ):
        # Seed 33 deterministically fails requests 0 and 1 on their first
        # attempt while request 2 (the probe) runs clean — a transient
        # outage that ends just as the breaker starts probing.
        faults = FaultPlan(seed=33, error_rate=0.7, max_faults_per_task=10)
        service = make_service(
            simulation,
            knobs=dict(
                breaker_failure_threshold=2,
                breaker_cooldown_seconds=3.0,
                tick_seconds=1.0,
            ),
            retry=RetryPolicy(max_attempts=1),
            faults=faults,
        )
        for i in range(2):
            assert (
                service.submit(request_for(interest_pool, n=2, offset=2 * i))
                is None
            )
        service.run_until_idle()
        assert service.breaker_state("tenant-a") == "open"
        # Cooldown has not passed: still shedding.
        assert (
            service.submit(request_for(interest_pool, n=2, offset=4)).status
            == "circuit_open"
        )
        for _ in range(3):
            service.tick()
        # Past the cooldown the probe is admitted; its fault decision is
        # clean (seed choice above), so the success closes the breaker.
        probe = request_for(interest_pool, n=2, offset=6)
        assert service.submit(probe) is None
        responses = service.run_until_idle()
        assert service.breaker_state("tenant-a") == "closed"
        assert any(r.ok and r.request == probe for r in responses)


class TestFairness:
    def test_hot_tenant_cannot_starve_the_cold_ones(
        self, simulation, interest_pool
    ):
        service = make_service(
            simulation,
            knobs=dict(
                max_batch_cells=4,
                max_queue_cells=100,
                tenant_requests_per_minute=60000.0,
                tenant_burst=50,
            ),
        )
        for i in range(10):
            assert (
                service.submit(
                    request_for(interest_pool, tenant="hot", n=2, offset=2 * i)
                )
                is None
            )
        cold = request_for(interest_pool, tenant="cold", n=2, offset=30)
        assert service.submit(cold) is None
        first_tick = service.tick()
        # The very first tick serves the cold tenant alongside the hot
        # one, despite ten hot entries being ahead in arrival order.
        served_tenants = {r.request.tenant for r in first_tick if r.ok}
        assert "cold" in served_tenants

    def test_round_robin_balances_served_counts(self, simulation, interest_pool):
        service = make_service(
            simulation,
            knobs=dict(
                max_batch_cells=4,
                max_queue_cells=200,
                tenant_requests_per_minute=60000.0,
            ),
        )
        for i in range(8):
            for t, tenant in enumerate(["a", "b"]):
                assert (
                    service.submit(
                        request_for(
                            interest_pool,
                            tenant=tenant,
                            n=2,
                            offset=2 * (2 * i + t),
                        )
                    )
                    is None
                )
        served = [r for r in service.run_until_idle() if r.ok]
        by_tenant = {"a": 0, "b": 0}
        for response in served:
            by_tenant[response.request.tenant] += 1
        assert by_tenant["a"] == by_tenant["b"] == 8


class TestTraces:
    def test_generate_is_deterministic_and_replayable(
        self, simulation, tmp_path
    ):
        kwargs = dict(
            seed=42, duration_seconds=20.0, requests_per_second=2.0, tenants=3
        )
        first = RequestTrace.generate(simulation.catalog, **kwargs)
        second = RequestTrace.generate(simulation.catalog, **kwargs)
        assert first == second
        path = first.save(tmp_path / "trace.json")
        assert RequestTrace.load(path) == first

    def test_run_trace_is_bit_reproducible(self, simulation):
        trace = RequestTrace.generate(
            simulation.catalog,
            seed=7,
            duration_seconds=15.0,
            requests_per_second=3.0,
            tenants=3,
        )
        faults = FaultPlan(seed=19, transient_rate=0.2, slow_rate=0.1)

        def run_once():
            service = make_service(
                simulation, retry=RetryPolicy(max_attempts=4), faults=faults
            )
            return run_trace(service, trace)

        first, second = run_once(), run_once()
        assert first.responses == second.responses
        assert first.summary() == second.summary()

    def test_report_percentiles_and_shed_rate(self, simulation):
        trace = RequestTrace.generate(
            simulation.catalog,
            seed=3,
            duration_seconds=10.0,
            requests_per_second=4.0,
            tenants=2,
        )
        service = make_service(simulation)
        report = run_trace(service, trace)
        assert report.status_counts["ok"] == len(report.completed)
        p50 = report.latency_percentile(50.0)
        p99 = report.latency_percentile(99.0)
        assert 0 < p50 <= p99
        assert report.shed_rate == pytest.approx(
            1.0 - len(report.completed) / len(report.responses)
        )

    def test_parity_failures_empty_on_honest_service(self, simulation):
        trace = RequestTrace.generate(
            simulation.catalog,
            seed=5,
            duration_seconds=8.0,
            requests_per_second=3.0,
            tenants=2,
        )
        service = make_service(simulation)
        report = run_trace(service, trace)
        assert report.completed
        assert report.parity_failures(fresh_modern_api(simulation)) == []
        # A corrupted reference is detected.
        broken = report.parity_failures(lambda request: (0.0,) * request.cost)
        assert len(broken) == len(report.completed)

    def test_hot_tenant_trace_sheds_hot_but_serves_cold(self, simulation):
        trace = RequestTrace.generate(
            simulation.catalog,
            seed=13,
            duration_seconds=10.0,
            requests_per_second=12.0,
            tenants=4,
            hot_tenant_share=0.7,
        )
        service = make_service(
            simulation,
            knobs=dict(
                tenant_requests_per_minute=240.0,
                tenant_burst=16,
                max_batch_cells=32,
                max_queue_cells=64,
            ),
        )
        report = run_trace(service, trace)
        shed_by_tenant: dict[str, int] = {}
        for response in report.responses:
            if not response.ok:
                tenant = response.request.tenant
                shed_by_tenant[tenant] = shed_by_tenant.get(tenant, 0) + 1
        served_tenants = {r.request.tenant for r in report.completed}
        # The hot tenant absorbs the overwhelming share of the shedding;
        # every cold tenant still gets served.
        total_shed = sum(shed_by_tenant.values())
        assert total_shed > 0
        assert shed_by_tenant.get("tenant-00", 0) / total_shed >= 0.8
        cold_tenants = {
            item.request.tenant
            for item in trace.requests
            if item.request.tenant != "tenant-00"
        }
        assert cold_tenants <= served_tenants


class TestServiceStats:
    def test_stats_snapshot_shape(self, simulation, interest_pool):
        service = make_service(simulation)
        service.submit(request_for(interest_pool))
        service.run_until_idle()
        stats = service.stats()
        assert stats["counters"]["submitted"] == 1
        assert stats["counters"]["completed"] == 1
        assert stats["queue_depth"] == 0
        tenant = stats["tenants"]["tenant-a"]
        assert tenant["breaker"]["state"] == "closed"
        assert tenant["bucket"]["burst"] == service.config.tenant_burst

    def test_wall_clock_policy_changes_only_backoff_jitter(
        self, simulation, interest_pool
    ):
        # The service consumes backoff *delays*; with a wall-clock policy
        # those are jittered but still elapse in virtual time, so the
        # service stays deterministic.
        faults = FaultPlan(seed=23, transient_rate=1.0, max_faults_per_task=1)

        def run_once():
            service = make_service(
                simulation,
                knobs=dict(default_timeout_seconds=300.0),
                retry=WallClockRetryPolicy(max_attempts=3, jitter_seed=77),
                faults=faults,
            )
            assert service.submit(request_for(interest_pool)) is None
            return service.run_until_idle()

        first, second = run_once(), run_once()
        assert first == second
        assert first[0].ok
