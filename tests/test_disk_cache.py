"""The build cache's disk tier: codecs, integrity, degradation, CLI.

Pins the disk-tier contract of :mod:`repro.cache` / :mod:`repro.io.artifacts`:

* **round-trips are exact** — catalog JSON and panel ``.npz`` artifacts
  decode dtype- and content-identical to what was encoded;
* **integrity failures rebuild** — corrupted, truncated, wrong-version or
  wrong-kind artifacts are misses: the builder runs, the bad file is
  republished, and nothing corrupt ever reaches a caller;
* **publication is atomic** — concurrent publishers of one key both
  succeed and readers never observe a partial artifact;
* **degradation is graceful** — an unusable root warns once and falls
  back to in-memory behaviour; ``depth="cache"`` fault plans chaos-test
  the same paths without perturbing results;
* **the CLI works end-to-end** — ``cache warm`` → ``cache info`` →
  ``cache clear``, with a warmed root making later builds bit-identical
  disk hydrations (including the process-global cache via
  ``REPRO_CACHE_ROOT``).
"""

from __future__ import annotations

import json
import os
import threading
import warnings

import pytest

from repro import build_simulation, quick_config
from repro.cache import (
    CACHE_ROOT_ENV,
    CACHE_SIZE_ENV,
    BuildCache,
    DiskCache,
    build_cache,
    reset_build_cache,
    resolve_cache_root,
    resolve_cache_size,
)
from repro.cli import main
from repro.errors import ArtifactError, ConfigurationError
from repro.faults import FaultPlan, guarded_call
from repro.io.artifacts import (
    ARTIFACT_FORMAT_VERSION,
    CATALOG_CODEC,
    PanelArtifactCodec,
)
from repro.pipeline import (
    build_catalog,
    build_panel,
    catalog_fingerprint,
    panel_fingerprint,
)
from repro.scenarios import ScenarioSpec, SweepRunner, manifest_path_for

FACTOR = 80


def small_config():
    return quick_config(factor=FACTOR)


def build_stages(cache: BuildCache):
    """(catalog, panel) for the small config through ``cache``."""
    config = small_config()
    catalog = build_catalog(config, seed=17, cache=cache)
    panel = build_panel(config, seed=17, catalog=catalog, cache=cache)
    return catalog, panel


@pytest.fixture
def warmed_disk(tmp_path):
    """A disk tier with the small config's catalog and panel published."""
    disk = DiskCache(tmp_path / "cache")
    build_stages(BuildCache(disk=disk))
    assert len(disk.artifact_paths()) == 2
    return disk


@pytest.fixture
def fresh_global_cache():
    """Isolate tests that point the process-global cache at an env root."""
    reset_build_cache()
    yield
    reset_build_cache()


class TestCodecRoundTrip:
    def test_catalog_round_trip_is_content_exact(self, tmp_path):
        catalog, _ = build_stages(BuildCache())
        path = tmp_path / "artifact.catalog.json"
        CATALOG_CODEC.encode(catalog, path)
        decoded = CATALOG_CODEC.decode(path)
        assert decoded.to_dicts() == catalog.to_dicts()

    def test_panel_round_trip_is_dtype_and_content_exact(self, tmp_path):
        catalog, panel = build_stages(BuildCache())
        codec = PanelArtifactCodec(catalog)
        path = tmp_path / "artifact.panel.npz"
        codec.encode(panel, path)
        decoded = codec.decode(path)
        original, hydrated = panel.columns, decoded.columns
        assert hydrated.content_equals(original)
        for name in (
            "user_ids",
            "country_index",
            "gender_index",
            "ages",
            "indptr",
            "interest_ids",
        ):
            assert getattr(hydrated, name).dtype == getattr(original, name).dtype
        assert hydrated.country_codes == original.country_codes
        assert decoded.catalog.to_dicts() == catalog.to_dicts()


class TestIntegrity:
    """Any unreadable or tampered artifact is a miss, never a bad load."""

    def _panel_path(self, disk: DiskCache) -> "Path":
        catalog, _ = build_stages(BuildCache())
        return disk.path_for(
            panel_fingerprint(small_config(), 17), PanelArtifactCodec(catalog)
        )

    def _rebuilds_cleanly(self, disk: DiskCache):
        """A fresh cache over ``disk`` must rebuild, not trust, the artifact."""
        reference_catalog, reference_panel = build_stages(BuildCache())
        cache = BuildCache(disk=disk)
        catalog, panel = build_stages(cache)
        info = cache.cache_info()
        assert panel.columns.content_equals(reference_panel.columns)
        assert catalog.to_dicts() == reference_catalog.to_dicts()
        assert info.disk_load_errors >= 1
        return info

    def test_corrupted_panel_rebuilds(self, warmed_disk):
        path = self._panel_path(warmed_disk)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        self._rebuilds_cleanly(warmed_disk)
        # The rebuild republished a good artifact over the corrupt one.
        catalog, _ = build_stages(BuildCache())
        PanelArtifactCodec(catalog).decode(path)

    def test_truncated_panel_rebuilds(self, warmed_disk):
        path = self._panel_path(warmed_disk)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        self._rebuilds_cleanly(warmed_disk)

    def test_wrong_version_rebuilds(self, warmed_disk):
        path = warmed_disk.path_for(
            catalog_fingerprint(small_config(), 17), CATALOG_CODEC
        )
        document = json.loads(path.read_text())
        document["format_version"] = ARTIFACT_FORMAT_VERSION + 1
        path.write_text(json.dumps(document))
        self._rebuilds_cleanly(warmed_disk)

    def test_tampered_payload_fails_the_digest(self, tmp_path):
        catalog, _ = build_stages(BuildCache())
        path = tmp_path / "artifact.catalog.json"
        CATALOG_CODEC.encode(catalog, path)
        document = json.loads(path.read_text())
        document["payload"]["interests"][0]["audience_size"] = 1
        path.write_text(json.dumps(document))
        with pytest.raises(ArtifactError, match="digest mismatch"):
            CATALOG_CODEC.decode(path)

    def test_wrong_kind_is_rejected(self, tmp_path):
        catalog, panel = build_stages(BuildCache())
        path = tmp_path / "artifact.catalog.json"
        CATALOG_CODEC.encode(catalog, path)
        document = json.loads(path.read_text())
        document["kind"] = "panel"
        path.write_text(json.dumps(document))
        with pytest.raises(ArtifactError, match="kind mismatch"):
            CATALOG_CODEC.decode(path)

    def test_absent_artifact_is_a_miss_not_an_error(self, tmp_path):
        cache = BuildCache(disk=DiskCache(tmp_path / "cache"))
        build_stages(cache)
        info = cache.cache_info()
        assert info.misses == 2
        assert info.disk_hits == 0
        assert info.disk_load_errors == 0
        assert info.disk_store_errors == 0

    def test_cleared_memory_rehydrates_from_disk(self, warmed_disk):
        cache = BuildCache(disk=warmed_disk)
        build_stages(cache)
        info = cache.cache_info()
        assert info.disk_hits == 2
        assert info.misses == 0
        cache.clear()
        build_stages(cache)
        assert cache.cache_info().disk_hits == 2


class TestAtomicPublication:
    def test_racing_publishers_both_succeed(self, tmp_path):
        disk = DiskCache(tmp_path / "cache")
        config = small_config()
        key = catalog_fingerprint(config, 17)
        barrier = threading.Barrier(2)
        results, errors = [], []

        def publish():
            cache = BuildCache(disk=disk)
            barrier.wait()
            try:
                results.append(
                    cache.get_or_build(
                        key,
                        lambda: build_catalog(config, seed=17),
                        codec=CATALOG_CODEC,
                    )
                )
                errors.append(cache.cache_info().disk_store_errors)
            except Exception as exc:  # pragma: no cover - fails the assert
                errors.append(exc)

        threads = [threading.Thread(target=publish) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 2
        assert results[0].to_dicts() == results[1].to_dicts()
        # Last-wins with identical content: the surviving file decodes and
        # no stray temp files are left behind.
        decoded = CATALOG_CODEC.decode(disk.path_for(key, CATALOG_CODEC))
        assert decoded.to_dicts() == results[0].to_dicts()
        assert disk.artifact_paths() == [disk.path_for(key, CATALOG_CODEC)]
        assert not list(disk.objects_dir.glob("*.tmp-*"))


class TestGracefulDegradation:
    def test_unusable_root_warns_once_and_stays_in_memory(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        # objects/ cannot be created under a regular file, whoever runs
        # the suite (chmod-based read-only roots are invisible to root).
        cache = BuildCache(disk=DiskCache(blocker / "cache"))
        reference_catalog, reference_panel = build_stages(BuildCache())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            catalog, panel = build_stages(cache)
        runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1
        assert "continuing in-memory only" in str(runtime[0].message)
        info = cache.cache_info()
        assert info.disk_store_errors == 2
        assert info.misses == 2
        assert panel.columns.content_equals(reference_panel.columns)
        assert catalog.to_dicts() == reference_catalog.to_dicts()
        # The memory tier still serves the artifacts it built.
        assert build_stages(cache)[1] is panel

    def test_cache_depth_chaos_degrades_to_rebuild(self, warmed_disk):
        plan = FaultPlan(
            seed=7, error_rate=1.0, depth="cache", max_faults_per_task=100
        )
        reference_catalog, reference_panel = build_stages(BuildCache())
        cache = BuildCache(disk=warmed_disk)

        (catalog, panel), _ = guarded_call(
            lambda _: build_stages(cache), None, index=0, faults=plan
        )
        info = cache.cache_info()
        # Every disk load and store faulted; the run fell back to a clean
        # rebuild with identical content.
        assert info.disk_hits == 0
        assert info.disk_load_errors == 2
        assert info.disk_store_errors == 2
        assert info.misses == 2
        assert panel.columns.content_equals(reference_panel.columns)
        assert catalog.to_dicts() == reference_catalog.to_dicts()
        # Outside the guarded call the same root still hydrates fine.
        fresh = BuildCache(disk=warmed_disk)
        build_stages(fresh)
        assert fresh.cache_info().disk_hits == 2

    def test_cache_depth_plans_reject_latency_kinds(self):
        with pytest.raises(ConfigurationError, match="error kinds only"):
            FaultPlan(seed=1, slow_rate=0.5, depth="cache")


class TestEnvironmentKnobs:
    def test_cache_size_env_bounds_the_global_cache(
        self, monkeypatch, fresh_global_cache
    ):
        monkeypatch.setenv(CACHE_SIZE_ENV, "2")
        assert build_cache().maxsize == 2

    def test_explicit_maxsize_ignores_the_env(self, monkeypatch):
        monkeypatch.setenv(CACHE_SIZE_ENV, "2")
        assert BuildCache(maxsize=5).maxsize == 5
        assert BuildCache().maxsize == 32

    @pytest.mark.parametrize("raw", ["zero", "0", "-3"])
    def test_invalid_cache_size_env_is_loud(self, monkeypatch, raw):
        monkeypatch.setenv(CACHE_SIZE_ENV, raw)
        with pytest.raises(ConfigurationError):
            resolve_cache_size()

    def test_cache_root_env_attaches_the_disk_tier(
        self, monkeypatch, tmp_path, fresh_global_cache
    ):
        monkeypatch.setenv(CACHE_ROOT_ENV, str(tmp_path / "root"))
        cache = build_cache()
        assert cache.disk is not None
        assert cache.disk.root == tmp_path / "root"

    def test_without_the_env_the_global_cache_is_memory_only(
        self, monkeypatch, fresh_global_cache
    ):
        monkeypatch.delenv(CACHE_ROOT_ENV, raising=False)
        assert build_cache().disk is None

    def test_resolve_cache_root_precedence(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ROOT_ENV, str(tmp_path / "env"))
        assert resolve_cache_root(tmp_path / "explicit") == tmp_path / "explicit"
        assert resolve_cache_root() == tmp_path / "env"
        monkeypatch.delenv(CACHE_ROOT_ENV)
        assert resolve_cache_root().name == "repro-facebook"


class TestManifestFolding:
    def _resolved(self, seed=17):
        spec = ScenarioSpec(
            name="fold",
            study="uniqueness",
            factor=FACTOR,
            seed=seed,
            strategies=("random",),
            probabilities=(0.9,),
            n_bootstrap=10,
        )
        return SweepRunner().resolve((spec,))

    def test_path_folds_under_the_cache_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ROOT_ENV, str(tmp_path / "root"))
        path = manifest_path_for(self._resolved())
        assert path.parent == tmp_path / "root" / "manifests"
        assert path.suffix == ".json"
        # Content-addressed: same grid, same path; different grid, different.
        assert path == manifest_path_for(self._resolved())
        assert path != manifest_path_for(self._resolved(seed=18))

    def test_explicit_root_wins(self, tmp_path):
        path = manifest_path_for(self._resolved(), root=tmp_path / "other")
        assert path.parent == tmp_path / "other" / "manifests"

    def test_bare_manifest_flag_folds_the_sweep_manifest(
        self, monkeypatch, tmp_path, capsys
    ):
        monkeypatch.setenv(CACHE_ROOT_ENV, str(tmp_path / "root"))
        spec_file = tmp_path / "grid.json"
        spec_file.write_text(
            json.dumps(
                {
                    "base": {
                        "name": "auto",
                        "study": "uniqueness",
                        "factor": FACTOR,
                        "seed": 3,
                        "strategies": ["random"],
                        "probabilities": [0.9],
                        "n_bootstrap": 10,
                    }
                }
            )
        )
        assert main(["scenario", "sweep", "--spec", str(spec_file), "--manifest"]) == 0
        manifests = DiskCache(tmp_path / "root").manifest_paths()
        assert len(manifests) == 1
        payload = json.loads(manifests[0].read_text())
        assert [e["status"] for e in payload["entries"]] == ["completed"]
        assert str(manifests[0]) in capsys.readouterr().out
        # A bare --resume now picks the same manifest back up.
        assert main(["scenario", "sweep", "--spec", str(spec_file), "--resume"]) == 0
        assert "1 resumed" in capsys.readouterr().out


class TestPrune:
    """LRU-by-mtime eviction keeps a disk root under a byte budget."""

    @pytest.fixture
    def aged_disk(self, tmp_path):
        """Three catalog artifacts with strictly increasing mtimes k0<k1<k2."""
        disk = DiskCache(tmp_path / "cache")
        catalog = build_catalog(small_config(), seed=17)
        base_ns = 1_700_000_000 * 10**9
        for step in range(3):
            key = f"prune-test-{step}"
            assert disk.store(key, CATALOG_CODEC, catalog)
            stamp = base_ns + step * 10**9
            os.utime(disk.path_for(key, CATALOG_CODEC), ns=(stamp, stamp))
        return disk

    def _names(self, disk):
        return sorted(path.name for path in disk.artifact_paths())

    def test_generous_budget_removes_nothing(self, aged_disk):
        stats = aged_disk.prune(max_bytes=10**12)
        assert stats == {
            "removed": 0,
            "freed_bytes": 0,
            "remaining_bytes": sum(
                p.stat().st_size for p in aged_disk.artifact_paths()
            ),
        }
        assert len(aged_disk.artifact_paths()) == 3

    def test_oldest_artifact_goes_first(self, aged_disk):
        total = sum(p.stat().st_size for p in aged_disk.artifact_paths())
        stats = aged_disk.prune(max_bytes=total - 1)
        assert stats["removed"] == 1
        assert stats["remaining_bytes"] <= total - 1
        survivors = self._names(aged_disk)
        assert not any("prune-test-0" in name for name in survivors)
        assert len(survivors) == 2

    def test_load_refreshes_recency(self, aged_disk):
        # A hit on the oldest artifact touches its mtime, so the next
        # prune evicts the *second*-oldest instead.
        status, artifact = aged_disk.load("prune-test-0", CATALOG_CODEC)
        assert status == "hit" and artifact is not None
        total = sum(p.stat().st_size for p in aged_disk.artifact_paths())
        aged_disk.prune(max_bytes=total - 1)
        survivors = self._names(aged_disk)
        assert any("prune-test-0" in name for name in survivors)
        assert not any("prune-test-1" in name for name in survivors)

    def test_zero_budget_empties_the_root(self, aged_disk):
        stats = aged_disk.prune(max_bytes=0)
        assert stats["removed"] == 3
        assert stats["remaining_bytes"] == 0
        assert aged_disk.artifact_paths() == []

    def test_negative_budget_is_loud(self, aged_disk):
        with pytest.raises(ConfigurationError):
            aged_disk.prune(max_bytes=-1)

    def test_inflight_temp_files_are_left_alone(self, aged_disk):
        # Temp files belong to in-flight stores; prune must not race them.
        temp = aged_disk.objects_dir / "whatever.json.tmp-123-456"
        temp.write_text("partial")
        aged_disk.prune(max_bytes=0)
        assert temp.is_file()

    def test_already_unlinked_artifact_counts_as_freed(self, aged_disk, monkeypatch):
        # A racing pruner (or clear) unlinking first is tolerated: its
        # bytes are gone either way, and the sweep carries on.
        from pathlib import Path

        real_unlink = Path.unlink

        def racing_unlink(self, *args, **kwargs):
            real_unlink(self)
            raise FileNotFoundError(str(self))

        monkeypatch.setattr(Path, "unlink", racing_unlink)
        stats = aged_disk.prune(max_bytes=0)
        monkeypatch.undo()
        assert stats["removed"] == 0  # every unlink "lost" its race
        assert stats["remaining_bytes"] == 0
        assert aged_disk.artifact_paths() == []


class TestCacheCli:
    def test_warm_info_clear_cycle(self, tmp_path, capsys):
        root = tmp_path / "root"
        assert main(["cache", "warm", "--root", str(root), "--factor", str(FACTOR)]) == 0
        out = capsys.readouterr().out
        assert "warmed 1 stage group(s): 2 artifact(s) built" in out

        assert main(["cache", "info", "--root", str(root)]) == 0
        out = capsys.readouterr().out
        assert "artifacts : 2" in out
        assert "catalog: 1" in out
        assert "panel: 1" in out

        # Warming again is a no-op: everything is already on disk.
        assert main(["cache", "warm", "--root", str(root), "--factor", str(FACTOR)]) == 0
        assert "0 artifact(s) built, 2 already on disk" in capsys.readouterr().out

        assert main(["cache", "clear", "--root", str(root)]) == 0
        assert "removed 2 file(s)" in capsys.readouterr().out
        assert main(["cache", "info", "--root", str(root)]) == 0
        assert "artifacts : 0" in capsys.readouterr().out

    def test_prune_cycle(self, tmp_path, capsys):
        root = tmp_path / "root"
        assert main(["cache", "warm", "--root", str(root), "--factor", str(FACTOR)]) == 0
        capsys.readouterr()

        # A generous budget is a no-op.
        big = str(10**12)
        assert main(["cache", "prune", "--root", str(root), "--max-bytes", big]) == 0
        out = capsys.readouterr().out
        assert "pruned 0 artifact(s)" in out
        assert "budget in use" in out

        # A zero budget empties the root; info agrees.
        assert main(["cache", "prune", "--root", str(root), "--max-bytes", "0"]) == 0
        assert "pruned 2 artifact(s)" in capsys.readouterr().out
        assert main(["cache", "info", "--root", str(root)]) == 0
        assert "artifacts : 0" in capsys.readouterr().out

    def test_prune_requires_a_budget(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "prune", "--root", str(tmp_path / "root")])

    def test_warm_grid_dedups_shared_stages(self, tmp_path, capsys):
        root = tmp_path / "root"
        exit_code = main(
            [
                "cache", "warm", "uniqueness-table1",
                "--factor", str(FACTOR), "--seed", "17",
                "--grid", "strategies=least_popular,random",
                "--root", str(root),
            ]
        )
        assert exit_code == 0
        # Two grid rows differing only in strategies share one stage group.
        assert "warmed 1 stage group(s)" in capsys.readouterr().out

    def test_unwritable_root_exits_1_with_warning(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            exit_code = main(
                [
                    "cache", "warm",
                    "--root", str(blocker / "cache"),
                    "--factor", str(FACTOR),
                ]
            )
        assert exit_code == 1
        assert "could not be published" in capsys.readouterr().err


class TestDiskHydratedBitIdentity:
    def test_hydrated_simulation_reproduces_the_in_memory_run(
        self, monkeypatch, tmp_path, fresh_global_cache
    ):
        config = small_config()
        plain = build_simulation(config, seed=17)
        plain_report = plain.uniqueness_model().estimate(
            plain.strategies()[1], probabilities=(0.9,)
        )

        root = tmp_path / "root"
        warm = BuildCache(disk=DiskCache(root))
        build_simulation(config, seed=17, cache=warm)
        assert warm.cache_info().disk_store_errors == 0

        monkeypatch.setenv(CACHE_ROOT_ENV, str(root))
        reset_build_cache()
        cache = build_cache()
        hydrated = build_simulation(config, seed=17, cache=cache)
        info = cache.cache_info()
        assert info.disk_hits == 2
        assert info.misses == 0
        assert hydrated.panel.columns.content_equals(plain.panel.columns)
        assert hydrated.catalog.to_dicts() == plain.catalog.to_dicts()
        hydrated_report = hydrated.uniqueness_model().estimate(
            hydrated.strategies()[1], probabilities=(0.9,)
        )
        assert repr(hydrated_report.estimates) == repr(plain_report.estimates)
