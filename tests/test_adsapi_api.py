"""Tests for the AdsManagerAPI facade."""

from __future__ import annotations

import pytest

from repro.adsapi import AdsManagerAPI, TargetingSpec
from repro.config import PlatformConfig
from repro.countermeasures import InterestCapRule
from repro.errors import (
    AccountSuspendedError,
    CampaignRejectedError,
    RateLimitExceededError,
    TargetingValidationError,
)
from repro.reach import country_codes
from repro.simclock import SimClock


def _single_interest_spec(catalog, index: int = 0) -> TargetingSpec:
    interest = list(catalog)[index]
    return TargetingSpec.for_interests([interest.interest_id])


class TestEstimateReach:
    def test_reports_floored_value_for_tiny_audiences(self, reach_model):
        api = AdsManagerAPI(reach_model, platform=PlatformConfig(reach_floor=1_000))
        rarest = reach_model.catalog.rarest(3)
        spec = TargetingSpec.for_interests([i.interest_id for i in rarest])
        estimate = api.estimate_reach(spec)
        assert estimate.potential_reach >= 1_000

    def test_single_interest_reach_close_to_catalog_audience(self, modern_api, catalog):
        interest = catalog.most_popular(1)[0]
        estimate = modern_api.estimate_reach(
            TargetingSpec.for_interests([interest.interest_id])
        )
        assert estimate.potential_reach == pytest.approx(
            interest.audience_size, rel=0.5
        )

    def test_adding_interests_never_increases_reported_reach(self, modern_api, panel):
        user = max(panel.users, key=lambda u: u.interest_count)
        previous = None
        for n in range(1, 6):
            spec = TargetingSpec.for_interests(user.interest_ids[:n])
            reach = modern_api.estimate_reach(spec).potential_reach
            if previous is not None:
                assert reach <= previous
            previous = reach

    def test_legacy_platform_requires_locations(self, legacy_api, catalog):
        with pytest.raises(TargetingValidationError):
            legacy_api.estimate_reach(_single_interest_spec(catalog))

    def test_legacy_platform_accepts_50_country_query(self, legacy_api, catalog):
        interest = list(catalog)[0]
        spec = TargetingSpec.for_interests(
            [interest.interest_id], locations=country_codes()
        )
        estimate = legacy_api.estimate_reach(spec)
        assert estimate.potential_reach >= legacy_api.platform.reach_floor

    def test_counters_increment(self, modern_api, catalog):
        before = modern_api.call_stats().reach_estimates
        modern_api.estimate_reach(_single_interest_spec(catalog))
        assert modern_api.call_stats().reach_estimates == before + 1

    def test_suspended_account_cannot_query(self, modern_api, catalog):
        modern_api.account.suspend(at_hours=0.0)
        with pytest.raises(AccountSuspendedError):
            modern_api.estimate_reach(_single_interest_spec(catalog))


class TestRateLimiting:
    def test_auto_wait_advances_the_simulated_clock(self, reach_model, catalog):
        platform = PlatformConfig(rate_limit_requests_per_minute=60, rate_limit_burst=2)
        clock = SimClock()
        api = AdsManagerAPI(reach_model, platform=platform, clock=clock, auto_wait=True)
        spec = _single_interest_spec(catalog)
        for _ in range(5):
            api.estimate_reach(spec)
        assert clock.now() > 0.0
        assert api.call_stats().rate_limited > 0

    def test_without_auto_wait_the_error_is_raised(self, reach_model, catalog):
        platform = PlatformConfig(rate_limit_requests_per_minute=60, rate_limit_burst=1)
        api = AdsManagerAPI(
            reach_model, platform=platform, clock=SimClock(), auto_wait=False
        )
        spec = _single_interest_spec(catalog)
        api.estimate_reach(spec)
        with pytest.raises(RateLimitExceededError):
            api.estimate_reach(spec)


class TestCampaignAuthorization:
    def test_narrow_audience_is_approved_with_warning(self, modern_api, panel):
        user = max(panel.users, key=lambda u: u.interest_count)
        spec = TargetingSpec.for_interests(user.interest_ids[:22])
        decision = modern_api.authorize_campaign(spec)
        assert decision.approved
        assert decision.has_warnings
        assert modern_api.account.campaigns_launched == 1

    def test_countermeasure_rule_rejects_campaign(self, modern_api, panel):
        user = max(panel.users, key=lambda u: u.interest_count)
        modern_api.policy.rules.append(InterestCapRule(max_interests=9))
        try:
            spec = TargetingSpec.for_interests(user.interest_ids[:22])
            with pytest.raises(CampaignRejectedError):
                modern_api.authorize_campaign(spec)
            assert modern_api.call_stats().campaigns_rejected == 1
        finally:
            modern_api.policy.rules.clear()

    def test_audience_warnings_helper(self, modern_api, panel):
        user = max(panel.users, key=lambda u: u.interest_count)
        spec = TargetingSpec.for_interests(user.interest_ids[:20])
        warnings = modern_api.audience_warnings(spec)
        assert warnings


class TestCustomAudienceTargeting:
    def test_custom_audience_reach_uses_active_size(self, modern_api):
        modern_api.create_custom_audience(
            ["a@example.com"],
            matched_user_ids=range(150),
            active_user_ids=range(120),
            audience_id="ca_test",
        )
        spec = TargetingSpec(custom_audience_id="ca_test")
        estimate = modern_api.estimate_reach(spec)
        # 120 active users is below the 1,000-user floor, so the floor shows.
        assert estimate.potential_reach == modern_api.platform.reach_floor
        assert estimate.floored
