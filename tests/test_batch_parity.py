"""Batch/scalar parity for the vectorised reach pipeline.

The batched entry points (``prefix_audiences``, ``audience_for_batch``,
``estimate_reach_batch``, ``fit_vas_many``, the batched collector) are
required to return **bit-identical** results to their scalar counterparts —
they share the same kernels, including the counter-based jitter stream.
These property-style tests pin that contract, plus the monotonicity
invariants both paths must uphold.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adsapi import AdsManagerAPI, TargetingSpec
from repro.catalog import InterestCatalog
from repro.config import CatalogConfig, PlatformConfig, ReachModelConfig
from repro.core import (
    AudienceSizeCollector,
    LeastPopularSelection,
    RandomSelection,
    bootstrap_cutpoints,
)
from repro.core.fitting import fit_vas, fit_vas_many
from repro.core.quantiles import AudienceSamples
from repro.errors import InsufficientDataError, ModelError
from repro.reach import StatisticalReachModel, country_codes
from repro.simclock import SimClock


@pytest.fixture(scope="module")
def model():
    catalog = InterestCatalog.generate(CatalogConfig(n_interests=600, seed=37))
    return StatisticalReachModel(catalog, ReachModelConfig(seed=37))


@pytest.fixture(scope="module")
def id_pool(model):
    rng = np.random.default_rng(5)
    ids = model.catalog.interest_ids
    return [int(i) for i in rng.choice(ids, size=40, replace=False)]


class TestPrefixKernelParity:
    def test_prefix_audiences_match_scalar_queries(self, model, id_pool):
        for locations in (None, ("US", "ES"), tuple(country_codes())):
            ordered = id_pool[:20]
            batch = model.prefix_audiences(ordered, locations)
            scalar = np.array(
                [
                    model.audience_for(ordered[: k + 1], locations)
                    for k in range(len(ordered))
                ]
            )
            assert np.array_equal(batch, scalar)

    def test_prefix_intersections_match_scalar(self, model, id_pool):
        ordered = id_pool[:15]
        batch = model.prefix_intersection_probabilities(ordered)
        scalar = np.array(
            [model.intersection_probability(ordered[: k + 1]) for k in range(15)]
        )
        assert np.array_equal(batch, scalar)

    def test_prefix_audiences_non_increasing(self, model, id_pool):
        audiences = model.prefix_audiences(id_pool[:25])
        assert np.all(np.diff(audiences) <= 1e-9)
        assert np.all(audiences >= 0.0)

    def test_full_set_value_is_order_independent(self, model, id_pool):
        # Identical order is exactly reproducible; permutations agree to
        # floating-point rounding (the log-sum accumulates in query order,
        # only the jitter seed is exactly order-independent).
        ordered = id_pool[:12]
        assert model.audience_for(ordered) == model.audience_for(ordered)
        backward = model.audience_for(list(reversed(ordered)))
        assert model.audience_for(ordered) == pytest.approx(backward, rel=1e-9)
        from repro.reach.jitter import combination_seed

        forward_seed = combination_seed(np.asarray(ordered), model._jitter_key)
        backward_seed = combination_seed(
            np.asarray(ordered[::-1]), model._jitter_key
        )
        assert forward_seed == backward_seed

    def test_truncated_call_is_a_prefix_of_the_full_call(self, model, id_pool):
        full = model.prefix_audiences(id_pool[:25])
        truncated = model.prefix_audiences(id_pool[:10])
        assert np.array_equal(full[:10], truncated)


class TestAudienceForBatch:
    def test_arbitrary_combinations_match_looped_scalar(self, model, id_pool):
        rng = np.random.default_rng(11)
        combos = [
            tuple(rng.choice(id_pool, size=size, replace=False).tolist())
            for size in (1, 7, 3, 25, 2, 14)
        ]
        for combine in ("and", "or"):
            batch = model.audience_for_batch(combos, ("MX",), combine=combine)
            scalar = [
                model.audience_for(c, ("MX",), combine=combine) for c in combos
            ]
            assert np.array_equal(batch, np.array(scalar))

    def test_prefix_chains_inside_a_batch(self, model, id_pool):
        ordered = id_pool[:9]
        combos = [tuple(ordered[:k]) for k in range(1, 10)]
        combos += [tuple(id_pool[9:12])]  # breaks the chain
        combos += [tuple(id_pool[12:15]), tuple(id_pool[12:16])]  # new chain
        batch = model.audience_for_batch(combos)
        scalar = [model.audience_for(c) for c in combos]
        assert np.array_equal(batch, np.array(scalar))

    def test_protocol_default_matches_statistical_backend(self, id_pool, model):
        from repro.reach.backend import ReachBackend

        combos = [tuple(id_pool[:k]) for k in range(1, 6)]
        fallback = ReachBackend.audience_for_batch(model, combos)
        assert np.array_equal(fallback, model.audience_for_batch(combos))
        fallback_prefix = ReachBackend.prefix_audiences(model, id_pool[:6])
        assert np.array_equal(fallback_prefix, model.prefix_audiences(id_pool[:6]))


class TestEstimateReachBatch:
    @pytest.fixture()
    def api(self, model):
        return AdsManagerAPI(
            model, platform=PlatformConfig.legacy_2017(), clock=SimClock()
        )

    def test_batch_equals_looped_estimates(self, api, id_pool):
        locations = country_codes()
        specs = [
            TargetingSpec.for_interests(id_pool[:k], locations=locations)
            for k in range(1, 26)
        ]
        batched = api.estimate_reach_batch(specs)
        looped = [api.estimate_reach(spec) for spec in specs]
        assert list(batched) == looped

    def test_floor_respected_on_both_paths(self, api, id_pool):
        locations = ("AR",)
        specs = [
            TargetingSpec.for_interests(id_pool[:k], locations=locations)
            for k in range(1, 26)
        ]
        for estimate in api.estimate_reach_batch(specs):
            assert estimate.potential_reach >= api.platform.reach_floor
        for spec in specs:
            assert api.estimate_reach(spec).potential_reach >= api.platform.reach_floor

    def test_rate_limit_and_counter_accounting_match(self, model, id_pool):
        locations = ("US",)
        specs = [
            TargetingSpec.for_interests(id_pool[:k], locations=locations)
            for k in range(1, 11)
        ]
        batched_api = AdsManagerAPI(
            model, platform=PlatformConfig.legacy_2017(), clock=SimClock()
        )
        looped_api = AdsManagerAPI(
            model, platform=PlatformConfig.legacy_2017(), clock=SimClock()
        )
        batched_api.estimate_reach_batch(specs)
        for spec in specs:
            looped_api.estimate_reach(spec)
        assert batched_api.call_stats() == looped_api.call_stats()

    def test_empty_batch(self, api):
        assert api.estimate_reach_batch([]) == ()


class TestCollectorParity:
    @pytest.fixture(scope="class")
    def stack(self, simulation):
        def fresh_api():
            return AdsManagerAPI(
                simulation.reach_model,
                platform=PlatformConfig.legacy_2017(),
                clock=SimClock(),
            )

        return simulation, fresh_api

    @pytest.mark.parametrize("strategy_seed", [None, 13])
    def test_batched_and_scalar_matrices_identical(self, stack, strategy_seed):
        simulation, fresh_api = stack
        strategy = (
            LeastPopularSelection()
            if strategy_seed is None
            else RandomSelection(seed=strategy_seed)
        )
        kwargs = dict(max_interests=8, locations=country_codes())
        batched = AudienceSizeCollector(fresh_api(), simulation.panel, **kwargs)
        scalar = AudienceSizeCollector(fresh_api(), simulation.panel, **kwargs)
        batched_samples = batched.collect(strategy)
        scalar_samples = scalar.collect(strategy, batch=False)
        assert np.array_equal(
            batched_samples.matrix, scalar_samples.matrix, equal_nan=True
        )
        assert batched_samples.user_ids == scalar_samples.user_ids

    def test_collect_for_users_preserves_requested_order(self, stack):
        simulation, fresh_api = stack
        collector = AudienceSizeCollector(
            fresh_api(), simulation.panel, max_interests=4, locations=country_codes()
        )
        wanted = [user.user_id for user in list(simulation.panel)[:6]]
        reversed_ids = list(reversed(wanted))
        samples = collector.collect_for_users(LeastPopularSelection(), reversed_ids)
        assert list(samples.user_ids) == reversed_ids

    def test_collect_for_users_collapses_duplicates(self, stack):
        simulation, fresh_api = stack
        collector = AudienceSizeCollector(
            fresh_api(), simulation.panel, max_interests=4, locations=country_codes()
        )
        first = list(simulation.panel)[0].user_id
        samples = collector.collect_for_users(
            LeastPopularSelection(), [first, first, first]
        )
        assert samples.n_users == 1


class TestFitVasManyParity:
    @pytest.fixture(scope="class")
    def matrix(self) -> np.ndarray:
        rng = np.random.default_rng(23)
        base = 10.0 ** (7.7 - 7.0 * np.log10(np.arange(1, 26) + 1.0))
        rows = base[None, :] * 10.0 ** rng.normal(0.0, 0.5, size=(80, 25))
        rows = np.maximum(rows, 20.0)
        rows[5, 18:] = np.nan  # user with fewer interests
        rows[11, :] = 20.0  # fully floored replicate -> too few points
        return rows

    def test_rows_match_scalar_fits_exactly(self, matrix):
        batch = fit_vas_many(matrix, floor=20)
        for row in range(matrix.shape[0]):
            try:
                fit = fit_vas(matrix[row], floor=20)
            except (InsufficientDataError, ModelError):
                assert np.isnan(batch.cutpoints[row])
                continue
            assert fit.slope_a == batch.slope_a[row]
            assert fit.intercept_b == batch.intercept_b[row]
            assert fit.r_squared == batch.r_squared[row]
            assert fit.n_points == batch.n_points[row]
            assert fit.cutpoint == batch.cutpoints[row]

    def test_single_row_shape(self, matrix):
        batch = fit_vas_many(matrix[0], floor=20)
        assert batch.n_fits == 1

    def test_invalid_floor_rejected(self, matrix):
        with pytest.raises(ModelError):
            fit_vas_many(matrix, floor=0)


class TestMaskedColumnQuantiles:
    def test_matches_nanpercentile_bitwise(self):
        from repro.core.quantiles import masked_column_quantiles

        rng = np.random.default_rng(17)
        for _ in range(25):
            shape = (
                int(rng.integers(1, 5)),
                int(rng.integers(1, 30)),
                int(rng.integers(1, 8)),
            )
            stack = rng.normal(0.0, 50.0, size=shape)
            stack[rng.random(size=shape) < rng.random() * 0.8] = np.nan
            qs = sorted(rng.uniform(1.0, 99.0, size=3))
            ours = masked_column_quantiles(stack, qs)
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                reference = np.stack(
                    [
                        np.nanpercentile(stack[i], qs, axis=0)
                        for i in range(shape[0])
                    ],
                    axis=1,
                ).reshape(len(qs), shape[0], shape[2])
            assert np.array_equal(ours, reference, equal_nan=True)

    def test_rejects_non_3d_input(self):
        from repro.core.quantiles import masked_column_quantiles

        with pytest.raises(ModelError):
            masked_column_quantiles(np.zeros((3, 4)), [50.0])


class TestBootstrapVectorised:
    def test_deterministic_and_chunking_invariant(self):
        rng = np.random.default_rng(3)
        base = 10.0 ** (7.5 - 6.5 * np.log10(np.arange(1, 26) + 1.0))
        matrix = np.maximum(
            base[None, :] * 10.0 ** rng.normal(0.0, 0.4, size=(60, 25)), 20.0
        )
        samples = AudienceSamples(matrix=matrix, floor=20)
        first = bootstrap_cutpoints(samples, [50.0, 90.0], n_bootstrap=50, seed=9)
        second = bootstrap_cutpoints(samples, [50.0, 90.0], n_bootstrap=50, seed=9)
        chunked = bootstrap_cutpoints(
            samples, [50.0, 90.0], n_bootstrap=50, seed=9, chunk_size=7
        )
        for q in (50.0, 90.0):
            assert np.array_equal(first[q], second[q], equal_nan=True)
            assert np.array_equal(first[q], chunked[q], equal_nan=True)
            assert first[q].shape == (50,)
            assert np.isfinite(first[q]).sum() > 40
