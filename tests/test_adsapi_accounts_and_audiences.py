"""Tests for ad accounts, platform policy and Custom Audiences."""

from __future__ import annotations

import pytest

from repro.adsapi import (
    AccountStatus,
    AdAccount,
    CustomAudienceManager,
    PlatformPolicy,
    TargetingSpec,
    hash_pii,
)
from repro.config import PlatformConfig
from repro.errors import AccountSuspendedError, AdsApiError, CustomAudienceError


class TestAdAccount:
    def test_new_account_is_active(self):
        account = AdAccount()
        assert account.is_active
        account.ensure_active()

    def test_charge_accumulates(self):
        account = AdAccount()
        account.charge(10.0)
        account.charge(2.5)
        assert account.total_spend_eur == pytest.approx(12.5)

    def test_negative_charge_rejected(self):
        with pytest.raises(AdsApiError):
            AdAccount().charge(-1)

    def test_flag_then_suspend(self):
        account = AdAccount()
        account.flag("suspicious campaigns", at_hours=100.0)
        assert account.status is AccountStatus.FLAGGED
        account.suspend(at_hours=196.0)
        assert account.status is AccountStatus.SUSPENDED
        assert not account.is_active
        with pytest.raises(AccountSuspendedError):
            account.ensure_active()

    def test_flagging_a_suspended_account_is_a_noop(self):
        account = AdAccount()
        account.suspend(at_hours=1.0)
        account.flag("late flag", at_hours=2.0)
        assert account.status is AccountStatus.SUSPENDED


class TestPlatformPolicy:
    def test_narrow_audience_warning(self):
        policy = PlatformPolicy(platform=PlatformConfig())
        warnings = policy.review_audience(TargetingSpec.for_interests([1]), raw_audience=12)
        assert any(w.code == "audience_too_narrow" for w in warnings)

    def test_no_warning_for_large_audiences_with_few_interests(self):
        policy = PlatformPolicy(platform=PlatformConfig())
        warnings = policy.review_audience(
            TargetingSpec.for_interests([1, 2]), raw_audience=5_000_000
        )
        assert warnings == ()

    def test_unusual_interest_count_warning(self):
        policy = PlatformPolicy(platform=PlatformConfig())
        spec = TargetingSpec.for_interests(list(range(15)))
        warnings = policy.review_audience(spec, raw_audience=10_000_000)
        assert any(w.code == "unusual_interest_count" for w in warnings)

    def test_authorize_without_rules_always_approves(self):
        policy = PlatformPolicy(platform=PlatformConfig())
        decision = policy.authorize_campaign(
            TargetingSpec.for_interests(list(range(22))), raw_audience=1.0
        )
        assert decision.approved
        assert decision.has_warnings

    def test_post_campaign_review_suspends_after_delay(self):
        platform = PlatformConfig(suspension_review_delay_hours=96.0)
        policy = PlatformPolicy(platform=platform)
        account = AdAccount()
        suspended = policy.post_campaign_review(
            account, [50_000.0, 1.0, 3.0], review_time_hours=136.0
        )
        assert suspended
        assert account.status is AccountStatus.SUSPENDED
        assert account.suspended_at_hours == pytest.approx(136.0 + 96.0)

    def test_post_campaign_review_ignores_broad_campaigns(self):
        policy = PlatformPolicy(platform=PlatformConfig())
        account = AdAccount()
        assert not policy.post_campaign_review(
            account, [10_000.0, 90_000.0], review_time_hours=10.0
        )
        assert account.is_active


class TestCustomAudiences:
    def test_hash_pii_is_deterministic_and_normalising(self):
        assert hash_pii(" Alice@Example.com ") == hash_pii("alice@example.com")
        assert hash_pii("alice@example.com") != hash_pii("bob@example.com")

    def test_create_requires_100_matched_users(self):
        manager = CustomAudienceManager(platform=PlatformConfig())
        with pytest.raises(CustomAudienceError):
            manager.create(["a@example.com"], matched_user_ids=range(99))

    def test_create_with_exactly_100_users(self):
        manager = CustomAudienceManager(platform=PlatformConfig())
        audience = manager.create(["a@example.com"], matched_user_ids=range(100))
        assert audience.matched_size == 100
        assert audience.active_size == 100
        assert audience.audience_id in manager

    def test_single_active_user_loophole(self):
        """The literature's trick: 100 matched users, only one reachable."""
        manager = CustomAudienceManager(platform=PlatformConfig())
        audience = manager.create(
            ["x@example.com"],
            matched_user_ids=range(100),
            active_user_ids=[7],
        )
        assert audience.matched_size == 100
        assert audience.active_size == 1

    def test_active_users_must_be_matched(self):
        manager = CustomAudienceManager(platform=PlatformConfig())
        with pytest.raises(CustomAudienceError):
            manager.create(
                ["x@example.com"],
                matched_user_ids=range(100),
                active_user_ids=[500],
            )

    def test_duplicate_audience_id_rejected(self):
        manager = CustomAudienceManager(platform=PlatformConfig())
        manager.create(["a"], matched_user_ids=range(100), audience_id="ca_1")
        with pytest.raises(CustomAudienceError):
            manager.create(["b"], matched_user_ids=range(100), audience_id="ca_1")

    def test_get_unknown_audience_raises(self):
        manager = CustomAudienceManager(platform=PlatformConfig())
        with pytest.raises(CustomAudienceError):
            manager.get("ca_missing")
