"""Tests for the nanotargeting experiment (Section 5 / Table 2)."""

from __future__ import annotations

import pytest

from repro.adsapi import AdsManagerAPI
from repro.config import ExperimentConfig, PlatformConfig
from repro.core import NanotargetingExperiment, SuccessValidation
from repro.delivery import ClickLog, DeliveryEngine
from repro.errors import ModelError
from repro.simclock import SimClock


@pytest.fixture(scope="module")
def experiment_report(simulation):
    """One full experiment run shared by the assertions below."""
    api = AdsManagerAPI(
        simulation.reach_model, platform=PlatformConfig.modern_2020(), clock=SimClock()
    )
    engine = DeliveryEngine(simulation.catalog, seed=13)
    experiment = NanotargetingExperiment(
        api, engine, ExperimentConfig(seed=77), click_log=ClickLog(), seed=77
    )
    report = experiment.run(candidates=simulation.panel.users)
    return api, experiment, report


class TestExperimentPlanning:
    def test_selects_three_targets_with_enough_interests(self, simulation):
        api = AdsManagerAPI(
            simulation.reach_model, platform=PlatformConfig.modern_2020(), clock=SimClock()
        )
        engine = DeliveryEngine(simulation.catalog, seed=1)
        experiment = NanotargetingExperiment(api, engine, ExperimentConfig(seed=3))
        targets = experiment.select_targets(simulation.panel.users)
        assert len(targets) == 3
        assert all(user.interest_count >= 22 for user in targets)

    def test_select_targets_fails_without_candidates(self, simulation):
        api = AdsManagerAPI(
            simulation.reach_model, platform=PlatformConfig.modern_2020(), clock=SimClock()
        )
        engine = DeliveryEngine(simulation.catalog, seed=1)
        experiment = NanotargetingExperiment(api, engine, ExperimentConfig(seed=3))
        poor_candidates = [u for u in simulation.panel.users if u.interest_count < 22][:2]
        with pytest.raises(ModelError):
            experiment.select_targets(poor_candidates)

    def test_interest_sets_are_nested(self, simulation):
        api = AdsManagerAPI(
            simulation.reach_model, platform=PlatformConfig.modern_2020(), clock=SimClock()
        )
        engine = DeliveryEngine(simulation.catalog, seed=1)
        experiment = NanotargetingExperiment(api, engine, ExperimentConfig(seed=3))
        target = max(simulation.panel.users, key=lambda u: u.interest_count)
        sets = experiment.plan_interest_sets(target)
        assert set(sets) == {5, 7, 9, 12, 18, 20, 22}
        assert set(sets[5]) <= set(sets[12]) <= set(sets[22])
        assert set(sets[22]) <= set(target.interest_ids)

    def test_campaign_objects_follow_the_paper_setup(self, simulation):
        api = AdsManagerAPI(
            simulation.reach_model, platform=PlatformConfig.modern_2020(), clock=SimClock()
        )
        engine = DeliveryEngine(simulation.catalog, seed=1)
        experiment = NanotargetingExperiment(api, engine, ExperimentConfig(seed=3))
        target = max(simulation.panel.users, key=lambda u: u.interest_count)
        campaign = experiment.build_campaign(target, "User 1", target.interest_ids[:12])
        assert campaign.spec.is_worldwide
        assert campaign.interest_count == 12
        assert campaign.schedule.total_active_hours == pytest.approx(33.0)
        assert campaign.daily_budget_eur == pytest.approx(10.0)

    def test_run_requires_targets_or_candidates(self, simulation):
        api = AdsManagerAPI(
            simulation.reach_model, platform=PlatformConfig.modern_2020(), clock=SimClock()
        )
        engine = DeliveryEngine(simulation.catalog, seed=1)
        experiment = NanotargetingExperiment(api, engine, ExperimentConfig(seed=3))
        with pytest.raises(ModelError):
            experiment.run()


class TestExperimentResults:
    def test_21_campaigns_are_run(self, experiment_report):
        _, _, report = experiment_report
        assert report.n_campaigns == 21

    def test_success_requires_all_three_conditions(self):
        assert SuccessValidation(True, True, True).nanotargeted
        assert not SuccessValidation(False, True, True).nanotargeted
        assert not SuccessValidation(True, False, True).nanotargeted
        assert not SuccessValidation(True, True, False).nanotargeted

    def test_high_interest_campaigns_succeed_more_often(self, experiment_report):
        _, _, report = experiment_report
        rates = report.success_rate_by_interests()
        low = (rates[5] + rates[7]) / 2
        high = (rates[20] + rates[22]) / 2
        assert high > low
        assert high >= 0.5

    def test_five_interest_campaigns_never_nanotarget(self, experiment_report):
        _, _, report = experiment_report
        assert report.success_rate_by_interests()[5] == 0.0

    def test_successful_campaigns_reach_exactly_one_user(self, experiment_report):
        _, _, report = experiment_report
        for record in report.successful_records:
            assert record.outcome.metrics.reached == 1
            assert record.outcome.metrics.seen

    def test_successful_campaigns_are_cheap(self, experiment_report):
        _, _, report = experiment_report
        assert report.successful_cost_eur() <= 1.0
        assert report.total_cost_eur() >= report.successful_cost_eur()

    def test_reactive_account_suspension_happens_after_the_experiment(
        self, experiment_report
    ):
        api, _, report = experiment_report
        if report.success_count > 0:
            assert report.account_suspended
            assert not api.account.is_active
            # The suspension is reactive: it happens after the campaigns end.
            assert api.account.suspended_at_hours > 136.0

    def test_table_rows_have_the_paper_columns(self, experiment_report):
        _, _, report = experiment_report
        rows = report.table_rows()
        assert len(rows) == 21
        expected_keys = {
            "target", "interests", "seen", "reached", "impressions",
            "tfi", "cost", "clicks", "unique_click_ips", "nanotargeted",
        }
        assert expected_keys <= set(rows[0])

    def test_records_for_target_groups_seven_campaigns(self, experiment_report):
        _, _, report = experiment_report
        assert len(report.records_for_target("User 1")) == 7

    def test_click_log_only_has_target_clicks_for_successes(self, experiment_report):
        _, experiment, report = experiment_report
        for record in report.successful_records:
            entries = experiment.click_log.entries_for(record.campaign.campaign_id)
            assert entries
            assert all(entry.is_target for entry in entries)
