"""Shared simulation/API builders for the test suite.

Importable from any test module (``from _builders import ...``) and wired
into fixtures by ``tests/conftest.py``.  Lives outside ``conftest.py``
because that module name is claimed per-directory by pytest (the
``benchmarks/`` conftest would shadow it in a whole-repo run).

Build sharing: :func:`build_cached_simulation` threads one suite-wide
:class:`repro.cache.BuildCache` into :func:`repro.pipeline.build_simulation`,
so every test compiling the same (config, seed) shares the catalog and
panel stages by content fingerprint while the mutable per-run shell — APIs,
clocks, rate limiters, delivery engine, click log — is always fresh; no
test observes another test's run state.
"""

from __future__ import annotations

from repro import PlatformConfig, build_simulation, quick_config
from repro.adsapi import AdsManagerAPI
from repro.cache import BuildCache
from repro.config import ReproductionConfig
from repro.simclock import SimClock

#: One build cache for the whole session: catalog/panel stages are shared
#: across every test that compiles the same fingerprints.
SUITE_BUILD_CACHE = BuildCache(maxsize=32)


def build_cached_simulation(
    config: ReproductionConfig | None = None, *, seed: int | None = None
):
    """Compile a simulation through the suite-wide fingerprint-keyed cache.

    Bit-identical to ``build_simulation(config, seed=seed)`` (pinned by
    ``tests/test_build_cache.py``) but catalog and panel builds are shared
    across the suite.  The returned simulation's mutable shell is fresh.
    """
    return build_simulation(
        config or quick_config(factor=50), seed=seed, cache=SUITE_BUILD_CACHE
    )


def fresh_legacy_api(simulation) -> AdsManagerAPI:
    """A fresh Ads API (own clock + token bucket) with the 2017 limits."""
    return AdsManagerAPI(
        simulation.reach_model, platform=PlatformConfig.legacy_2017(), clock=SimClock()
    )


def fresh_modern_api(simulation) -> AdsManagerAPI:
    """A fresh Ads API (own clock + token bucket) with the late-2020 limits."""
    return AdsManagerAPI(
        simulation.reach_model, platform=PlatformConfig.modern_2020(), clock=SimClock()
    )
