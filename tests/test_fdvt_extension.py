"""Tests for the FDVT extension: ad-preference collection and the risk view."""

from __future__ import annotations

import pytest

from repro.errors import PanelError
from repro.fdvt import FDVTExtension, InterestStatus, RiskLevel
from repro.population import SyntheticUser


@pytest.fixture()
def extension(modern_api, catalog) -> FDVTExtension:
    return FDVTExtension(modern_api, catalog)


@pytest.fixture()
def sample_user(panel) -> SyntheticUser:
    # A user with a moderate number of interests keeps API traffic small.
    candidates = sorted(panel.users, key=lambda u: u.interest_count)
    return next(u for u in candidates if u.interest_count >= 12)


class TestAdPreferencesCollection:
    def test_snapshot_matches_user_interests(self, extension, sample_user):
        snapshot = extension.collect_ad_preferences(sample_user)
        assert snapshot.user_id == sample_user.user_id
        assert snapshot.interest_ids == sample_user.interest_ids

    def test_interest_audience_size_respects_floor(self, extension, modern_api, catalog):
        rarest = catalog.rarest(1)[0]
        audience = extension.interest_audience_size(rarest.interest_id)
        assert audience >= modern_api.platform.reach_floor


class TestRiskReport:
    def test_entries_are_sorted_ascending(self, extension, sample_user):
        report = extension.build_risk_report(sample_user)
        sizes = [entry.audience_size for entry in report.entries]
        assert sizes == sorted(sizes)
        assert len(report.entries) == sample_user.interest_count

    def test_risk_counts_cover_all_entries(self, extension, sample_user):
        report = extension.build_risk_report(sample_user)
        counts = report.risk_counts()
        assert sum(counts.values()) == len(report.active_entries)

    def test_remove_marks_entry_inactive(self, extension, sample_user):
        report = extension.build_risk_report(sample_user)
        first = report.entries[0]
        updated = report.remove(first.interest_id)
        assert updated.entries[0].status is InterestStatus.INACTIVE
        assert first.interest_id not in updated.active_interest_ids()

    def test_remove_unknown_interest_raises(self, extension, sample_user):
        report = extension.build_risk_report(sample_user)
        with pytest.raises(PanelError):
            report.remove(10**9)

    def test_remove_interest_from_user(self, extension, sample_user):
        target = sample_user.interest_ids[0]
        updated = extension.remove_interest(sample_user, target)
        assert not updated.has_interest(target)
        with pytest.raises(PanelError):
            extension.remove_interest(sample_user, 10**9)

    def test_remove_risky_interests_eliminates_red_entries(self, extension, sample_user):
        updated_user, updated_report = extension.remove_risky_interests(sample_user)
        assert not updated_report.entries_at_risk()
        removed = sample_user.interest_count - updated_user.interest_count
        inactive = sum(
            1 for e in updated_report.entries if e.status is InterestStatus.INACTIVE
        )
        assert removed == inactive

    def test_user_without_interests_rejected(self, extension):
        empty_user = SyntheticUser(999_999, "ES", interest_ids=())
        with pytest.raises(PanelError):
            extension.build_risk_report(empty_user)


class TestRevenueIntegration:
    def test_session_revenue_uses_user_country(self, extension, sample_user):
        estimate = extension.estimate_session_revenue(
            sample_user, impressions=50, clicks=1
        )
        assert estimate.country == sample_user.country
        assert estimate.total_eur > 0.0
