"""Tests for the paper reference data and the comparison helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import compare_table1, compare_table2
from repro.core import fit_vas
from repro.core.bootstrap import ConfidenceInterval
from repro.core.results import NPEstimate, UniquenessReport
from repro.errors import ModelError
from repro.paperdata import (
    PAPER_DEMOGRAPHICS_N09,
    PAPER_INTEREST_AUDIENCE_PERCENTILES,
    PAPER_INTERESTS_PER_USER,
    PAPER_TABLE1,
    PAPER_TABLE1_CI,
    PAPER_TABLE2_SUMMARY,
    ReferenceCheck,
)


def _report_from_cutpoints(cutpoints: dict[float, float]) -> UniquenessReport:
    estimates = {}
    for probability, cutpoint in cutpoints.items():
        slope = 6.0
        intercept = slope * np.log10(cutpoint + 1.0)
        vas = 10 ** (intercept - slope * np.log10(np.arange(1, 26) + 1.0))
        fit = fit_vas(np.maximum(vas, 1.0), floor=1)
        estimates[probability] = NPEstimate(
            probability=probability,
            n_p=fit.cutpoint,
            confidence_interval=ConfidenceInterval(
                low=fit.cutpoint * 0.95, high=fit.cutpoint * 1.05, level=0.95
            ),
            r_squared=fit.r_squared,
            fit=fit,
        )
    return UniquenessReport(
        strategy_name="synthetic",
        estimates=estimates,
        vas_curves={p: np.array([]) for p in cutpoints},
        n_users=100,
        floor=20,
    )


class TestPaperData:
    def test_table1_values_are_consistent_with_their_cis(self):
        for strategy, values in PAPER_TABLE1.items():
            for probability, value in values.items():
                low, high = PAPER_TABLE1_CI[strategy][probability]
                assert low <= value <= high

    def test_table1_is_monotone_in_probability(self):
        for values in PAPER_TABLE1.values():
            ordered = [values[p] for p in sorted(values)]
            assert ordered == sorted(ordered)

    def test_lp_always_below_random(self):
        for probability in PAPER_TABLE1["least_popular"]:
            assert (
                PAPER_TABLE1["least_popular"][probability]
                < PAPER_TABLE1["random"][probability]
            )

    def test_table2_success_breakdown_sums(self):
        summary = PAPER_TABLE2_SUMMARY
        assert sum(summary["successes_by_interests"].values()) == summary[
            "successful_campaigns"
        ]
        assert summary["n_campaigns"] == summary["n_targets"] * len(
            summary["interest_counts"]
        )

    def test_figure_reference_values(self):
        assert PAPER_INTERESTS_PER_USER["median"] == 426
        assert PAPER_INTEREST_AUDIENCE_PERCENTILES[50] == 418_530
        assert PAPER_DEMOGRAPHICS_N09["country"]["AR"][1] > (
            PAPER_DEMOGRAPHICS_N09["country"]["FR"][1]
        )

    def test_reference_check_ratio_and_tolerance(self):
        check = ReferenceCheck("x", paper_value=10.0, measured_value=20.0, tolerance_ratio=3.0)
        assert check.ratio == pytest.approx(2.0)
        assert check.within_tolerance
        assert "ratio=2.00" in check.describe()
        tight = ReferenceCheck("x", paper_value=10.0, measured_value=40.0, tolerance_ratio=3.0)
        assert not tight.within_tolerance


class TestCompareTable1:
    def test_paper_like_reports_pass_all_shape_checks(self):
        reports = {
            "least_popular": _report_from_cutpoints(PAPER_TABLE1["least_popular"]),
            "random": _report_from_cutpoints(PAPER_TABLE1["random"]),
        }
        comparison = compare_table1(reports)
        assert comparison.shape_holds
        assert all(check.within_tolerance for check in comparison.checks)
        assert len(comparison.summary_lines()) == len(comparison.checks)

    def test_inverted_strategies_are_flagged(self):
        reports = {
            "least_popular": _report_from_cutpoints(PAPER_TABLE1["random"]),
            "random": _report_from_cutpoints(PAPER_TABLE1["least_popular"]),
        }
        comparison = compare_table1(reports)
        assert not comparison.shape_holds
        assert any("least-popular" in finding for finding in comparison.shape_findings)

    def test_missing_strategy_rejected(self):
        reports = {"random": _report_from_cutpoints(PAPER_TABLE1["random"])}
        with pytest.raises(ModelError):
            compare_table1(reports)

    def test_on_simulated_reports(self, simulation):
        from repro.adsapi import AdsManagerAPI
        from repro.config import PlatformConfig, UniquenessConfig
        from repro.core import UniquenessModel
        from repro.reach import country_codes
        from repro.simclock import SimClock

        api = AdsManagerAPI(
            simulation.reach_model, platform=PlatformConfig.legacy_2017(), clock=SimClock()
        )
        model = UniquenessModel(
            api, simulation.panel, UniquenessConfig(n_bootstrap=20, seed=6),
            locations=country_codes(),
        )
        lp, rnd = simulation.strategies()
        reports = {
            "least_popular": model.estimate(lp, probabilities=[0.5, 0.9]),
            "random": model.estimate(rnd, probabilities=[0.5, 0.9]),
        }
        comparison = compare_table1(reports)
        # The key orderings of the paper must hold on the simulated stack.
        assert not any(
            "needs as many interests" in finding for finding in comparison.shape_findings
        )


class TestCompareTable2:
    def test_on_simulated_experiment(self, simulation):
        experiment = simulation.nanotargeting_experiment(seed=3)
        report = experiment.run(candidates=simulation.panel.users)
        comparison = compare_table2(report)
        names = {check.name for check in comparison.checks}
        assert "successful campaigns" in names
        assert not any(
            "5-interest" in finding for finding in comparison.shape_findings
        )
        assert not any(
            "high-interest" in finding for finding in comparison.shape_findings
        )
