"""Tests for the analysis helpers: CDFs, tables and figure series."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    EmpiricalCDF,
    demographic_bar_series,
    figure1_interests_per_user,
    figure2_interest_audience_cdf,
    figure3_illustration,
    figures4_5_quantile_curves,
    format_records,
    format_table,
    vas_series,
)
from repro.core import AudienceSamples
from repro.errors import ModelError


class TestEmpiricalCDF:
    def test_evaluate_matches_definition(self):
        cdf = EmpiricalCDF.from_samples([1, 2, 3, 4])
        assert cdf.evaluate(0.5) == 0.0
        assert cdf.evaluate(2) == pytest.approx(0.5)
        assert cdf.evaluate(10) == 1.0

    def test_percentiles_and_extremes(self):
        cdf = EmpiricalCDF.from_samples(range(101))
        assert cdf.median == pytest.approx(50.0)
        assert cdf.minimum == 0.0
        assert cdf.maximum == 100.0
        p25, p75 = cdf.percentiles([25, 75])
        assert p25 < p75

    def test_series_is_monotone(self):
        cdf = EmpiricalCDF.from_samples(np.random.default_rng(0).normal(size=500))
        x, cumulative = cdf.series()
        assert np.all(np.diff(x) >= 0)
        assert np.all(np.diff(cumulative) >= 0)
        assert cumulative[-1] == pytest.approx(1.0)

    def test_series_downsampling(self):
        cdf = EmpiricalCDF.from_samples(range(1_000))
        x, cumulative = cdf.series(n_points=50)
        assert x.size <= 51
        assert cumulative[-1] == pytest.approx(1.0)

    def test_evaluate_many(self):
        cdf = EmpiricalCDF.from_samples([1, 2, 3, 4])
        values = cdf.evaluate_many([0, 2, 5])
        assert list(values) == [0.0, 0.5, 1.0]

    def test_empty_sample_rejected(self):
        with pytest.raises(ModelError):
            EmpiricalCDF.from_samples([])

    def test_invalid_percentile_rejected(self):
        with pytest.raises(ModelError):
            EmpiricalCDF.from_samples([1, 2]).percentile(150)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["bbbb", 22.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "22.50" in lines[3]

    def test_format_records(self):
        text = format_records([{"a": 1, "b": True}, {"a": 2, "b": False}])
        assert "yes" in text and "no" in text

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ModelError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ModelError):
            format_table([], [])

    def test_empty_records_rejected(self):
        with pytest.raises(ModelError):
            format_records([])


class TestFigureSeries:
    def test_figure1_series(self, panel):
        series = figure1_interests_per_user(panel)
        assert series.x.size == len(panel)
        assert series.cumulative[-1] == pytest.approx(1.0)

    def test_figure2_series_uses_panel_interests(self, catalog, panel):
        series = figure2_interest_audience_cdf(catalog, panel)
        assert series.x.size == panel.unique_interest_ids().size
        assert np.all(series.x >= 1)

    def test_figure2_series_whole_catalog(self, catalog):
        series = figure2_interest_audience_cdf(catalog)
        assert series.x.size == len(catalog)

    def _samples(self) -> AudienceSamples:
        n_values = np.arange(1, 26, dtype=float)
        base = 10 ** (7.5 - 6.5 * np.log10(n_values + 1.0))
        rng = np.random.default_rng(3)
        matrix = base[None, :] * 10 ** rng.normal(0, 0.3, size=(80, 25))
        return AudienceSamples(matrix=np.maximum(matrix, 20.0), floor=20)

    def test_vas_series_contains_fit(self):
        series = vas_series(self._samples(), [50.0])
        assert len(series) == 1
        assert series[0].fitted_curve.shape == (25,)
        assert series[0].fit.cutpoint > 0

    def test_figure3_has_two_quantiles(self):
        series = figure3_illustration(self._samples())
        assert [s.quantile_percent for s in series] == [50.0, 90.0]

    def test_figures4_5_have_four_quantiles(self):
        series = figures4_5_quantile_curves(self._samples())
        assert [s.quantile_percent for s in series] == [50.0, 80.0, 90.0, 95.0]

    def test_demographic_bar_series(self, simulation):
        from repro.adsapi import AdsManagerAPI
        from repro.config import PlatformConfig, UniquenessConfig
        from repro.core import RandomSelection, UniquenessModel
        from repro.reach import country_codes
        from repro.simclock import SimClock

        api = AdsManagerAPI(
            simulation.reach_model, platform=PlatformConfig.legacy_2017(), clock=SimClock()
        )
        model = UniquenessModel(
            api, simulation.panel, UniquenessConfig(n_bootstrap=20, seed=2),
            locations=country_codes(),
        )
        report = model.estimate(RandomSelection(seed=2), probabilities=[0.9])
        bars = demographic_bar_series({"all": report}, probability=0.9)
        assert bars.labels == ("all",)
        assert bars.values.shape == (1,)
        assert bars.ci_low[0] <= bars.ci_high[0]

    def test_demographic_bar_series_requires_groups(self):
        with pytest.raises(ModelError):
            demographic_bar_series({})
