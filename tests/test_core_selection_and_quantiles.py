"""Tests for interest-selection strategies and the AS/VAS quantile machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AudienceSamples,
    LeastPopularSelection,
    RandomSelection,
    nested_subsets,
    probability_to_percentile,
)
from repro.errors import InsufficientDataError, ModelError


class TestLeastPopularSelection:
    def test_orders_by_ascending_audience(self, panel, catalog):
        user = max(panel.users, key=lambda u: u.interest_count)
        ordered = LeastPopularSelection().order_interests(user, catalog, 25)
        audiences = [catalog.audience_size(i) for i in ordered]
        assert audiences == sorted(audiences)

    def test_respects_max_interests(self, panel, catalog):
        user = max(panel.users, key=lambda u: u.interest_count)
        assert len(LeastPopularSelection().order_interests(user, catalog, 10)) == 10

    def test_short_profiles_return_everything(self, panel, catalog):
        user = min(panel.users, key=lambda u: u.interest_count)
        ordered = LeastPopularSelection().order_interests(user, catalog, 25)
        assert len(ordered) == min(25, user.interest_count)

    def test_invalid_max_rejected(self, panel, catalog):
        with pytest.raises(ModelError):
            LeastPopularSelection().order_interests(panel.users[0], catalog, 0)


class TestRandomSelection:
    def test_returns_subset_of_user_interests(self, panel, catalog):
        user = max(panel.users, key=lambda u: u.interest_count)
        ordered = RandomSelection(seed=1).order_interests(user, catalog, 25)
        assert set(ordered) <= set(user.interest_ids)
        assert len(set(ordered)) == len(ordered)

    def test_deterministic_per_seed_and_user(self, panel, catalog):
        user = panel.users[0]
        first = RandomSelection(seed=5).order_interests(user, catalog, 25)
        second = RandomSelection(seed=5).order_interests(user, catalog, 25)
        assert first == second

    def test_different_seeds_give_different_orderings(self, panel, catalog):
        user = max(panel.users, key=lambda u: u.interest_count)
        first = RandomSelection(seed=1).order_interests(user, catalog, 25)
        second = RandomSelection(seed=2).order_interests(user, catalog, 25)
        assert first != second

    def test_selection_is_not_sorted_by_popularity(self, panel, catalog):
        user = max(panel.users, key=lambda u: u.interest_count)
        ordered = RandomSelection(seed=3).order_interests(user, catalog, 25)
        audiences = [catalog.audience_size(i) for i in ordered]
        assert audiences != sorted(audiences)


class TestNestedSubsets:
    def test_prefix_property(self):
        ordered = list(range(100, 122))
        subsets = nested_subsets(ordered, [5, 7, 9, 12, 18, 20, 22])
        assert set(subsets[5]) <= set(subsets[7]) <= set(subsets[12]) <= set(subsets[22])
        assert subsets[22] == tuple(ordered)

    def test_sizes_match(self):
        subsets = nested_subsets(list(range(30)), [3, 10])
        assert len(subsets[3]) == 3
        assert len(subsets[10]) == 10

    def test_oversized_request_rejected(self):
        with pytest.raises(ModelError):
            nested_subsets([1, 2, 3], [5])

    def test_duplicates_rejected(self):
        with pytest.raises(ModelError):
            nested_subsets([1, 1, 2], [2])


def _samples() -> AudienceSamples:
    matrix = np.array(
        [
            [1000.0, 400.0, 100.0, 20.0, 20.0],
            [2000.0, 300.0, 80.0, 25.0, 20.0],
            [500.0, 200.0, 60.0, 20.0, np.nan],
            [1500.0, 350.0, np.nan, np.nan, np.nan],
        ]
    )
    return AudienceSamples(matrix=matrix, floor=20, user_ids=(1, 2, 3, 4))


class TestAudienceSamples:
    def test_shape_accessors(self):
        samples = _samples()
        assert samples.n_users == 4
        assert samples.max_interests == 5

    def test_nan_rows_are_dropped_per_column(self):
        samples = _samples()
        assert samples.sample_count(1) == 4
        assert samples.sample_count(3) == 3
        assert samples.sample_count(5) == 2

    def test_quantiles_are_monotone_in_n(self):
        samples = _samples()
        vas = samples.vas(50.0)
        assert vas.shape == (5,)
        assert all(vas[i] >= vas[i + 1] for i in range(4))

    def test_vas_many_matches_individual_calls(self):
        samples = _samples()
        combined = samples.vas_many([50.0, 90.0])
        assert np.allclose(combined[0], samples.vas(50.0), equal_nan=True)
        assert np.allclose(combined[1], samples.vas(90.0), equal_nan=True)

    def test_audience_quantile_single_value(self):
        samples = _samples()
        assert samples.audience_quantile(50.0, 1) == pytest.approx(1250.0)

    def test_bootstrap_resample_preserves_shape(self):
        samples = _samples()
        resampled = samples.bootstrap_resample(seed=1)
        assert resampled.matrix.shape == samples.matrix.shape
        assert resampled.floor == samples.floor

    def test_subset_rows(self):
        samples = _samples()
        subset = samples.subset_rows([0, 2])
        assert subset.n_users == 2
        assert subset.user_ids == (1, 3)

    def test_empty_subset_rejected(self):
        with pytest.raises(InsufficientDataError):
            _samples().subset_rows([])

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ModelError):
            _samples().vas(0.0)
        with pytest.raises(ModelError):
            _samples().audience_quantile(101.0, 1)

    def test_invalid_n_rejected(self):
        with pytest.raises(ModelError):
            _samples().samples_for(0)
        with pytest.raises(ModelError):
            _samples().samples_for(6)

    def test_invalid_matrix_rejected(self):
        with pytest.raises(ModelError):
            AudienceSamples(matrix=np.zeros((0, 3)), floor=20)
        with pytest.raises(ModelError):
            AudienceSamples(matrix=np.zeros(5), floor=20)
        with pytest.raises(ModelError):
            AudienceSamples(matrix=np.ones((2, 2)), floor=0)


class TestProbabilityToPercentile:
    def test_maps_probability_to_percent(self):
        assert probability_to_percentile(0.5) == 50.0
        assert probability_to_percentile(0.95) == 95.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ModelError):
            probability_to_percentile(0.0)
        with pytest.raises(ModelError):
            probability_to_percentile(1.0)
