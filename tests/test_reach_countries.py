"""Tests for the country user-base data (Appendix A, Table 3)."""

from __future__ import annotations

import pytest

from repro.errors import UnknownLocationError
from repro.reach import (
    FB_WORLDWIDE_MAU_2020,
    TOP_50_COUNTRIES,
    WORLDWIDE,
    country_codes,
    get_country,
    is_known_location,
    location_fraction,
    total_user_base,
)


class TestTable3Data:
    def test_exactly_50_countries(self):
        assert len(TOP_50_COUNTRIES) == 50

    def test_codes_are_unique(self):
        codes = country_codes()
        assert len(set(codes)) == 50

    def test_total_user_base_is_about_1_5_billion(self):
        total = total_user_base()
        assert 1.4e9 < total < 1.6e9

    def test_us_is_largest(self):
        assert TOP_50_COUNTRIES[0].code == "US"
        assert TOP_50_COUNTRIES[0].fb_users_millions == 203

    def test_hungary_is_smallest_listed(self):
        assert TOP_50_COUNTRIES[-1].code == "HU"
        assert TOP_50_COUNTRIES[-1].fb_users_millions == pytest.approx(5.30)

    def test_counts_are_descending(self):
        values = [country.fb_users_millions for country in TOP_50_COUNTRIES]
        assert values == sorted(values, reverse=True)


class TestLookups:
    def test_get_country(self):
        spain = get_country("ES")
        assert spain.name == "Spain"
        assert spain.fb_users == 23_000_000

    def test_get_unknown_country_raises(self):
        with pytest.raises(UnknownLocationError):
            get_country("XX")

    def test_is_known_location(self):
        assert is_known_location("FR")
        assert is_known_location(WORLDWIDE)
        assert not is_known_location("XX")


class TestUserBaseArithmetic:
    def test_subset_user_base(self):
        assert total_user_base(["ES", "FR"]) == 23_000_000 + 33_000_000

    def test_worldwide_user_base_is_2_8_billion(self):
        assert total_user_base([WORLDWIDE]) == FB_WORLDWIDE_MAU_2020

    def test_location_fraction_of_everything_is_one(self):
        assert location_fraction(country_codes()) == pytest.approx(1.0)

    def test_location_fraction_is_monotone_in_subsets(self):
        assert location_fraction(["ES"]) < location_fraction(["ES", "FR"])

    def test_unknown_location_raises(self):
        with pytest.raises(UnknownLocationError):
            total_user_base(["ES", "XX"])
