"""Tests for serialisation helpers and the high-level pipeline."""

from __future__ import annotations

import json

import pytest

from repro import build_simulation, quick_config
from repro.adsapi import AdsManagerAPI
from repro.config import PlatformConfig, UniquenessConfig
from repro.core import LeastPopularSelection, UniquenessModel
from repro.errors import ReproError
from repro.io import (
    experiment_report_to_dict,
    load_catalog,
    load_panel,
    save_catalog,
    save_experiment_report,
    save_panel,
    save_uniqueness_report,
    uniqueness_report_to_dict,
)
from repro.reach import country_codes
from repro.simclock import SimClock


class TestCatalogSerialisation:
    def test_round_trip(self, tiny_catalog, tmp_path):
        path = save_catalog(tiny_catalog, tmp_path / "catalog.json")
        rebuilt = load_catalog(path)
        assert rebuilt.to_dicts() == tiny_catalog.to_dicts()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError):
            load_catalog(tmp_path / "missing.json")

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"not_interests": []}))
        with pytest.raises(ReproError):
            load_catalog(path)


class TestPanelSerialisation:
    def test_round_trip(self, tiny_panel, tiny_catalog, tmp_path):
        path = save_panel(tiny_panel, tmp_path / "panel.json")
        rebuilt = load_panel(path, tiny_catalog)
        assert rebuilt.to_dicts() == tiny_panel.to_dicts()

    def test_malformed_panel_raises(self, tiny_catalog, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"wrong": 1}))
        with pytest.raises(ReproError):
            load_panel(path, tiny_catalog)


class TestReportSerialisation:
    def test_uniqueness_report_round_trip_keys(self, simulation, tmp_path):
        api = AdsManagerAPI(
            simulation.reach_model, platform=PlatformConfig.legacy_2017(), clock=SimClock()
        )
        model = UniquenessModel(
            api, simulation.panel, UniquenessConfig(n_bootstrap=20, seed=1),
            locations=country_codes(),
        )
        report = model.estimate(LeastPopularSelection(), probabilities=[0.5])
        payload = uniqueness_report_to_dict(report)
        assert payload["strategy"] == "least_popular"
        assert "0.5" in payload["estimates"]
        path = save_uniqueness_report(report, tmp_path / "table1.json")
        assert json.loads(path.read_text())["n_users"] == len(simulation.panel)

    def test_experiment_report_serialisation(self, simulation, tmp_path):
        experiment = build_simulation(quick_config(factor=80)).nanotargeting_experiment()
        report = experiment.run(
            candidates=build_simulation(quick_config(factor=80)).panel.users
        )
        payload = experiment_report_to_dict(report)
        assert payload["n_campaigns"] == 21
        path = save_experiment_report(report, tmp_path / "table2.json")
        assert json.loads(path.read_text())["n_campaigns"] == 21


class TestPipeline:
    def test_build_simulation_is_deterministic(self):
        first = build_simulation(quick_config(factor=80))
        second = build_simulation(quick_config(factor=80))
        assert first.catalog.to_dicts() == second.catalog.to_dicts()
        assert first.panel.to_dicts() == second.panel.to_dicts()

    def test_seed_override_changes_the_dataset(self):
        base = build_simulation(quick_config(factor=80))
        seeded = build_simulation(quick_config(factor=80), seed=99)
        assert base.panel.to_dicts() != seeded.panel.to_dicts()

    def test_platform_split_between_apis(self, simulation):
        assert simulation.uniqueness_api.platform.reach_floor == 20
        assert not simulation.uniqueness_api.platform.allow_worldwide_location
        assert simulation.campaign_api.platform.reach_floor == 1_000
        assert simulation.campaign_api.platform.allow_worldwide_location

    def test_strategies_helper(self, simulation):
        lp, random = simulation.strategies()
        assert lp.name == "least_popular"
        assert random.name == "random"

    def test_fdvt_extension_helper(self, simulation):
        extension = simulation.fdvt_extension()
        assert extension.thresholds.red_max == 10_000
