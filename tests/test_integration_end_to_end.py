"""End-to-end integration tests across subsystems.

These tests reproduce, at reduced scale, the qualitative results of the
paper: the ordering of Table 1, the shape of Table 2, the consistency of the
two reach backends, and the Section 6 defence loop (removing risky interests
makes the user harder to nanotarget).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_simulation, quick_config
from repro.adsapi import AdsManagerAPI, TargetingSpec
from repro.config import PlatformConfig, UniquenessConfig
from repro.core import LeastPopularSelection, RandomSelection, UniquenessModel
from repro.population import PopulationBuilder, PopulationReachBackend
from repro.config import PopulationConfig
from repro.reach import country_codes
from repro.simclock import SimClock


class TestUniquenessToNanotargetingConsistency:
    """The Section 4 model predictions must be consistent with Section 5 outcomes."""

    @pytest.fixture(scope="class")
    def stack(self):
        simulation = build_simulation(quick_config(factor=50))
        model = UniquenessModel(
            simulation.uniqueness_api,
            simulation.panel,
            UniquenessConfig(n_bootstrap=40, seed=7),
            locations=country_codes(),
        )
        experiment = simulation.nanotargeting_experiment(seed=7)
        report = experiment.run(candidates=simulation.panel.users)
        return simulation, model, report

    def test_table1_ordering(self, stack):
        _, model, _ = stack
        lp = model.estimate(LeastPopularSelection(), probabilities=[0.5, 0.9])
        rnd = model.estimate(RandomSelection(seed=7), probabilities=[0.5, 0.9])
        # LP needs far fewer interests than random, and both grow with P.
        assert lp.estimate_for(0.9).n_p < rnd.estimate_for(0.9).n_p
        assert lp.estimate_for(0.5).n_p < lp.estimate_for(0.9).n_p
        assert rnd.estimate_for(0.5).n_p < rnd.estimate_for(0.9).n_p

    def test_table2_success_concentrates_in_high_interest_campaigns(self, stack):
        _, _, report = stack
        successes_high = sum(
            1 for r in report.successful_records if r.n_interests >= 18
        )
        successes_low = sum(
            1 for r in report.successful_records if r.n_interests <= 9
        )
        assert successes_high >= 4
        # At the reduced test scale a rare low-interest success can happen;
        # the bulk of successes must still sit in the 18+ interest campaigns.
        assert successes_low <= 2
        assert successes_high > successes_low

    def test_more_interests_means_smaller_audiences(self, stack):
        _, _, report = stack
        by_count: dict[int, list[float]] = {}
        for record in report.records:
            by_count.setdefault(record.n_interests, []).append(
                record.outcome.raw_audience
            )
        means = {n: float(np.mean(values)) for n, values in by_count.items()}
        assert means[5] > means[12] > means[22]

    def test_nanotargeting_is_cheap(self, stack):
        _, _, report = stack
        assert report.successful_cost_eur() < 1.0


class TestBackendConsistency:
    """The analytic model and the agent population implement the same semantics."""

    @pytest.fixture(scope="class")
    def backends(self, simulation):
        config = PopulationConfig(
            n_agents=400,
            scale_factor=simulation.reach_model.world_size() / 400,
            median_interests_per_user=60.0,
            max_interests_per_user=300,
            seed=3,
        )
        population = PopulationBuilder(simulation.catalog, config).build(seed=3)
        return simulation.reach_model, PopulationReachBackend(population)

    def test_world_sizes_match_by_construction(self, backends):
        analytic, agents = backends
        assert agents.world_size() == pytest.approx(analytic.world_size(), rel=1e-6)

    def test_both_backends_shrink_with_more_interests(self, backends, panel):
        analytic, agents = backends
        user = max(panel.users, key=lambda u: u.interest_count)
        for backend in (analytic, agents):
            single = backend.audience_for(user.interest_ids[:1])
            double = backend.audience_for(user.interest_ids[:2])
            assert double <= single

    def test_popular_interests_have_large_audiences_in_both(self, backends, catalog):
        analytic, agents = backends
        popular = catalog.most_popular(1)[0].interest_id
        rare = catalog.rarest(1)[0].interest_id
        assert analytic.audience_for([popular]) > analytic.audience_for([rare])
        assert agents.audience_for([popular]) >= agents.audience_for([rare])

    def test_ads_api_works_with_either_backend(self, backends, catalog):
        _, agents = backends
        api = AdsManagerAPI(agents, platform=PlatformConfig.modern_2020(), clock=SimClock())
        popular = catalog.most_popular(1)[0].interest_id
        estimate = api.estimate_reach(TargetingSpec.for_interests([popular]))
        assert estimate.potential_reach >= api.platform.reach_floor


class TestFDVTDefenceLoop:
    """Section 6: removing risky interests makes the user harder to single out."""

    def test_removing_risky_interests_grows_the_rarest_audience(self, simulation):
        extension = simulation.fdvt_extension()
        user = max(simulation.panel.users, key=lambda u: u.interest_count)
        # Work on a trimmed copy of the user to keep API traffic manageable.
        trimmed = type(user)(
            user_id=user.user_id,
            country=user.country,
            gender=user.gender,
            age=user.age,
            interest_ids=user.interest_ids[:40],
        )
        report = extension.build_risk_report(trimmed)
        protected_user, protected_report = extension.remove_risky_interests(
            trimmed, report
        )
        if not report.entries_at_risk():
            pytest.skip("no red interests in this synthetic profile")
        original_rarest = report.entries[0].audience_size
        remaining = protected_report.active_entries
        assert remaining, "removal should not empty the profile"
        assert remaining[0].audience_size >= original_rarest
        assert protected_user.interest_count < trimmed.interest_count

    def test_risk_report_is_consistent_with_catalog_popularity(self, simulation):
        extension = simulation.fdvt_extension()
        user = min(
            (u for u in simulation.panel.users if u.interest_count >= 10),
            key=lambda u: u.interest_count,
        )
        report = extension.build_risk_report(user)
        catalog_sizes = np.array(
            [simulation.catalog.audience_size(e.interest_id) for e in report.entries],
            dtype=float,
        )
        # The report is sorted by the API-reported audience, which carries the
        # reach model's (bounded) jitter; the catalog popularity must still be
        # strongly aligned with that order.
        ranks = np.arange(catalog_sizes.size)
        correlation = np.corrcoef(ranks, np.log10(catalog_sizes))[0, 1]
        assert correlation > 0.9
        assert catalog_sizes[0] <= catalog_sizes[-1]
