"""Tests for the Section 8.3 countermeasures and their evaluation."""

from __future__ import annotations

import pytest

from repro.adsapi import AdsManagerAPI, TargetingSpec
from repro.campaigns import AdvertiserWorkloadGenerator, WorkloadConfig
from repro.config import ExperimentConfig, PlatformConfig
from repro.core import NanotargetingExperiment
from repro.countermeasures import (
    InterestCapRule,
    MinActiveAudienceRule,
    evaluate_attack_protection,
    evaluate_workload_impact,
    recommended_rules,
    run_protected_experiment,
)
from repro.delivery import DeliveryEngine
from repro.errors import ConfigurationError, ModelError
from repro.simclock import SimClock


class TestInterestCapRule:
    def test_allows_up_to_nine_interests(self):
        rule = InterestCapRule(max_interests=9)
        spec = TargetingSpec.for_interests(list(range(9)))
        assert rule.evaluate(spec, 1e6, 1e6) is None

    def test_rejects_ten_or_more_interests(self):
        rule = InterestCapRule(max_interests=9)
        spec = TargetingSpec.for_interests(list(range(10)))
        assert rule.evaluate(spec, 1e6, 1e6) is not None

    def test_invalid_cap_rejected(self):
        with pytest.raises(ConfigurationError):
            InterestCapRule(max_interests=0)


class TestMinActiveAudienceRule:
    def test_rejects_tiny_active_audiences(self):
        rule = MinActiveAudienceRule(min_active_users=1_000)
        spec = TargetingSpec.for_interests([1])
        assert rule.evaluate(spec, raw_audience=5e6, active_audience=1.0) is not None

    def test_allows_large_active_audiences(self):
        rule = MinActiveAudienceRule(min_active_users=1_000)
        spec = TargetingSpec.for_interests([1])
        assert rule.evaluate(spec, raw_audience=5e6, active_audience=5e6) is None

    def test_closes_the_custom_audience_loophole(self):
        """A 100-user Custom Audience with one active member must be rejected."""
        rule = MinActiveAudienceRule(min_active_users=1_000)
        spec = TargetingSpec(custom_audience_id="ca_1")
        assert rule.evaluate(spec, raw_audience=100.0, active_audience=1.0) is not None

    def test_limit_below_100_rejected(self):
        with pytest.raises(ConfigurationError):
            MinActiveAudienceRule(min_active_users=50)

    def test_recommended_rules_match_paper(self):
        cap, minimum = recommended_rules()
        assert cap.max_interests == 9
        assert minimum.min_active_users == 1_000


class TestProtectedExperiment:
    @pytest.fixture(scope="class")
    def reports(self, simulation):
        api = AdsManagerAPI(
            simulation.reach_model, platform=PlatformConfig.modern_2020(), clock=SimClock()
        )
        engine = DeliveryEngine(simulation.catalog, seed=5)
        config = ExperimentConfig(seed=11)
        experiment = NanotargetingExperiment(api, engine, config, seed=11)
        targets = experiment.select_targets(simulation.panel.users)
        baseline = experiment.run(targets)
        # A fresh account is needed because the baseline run gets suspended.
        protected_api = AdsManagerAPI(
            simulation.reach_model, platform=PlatformConfig.modern_2020(), clock=SimClock()
        )
        protected_experiment = NanotargetingExperiment(
            protected_api, engine, config, seed=11
        )
        protected = run_protected_experiment(
            protected_api, engine, targets, list(recommended_rules()),
            experiment=protected_experiment,
        )
        return baseline, protected, protected_api

    def test_baseline_attack_succeeds(self, reports):
        baseline, _, _ = reports
        assert baseline.success_count >= 5

    def test_countermeasures_block_every_success(self, reports):
        _, protected, _ = reports
        assert protected.success_count == 0

    def test_rejections_are_recorded(self, reports):
        _, protected, _ = reports
        rejected = [r for r in protected.records if r.rejected]
        assert rejected
        assert all(r.outcome is None for r in rejected)

    def test_effectiveness_summary(self, reports):
        baseline, protected, _ = reports
        effectiveness = evaluate_attack_protection(baseline, protected)
        assert effectiveness.attack_reduction == pytest.approx(1.0)
        assert effectiveness.rejected_campaigns > 0

    def test_rules_are_removed_after_the_protected_run(self, reports):
        _, _, protected_api = reports
        assert protected_api.policy.rules == []

    def test_requires_at_least_one_rule(self, simulation):
        api = AdsManagerAPI(
            simulation.reach_model, platform=PlatformConfig.modern_2020(), clock=SimClock()
        )
        engine = DeliveryEngine(simulation.catalog, seed=5)
        with pytest.raises(ModelError):
            run_protected_experiment(api, engine, [], [])


class TestWorkloadImpact:
    def test_workload_generator_shape(self, catalog):
        generator = AdvertiserWorkloadGenerator(catalog)
        specs = generator.generate(300, seed=1)
        assert len(specs) == 300
        counts = [spec.interest_count for spec in specs]
        assert max(counts) <= len(generator.config.interest_count_weights)
        assert sum(1 for c in counts if c <= 3) > len(counts) / 2

    def test_fraction_above_nine_is_below_one_percent(self):
        config = WorkloadConfig()
        assert config.fraction_above(9) < 0.01

    def test_interest_cap_impact_is_small(self, simulation, catalog):
        api = AdsManagerAPI(
            simulation.reach_model, platform=PlatformConfig.modern_2020(), clock=SimClock()
        )
        generator = AdvertiserWorkloadGenerator(catalog)
        specs = generator.generate(500, seed=2)
        impact = evaluate_workload_impact(api, specs, [InterestCapRule(max_interests=9)])
        assert impact.total_campaigns == 500
        assert impact.rejection_rate < 0.05

    def test_empty_workload_rejected(self, simulation):
        api = AdsManagerAPI(
            simulation.reach_model, platform=PlatformConfig.modern_2020(), clock=SimClock()
        )
        with pytest.raises(ModelError):
            evaluate_workload_impact(api, [], [InterestCapRule()])

    def test_invalid_workload_config_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(interest_count_weights=())
        with pytest.raises(ConfigurationError):
            WorkloadConfig(worldwide_fraction=2.0)
