"""Tests for the log-log fit, cutpoint and bootstrap machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AudienceSamples,
    ConfidenceInterval,
    bootstrap_cutpoints,
    fit_vas,
    percentile_interval,
    truncate_at_floor,
)
from repro.core.fitting import LogLogFit
from repro.errors import InsufficientDataError, ModelError


def _synthetic_vas(slope_a: float, intercept_b: float, n: int = 25) -> np.ndarray:
    n_values = np.arange(1, n + 1, dtype=float)
    return 10.0 ** (intercept_b - slope_a * np.log10(n_values + 1.0))


class TestTruncateAtFloor:
    def test_keeps_first_floored_value(self):
        vas = np.array([1000.0, 100.0, 20.0, 20.0, 20.0])
        truncated = truncate_at_floor(vas, floor=20)
        assert list(truncated) == [1000.0, 100.0, 20.0]

    def test_no_floor_keeps_everything(self):
        vas = np.array([1000.0, 100.0, 50.0])
        assert list(truncate_at_floor(vas, floor=20)) == [1000.0, 100.0, 50.0]

    def test_nan_tail_is_trimmed(self):
        vas = np.array([1000.0, 100.0, np.nan, np.nan])
        assert list(truncate_at_floor(vas, floor=20)) == [1000.0, 100.0]


class TestLogLogFit:
    def test_recovers_exact_synthetic_parameters(self):
        vas = _synthetic_vas(slope_a=7.0, intercept_b=7.7)
        fit = fit_vas(vas, floor=1)
        assert fit.slope_a == pytest.approx(7.0, rel=1e-6)
        assert fit.intercept_b == pytest.approx(7.7, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_cutpoint_formula(self):
        fit = LogLogFit(slope_a=7.0, intercept_b=7.7, r_squared=1.0, n_points=20)
        assert fit.cutpoint == pytest.approx(10 ** (7.7 / 7.0) - 1.0)

    def test_paper_like_random_selection_cutpoint(self):
        """A curve shaped like the paper's VAS(50) for random selection."""
        vas = _synthetic_vas(slope_a=7.09, intercept_b=7.75)
        fit = fit_vas(np.maximum(vas, 20.0), floor=20)
        assert 10.0 < fit.cutpoint < 13.5

    def test_cutpoint_increases_with_intercept(self):
        low = fit_vas(_synthetic_vas(5.0, 5.0), floor=1).cutpoint
        high = fit_vas(_synthetic_vas(5.0, 6.0), floor=1).cutpoint
        assert high > low

    def test_predict_matches_input_curve(self):
        vas = _synthetic_vas(4.0, 6.0)
        fit = fit_vas(vas, floor=1)
        assert fit.predict(10) == pytest.approx(vas[9], rel=1e-6)
        predictions = fit.predict_many(np.array([1.0, 5.0, 10.0]))
        assert predictions.shape == (3,)

    def test_floor_truncation_is_conservative_but_close(self):
        vas = np.maximum(_synthetic_vas(7.0, 7.7), 20.0)
        fit_floored = fit_vas(vas, floor=20)
        fit_exact = fit_vas(_synthetic_vas(7.0, 7.7), floor=1)
        assert fit_floored.cutpoint == pytest.approx(fit_exact.cutpoint, rel=0.2)

    def test_robust_to_floor_of_1000(self):
        """The paper claims the method still works with the 1,000-user floor."""
        exact = _synthetic_vas(7.09, 7.75)
        fit_20 = fit_vas(np.maximum(exact, 20.0), floor=20)
        fit_1000 = fit_vas(np.maximum(exact, 1000.0), floor=1000)
        assert fit_1000.cutpoint == pytest.approx(fit_20.cutpoint, rel=0.25)

    def test_noisy_curve_has_r_squared_below_one(self):
        rng = np.random.default_rng(1)
        vas = _synthetic_vas(6.0, 7.0) * 10 ** rng.normal(0, 0.15, size=25)
        fit = fit_vas(np.maximum(vas, 20.0), floor=20)
        assert 0.5 < fit.r_squared < 1.0

    def test_too_few_points_raise(self):
        with pytest.raises(InsufficientDataError):
            fit_vas(np.array([15.0]), floor=20)

    def test_non_positive_values_rejected(self):
        with pytest.raises(ModelError):
            fit_vas(np.array([100.0, 0.0, 10.0]), floor=1)

    def test_invalid_floor_rejected(self):
        with pytest.raises(ModelError):
            fit_vas(_synthetic_vas(5, 6), floor=0)

    def test_negative_prediction_input_rejected(self):
        fit = fit_vas(_synthetic_vas(5.0, 6.0), floor=1)
        with pytest.raises(ModelError):
            fit.predict(-1)

    def test_fit_requires_two_points_at_construction(self):
        with pytest.raises(ModelError):
            LogLogFit(slope_a=1.0, intercept_b=1.0, r_squared=1.0, n_points=1)


class TestConfidenceIntervals:
    def test_percentile_interval_contains_centre(self):
        values = np.random.default_rng(0).normal(10.0, 1.0, size=2_000)
        interval = percentile_interval(values, level=0.95)
        assert interval.contains(10.0)
        assert interval.width < 5.0

    def test_interval_width_grows_with_level(self):
        values = np.random.default_rng(1).normal(0.0, 1.0, size=2_000)
        narrow = percentile_interval(values, level=0.5)
        wide = percentile_interval(values, level=0.99)
        assert wide.width > narrow.width

    def test_nan_values_are_ignored(self):
        values = [1.0, 2.0, float("nan"), 3.0]
        interval = percentile_interval(values, level=0.9)
        assert 1.0 <= interval.low <= interval.high <= 3.0

    def test_all_nan_rejected(self):
        with pytest.raises(ModelError):
            percentile_interval([float("nan")], level=0.9)

    def test_invalid_level_rejected(self):
        with pytest.raises(ModelError):
            ConfidenceInterval(low=0.0, high=1.0, level=1.5)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ModelError):
            ConfidenceInterval(low=2.0, high=1.0, level=0.95)


class TestBootstrapCutpoints:
    @pytest.fixture()
    def samples(self) -> AudienceSamples:
        rng = np.random.default_rng(7)
        n_users, max_n = 150, 25
        base = _synthetic_vas(7.0, 7.7, max_n)
        matrix = base[None, :] * 10 ** rng.normal(0.0, 0.4, size=(n_users, max_n))
        matrix = np.maximum(matrix, 20.0)
        return AudienceSamples(matrix=matrix, floor=20)

    def test_distribution_centres_near_point_estimate(self, samples):
        point = fit_vas(samples.vas(50.0), samples.floor).cutpoint
        distributions = bootstrap_cutpoints(
            samples, [50.0], n_bootstrap=200, seed=1
        )
        interval = percentile_interval(distributions[50.0], level=0.95)
        assert interval.contains(point)

    def test_multiple_quantiles_returned(self, samples):
        distributions = bootstrap_cutpoints(
            samples, [50.0, 90.0], n_bootstrap=50, seed=2
        )
        assert set(distributions) == {50.0, 90.0}
        assert distributions[50.0].shape == (50,)

    def test_higher_quantile_gives_higher_cutpoint(self, samples):
        distributions = bootstrap_cutpoints(
            samples, [50.0, 90.0], n_bootstrap=100, seed=3
        )
        assert np.nanmedian(distributions[90.0]) > np.nanmedian(distributions[50.0])

    def test_zero_bootstrap_rejected(self, samples):
        with pytest.raises(ModelError):
            bootstrap_cutpoints(samples, [50.0], n_bootstrap=0, seed=1)

    def test_deterministic_given_seed(self, samples):
        first = bootstrap_cutpoints(samples, [50.0], n_bootstrap=30, seed=9)
        second = bootstrap_cutpoints(samples, [50.0], n_bootstrap=30, seed=9)
        assert np.allclose(first[50.0], second[50.0], equal_nan=True)
