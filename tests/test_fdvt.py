"""Tests for the FDVT subsystem: Appendix B data, panel, risk view, revenue."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, PanelError
from repro.fdvt import (
    LOCATION_ANALYSIS_COUNTRIES,
    PANEL_COUNTRY_COUNTS,
    FDVTPanel,
    InterestStatus,
    PanelBuilder,
    RevenueEstimator,
    RiskLevel,
    RiskThresholds,
    classify_audience,
    country_list,
    expanded_country_assignments,
    popularity_bias_for,
    total_panel_users,
)
from repro.population import AgeGroup, Gender


class TestAppendixB:
    def test_total_is_2390(self):
        assert total_panel_users() == 2_390

    def test_80_countries(self):
        assert len(PANEL_COUNTRY_COUNTS) == 80

    def test_spain_is_largest(self):
        assert country_list()[0] == "ES"
        assert PANEL_COUNTRY_COUNTS["ES"] == 1_131

    def test_location_analysis_countries_have_over_100_users(self):
        for code in LOCATION_ANALYSIS_COUNTRIES:
            assert PANEL_COUNTRY_COUNTS[code] > 100

    def test_expanded_assignments_cover_everyone(self):
        assignments = expanded_country_assignments()
        assert len(assignments) == 2_390
        assert assignments.count("FR") == 335


class TestPanelBuilder:
    def test_tiny_panel_size_and_demographics(self, tiny_panel):
        assert len(tiny_panel) == 30
        genders = [user.gender for user in tiny_panel]
        assert genders.count(Gender.MALE) == 20
        assert genders.count(Gender.FEMALE) == 8
        assert genders.count(Gender.UNDISCLOSED) == 2

    def test_age_groups_match_quotas(self, tiny_panel):
        groups = [user.age_group for user in tiny_panel]
        assert groups.count(AgeGroup.ADOLESCENCE) == 4
        assert groups.count(AgeGroup.EARLY_ADULTHOOD) == 16
        assert groups.count(AgeGroup.UNDISCLOSED) == 2

    def test_every_user_has_interests(self, tiny_panel):
        assert all(user.interest_count >= 1 for user in tiny_panel)

    def test_deterministic_build(self, tiny_catalog):
        from repro.config import PanelConfig

        config = PanelConfig(
            n_users=20, n_men=12, n_women=6, n_gender_undisclosed=2,
            n_adolescents=2, n_early_adults=10, n_adults=6, n_matures=0,
            n_age_undisclosed=2, median_interests_per_user=40.0,
            max_interests_per_user=120, seed=3,
        )
        first = PanelBuilder(tiny_catalog, config).build(seed=3)
        second = PanelBuilder(tiny_catalog, config).build(seed=3)
        assert first.to_dicts() == second.to_dicts()

    def test_full_size_panel_uses_exact_country_counts(self, tiny_catalog):
        # Only the country assignment logic is exercised here; interests stay tiny.
        from repro.config import PanelConfig

        config = PanelConfig(median_interests_per_user=3.0, max_interests_per_user=5)
        builder = PanelBuilder(tiny_catalog, config)
        codes, index = builder._assign_country_index(2_390, base_seed=1)
        countries = [codes[i] for i in index]
        counts = {code: countries.count(code) for code in set(countries)}
        assert counts == PANEL_COUNTRY_COUNTS


class TestFDVTPanelContainer:
    def test_statistics(self, tiny_panel):
        counts = tiny_panel.interests_per_user()
        assert counts.shape == (30,)
        assert tiny_panel.total_interest_occurrences() == int(counts.sum())
        assert tiny_panel.unique_interest_ids().size > 0

    def test_subsets(self, tiny_panel):
        men = tiny_panel.by_gender(Gender.MALE)
        assert len(men) == 20
        country = tiny_panel.users[0].country
        assert all(u.country == country for u in tiny_panel.by_country(country))

    def test_get_unknown_user_raises(self, tiny_panel):
        with pytest.raises(PanelError):
            tiny_panel.get(10**9)

    def test_round_trip_serialisation(self, tiny_panel, tiny_catalog):
        rebuilt = FDVTPanel.from_dicts(tiny_panel.to_dicts(), tiny_catalog)
        assert rebuilt.to_dicts() == tiny_panel.to_dicts()

    def test_country_counts(self, tiny_panel):
        counts = tiny_panel.country_counts()
        assert sum(counts.values()) == len(tiny_panel)


class TestPopularityBias:
    def test_women_need_more_interests_than_men(self):
        women = popularity_bias_for(Gender.FEMALE, AgeGroup.EARLY_ADULTHOOD, "ES")
        men = popularity_bias_for(Gender.MALE, AgeGroup.EARLY_ADULTHOOD, "ES")
        assert women > men

    def test_adolescents_have_highest_age_bias(self):
        adolescent = popularity_bias_for(Gender.MALE, AgeGroup.ADOLESCENCE, "ES")
        adult = popularity_bias_for(Gender.MALE, AgeGroup.ADULTHOOD, "ES")
        assert adolescent > adult

    def test_argentina_above_france(self):
        argentina = popularity_bias_for(Gender.MALE, AgeGroup.EARLY_ADULTHOOD, "AR")
        france = popularity_bias_for(Gender.MALE, AgeGroup.EARLY_ADULTHOOD, "FR")
        assert argentina > france


class TestRiskClassification:
    def test_paper_thresholds(self):
        assert classify_audience(5_000) is RiskLevel.RED
        assert classify_audience(10_000) is RiskLevel.RED
        assert classify_audience(50_000) is RiskLevel.ORANGE
        assert classify_audience(500_000) is RiskLevel.YELLOW
        assert classify_audience(5_000_000) is RiskLevel.GREEN

    def test_custom_thresholds(self):
        thresholds = RiskThresholds(red_max=100, orange_max=1_000, yellow_max=10_000)
        assert thresholds.classify(500) is RiskLevel.ORANGE

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ConfigurationError):
            RiskThresholds(red_max=100_000, orange_max=10_000, yellow_max=1_000_000)

    def test_negative_audience_rejected(self):
        with pytest.raises(ConfigurationError):
            classify_audience(-1)

    def test_risk_descriptions(self):
        assert RiskLevel.RED.description == "high risk"
        assert RiskLevel.GREEN.description == "no risk"


class TestRevenueEstimator:
    def test_high_tier_country_earns_more(self):
        estimator = RevenueEstimator()
        us = estimator.estimate(impressions=100, clicks=2, country="US")
        other = estimator.estimate(impressions=100, clicks=2, country="NP")
        assert us.total_eur > other.total_eur

    def test_zero_activity_is_free(self):
        estimate = RevenueEstimator().estimate(impressions=0, clicks=0, country="ES")
        assert estimate.total_eur == 0.0

    def test_clicks_cannot_exceed_impressions(self):
        with pytest.raises(ConfigurationError):
            RevenueEstimator().estimate(impressions=1, clicks=2, country="ES")


class TestFullPanelMarginals:
    """Marginal checks against the paper's Section 3 / Figure 1 statistics."""

    @pytest.fixture(scope="class")
    def mid_panel(self, tiny_catalog):
        from repro.catalog import InterestCatalog
        from repro.config import CatalogConfig, PanelConfig

        catalog = InterestCatalog.generate(CatalogConfig(n_interests=20_000, seed=17))
        config = PanelConfig(
            n_users=240, n_men=196, n_women=35, n_gender_undisclosed=9,
            n_adolescents=12, n_early_adults=138, n_adults=58, n_matures=2,
            n_age_undisclosed=30, seed=23,
        )
        return PanelBuilder(catalog, config).build(seed=23)

    def test_median_interest_count_close_to_426(self, mid_panel):
        median = float(np.median(mid_panel.interests_per_user()))
        assert 200 < median < 900

    def test_interest_counts_span_a_wide_range(self, mid_panel):
        counts = mid_panel.interests_per_user()
        assert counts.min() < 100
        assert counts.max() > 1_500
