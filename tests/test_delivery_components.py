"""Tests for campaign objects: creatives, schedules, auction, click log, metrics."""

from __future__ import annotations

import pytest

from repro.adsapi import TargetingSpec
from repro.delivery import (
    AdCreative,
    AuctionModel,
    Campaign,
    CampaignMetrics,
    CampaignSchedule,
    CampaignStatus,
    ClickLog,
    TimeWindow,
    pseudonymize_ip,
)
from repro.errors import DeliveryError


class TestAdCreative:
    def test_experiment_creative_identifies_target_and_count(self):
        creative = AdCreative.for_experiment("User 3", 12)
        assert "User 3" in creative.body
        assert "12 interests" in creative.body
        assert creative.landing_url.endswith("user-3-12-interests")

    def test_unique_landing_pages_per_campaign(self):
        first = AdCreative.for_experiment("User 1", 5)
        second = AdCreative.for_experiment("User 1", 7)
        assert first.landing_url != second.landing_url

    def test_invalid_creative_rejected(self):
        with pytest.raises(DeliveryError):
            AdCreative("", "t", "b", "https://x")
        with pytest.raises(DeliveryError):
            AdCreative.for_experiment("User 1", 0)


class TestSchedule:
    def test_paper_schedule_totals_33_hours(self):
        schedule = CampaignSchedule.paper_schedule()
        assert schedule.total_active_hours == pytest.approx(33.0)
        assert len(schedule.windows) == 4

    def test_active_hours_enumeration(self):
        schedule = CampaignSchedule(
            windows=(TimeWindow(0.0, 2.0), TimeWindow(10.0, 13.0))
        )
        hours = list(schedule.active_hours())
        assert hours == [0.0, 1.0, 10.0, 11.0, 12.0]

    def test_elapsed_active_hours_skips_pauses(self):
        schedule = CampaignSchedule(
            windows=(TimeWindow(0.0, 2.0), TimeWindow(10.0, 13.0))
        )
        assert schedule.elapsed_active_hours(1.0) == pytest.approx(1.0)
        assert schedule.elapsed_active_hours(5.0) == pytest.approx(2.0)
        assert schedule.elapsed_active_hours(11.5) == pytest.approx(3.5)

    def test_windows_must_be_ordered(self):
        with pytest.raises(DeliveryError):
            CampaignSchedule(windows=(TimeWindow(5.0, 8.0), TimeWindow(2.0, 4.0)))

    def test_window_must_have_positive_duration(self):
        with pytest.raises(DeliveryError):
            TimeWindow(3.0, 3.0)

    def test_span_days(self):
        schedule = CampaignSchedule.paper_schedule()
        assert schedule.span_days > 4.0


class TestCampaign:
    def _campaign(self) -> Campaign:
        return Campaign(
            campaign_id="c1",
            spec=TargetingSpec.for_interests([1, 2, 3]),
            creative=AdCreative.for_experiment("User 1", 3),
            schedule=CampaignSchedule.paper_schedule(),
            daily_budget_eur=10.0,
            initial_budget_eur=70.0,
        )

    def test_interest_count(self):
        assert self._campaign().interest_count == 3

    def test_status_transition_is_immutable(self):
        campaign = self._campaign()
        active = campaign.with_status(CampaignStatus.ACTIVE)
        assert campaign.status is CampaignStatus.DRAFT
        assert active.status is CampaignStatus.ACTIVE

    def test_budget_must_be_positive(self):
        with pytest.raises(DeliveryError):
            Campaign(
                campaign_id="c2",
                spec=TargetingSpec.for_interests([1]),
                creative=AdCreative.for_experiment("User 1", 1),
                schedule=CampaignSchedule.paper_schedule(),
                daily_budget_eur=0.0,
                initial_budget_eur=70.0,
            )


class TestAuctionModel:
    def test_cpm_sampling_is_positive_and_varies(self):
        auction = AuctionModel()
        cpms = {auction.sample_cpm(seed=i) for i in range(10)}
        assert all(cpm > 0 for cpm in cpms)
        assert len(cpms) > 1

    def test_hourly_budget(self):
        auction = AuctionModel(active_hours_per_day=12.0)
        assert auction.hourly_budget(12.0) == pytest.approx(1.0)

    def test_impressions_for_budget(self):
        auction = AuctionModel()
        assert auction.impressions_for_budget(1.0, cpm_eur=1.0) == pytest.approx(1000.0)

    def test_billed_cost_rounds_to_cents(self):
        auction = AuctionModel()
        assert auction.billed_cost(10_000, cpm_eur=0.75) == pytest.approx(7.5)

    def test_tiny_campaigns_can_be_free(self):
        auction = AuctionModel()
        assert auction.billed_cost(1, cpm_eur=0.75) == 0.0

    def test_single_impression_at_high_cpm_is_one_cent(self):
        auction = AuctionModel()
        assert auction.billed_cost(1, cpm_eur=9.0) == pytest.approx(0.01)

    def test_negative_impressions_rejected(self):
        with pytest.raises(DeliveryError):
            AuctionModel().billed_cost(-1, cpm_eur=1.0)


class TestClickLog:
    def test_ip_addresses_are_pseudonymised(self):
        log = ClickLog(secret_key="secret")
        entry = log.record(
            campaign_id="c1",
            landing_url="https://x/l1",
            hour=1.0,
            ip_address="192.0.2.1",
            is_target=True,
        )
        assert entry.pseudonymized_ip != "192.0.2.1"
        assert entry.pseudonymized_ip == pseudonymize_ip("192.0.2.1", "secret")

    def test_same_ip_same_pseudonym_different_keys_differ(self):
        assert pseudonymize_ip("192.0.2.1", "k1") == pseudonymize_ip("192.0.2.1", "k1")
        assert pseudonymize_ip("192.0.2.1", "k1") != pseudonymize_ip("192.0.2.1", "k2")

    def test_empty_key_rejected(self):
        with pytest.raises(DeliveryError):
            pseudonymize_ip("192.0.2.1", "")

    def test_per_campaign_queries(self):
        log = ClickLog()
        log.record(campaign_id="a", landing_url="u", hour=1.0, ip_address="1.1.1.1", is_target=True)
        log.record(campaign_id="a", landing_url="u", hour=2.0, ip_address="1.1.1.1", is_target=True)
        log.record(campaign_id="b", landing_url="v", hour=3.0, ip_address="2.2.2.2", is_target=False)
        assert len(log.entries_for("a")) == 2
        assert log.unique_ips_for("a") == 1
        assert log.has_target_click("a")
        assert not log.has_target_click("b")


class TestCampaignMetrics:
    def test_valid_metrics(self):
        metrics = CampaignMetrics(
            seen=True,
            reached=1,
            impressions=3,
            time_to_first_impression_hours=2.5,
            cost_eur=0.01,
            clicks=3,
            unique_click_ips=2,
        )
        assert metrics.exclusively_reached_one_user
        assert metrics.format_tfi() == "2h 30'"
        assert metrics.format_cost() == "€0.01"

    def test_free_cost_formatting(self):
        metrics = CampaignMetrics(
            seen=True,
            reached=1,
            impressions=1,
            time_to_first_impression_hours=0.75,
            cost_eur=0.0,
            clicks=1,
            unique_click_ips=1,
        )
        assert metrics.format_cost() == "Free"
        assert metrics.format_tfi() == "45'"

    def test_unseen_campaign_has_no_tfi(self):
        metrics = CampaignMetrics(
            seen=False,
            reached=100,
            impressions=200,
            time_to_first_impression_hours=None,
            cost_eur=5.0,
            clicks=2,
            unique_click_ips=2,
        )
        assert metrics.format_tfi() == "-"

    def test_inconsistent_metrics_rejected(self):
        with pytest.raises(DeliveryError):
            CampaignMetrics(
                seen=True,
                reached=1,
                impressions=1,
                time_to_first_impression_hours=None,
                cost_eur=0.0,
                clicks=1,
                unique_click_ips=1,
            )
        with pytest.raises(DeliveryError):
            CampaignMetrics(
                seen=False,
                reached=10,
                impressions=5,
                time_to_first_impression_hours=None,
                cost_eur=0.0,
                clicks=0,
                unique_click_ips=0,
            )
        with pytest.raises(DeliveryError):
            CampaignMetrics(
                seen=False,
                reached=1,
                impressions=1,
                time_to_first_impression_hours=None,
                cost_eur=0.0,
                clicks=1,
                unique_click_ips=2,
            )
