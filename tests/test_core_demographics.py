"""Tests for the demographic breakdown of the uniqueness analysis (Appendix C)."""

from __future__ import annotations

import pytest

from repro.adsapi import AdsManagerAPI
from repro.config import PlatformConfig, UniquenessConfig
from repro.core import DemographicAnalysis, LeastPopularSelection, RandomSelection
from repro.reach import country_codes
from repro.simclock import SimClock


@pytest.fixture(scope="module")
def analysis(simulation):
    api = AdsManagerAPI(
        simulation.reach_model, platform=PlatformConfig.legacy_2017(), clock=SimClock()
    )
    return DemographicAnalysis(
        api,
        simulation.panel,
        strategies=[LeastPopularSelection(), RandomSelection(seed=4)],
        probability=0.9,
        config=UniquenessConfig(n_bootstrap=40, seed=4),
        locations=country_codes(),
        min_group_size=5,
    )


class TestGenderAnalysis:
    def test_reports_both_genders(self, analysis):
        groups = analysis.by_gender()
        labels = {group.group_label for group in groups}
        assert labels == {"men", "women"}

    def test_each_group_has_both_strategies(self, analysis):
        for group in analysis.by_gender():
            assert set(group.estimates) == {"least_popular", "random"}
            assert group.n_users > 0

    def test_lp_below_random_within_each_gender(self, analysis):
        for group in analysis.by_gender():
            lp = group.estimate_for("least_popular").n_p
            random = group.estimate_for("random").n_p
            assert lp < random


class TestAgeAnalysis:
    def test_reports_at_most_three_age_groups(self, analysis):
        groups = analysis.by_age_group()
        labels = {group.group_label for group in groups}
        assert labels <= {"adolescence", "early_adulthood", "adulthood"}
        assert "early_adulthood" in labels


class TestCountryAnalysis:
    def test_small_groups_are_skipped(self, analysis):
        groups = analysis.by_country(["ES", "AX"])
        labels = {group.group_label for group in groups}
        assert "AX" not in labels

    def test_country_estimates_are_positive(self, analysis):
        for group in analysis.by_country(["ES"]):
            assert group.estimate_for("random").n_p > 0
