"""Tests for the exception hierarchy and small value objects."""

from __future__ import annotations

import pytest

from repro import errors
from repro.adsapi import AdsManagerAPI, TargetingSpec
from repro.config import PlatformConfig
from repro.delivery import ClickEvent, ImpressionEvent
from repro.simclock import SimClock


class TestErrorHierarchy:
    def test_every_library_error_derives_from_repro_error(self):
        error_types = [
            errors.ConfigurationError,
            errors.CalibrationError,
            errors.CatalogError,
            errors.UnknownInterestError,
            errors.PopulationError,
            errors.PanelError,
            errors.AdsApiError,
            errors.TargetingValidationError,
            errors.UnknownLocationError,
            errors.RateLimitExceededError,
            errors.AccountSuspendedError,
            errors.CampaignRejectedError,
            errors.CustomAudienceError,
            errors.DeliveryError,
            errors.ModelError,
            errors.InsufficientDataError,
        ]
        for error_type in error_types:
            assert issubclass(error_type, errors.ReproError)

    def test_api_errors_are_ads_api_errors(self):
        for error_type in (
            errors.TargetingValidationError,
            errors.RateLimitExceededError,
            errors.AccountSuspendedError,
            errors.CampaignRejectedError,
            errors.CustomAudienceError,
        ):
            assert issubclass(error_type, errors.AdsApiError)

    def test_unknown_interest_error_carries_the_id(self):
        error = errors.UnknownInterestError(42)
        assert error.interest_id == 42
        assert "42" in str(error)

    def test_rate_limit_error_carries_retry_hint(self):
        error = errors.RateLimitExceededError(1.5)
        assert error.retry_after_seconds == pytest.approx(1.5)

    def test_catching_repro_error_catches_everything(self, reach_model):
        api = AdsManagerAPI(
            reach_model, platform=PlatformConfig.legacy_2017(), clock=SimClock()
        )
        with pytest.raises(errors.ReproError):
            # Worldwide location is invalid on the legacy platform.
            api.estimate_reach(TargetingSpec.for_interests([0]))


class TestDeliveryEvents:
    def test_impression_event_fields(self):
        event = ImpressionEvent(campaign_id="c1", user_id=3, hour=2.5, is_target=True)
        assert event.campaign_id == "c1"
        assert event.is_target

    def test_click_event_fields(self):
        click = ClickEvent(
            campaign_id="c1", user_id=3, hour=2.6, is_target=False, ip_address="203.0.113.9"
        )
        assert not click.is_target
        assert click.ip_address == "203.0.113.9"

    def test_events_are_hashable_value_objects(self):
        first = ImpressionEvent("c1", 1, 1.0, True)
        second = ImpressionEvent("c1", 1, 1.0, True)
        assert first == second
        assert len({first, second}) == 1


class TestApiCallStats:
    def test_stats_snapshot_is_immutable_and_counts(self, reach_model, catalog):
        api = AdsManagerAPI(
            reach_model, platform=PlatformConfig.modern_2020(), clock=SimClock()
        )
        interest = next(iter(catalog))
        api.estimate_reach(TargetingSpec.for_interests([interest.interest_id]))
        stats = api.call_stats()
        assert stats.reach_estimates == 1
        assert stats.campaigns_authorized == 0
        with pytest.raises(AttributeError):
            stats.reach_estimates = 5
