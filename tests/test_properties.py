"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adsapi import apply_reporting_floor
from repro.adsapi.ratelimit import TokenBucket
from repro.analysis import EmpiricalCDF
from repro.core import AudienceSamples, fit_vas, nested_subsets, truncate_at_floor
from repro.core.quantiles import probability_to_percentile
from repro.delivery import pseudonymize_ip
from repro.errors import InsufficientDataError, ModelError
from repro.fdvt import RiskLevel, RiskThresholds
from repro.simclock import SimClock

# Keep hypothesis deadlines generous: numpy-heavy examples vary in runtime.
COMMON_SETTINGS = settings(max_examples=60, deadline=None)


class TestReportingFloorProperties:
    @COMMON_SETTINGS
    @given(
        raw=st.floats(min_value=0.0, max_value=1e10, allow_nan=False),
        floor=st.integers(min_value=1, max_value=10_000),
    )
    def test_reported_reach_never_below_floor(self, raw, floor):
        estimate = apply_reporting_floor(raw, floor)
        assert estimate.potential_reach >= floor

    @COMMON_SETTINGS
    @given(
        raw=st.floats(min_value=0.0, max_value=1e10, allow_nan=False),
        floor=st.integers(min_value=1, max_value=10_000),
    )
    def test_reported_reach_never_understates_large_audiences(self, raw, floor):
        estimate = apply_reporting_floor(raw, floor)
        if raw >= floor:
            assert abs(estimate.potential_reach - raw) <= 0.5 + 1e-6

    @COMMON_SETTINGS
    @given(
        a=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
        b=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    )
    def test_floor_preserves_ordering(self, a, b):
        low, high = sorted([a, b])
        assert (
            apply_reporting_floor(low, 20).potential_reach
            <= apply_reporting_floor(high, 20).potential_reach
        )


class TestQuantileProperties:
    @COMMON_SETTINGS
    @given(
        data=st.lists(
            st.lists(
                st.floats(min_value=20.0, max_value=1e9, allow_nan=False),
                min_size=5,
                max_size=5,
            ),
            min_size=3,
            max_size=40,
        ),
        q=st.floats(min_value=1.0, max_value=99.0),
    )
    def test_vas_values_lie_within_sample_range(self, data, q):
        matrix = np.sort(np.asarray(data, dtype=float), axis=1)[:, ::-1]
        samples = AudienceSamples(matrix=matrix, floor=20)
        vas = samples.vas(q)
        assert np.nanmin(vas) >= matrix.min() - 1e-6
        assert np.nanmax(vas) <= matrix.max() + 1e-6

    @COMMON_SETTINGS
    @given(
        data=st.lists(
            st.lists(
                st.floats(min_value=20.0, max_value=1e9, allow_nan=False),
                min_size=6,
                max_size=6,
            ),
            min_size=3,
            max_size=30,
        ),
        q_low=st.floats(min_value=1.0, max_value=49.0),
        q_high=st.floats(min_value=51.0, max_value=99.0),
    )
    def test_higher_quantile_dominates_lower(self, data, q_low, q_high):
        matrix = np.asarray(data, dtype=float)
        samples = AudienceSamples(matrix=matrix, floor=20)
        low = samples.vas(q_low)
        high = samples.vas(q_high)
        assert np.all(high + 1e-9 >= low)

    @COMMON_SETTINGS
    @given(
        data=st.lists(
            st.lists(
                st.floats(min_value=20.0, max_value=1e9, allow_nan=False),
                min_size=4,
                max_size=4,
            ),
            min_size=4,
            max_size=30,
        ),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_bootstrap_resample_stays_within_observed_values(self, data, seed):
        matrix = np.asarray(data, dtype=float)
        samples = AudienceSamples(matrix=matrix, floor=20)
        resampled = samples.bootstrap_resample(seed=seed)
        observed = set(np.round(matrix.ravel(), 6))
        resampled_values = set(np.round(resampled.matrix.ravel(), 6))
        assert resampled_values <= observed

    @COMMON_SETTINGS
    @given(probability=st.floats(min_value=0.001, max_value=0.999))
    def test_probability_percentile_round_trip(self, probability):
        assert probability_to_percentile(probability) == pytest.approx(probability * 100)


class TestFittingProperties:
    @COMMON_SETTINGS
    @given(
        slope=st.floats(min_value=1.0, max_value=12.0),
        intercept=st.floats(min_value=2.0, max_value=9.5),
    )
    def test_exact_curves_are_recovered(self, slope, intercept):
        n = np.arange(1, 26, dtype=float)
        vas = 10.0 ** (intercept - slope * np.log10(n + 1.0))
        try:
            fit = fit_vas(np.maximum(vas, 20.0), floor=20)
        except InsufficientDataError:
            return  # The curve saturated immediately; nothing to fit.
        assert fit.cutpoint >= 0.0
        assert 0.0 <= fit.r_squared <= 1.0

    @COMMON_SETTINGS
    @given(
        values=st.lists(
            st.floats(min_value=1.0, max_value=1e9, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
        floor=st.integers(min_value=1, max_value=1000),
    )
    def test_truncate_at_floor_output_is_prefix(self, values, floor):
        array = np.asarray(values, dtype=float)
        truncated = truncate_at_floor(array, floor)
        assert truncated.size <= array.size
        assert np.allclose(truncated, array[: truncated.size])
        # No value before the last kept one is at or below the floor.
        if truncated.size > 1:
            assert np.all(truncated[:-1] > floor)


class TestNestedSubsetProperties:
    @COMMON_SETTINGS
    @given(
        pool=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=40, unique=True),
        data=st.data(),
    )
    def test_subsets_are_nested_and_sized(self, pool, data):
        sizes = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=len(pool)), min_size=1, max_size=6
            )
        )
        subsets = nested_subsets(pool, sizes)
        ordered_sizes = sorted(set(sizes))
        for small, large in zip(ordered_sizes, ordered_sizes[1:]):
            assert set(subsets[small]) <= set(subsets[large])
        for size in sizes:
            assert len(subsets[size]) == size
            assert set(subsets[size]) <= set(pool)


class TestCDFProperties:
    @COMMON_SETTINGS
    @given(
        samples=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=200,
        ),
        probe=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    )
    def test_cdf_is_bounded_and_monotone(self, samples, probe):
        cdf = EmpiricalCDF.from_samples(samples)
        value = cdf.evaluate(probe)
        assert 0.0 <= value <= 1.0
        assert cdf.evaluate(probe + 1.0) >= value

    @COMMON_SETTINGS
    @given(
        samples=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=200,
        )
    )
    def test_percentiles_are_monotone(self, samples):
        cdf = EmpiricalCDF.from_samples(samples)
        p10, p50, p90 = cdf.percentiles([10, 50, 90])
        assert p10 <= p50 <= p90


class TestRiskClassificationProperties:
    @COMMON_SETTINGS
    @given(
        audience=st.floats(min_value=0, max_value=1e10, allow_nan=False),
        red=st.integers(min_value=1, max_value=10**4),
        orange_extra=st.integers(min_value=1, max_value=10**5),
        yellow_extra=st.integers(min_value=1, max_value=10**6),
    )
    def test_larger_audiences_never_increase_risk(
        self, audience, red, orange_extra, yellow_extra
    ):
        thresholds = RiskThresholds(
            red_max=red, orange_max=red + orange_extra, yellow_max=red + orange_extra + yellow_extra
        )
        order = [RiskLevel.RED, RiskLevel.ORANGE, RiskLevel.YELLOW, RiskLevel.GREEN]
        first = order.index(thresholds.classify(audience))
        second = order.index(thresholds.classify(audience * 2 + 1))
        assert second >= first


class TestInfrastructureProperties:
    @COMMON_SETTINGS
    @given(ip=st.ip_addresses(v=4), key=st.text(min_size=1, max_size=30))
    def test_pseudonymisation_is_deterministic_and_hides_the_ip(self, ip, key):
        first = pseudonymize_ip(str(ip), key)
        second = pseudonymize_ip(str(ip), key)
        assert first == second
        assert str(ip) not in first

    @COMMON_SETTINGS
    @given(
        rate=st.floats(min_value=1.0, max_value=10_000.0),
        burst=st.integers(min_value=1, max_value=50),
        acquisitions=st.integers(min_value=1, max_value=200),
    )
    def test_token_bucket_never_exceeds_burst_without_time(self, rate, burst, acquisitions):
        clock = SimClock()
        bucket = TokenBucket(requests_per_minute=rate, burst=burst, clock=clock)
        granted = sum(1 for _ in range(acquisitions) if bucket.try_acquire())
        assert granted <= burst
