"""Shared fixtures for the test suite.

Most tests run against a heavily scaled-down configuration (small catalog,
small panel, few bootstrap replicates) so the whole suite stays fast while
still exercising every code path of the full-scale reproduction.

Simulation builds are shared by content fingerprint: the fixtures delegate
to :mod:`tests/_builders`, whose suite-wide
:class:`repro.cache.BuildCache` lets every test that compiles the same
(config, seed) reuse the catalog and panel stages while keeping the
mutable per-run shell fresh.  Test modules that build their own
simulations or APIs import those helpers (``from _builders import
build_cached_simulation, fresh_legacy_api``) instead of hand-rolling them.
"""

from __future__ import annotations

import pytest

from _builders import (
    SUITE_BUILD_CACHE,
    build_cached_simulation,
    fresh_legacy_api,
    fresh_modern_api,
)
from repro.adsapi import AdsManagerAPI
from repro.cache import BuildCache
from repro.catalog import InterestCatalog
from repro.config import CatalogConfig, PanelConfig
from repro.fdvt import FDVTPanel, PanelBuilder
from repro.population import InterestAssigner
from repro.reach import StatisticalReachModel


@pytest.fixture(scope="session")
def suite_build_cache() -> BuildCache:
    """The suite-wide build cache behind :func:`build_cached_simulation`."""
    return SUITE_BUILD_CACHE


@pytest.fixture(scope="session")
def simulation_factory():
    """The fingerprint-keyed session builder, as a fixture."""
    return build_cached_simulation


@pytest.fixture(scope="session")
def simulation():
    """A fully wired, scaled-down simulation shared across the suite."""
    return build_cached_simulation()


@pytest.fixture(scope="session")
def catalog(simulation) -> InterestCatalog:
    """The shared scaled-down interest catalog."""
    return simulation.catalog


@pytest.fixture(scope="session")
def panel(simulation) -> FDVTPanel:
    """The shared scaled-down FDVT panel."""
    return simulation.panel


@pytest.fixture(scope="session")
def reach_model(simulation) -> StatisticalReachModel:
    """The shared world-scale reach model."""
    return simulation.reach_model


@pytest.fixture(scope="session")
def tiny_catalog() -> InterestCatalog:
    """A very small catalog for unit tests that build their own objects."""
    return InterestCatalog.generate(
        CatalogConfig(n_interests=300, n_topics=6, seed=7), seed=7
    )


@pytest.fixture(scope="session")
def tiny_panel(tiny_catalog) -> FDVTPanel:
    """A very small panel built on the tiny catalog."""
    config = PanelConfig(
        n_users=30,
        n_men=20,
        n_women=8,
        n_gender_undisclosed=2,
        n_adolescents=4,
        n_early_adults=16,
        n_adults=7,
        n_matures=1,
        n_age_undisclosed=2,
        median_interests_per_user=60.0,
        max_interests_per_user=250,
        seed=11,
    )
    assigner = InterestAssigner(tiny_catalog)
    return PanelBuilder(tiny_catalog, config, assigner=assigner).build(seed=11)


@pytest.fixture()
def legacy_api(simulation) -> AdsManagerAPI:
    """A fresh Ads API with the January 2017 platform limits (floor = 20)."""
    return fresh_legacy_api(simulation)


@pytest.fixture()
def modern_api(simulation) -> AdsManagerAPI:
    """A fresh Ads API with the late 2020 platform limits (floor = 1000)."""
    return fresh_modern_api(simulation)
