"""Tests for the configuration objects."""

from __future__ import annotations

import pytest

from repro.config import (
    CatalogConfig,
    ExperimentConfig,
    PanelConfig,
    PlatformConfig,
    PopulationConfig,
    ReachModelConfig,
    ReproductionConfig,
    UniquenessConfig,
    default_config,
    quick_config,
)
from repro.errors import ConfigurationError


class TestCatalogConfig:
    def test_defaults_match_paper_scale(self):
        config = CatalogConfig()
        assert config.n_interests == 99_000
        assert config.median_audience == pytest.approx(418_530.0)

    def test_rejects_non_positive_interest_count(self):
        with pytest.raises(ConfigurationError):
            CatalogConfig(n_interests=0)

    def test_rejects_median_below_floor(self):
        with pytest.raises(ConfigurationError):
            CatalogConfig(median_audience=10.0, min_audience=20)

    def test_rejects_bad_rare_tail_fraction(self):
        with pytest.raises(ConfigurationError):
            CatalogConfig(rare_tail_fraction=1.5)


class TestReachModelConfig:
    def test_alpha_must_be_in_unit_interval(self):
        with pytest.raises(ConfigurationError):
            ReachModelConfig(correlation_alpha=0.0)
        with pytest.raises(ConfigurationError):
            ReachModelConfig(correlation_alpha=1.5)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ConfigurationError):
            ReachModelConfig(jitter_log10_sigma=-0.1)


class TestPlatformConfig:
    def test_legacy_2017_has_20_user_floor_and_no_worldwide(self):
        legacy = PlatformConfig.legacy_2017()
        assert legacy.reach_floor == 20
        assert not legacy.allow_worldwide_location

    def test_modern_2020_has_1000_user_floor_and_worldwide(self):
        modern = PlatformConfig.modern_2020()
        assert modern.reach_floor == 1_000
        assert modern.allow_worldwide_location

    def test_interest_limit_is_25(self):
        assert PlatformConfig().max_interests_per_audience == 25

    def test_location_limit_is_50(self):
        assert PlatformConfig().max_locations_per_query == 50

    def test_rejects_zero_floor(self):
        with pytest.raises(ConfigurationError):
            PlatformConfig(reach_floor=0)


class TestPanelConfig:
    def test_defaults_match_section3(self):
        config = PanelConfig()
        assert config.n_users == 2_390
        assert config.n_men + config.n_women + config.n_gender_undisclosed == 2_390

    def test_gender_counts_must_sum(self):
        with pytest.raises(ConfigurationError):
            PanelConfig(n_men=1000, n_women=1000, n_gender_undisclosed=1000)

    def test_age_counts_must_sum(self):
        with pytest.raises(ConfigurationError):
            PanelConfig(n_adolescents=2_390, n_early_adults=1)


class TestPopulationConfig:
    def test_scale_factor_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            PopulationConfig(scale_factor=0)


class TestUniquenessConfig:
    def test_default_probabilities_match_table1(self):
        assert UniquenessConfig().probabilities == (0.5, 0.8, 0.9, 0.95)

    def test_default_bootstrap_count_matches_paper(self):
        assert UniquenessConfig().n_bootstrap == 10_000

    def test_rejects_probability_outside_unit_interval(self):
        with pytest.raises(ConfigurationError):
            UniquenessConfig(probabilities=(0.5, 1.5))


class TestExperimentConfig:
    def test_default_interest_counts_match_section5(self):
        assert ExperimentConfig().interest_counts == (5, 7, 9, 12, 18, 20, 22)

    def test_success_and_failure_groups(self):
        config = ExperimentConfig()
        assert config.success_group == (12, 18, 20, 22)
        assert config.failure_group == (5, 7, 9)

    def test_rejects_empty_interest_counts(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(interest_counts=())


class TestReproductionConfig:
    def test_default_config_is_full_scale(self):
        config = default_config()
        assert config.panel.n_users == 2_390
        assert config.catalog.n_interests == 99_000

    def test_quick_config_preserves_structure(self):
        config = quick_config(factor=20)
        assert isinstance(config, ReproductionConfig)
        assert config.panel.n_users < 2_390
        total_genders = (
            config.panel.n_men
            + config.panel.n_women
            + config.panel.n_gender_undisclosed
        )
        assert total_genders == config.panel.n_users

    def test_quick_config_age_groups_still_sum(self):
        config = quick_config(factor=35)
        total = (
            config.panel.n_adolescents
            + config.panel.n_early_adults
            + config.panel.n_adults
            + config.panel.n_matures
            + config.panel.n_age_undisclosed
        )
        assert total == config.panel.n_users

    def test_scaled_down_rejects_bad_factor(self):
        with pytest.raises(ConfigurationError):
            default_config().scaled_down(0)
