"""Tests for the analytic world-scale reach model."""

from __future__ import annotations

import pytest

from repro.catalog import InterestCatalog
from repro.config import CatalogConfig, ReachModelConfig
from repro.errors import ConfigurationError
from repro.reach import ReachBackend, StatisticalReachModel, total_user_base


@pytest.fixture(scope="module")
def model():
    catalog = InterestCatalog.generate(CatalogConfig(n_interests=500, seed=21))
    return StatisticalReachModel(catalog, ReachModelConfig(seed=21))


class TestWorldSize:
    def test_default_world_is_the_50_country_base(self, model):
        assert model.world_size() == pytest.approx(total_user_base())

    def test_location_restriction_shrinks_the_base(self, model):
        assert model.world_size(["ES"]) < model.world_size(["ES", "US"])
        assert model.world_size(["ES", "US"]) < model.world_size()

    def test_custom_world_population(self):
        catalog = InterestCatalog.generate(CatalogConfig(n_interests=50, seed=1))
        model = StatisticalReachModel(catalog, world_population=1_000_000)
        assert model.world_size() == pytest.approx(1_000_000)

    def test_zero_world_population_rejected(self):
        catalog = InterestCatalog.generate(CatalogConfig(n_interests=50, seed=1))
        with pytest.raises(ConfigurationError):
            StatisticalReachModel(catalog, world_population=0)


class TestMarginals:
    def test_marginal_audience_matches_catalog(self, model):
        interest = next(iter(model.catalog))
        assert model.marginal_audience(interest.interest_id) == pytest.approx(
            interest.audience_size, rel=1e-6
        )

    def test_marginal_probability_in_unit_interval(self, model):
        for interest in list(model.catalog)[:20]:
            probability = model.marginal_probability(interest.interest_id)
            assert 0.0 < probability <= 1.0

    def test_marginal_audience_scales_with_location(self, model):
        interest = next(iter(model.catalog))
        worldwide = model.marginal_audience(interest.interest_id)
        spain_only = model.marginal_audience(interest.interest_id, ["ES"])
        assert spain_only < worldwide


class TestIntersections:
    def test_implements_reach_backend_protocol(self, model):
        assert isinstance(model, ReachBackend)

    def test_empty_combination_returns_world(self, model):
        assert model.audience_for([]) == pytest.approx(model.world_size())

    def test_single_interest_close_to_marginal(self, model):
        interest = next(iter(model.catalog))
        audience = model.audience_for([interest.interest_id])
        marginal = model.marginal_audience(interest.interest_id)
        # Jitter is bounded; the single-interest audience stays within 2x.
        assert marginal / 2.0 <= audience <= marginal

    def test_adding_interests_never_grows_the_audience(self, model):
        ids = [interest.interest_id for interest in list(model.catalog)[:10]]
        previous = float("inf")
        for n in range(1, len(ids) + 1):
            audience = model.audience_for(ids[:n])
            assert audience <= previous + 1e-6
            previous = audience

    def test_intersection_below_rarest_marginal(self, model):
        ids = [interest.interest_id for interest in list(model.catalog)[:5]]
        audience = model.audience_for(ids)
        rarest = min(model.marginal_audience(i) for i in ids)
        assert audience <= rarest + 1e-6

    def test_intersection_far_above_independence(self, model):
        """Correlation keeps combinations far larger than independence predicts."""
        ids = [interest.interest_id for interest in list(model.catalog)[:6]]
        audience = model.audience_for(ids)
        world = model.world_size()
        independent = world
        for interest_id in ids:
            independent *= model.marginal_probability(interest_id)
        assert audience > independent

    def test_repeated_queries_are_deterministic(self, model):
        ids = [interest.interest_id for interest in list(model.catalog)[:8]]
        assert model.audience_for(ids) == model.audience_for(ids)

    def test_order_of_interests_does_not_matter(self, model):
        ids = [interest.interest_id for interest in list(model.catalog)[:8]]
        assert model.audience_for(ids) == pytest.approx(
            model.audience_for(list(reversed(ids)))
        )

    def test_or_combination_at_least_as_large_as_any_marginal(self, model):
        ids = [interest.interest_id for interest in list(model.catalog)[:4]]
        union = model.audience_for(ids, combine="or")
        largest = max(model.marginal_audience(i) for i in ids)
        assert union >= largest * 0.5
        assert union >= model.audience_for(ids, combine="and")

    def test_unknown_combine_mode_rejected(self, model):
        ids = [next(iter(model.catalog)).interest_id]
        with pytest.raises(ConfigurationError):
            model.audience_for(ids, combine="xor")

    def test_location_restriction_shrinks_combination(self, model):
        ids = [interest.interest_id for interest in list(model.catalog)[:3]]
        assert model.audience_for(ids, ["ES"]) < model.audience_for(ids)


class TestCorrelationAlphaEffect:
    def test_lower_alpha_means_larger_intersections(self):
        catalog = InterestCatalog.generate(CatalogConfig(n_interests=300, seed=3))
        ids = [interest.interest_id for interest in list(catalog)[:10]]
        strong = StatisticalReachModel(
            catalog, ReachModelConfig(correlation_alpha=0.1, jitter_log10_sigma=0.0)
        )
        weak = StatisticalReachModel(
            catalog, ReachModelConfig(correlation_alpha=0.9, jitter_log10_sigma=0.0)
        )
        assert strong.audience_for(ids) > weak.audience_for(ids)

    def test_alpha_one_recovers_independence_up_to_topic_boost(self):
        catalog = InterestCatalog.generate(CatalogConfig(n_interests=300, seed=3))
        model = StatisticalReachModel(
            catalog,
            ReachModelConfig(
                correlation_alpha=1.0, jitter_log10_sigma=0.0, topic_affinity_boost=0.0
            ),
        )
        ids = [interest.interest_id for interest in list(catalog)[:3]]
        independent = model.world_size()
        for interest_id in ids:
            independent *= model.marginal_probability(interest_id)
        assert model.audience_for(ids) == pytest.approx(independent, rel=1e-6)
