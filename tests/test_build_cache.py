"""The fingerprinted build cache: digests, LRU accounting, cached sweeps.

Pins the layer's three contracts:

* **fingerprint stability** — :func:`repro.cache.stable_fingerprint` and the
  config ``fingerprint()`` methods are content addressed: independent of
  dict insertion order, ``PYTHONHASHSEED`` and process restarts (checked
  against a subprocess and a pinned golden digest);
* **cache accounting** — :class:`repro.cache.BuildCache` builds each key at
  most once (including under concurrent callers), counts hits, misses and
  evictions, and ``clear()`` resets everything;
* **bit-identical sharing** — cached builds (``build_simulation(cache=...)``,
  ``ReachModelSpec.build(cache=...)``) and cached sweeps
  (``SweepRunner(share_builds=True)``) return results identical to the
  uncached paths on every backend and worker count, while an
  analysis-knob-only sweep builds its catalog and panel exactly once.
"""

from __future__ import annotations

import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro import build_simulation, quick_config
from repro.cache import BuildCache, build_cache, stable_fingerprint
from repro.config import CatalogConfig
from repro.exec import ShardExecutor
from repro.pipeline import (
    assemble_simulation,
    build_catalog,
    build_panel,
    catalog_fingerprint,
    panel_fingerprint,
    simulation_fingerprint,
)
from repro.scenarios import ScenarioSpec, SweepRunner, expand_grid, run_scenario

FACTOR = 80


def cache_spec(**overrides) -> ScenarioSpec:
    defaults = dict(
        name="cache-uniqueness",
        study="uniqueness",
        factor=FACTOR,
        seed=17,
        strategies=("random",),
        probabilities=(0.9,),
        n_bootstrap=12,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def analysis_knob_grid() -> tuple[ScenarioSpec, ...]:
    """Eight rows that share one (catalog, panel) build fingerprint."""
    grid = expand_grid(
        cache_spec(),
        {
            "strategies": [("least_popular",), ("random",)],
            "probabilities": [(0.8,), (0.9,), (0.95,), (0.8, 0.9)],
        },
    )
    assert len(grid) == 8
    return grid


class TestStableFingerprint:
    def test_dict_order_does_not_matter(self):
        forward = {"a": 1, "b": 2, "nested": {"x": [1, 2], "y": None}}
        backward = {"nested": {"y": None, "x": [1, 2]}, "b": 2, "a": 1}
        assert stable_fingerprint("k", forward) == stable_fingerprint("k", backward)

    def test_kind_tag_separates_equal_payloads(self):
        assert stable_fingerprint("catalog", {"seed": 1}) != stable_fingerprint(
            "panel", {"seed": 1}
        )

    def test_golden_digest_is_pinned(self):
        # Any change to the canonical encoding (key order, separators,
        # float repr, the kind/payload envelope) breaks every persisted
        # fingerprint; this literal makes such a change loud.
        assert (
            stable_fingerprint("CatalogConfig", {"a": 1, "b": [1.5, None, "x"]})
            == "d9ad6ec5cca5c7a1b19dc06360e8e8ef5d3536f684e531e40332da7d4e297c7f"
        )

    def test_tuples_fingerprint_like_lists(self):
        assert stable_fingerprint("k", {"v": (1, 2)}) == stable_fingerprint(
            "k", {"v": [1, 2]}
        )

    def test_unfingerprintable_payloads_are_rejected(self):
        with pytest.raises(TypeError):
            stable_fingerprint("k", {"v": object()})
        with pytest.raises(ValueError):
            stable_fingerprint("k", {"v": float("nan")})

    def test_config_fingerprint_tracks_equality(self):
        assert CatalogConfig().fingerprint() == CatalogConfig().fingerprint()
        assert (
            CatalogConfig(seed=1).fingerprint() != CatalogConfig(seed=2).fingerprint()
        )


class TestFingerprintStability:
    def test_stable_across_process_restarts_and_hash_seeds(self):
        config = quick_config(factor=FACTOR)
        expected = [
            config.fingerprint(),
            catalog_fingerprint(config, 17),
            panel_fingerprint(config, 17),
            simulation_fingerprint(config, 17),
        ]
        script = (
            "from repro import quick_config\n"
            "from repro.pipeline import (catalog_fingerprint, panel_fingerprint,\n"
            "    simulation_fingerprint)\n"
            f"config = quick_config(factor={FACTOR})\n"
            "print(config.fingerprint())\n"
            "print(catalog_fingerprint(config, 17))\n"
            "print(panel_fingerprint(config, 17))\n"
            "print(simulation_fingerprint(config, 17))\n"
        )
        src = Path(__file__).resolve().parent.parent / "src"
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": str(src), "PYTHONHASHSEED": "12345"},
        )
        assert result.stdout.split() == expected

    def test_scenario_stage_fingerprints_round_trip(self):
        spec = cache_spec()
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt.stage_fingerprints() == spec.stage_fingerprints()


class TestBuildCache:
    def test_builds_once_and_counts(self):
        cache = BuildCache(maxsize=4)
        calls = []
        build = lambda: calls.append(1) or "artifact"
        assert cache.get_or_build("k", build) == "artifact"
        assert cache.get_or_build("k", build) == "artifact"
        assert calls == [1]
        info = cache.cache_info()
        assert (info.hits, info.misses, info.currsize, info.maxsize) == (1, 1, 1, 4)
        assert "k" in cache and len(cache) == 1

    def test_lru_evicts_oldest_entry(self):
        cache = BuildCache(maxsize=2)
        cache.get_or_build("a", lambda: "A")
        cache.get_or_build("b", lambda: "B")
        cache.get_or_build("a", lambda: "A")  # refresh a: b is now oldest
        cache.get_or_build("c", lambda: "C")
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.cache_info().evictions == 1

    def test_clear_resets_entries_and_counters(self):
        cache = BuildCache(maxsize=2)
        cache.get_or_build("a", lambda: "A")
        cache.get_or_build("a", lambda: "A")
        cache.clear()
        info = cache.cache_info()
        assert (info.hits, info.misses, info.evictions, info.currsize) == (0, 0, 0, 0)

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            BuildCache(maxsize=0)

    def test_concurrent_misses_build_exactly_once(self):
        cache = BuildCache()
        release = threading.Event()
        calls = []

        def slow_build():
            calls.append(1)
            release.wait(timeout=5)
            return "artifact"

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(cache.get_or_build("k", slow_build))
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        release.set()
        for thread in threads:
            thread.join(timeout=10)
        assert calls == [1]
        assert results == ["artifact"] * 4
        info = cache.cache_info()
        assert info.misses == 1 and info.hits == 3

    def test_process_global_cache_is_a_singleton(self):
        assert build_cache() is build_cache()

    def test_failing_builder_releases_its_key_lock(self):
        cache = BuildCache()

        def explode():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            cache.get_or_build("k", explode)
        assert "k" not in cache
        assert not cache._key_locks  # no leaked per-key lock
        # The next caller retries the build and can succeed.
        assert cache.get_or_build("k", lambda: "artifact") == "artifact"


class TestCachedBuildParity:
    def test_cached_build_is_bit_identical_to_uncached(self):
        config = quick_config(factor=FACTOR)
        cache = BuildCache()
        cached = build_simulation(config, seed=17, cache=cache)
        plain = build_simulation(config, seed=17)
        assert [u.interest_ids for u in cached.panel.users] == [
            u.interest_ids for u in plain.panel.users
        ]
        ids = plain.catalog.interest_ids[:20].reshape(2, 10)
        counts = np.array([10, 7], dtype=np.int64)
        assert np.array_equal(
            cached.reach_model.prefix_audiences_panel(ids, counts, None),
            plain.reach_model.prefix_audiences_panel(ids, counts, None),
            equal_nan=True,
        )

    def test_artifacts_shared_but_shell_fresh(self):
        config = quick_config(factor=FACTOR)
        cache = BuildCache()
        first = build_simulation(config, seed=17, cache=cache)
        second = build_simulation(config, seed=17, cache=cache)
        assert first.catalog is second.catalog
        assert first.panel is second.panel
        assert first.uniqueness_api is not second.uniqueness_api
        assert first.campaign_api is not second.campaign_api
        assert first.click_log is not second.click_log
        info = cache.cache_info()
        assert info.misses == 2 and info.hits == 2

    def test_stage_composition_matches_monolithic_build(self):
        config = quick_config(factor=FACTOR)
        cache = BuildCache()
        catalog = build_catalog(config, seed=17, cache=cache)
        panel = build_panel(config, seed=17, catalog=catalog, cache=cache)
        staged = assemble_simulation(config, catalog, panel, seed=17)
        monolithic = build_simulation(config, seed=17)
        assert [u.interest_ids for u in staged.panel.users] == [
            u.interest_ids for u in monolithic.panel.users
        ]
        assert staged.reach_model.spec == monolithic.reach_model.spec

    def test_reach_spec_rebuild_shares_the_catalog_stage(self):
        config = quick_config(factor=FACTOR)
        cache = BuildCache()
        simulation = build_simulation(config, seed=17, cache=cache)
        rebuilt = simulation.reach_model.spec.build(cache=cache)
        # The worker-side rebuild keys the same catalog-stage fingerprint,
        # so it reuses the sweep's cached catalog object outright.
        assert rebuilt.catalog is simulation.catalog

    def test_conftest_builder_matches_direct_build(
        self, simulation_factory, suite_build_cache
    ):
        config = quick_config(factor=FACTOR)
        cached = simulation_factory(config, seed=17)
        plain = build_simulation(config, seed=17)
        assert [u.interest_ids for u in cached.panel.users] == [
            u.interest_ids for u in plain.panel.users
        ]
        # The session fixture routes through the suite-wide cache: a
        # second compile of the same fingerprints reuses the artifacts.
        again = simulation_factory(config, seed=17)
        assert again.catalog is cached.catalog
        assert again.panel is cached.panel
        assert panel_fingerprint(config, 17) in suite_build_cache


class TestSweepBuildSharing:
    def test_analysis_knob_sweep_builds_catalog_and_panel_once(self):
        grid = analysis_knob_grid()
        runner = SweepRunner()
        assert len(runner.build_groups(grid)) == 1
        build_cache().clear()
        results = runner.run(grid)
        info = build_cache().cache_info()
        # One catalog + one panel fetched from outside memory for all 8
        # rows.  When REPRO_CACHE_ROOT points the process cache at a
        # warmed disk root those two arrive as disk hits instead of
        # builds; either way nothing is built more than once.
        assert info.misses + info.disk_hits == 2
        assert info.memory_hits == 2 * (len(grid) - 1)
        assert results.names == tuple(spec.name for spec in grid)

    def test_seed_axis_rows_do_not_share_builds(self):
        grid = expand_grid(cache_spec(seed=None), {"seed": [1, 2, 3]})
        assert len(SweepRunner().build_groups(grid)) == 3

    @pytest.mark.parametrize(
        "executor",
        [
            ShardExecutor(),
            pytest.param(
                ShardExecutor(backend="thread", workers=2), marks=pytest.mark.slow
            ),
            pytest.param(
                ShardExecutor(backend="thread", workers=4, shard_size=1),
                marks=pytest.mark.slow,
            ),
        ],
        ids=["serial", "thread-2", "thread-4-row-shards"],
    )
    def test_cached_sweep_matches_uncached_sweep(self, executor):
        grid = analysis_knob_grid()
        cached = SweepRunner(executor=executor).run(grid)
        uncached = SweepRunner(executor=executor, share_builds=False).run(grid)
        assert cached == uncached
        assert cached.names == tuple(spec.name for spec in grid)

    @pytest.mark.slow
    def test_process_backend_sweep_is_bit_identical(self):
        grid = analysis_knob_grid()[:4]
        reference = SweepRunner(share_builds=False).run(grid)
        processed = SweepRunner(
            executor=ShardExecutor(backend="process", workers=2, shard_size=2)
        ).run(grid)
        assert processed == reference

    def test_cached_sweep_matches_direct_runs(self):
        grid = analysis_knob_grid()[:3]
        swept = SweepRunner().run(grid)
        for spec in grid:
            assert swept.get(spec.name) == run_scenario(spec)

    def test_mixed_build_groups_keep_grid_order(self):
        # Two build groups interleaved in the grid: regrouping must not
        # leak into the result order.
        grid = expand_grid(
            cache_spec(seed=None),
            {"seed": [5, 6], "strategies": [("least_popular",), ("random",)]},
        )
        assert len(SweepRunner().build_groups(grid)) == 2
        cached = SweepRunner().run(grid)
        uncached = SweepRunner(share_builds=False).run(grid)
        assert cached == uncached
        assert cached.names == tuple(spec.name for spec in grid)
