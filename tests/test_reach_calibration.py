"""Tests for the correlation-exponent calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CalibrationError
from repro.reach import calibrate_correlation_alpha, median_cutpoint


def _profiles(rng: np.random.Generator, n_users: int = 200, n_interests: int = 30):
    """Synthetic per-user marginal-probability profiles (random order)."""
    profiles = []
    for _ in range(n_users):
        log10_p = rng.normal(-3.5, 0.9, size=n_interests)
        profiles.append(np.clip(10.0**log10_p, 1e-9, 0.5))
    return profiles


class TestMedianCutpoint:
    def test_decreases_with_alpha(self):
        rng = np.random.default_rng(1)
        profiles = _profiles(rng)
        world = 1.5e9
        low = median_cutpoint(profiles, 0.1, world)
        high = median_cutpoint(profiles, 0.9, world)
        assert high < low

    def test_requires_profiles(self):
        with pytest.raises(CalibrationError):
            median_cutpoint([], 0.5, 1e9)


class TestCalibration:
    def test_calibration_hits_target(self):
        rng = np.random.default_rng(2)
        profiles = _profiles(rng)
        result = calibrate_correlation_alpha(
            profiles, 1.5e9, target_median_cutpoint=11.41, tolerance=0.5
        )
        assert result.error <= 0.5
        assert 0.01 <= result.alpha <= 1.0

    def test_unreachable_target_raises(self):
        rng = np.random.default_rng(3)
        profiles = _profiles(rng, n_interests=5)
        with pytest.raises(CalibrationError):
            calibrate_correlation_alpha(
                profiles, 1.5e9, target_median_cutpoint=500.0, tolerance=0.1
            )

    def test_requires_profiles(self):
        with pytest.raises(CalibrationError):
            calibrate_correlation_alpha([], 1.5e9)

    def test_invalid_target_rejected(self):
        rng = np.random.default_rng(4)
        with pytest.raises(CalibrationError):
            calibrate_correlation_alpha(_profiles(rng), 1.5e9, target_median_cutpoint=0.5)
