"""Tests for the agent-based population: users, demographics, assignment, counting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog import InterestCatalog
from repro.config import CatalogConfig, PopulationConfig
from repro.errors import PopulationError
from repro.population import (
    AgeGroup,
    Gender,
    InterestAssigner,
    InterestCountModel,
    Population,
    PopulationBuilder,
    PopulationReachBackend,
    SyntheticUser,
    classify_age,
    sample_age,
    sample_ages,
    sample_genders,
)
from repro.reach import WORLDWIDE, ReachBackend


@pytest.fixture(scope="module")
def small_catalog():
    return InterestCatalog.generate(CatalogConfig(n_interests=400, n_topics=8, seed=9))


@pytest.fixture(scope="module")
def small_population(small_catalog):
    config = PopulationConfig(
        n_agents=300,
        scale_factor=100.0,
        median_interests_per_user=40.0,
        max_interests_per_user=150,
        seed=5,
    )
    return PopulationBuilder(small_catalog, config).build(seed=5)


class TestDemographics:
    def test_classify_age_boundaries(self):
        assert classify_age(13) is AgeGroup.ADOLESCENCE
        assert classify_age(19) is AgeGroup.ADOLESCENCE
        assert classify_age(20) is AgeGroup.EARLY_ADULTHOOD
        assert classify_age(39) is AgeGroup.EARLY_ADULTHOOD
        assert classify_age(40) is AgeGroup.ADULTHOOD
        assert classify_age(64) is AgeGroup.ADULTHOOD
        assert classify_age(65) is AgeGroup.MATURITY
        assert classify_age(None) is AgeGroup.UNDISCLOSED

    def test_classify_age_rejects_children(self):
        with pytest.raises(PopulationError):
            classify_age(10)

    def test_sample_age_within_group_bounds(self):
        for group in (AgeGroup.ADOLESCENCE, AgeGroup.EARLY_ADULTHOOD, AgeGroup.ADULTHOOD):
            age = sample_age(group, seed=1)
            assert classify_age(age) is group

    def test_sample_age_undisclosed_is_none(self):
        assert sample_age(AgeGroup.UNDISCLOSED, seed=1) is None

    def test_sample_genders_length_and_values(self):
        genders = sample_genders(100, seed=2)
        assert len(genders) == 100
        assert set(genders) <= {Gender.MALE, Gender.FEMALE}

    def test_sample_ages_range(self):
        ages = sample_ages(500, seed=3)
        assert ages.min() >= 13
        assert ages.max() <= 90


class TestSyntheticUser:
    def test_age_group_property(self):
        user = SyntheticUser(1, "ES", Gender.MALE, 25, (1, 2, 3))
        assert user.age_group is AgeGroup.EARLY_ADULTHOOD

    def test_interest_helpers(self):
        user = SyntheticUser(1, "ES", interest_ids=(1, 2, 3))
        assert user.interest_count == 3
        assert user.has_interest(2)
        assert user.matches_all([1, 3])
        assert not user.matches_all([1, 9])
        assert user.matches_any([9, 3])
        assert not user.matches_any([7, 8])

    def test_without_interest(self):
        user = SyntheticUser(1, "ES", interest_ids=(1, 2, 3))
        trimmed = user.without_interest(2)
        assert trimmed.interest_ids == (1, 3)
        assert user.without_interest(99) is user

    def test_duplicate_interests_rejected(self):
        with pytest.raises(PopulationError):
            SyntheticUser(1, "ES", interest_ids=(1, 1))

    def test_underage_rejected(self):
        with pytest.raises(PopulationError):
            SyntheticUser(1, "ES", age=10)

    def test_round_trip_serialisation(self):
        user = SyntheticUser(4, "FR", Gender.FEMALE, 33, (5, 9, 2))
        assert SyntheticUser.from_dict(user.to_dict()) == user


class TestInterestCountModel:
    def test_bounds_respected(self):
        model = InterestCountModel(median=100, minimum=1, maximum=500)
        counts = model.sample(2_000, seed=1)
        assert counts.min() >= 1
        assert counts.max() <= 500

    def test_median_close_to_configuration(self):
        model = InterestCountModel(median=426, minimum=1, maximum=8950)
        counts = model.sample(5_000, seed=2)
        assert 250 < np.median(counts) < 700

    def test_clipped_to_catalog(self):
        model = InterestCountModel(median=426, maximum=8950)
        clipped = model.clipped_to_catalog(100)
        assert clipped.maximum == 100
        assert clipped.median <= 50


class TestInterestAssigner:
    def test_assigns_requested_number_of_unique_interests(self, small_catalog):
        assigner = InterestAssigner(small_catalog)
        interests = assigner.assign(50, seed=1)
        assert len(interests) == 50
        assert len(set(interests)) == 50

    def test_never_exceeds_catalog_size(self, small_catalog):
        assigner = InterestAssigner(small_catalog)
        interests = assigner.assign(10_000, seed=1)
        assert len(interests) == len(small_catalog)

    def test_zero_interests(self, small_catalog):
        assert InterestAssigner(small_catalog).assign(0, seed=1) == ()

    def test_deterministic_given_seed(self, small_catalog):
        assigner = InterestAssigner(small_catalog)
        assert assigner.assign(30, seed=9) == assigner.assign(30, seed=9)

    def test_preferred_topics_are_overrepresented(self, small_catalog):
        assigner = InterestAssigner(small_catalog, topic_affinity_boost=12.0)
        preferred = assigner.topics[:1]
        interests = assigner.assign(80, seed=3, preferred_topics=preferred)
        topics = [small_catalog.get(i).topic for i in interests]
        share = topics.count(preferred[0]) / len(topics)
        baseline = len(small_catalog.by_topic(preferred[0])) / len(small_catalog)
        assert share > baseline * 2

    def test_popularity_bias_shifts_audience_profile(self, small_catalog):
        assigner = InterestAssigner(small_catalog)
        flat = assigner.assign(60, seed=4, popularity_bias=0.0)
        steep = assigner.assign(60, seed=4, popularity_bias=1.2)
        flat_median = np.median(small_catalog.audience_sizes(flat))
        steep_median = np.median(small_catalog.audience_sizes(steep))
        assert steep_median >= flat_median

    def test_unknown_preferred_topic_rejected(self, small_catalog):
        assigner = InterestAssigner(small_catalog)
        with pytest.raises(PopulationError):
            assigner.assign(10, seed=1, preferred_topics=["Not a topic"])

    def test_invalid_boost_rejected(self, small_catalog):
        with pytest.raises(PopulationError):
            InterestAssigner(small_catalog, topic_affinity_boost=0.5)


class TestPopulation:
    def test_builder_produces_requested_agents(self, small_population):
        assert len(small_population) == 300
        assert small_population.scale_factor == 100.0

    def test_users_have_interests_and_countries(self, small_population):
        user = small_population.users[0]
        assert user.interest_count >= 1
        assert user.country

    def test_audience_counting_and_scaling(self, small_population):
        audiences = small_population.interest_audiences()
        interest_id, agent_count = max(audiences.items(), key=lambda item: item[1])
        assert small_population.agent_count([interest_id]) == agent_count
        assert small_population.audience_size([interest_id]) == agent_count * 100.0

    def test_and_combination_never_larger_than_single(self, small_population):
        user = max(small_population.users, key=lambda u: u.interest_count)
        pair = list(user.interest_ids[:2])
        both = small_population.agent_count(pair)
        single = small_population.agent_count(pair[:1])
        assert both <= single
        assert both >= 1  # the user themselves matches

    def test_or_combination_at_least_as_large_as_and(self, small_population):
        user = max(small_population.users, key=lambda u: u.interest_count)
        pair = list(user.interest_ids[:2])
        assert small_population.agent_count(pair, combine="or") >= small_population.agent_count(pair)

    def test_location_filter(self, small_population):
        country = small_population.users[0].country
        national = small_population.agent_count((), [country])
        assert 0 < national <= len(small_population)
        assert small_population.agent_count((), [WORLDWIDE]) == len(small_population)

    def test_demographic_subsets_partition(self, small_population):
        men = small_population.by_gender(Gender.MALE)
        women = small_population.by_gender(Gender.FEMALE)
        assert len(men) + len(women) == len(small_population)

    def test_subset_by_country(self, small_population):
        country = small_population.users[0].country
        national = small_population.by_country(country)
        assert all(user.country == country for user in national)

    def test_unknown_user_raises(self, small_population):
        with pytest.raises(PopulationError):
            small_population.get(10**9)

    def test_duplicate_user_ids_rejected(self):
        user = SyntheticUser(1, "ES", interest_ids=(1,))
        with pytest.raises(PopulationError):
            Population([user, user])

    def test_invalid_combine_mode_rejected(self, small_population):
        with pytest.raises(PopulationError):
            small_population.agent_count([1], combine="xor")


class TestPopulationReachBackend:
    def test_implements_protocol(self, small_population):
        backend = PopulationReachBackend(small_population)
        assert isinstance(backend, ReachBackend)

    def test_counts_are_scaled(self, small_population):
        backend = PopulationReachBackend(small_population)
        assert backend.world_size() == len(small_population) * 100.0
        interest_id = next(iter(small_population.interest_audiences()))
        assert backend.audience_for([interest_id]) == small_population.audience_size(
            [interest_id]
        )
