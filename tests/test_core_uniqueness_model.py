"""Tests for the audience collector, the uniqueness model and its reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adsapi import AdsManagerAPI
from repro.config import PlatformConfig, UniquenessConfig
from repro.core import (
    AudienceSizeCollector,
    LeastPopularSelection,
    RandomSelection,
    UniquenessModel,
)
from repro.errors import ModelError
from repro.reach import country_codes
from repro.simclock import SimClock


@pytest.fixture(scope="module")
def uniqueness_setup(simulation):
    """A fresh legacy-platform API plus a small uniqueness configuration."""
    api = AdsManagerAPI(
        simulation.reach_model,
        platform=PlatformConfig.legacy_2017(),
        clock=SimClock(),
    )
    config = UniquenessConfig(n_bootstrap=60, seed=101)
    model = UniquenessModel(
        api, simulation.panel, config, locations=country_codes()
    )
    return api, model


class TestAudienceSizeCollector:
    def test_matrix_shape_and_floor(self, simulation):
        api = AdsManagerAPI(
            simulation.reach_model,
            platform=PlatformConfig.legacy_2017(),
            clock=SimClock(),
        )
        collector = AudienceSizeCollector(
            api, simulation.panel, max_interests=6, locations=country_codes()
        )
        samples = collector.collect(LeastPopularSelection())
        assert samples.matrix.shape == (len(simulation.panel), 6)
        assert samples.floor == 20
        finite = samples.matrix[~np.isnan(samples.matrix)]
        assert (finite >= 20).all()

    def test_max_interests_cannot_exceed_platform_limit(self, simulation):
        api = AdsManagerAPI(simulation.reach_model, platform=PlatformConfig())
        with pytest.raises(ModelError):
            AudienceSizeCollector(api, simulation.panel, max_interests=30)

    def test_collect_for_users_subsets_rows(self, simulation):
        api = AdsManagerAPI(
            simulation.reach_model,
            platform=PlatformConfig.legacy_2017(),
            clock=SimClock(),
        )
        collector = AudienceSizeCollector(
            api, simulation.panel, max_interests=4, locations=country_codes()
        )
        wanted = [user.user_id for user in list(simulation.panel)[:5]]
        samples = collector.collect_for_users(LeastPopularSelection(), wanted)
        assert samples.n_users == 5

    def test_collect_for_unknown_users_rejected(self, simulation):
        api = AdsManagerAPI(
            simulation.reach_model,
            platform=PlatformConfig.legacy_2017(),
            clock=SimClock(),
        )
        collector = AudienceSizeCollector(
            api, simulation.panel, max_interests=4, locations=country_codes()
        )
        with pytest.raises(ModelError):
            collector.collect_for_users(LeastPopularSelection(), [10**9])


class TestUniquenessModel:
    def test_reports_contain_requested_probabilities(self, uniqueness_setup):
        _, model = uniqueness_setup
        report = model.estimate(RandomSelection(seed=1), probabilities=[0.5, 0.9])
        assert report.probabilities == (0.5, 0.9)
        assert report.strategy_name == "random"
        assert report.n_users == len(model.panel)

    def test_np_increases_with_probability(self, uniqueness_setup):
        _, model = uniqueness_setup
        report = model.estimate(RandomSelection(seed=1), probabilities=[0.5, 0.8, 0.9])
        values = [report.estimate_for(p).n_p for p in (0.5, 0.8, 0.9)]
        assert values[0] < values[1] < values[2]

    def test_least_popular_needs_fewer_interests_than_random(self, uniqueness_setup):
        _, model = uniqueness_setup
        lp = model.estimate(LeastPopularSelection(), probabilities=[0.9])
        rnd = model.estimate(RandomSelection(seed=1), probabilities=[0.9])
        assert lp.estimate_for(0.9).n_p < rnd.estimate_for(0.9).n_p

    def test_fit_quality_is_high(self, uniqueness_setup):
        _, model = uniqueness_setup
        report = model.estimate(RandomSelection(seed=1), probabilities=[0.5])
        assert report.estimate_for(0.5).r_squared > 0.85

    def test_confidence_interval_brackets_estimate(self, uniqueness_setup):
        _, model = uniqueness_setup
        estimate = model.estimate_single(RandomSelection(seed=1), 0.5)
        ci = estimate.confidence_interval
        assert ci.low <= estimate.n_p * 1.15
        assert ci.high >= estimate.n_p * 0.85

    def test_collection_is_cached_per_strategy(self, uniqueness_setup):
        api, model = uniqueness_setup
        strategy = RandomSelection(seed=1)
        before = api.call_stats().reach_estimates
        model.collect(strategy)
        after_first = api.call_stats().reach_estimates
        model.collect(strategy)
        assert api.call_stats().reach_estimates == after_first
        assert after_first >= before

    def test_vas_curves_are_monotone(self, uniqueness_setup):
        _, model = uniqueness_setup
        report = model.estimate(RandomSelection(seed=1), probabilities=[0.5])
        curve = report.vas_curves[0.5]
        finite = curve[~np.isnan(curve)]
        assert all(finite[i] + 1e-9 >= finite[i + 1] for i in range(len(finite) - 1))

    def test_table_row_and_summary(self, uniqueness_setup):
        _, model = uniqueness_setup
        report = model.estimate(LeastPopularSelection(), probabilities=[0.5, 0.9])
        row = report.table_row()
        assert row["strategy"] == "least_popular"
        assert "P=0.5" in row and "P=0.9 95% CI" in row
        assert len(report.summary_lines()) == 3

    def test_unknown_probability_raises(self, uniqueness_setup):
        _, model = uniqueness_setup
        report = model.estimate(LeastPopularSelection(), probabilities=[0.5])
        with pytest.raises(ModelError):
            report.estimate_for(0.9)

    def test_empty_probability_list_rejected(self, uniqueness_setup):
        _, model = uniqueness_setup
        with pytest.raises(ModelError):
            model.estimate(LeastPopularSelection(), probabilities=[])
