"""Property-based tests on the reach model and exact-counting semantics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import InterestCatalog
from repro.config import CatalogConfig, ReachModelConfig
from repro.population import Population, SyntheticUser
from repro.reach import StatisticalReachModel

SETTINGS = settings(max_examples=40, deadline=None)

_CATALOG = InterestCatalog.generate(CatalogConfig(n_interests=120, n_topics=6, seed=31))
_MODEL = StatisticalReachModel(_CATALOG, ReachModelConfig(seed=31))
_IDS = [int(i) for i in _CATALOG.interest_ids]


def _subset(indices: list[int]) -> list[int]:
    return sorted({_IDS[i % len(_IDS)] for i in indices})


class TestReachModelProperties:
    @SETTINGS
    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=12))
    def test_audience_is_positive_and_bounded_by_world(self, indices):
        interests = _subset(indices)
        audience = _MODEL.audience_for(interests)
        assert 0.0 <= audience <= _MODEL.world_size()

    @SETTINGS
    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=2, max_size=12))
    def test_removing_an_interest_never_shrinks_the_audience(self, indices):
        interests = _subset(indices)
        if len(interests) < 2:
            return
        full = _MODEL.audience_for(interests)
        without_last = _MODEL.audience_for(interests[:-1])
        assert without_last + 1e-9 >= full

    @SETTINGS
    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=12))
    def test_and_never_exceeds_or(self, indices):
        interests = _subset(indices)
        narrowed = _MODEL.audience_for(interests, combine="and")
        widened = _MODEL.audience_for(interests, combine="or")
        assert narrowed <= widened + 1e-6

    @SETTINGS
    @given(
        st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=10),
        st.permutations(["ES", "FR", "US"]),
    )
    def test_location_subsets_shrink_audiences(self, indices, countries):
        interests = _subset(indices)
        one_country = _MODEL.audience_for(interests, countries[:1])
        all_three = _MODEL.audience_for(interests, countries)
        worldwide = _MODEL.audience_for(interests)
        assert one_country <= all_three + 1e-6
        assert all_three <= worldwide + 1e-6


class TestExactCountingProperties:
    @SETTINGS
    @given(
        profiles=st.lists(
            st.lists(st.integers(min_value=0, max_value=119), min_size=1, max_size=15),
            min_size=2,
            max_size=25,
        )
    )
    def test_population_counts_match_brute_force(self, profiles):
        users = [
            SyntheticUser(
                user_id=index,
                country="ES",
                interest_ids=tuple(sorted(set(profile))),
            )
            for index, profile in enumerate(profiles)
        ]
        population = Population(users, scale_factor=1.0)
        probe = tuple(sorted(set(profiles[0])))[:3]
        expected_and = sum(1 for user in users if user.matches_all(probe))
        expected_or = sum(1 for user in users if user.matches_any(probe))
        assert population.agent_count(probe) == expected_and
        assert population.agent_count(probe, combine="or") == expected_or

    @SETTINGS
    @given(
        profiles=st.lists(
            st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=10),
            min_size=2,
            max_size=20,
        ),
        scale=st.floats(min_value=1.0, max_value=10_000.0),
    )
    def test_scaling_is_linear(self, profiles, scale):
        users = [
            SyntheticUser(
                user_id=index, country="ES", interest_ids=tuple(sorted(set(profile)))
            )
            for index, profile in enumerate(profiles)
        ]
        population = Population(users, scale_factor=scale)
        probe = tuple(sorted(set(profiles[0])))[:2]
        assert population.audience_size(probe) == pytest.approx(
            population.agent_count(probe) * scale
        )
