"""Tests for the token-bucket rate limiter and reach-estimate floor logic."""

from __future__ import annotations

import pytest

from repro.adsapi import ReachEstimate, TokenBucket, apply_reporting_floor
from repro.errors import AdsApiError, ConfigurationError, RateLimitExceededError
from repro.simclock import SimClock


class TestTokenBucket:
    def test_burst_capacity_is_available_immediately(self):
        clock = SimClock()
        bucket = TokenBucket(requests_per_minute=60, burst=5, clock=clock)
        for _ in range(5):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refills_over_time(self):
        clock = SimClock()
        bucket = TokenBucket(requests_per_minute=60, burst=1, clock=clock)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(1.0)  # 60/min = 1 per second
        assert bucket.try_acquire()

    def test_acquire_raises_with_retry_hint(self):
        clock = SimClock()
        bucket = TokenBucket(requests_per_minute=60, burst=1, clock=clock)
        bucket.acquire()
        with pytest.raises(RateLimitExceededError) as excinfo:
            bucket.acquire()
        assert excinfo.value.retry_after_seconds > 0

    def test_seconds_until_available(self):
        clock = SimClock()
        bucket = TokenBucket(requests_per_minute=60, burst=1, clock=clock)
        bucket.acquire()
        assert bucket.seconds_until_available() == pytest.approx(1.0, abs=0.05)

    def test_capacity_never_exceeded(self):
        clock = SimClock()
        bucket = TokenBucket(requests_per_minute=600, burst=3, clock=clock)
        clock.advance(3600)
        assert bucket.available_tokens == pytest.approx(3.0)

    def test_invalid_parameters_rejected(self):
        clock = SimClock()
        with pytest.raises(ConfigurationError):
            TokenBucket(requests_per_minute=0, burst=1, clock=clock)
        with pytest.raises(ConfigurationError):
            TokenBucket(requests_per_minute=60, burst=0, clock=clock)
        bucket = TokenBucket(requests_per_minute=60, burst=1, clock=clock)
        with pytest.raises(ConfigurationError):
            bucket.try_acquire(0)


class TestReachEstimate:
    def test_floor_applied_to_small_audiences(self):
        estimate = apply_reporting_floor(3.2, floor=20)
        assert estimate.potential_reach == 20
        assert estimate.floored
        assert estimate.at_floor

    def test_large_audiences_are_rounded(self):
        estimate = apply_reporting_floor(1234.6, floor=20)
        assert estimate.potential_reach == 1235
        assert not estimate.floored

    def test_value_exactly_at_floor(self):
        estimate = apply_reporting_floor(20.0, floor=20)
        assert estimate.potential_reach == 20
        assert not estimate.floored
        assert estimate.at_floor

    def test_int_conversion(self):
        assert int(apply_reporting_floor(500, floor=20)) == 500

    def test_modern_floor_of_1000(self):
        estimate = apply_reporting_floor(640, floor=1000)
        assert estimate.potential_reach == 1000
        assert estimate.floored

    def test_negative_audience_rejected(self):
        with pytest.raises(AdsApiError):
            apply_reporting_floor(-1, floor=20)

    def test_invalid_floor_rejected(self):
        with pytest.raises(AdsApiError):
            apply_reporting_floor(100, floor=0)

    def test_estimate_cannot_be_below_floor(self):
        with pytest.raises(AdsApiError):
            ReachEstimate(potential_reach=5, floor=20, floored=True)
