"""Property tests of the fingerprint contract over seed × panel-size grids.

The contract (:mod:`repro.config`): ``fingerprint()`` is a content address —
two configs collide exactly when they compare equal — and every documented
config transformation (``with_panel_users``, ``scaled_down``, sub-config
replacement, seed changes) moves the digest.  The stage fingerprints of
:mod:`repro.pipeline` inherit the property per stage: analysis knobs leave
the catalog/panel digests alone, build knobs move them.
"""

from __future__ import annotations

from dataclasses import replace
from itertools import product

import pytest

from repro import quick_config
from repro.config import ReproductionConfig, UniquenessConfig
from repro.pipeline import (
    catalog_fingerprint,
    panel_fingerprint,
    simulation_fingerprint,
)
from repro.scenarios import ScenarioSpec

SEEDS = (1, 2, 3)
PANEL_SIZES = (20, 35, 50)


def grid_config(seed: int, panel_users: int) -> ReproductionConfig:
    """One point of the seed × panel-size grid."""
    config = quick_config(factor=50).with_panel_users(panel_users)
    return replace(config, catalog=replace(config.catalog, seed=seed))


class TestFingerprintCollidesIffEqual:
    def test_over_the_seed_by_panel_size_grid(self):
        points = list(product(SEEDS, PANEL_SIZES))
        # Build every grid config twice: equal configs from independent
        # construction paths must collide, distinct ones must not.
        configs = {point: grid_config(*point) for point in points}
        rebuilt = {point: grid_config(*point) for point in points}
        for a, b in product(points, repeat=2):
            collides = configs[a].fingerprint() == rebuilt[b].fingerprint()
            assert collides == (configs[a] == rebuilt[b]), (a, b)

    def test_grid_digests_are_pairwise_distinct(self):
        digests = [grid_config(*point).fingerprint() for point in product(SEEDS, PANEL_SIZES)]
        assert len(set(digests)) == len(digests)

    def test_sub_config_seed_moves_the_digest(self):
        base = quick_config(factor=50)
        for field_name in ("catalog", "reach", "panel", "uniqueness", "experiment"):
            sub = getattr(base, field_name)
            changed = replace(base, **{field_name: replace(sub, seed=sub.seed + 1)})
            assert changed.fingerprint() != base.fingerprint(), field_name


class TestTransformationsMoveTheDigest:
    def test_with_panel_users_is_distinct_per_size(self):
        base = quick_config(factor=50)
        digests = {base.fingerprint()}
        for n_users in PANEL_SIZES:
            resized = base.with_panel_users(n_users)
            assert resized.fingerprint() not in digests or resized == base
            digests.add(resized.fingerprint())
        assert len(digests) == 1 + len(PANEL_SIZES)

    def test_with_panel_users_at_current_size_is_identity(self):
        base = quick_config(factor=50)
        unchanged = base.with_panel_users(base.panel.n_users)
        assert unchanged == base
        assert unchanged.fingerprint() == base.fingerprint()

    def test_round_trip_digest_tracks_config_equality(self):
        # Quota rounding is not a bijection, so shrinking and growing back
        # may land on different quotas — the digest must agree with
        # whatever equality says, not assume restoration.
        base = quick_config(factor=50)
        round_tripped = base.with_panel_users(35).with_panel_users(base.panel.n_users)
        assert (round_tripped.fingerprint() == base.fingerprint()) == (
            round_tripped == base
        )

    def test_scaled_down_is_distinct_per_factor(self):
        base = quick_config(factor=20)
        digests = {base.fingerprint()}
        for factor in (2, 5, 10):
            scaled = base.scaled_down(factor)
            digests.add(scaled.fingerprint())
        assert len(digests) == 4


class TestStageFingerprints:
    def test_panel_size_moves_panel_but_not_catalog(self):
        base = quick_config(factor=50)
        resized = base.with_panel_users(35)
        assert catalog_fingerprint(base) == catalog_fingerprint(resized)
        assert panel_fingerprint(base) != panel_fingerprint(resized)
        assert simulation_fingerprint(base) != simulation_fingerprint(resized)

    def test_top_level_seed_moves_every_stage(self):
        config = quick_config(factor=50)
        for fingerprint in (catalog_fingerprint, panel_fingerprint, simulation_fingerprint):
            assert fingerprint(config, 1) != fingerprint(config, 2)
            assert fingerprint(config, 1) != fingerprint(config, None)

    def test_analysis_knobs_leave_build_stages_alone(self):
        config = quick_config(factor=50)
        analysed = replace(
            config,
            uniqueness=replace(
                config.uniqueness, probabilities=(0.8,), n_bootstrap=7
            ),
        )
        assert catalog_fingerprint(config) == catalog_fingerprint(analysed)
        assert panel_fingerprint(config) == panel_fingerprint(analysed)
        assert simulation_fingerprint(config) != simulation_fingerprint(analysed)


class TestScenarioStageFingerprints:
    def spec(self, **overrides) -> ScenarioSpec:
        defaults = dict(
            name="fp", study="uniqueness", factor=50, seed=11, probabilities=(0.9,)
        )
        defaults.update(overrides)
        return ScenarioSpec(**defaults)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"strategies": ("least_popular",)},
            {"probabilities": (0.8,)},
            {"n_bootstrap": 9},
            {"countermeasures": ("interest_cap:9",)},
            {"api_tier": "modern_2020"},
        ],
        ids=["strategies", "probabilities", "n_bootstrap", "countermeasures", "api_tier"],
    )
    def test_analysis_knobs_share_catalog_and_panel(self, overrides):
        base = self.spec().stage_fingerprints()
        varied = self.spec(**overrides).stage_fingerprints()
        assert varied["catalog"] == base["catalog"]
        assert varied["panel"] == base["panel"]

    @pytest.mark.parametrize(
        "overrides",
        [{"seed": 12}, {"panel_users": 30}, {"factor": 60}],
        ids=["seed", "panel_users", "factor"],
    )
    def test_build_knobs_move_the_panel_stage(self, overrides):
        base = self.spec().stage_fingerprints()
        varied = self.spec(**overrides).stage_fingerprints()
        assert varied["panel"] != base["panel"]
        assert varied["simulation"] != base["simulation"]
