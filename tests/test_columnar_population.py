"""Columnar population/panel parity suite.

Pins the contract of the columnar refactor: the CSR-backed
:class:`~repro.population.columnar.PanelColumns` store, the sharded
columnar builders (:meth:`PopulationBuilder.build_columns`,
:meth:`PanelBuilder.build_columns`) and the array-native query/collection
paths are *bit-identical* to the original object implementations — same
users, same audience counts, same collection matrices, same ``CallStats``,
same bootstrap cutpoints — for every execution backend and shard size.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import build_panel, build_simulation, resolve_panel_layout
from repro.adsapi import AdsManagerAPI
from repro.config import PanelConfig, PlatformConfig, PopulationConfig, UniquenessConfig
from repro.core import (
    AudienceAccumulator,
    AudienceSizeCollector,
    LeastPopularSelection,
    RandomSelection,
    bootstrap_cutpoints,
)
from repro.errors import ConfigurationError, PanelError, PopulationError
from repro.exec import ShardExecutor, drain
from repro.fdvt import FDVTPanel, PanelBuilder
from repro.population import (
    AGE_UNDISCLOSED,
    AgeGroup,
    Gender,
    InterestAssigner,
    PanelColumns,
    Population,
    PopulationBuilder,
    SyntheticUser,
    classify_age_codes,
)
from repro.reach import country_codes
from repro.scenarios import RunManifest, ScenarioSpec, SweepRunner
from repro.simclock import SimClock


def _users_for_columns() -> list[SyntheticUser]:
    return [
        SyntheticUser(1, "US", Gender.MALE, 25, (3, 1, 2)),
        SyntheticUser(7, "FR", Gender.FEMALE, None, (2,)),
        SyntheticUser(4, "US", Gender.UNDISCLOSED, 70, ()),
        SyntheticUser(9, "AR", Gender.FEMALE, 13, (5, 4, 1)),
    ]


class TestPanelColumns:
    def test_round_trip_is_exact(self):
        users = _users_for_columns()
        columns = PanelColumns.from_users(users)
        assert columns.to_users() == tuple(users)
        assert len(columns) == 4
        assert columns.nnz == 7
        assert columns.interest_counts().tolist() == [3, 1, 0, 3]

    def test_user_at_materialises_single_rows(self):
        users = _users_for_columns()
        columns = PanelColumns.from_users(users)
        assert columns.user_at(1) == users[1]
        assert columns.user_at(1).age is None
        assert columns.user_at(2).interest_ids == ()

    def test_take_mask_and_indices(self):
        columns = PanelColumns.from_users(_users_for_columns())
        mask = np.array([True, False, False, True])
        picked = columns.take(mask)
        assert picked.to_users() == (columns.user_at(0), columns.user_at(3))
        reordered = columns.take(np.array([3, 0]))
        assert reordered.to_users() == (columns.user_at(3), columns.user_at(0))

    def test_validation_rejects_broken_layouts(self):
        columns = PanelColumns.from_users(_users_for_columns())
        with pytest.raises(PopulationError, match="indptr"):
            PanelColumns(
                user_ids=columns.user_ids,
                country_codes=columns.country_codes,
                country_index=columns.country_index,
                gender_index=columns.gender_index,
                ages=columns.ages,
                indptr=columns.indptr[:-1],
                interest_ids=columns.interest_ids,
            )
        with pytest.raises(PopulationError, match="unique"):
            PanelColumns(
                user_ids=np.zeros_like(columns.user_ids),
                country_codes=columns.country_codes,
                country_index=columns.country_index,
                gender_index=columns.gender_index,
                ages=columns.ages,
                indptr=columns.indptr,
                interest_ids=columns.interest_ids,
            )

    def test_classify_age_codes_matches_scalar(self):
        ages = np.array([13, 19, 20, 39, 40, 64, 65, 90, 91, AGE_UNDISCLOSED])
        codes = classify_age_codes(ages)
        assert codes.tolist() == [0, 0, 1, 1, 2, 2, 3, 3, 3, 4]
        with pytest.raises(PopulationError):
            classify_age_codes(np.array([12]))

    def test_memory_is_column_scale(self):
        columns = PanelColumns.from_users(_users_for_columns())
        # 13 bytes/user + 4 bytes/occurrence (+ int64 indptr entry).
        assert columns.nbytes == 4 * (8 + 2 + 1 + 2 + 8) + 8 + 7 * 4


@pytest.fixture(scope="module")
def population_builder(tiny_catalog) -> PopulationBuilder:
    config = PopulationConfig(
        n_agents=150,
        median_interests_per_user=25.0,
        max_interests_per_user=120,
        scale_factor=3.5,
    )
    return PopulationBuilder(tiny_catalog, config)


@pytest.fixture(scope="module")
def object_population(population_builder) -> Population:
    return population_builder.build(seed=17)


@pytest.fixture(scope="module")
def columnar_population(population_builder) -> Population:
    return population_builder.build_columns(seed=17)


class TestPopulationParity:
    def test_users_bit_identical(self, object_population, columnar_population):
        assert columnar_population.users == object_population.users

    def test_audience_queries_match(self, object_population, columnar_population):
        probe = object_population.users[0].interest_ids[:3]
        for combine in ("and", "or"):
            assert object_population.matching_user_ids(
                probe, combine=combine
            ) == columnar_population.matching_user_ids(probe, combine=combine)
            assert object_population.agent_count(
                probe, combine=combine
            ) == columnar_population.agent_count(probe, combine=combine)
        assert object_population.audience_size(probe) == columnar_population.audience_size(probe)
        assert (
            object_population.interest_audiences()
            == columnar_population.interest_audiences()
        )
        assert object_population.countries == columnar_population.countries

    def test_demographic_filters_match(self, object_population, columnar_population):
        assert object_population.matching_user_ids(
            genders=(Gender.FEMALE,), age_groups=(AgeGroup.EARLY_ADULTHOOD,)
        ) == columnar_population.matching_user_ids(
            genders=(Gender.FEMALE,), age_groups=(AgeGroup.EARLY_ADULTHOOD,)
        )
        country = object_population.users[0].country
        assert (
            object_population.by_country(country).users
            == columnar_population.by_country(country).users
        )
        assert (
            object_population.by_gender(Gender.MALE).users
            == columnar_population.by_gender(Gender.MALE).users
        )

    def test_location_filter_matches(self, object_population, columnar_population):
        country = object_population.users[3].country
        probe = object_population.users[3].interest_ids[:1]
        assert object_population.matching_user_ids(
            probe, (country,)
        ) == columnar_population.matching_user_ids(probe, (country,))
        # Unknown locations match nobody, worldwide matches everybody.
        assert columnar_population.matching_user_ids(probe, ("XX",)) == set()
        assert object_population.matching_user_ids(
            probe, ("worldwide",)
        ) == columnar_population.matching_user_ids(probe, ("worldwide",))

    def test_subset_and_get_match(self, object_population, columnar_population):
        wanted = [u.user_id for u in object_population.users[:7]]
        assert (
            object_population.subset(wanted).users
            == columnar_population.subset(wanted).users
        )
        uid = wanted[3]
        assert columnar_population.get(uid) == object_population.get(uid)
        assert uid in columnar_population
        with pytest.raises(PopulationError, match="unknown user id"):
            columnar_population.get(10**9)

    def test_columnar_queries_stay_lazy(self, population_builder):
        population = population_builder.build_columns(seed=23)
        probe = (1, 2, 3)
        population.matching_user_ids(probe)
        population.agent_count(probe, combine="or")
        population.interest_audiences()
        population.by_gender(Gender.MALE)
        assert population._users is None  # queries never touched objects
        assert len(population.users) == 150
        assert population._users is not None

    def test_backend_and_shard_size_invariance(self, population_builder):
        reference = population_builder.build_columns(seed=31).columns
        for backend, workers, shard_size in (
            ("serial", 1, 7),
            ("thread", 3, 64),
            ("thread", 2, 1),
        ):
            executor = ShardExecutor(
                backend=backend, workers=workers, shard_size=shard_size
            )
            produced = population_builder.build_columns(
                seed=31, executor=executor
            ).columns
            assert produced.content_equals(reference)


@pytest.fixture(scope="module")
def panel_builder(tiny_catalog) -> PanelBuilder:
    config = PanelConfig(
        n_users=90,
        n_men=60,
        n_women=24,
        n_gender_undisclosed=6,
        n_adolescents=12,
        n_early_adults=48,
        n_adults=21,
        n_matures=3,
        n_age_undisclosed=6,
        median_interests_per_user=40.0,
        max_interests_per_user=200,
        seed=13,
    )
    return PanelBuilder(tiny_catalog, config, assigner=InterestAssigner(tiny_catalog))


@pytest.fixture(scope="module")
def object_panel(panel_builder) -> FDVTPanel:
    return panel_builder.build(seed=13)


@pytest.fixture(scope="module")
def columnar_panel(panel_builder) -> FDVTPanel:
    return panel_builder.build_columns(seed=13)


class TestPanelParity:
    def test_users_bit_identical(self, object_panel, columnar_panel):
        assert columnar_panel.users == object_panel.users

    def test_statistics_match(self, object_panel, columnar_panel):
        assert np.array_equal(
            object_panel.interests_per_user(), columnar_panel.interests_per_user()
        )
        assert np.array_equal(
            object_panel.unique_interest_ids(), columnar_panel.unique_interest_ids()
        )
        assert (
            object_panel.total_interest_occurrences()
            == columnar_panel.total_interest_occurrences()
        )
        assert object_panel.country_counts() == columnar_panel.country_counts()

    def test_demographic_subsets_match(self, object_panel, columnar_panel):
        assert (
            object_panel.by_gender(Gender.FEMALE).users
            == columnar_panel.by_gender(Gender.FEMALE).users
        )
        assert (
            object_panel.by_age_group(AgeGroup.ADOLESCENCE).users
            == columnar_panel.by_age_group(AgeGroup.ADOLESCENCE).users
        )
        country = object_panel.users[0].country
        assert (
            object_panel.by_country(country).users
            == columnar_panel.by_country(country).users
        )
        with pytest.raises(PanelError):
            columnar_panel.by_country("XX")

    def test_get_matches_without_materialising(self, panel_builder):
        panel = panel_builder.build_columns(seed=41)
        user = panel.get(5)
        assert user.user_id == 5
        assert panel._users is None
        with pytest.raises(PanelError, match="unknown panel user id"):
            panel.get(10**9)

    def test_backend_and_shard_size_invariance(self, panel_builder, object_panel):
        reference = object_panel.users
        for backend, workers, shard_size in (("serial", 1, 11), ("thread", 4, 32)):
            executor = ShardExecutor(
                backend=backend, workers=workers, shard_size=shard_size
            )
            produced = panel_builder.build_columns(seed=13, executor=executor)
            assert produced.users == reference


def _stats_tuple(api: AdsManagerAPI):
    return (api.call_stats(), api.rate_limiter.available_tokens)


@pytest.fixture(scope="module")
def parity_reach_model(tiny_catalog):
    from repro.config import ReachModelConfig
    from repro.reach import StatisticalReachModel

    return StatisticalReachModel(tiny_catalog, ReachModelConfig())


class TestCollectionParity:
    """Collection matrices and CallStats across layouts, tiers and backends."""

    def _api(self, parity_reach_model) -> AdsManagerAPI:
        return AdsManagerAPI(
            parity_reach_model,
            platform=PlatformConfig.legacy_2017(),
            clock=SimClock(),
        )

    def _collect(self, parity_reach_model, panel, strategy, **kwargs):
        api = self._api(parity_reach_model)
        collector = AudienceSizeCollector(
            api, panel, max_interests=10, locations=country_codes()
        )
        if "executor" in kwargs:
            samples = collector.collect_sharded(strategy, executor=kwargs["executor"])
        elif kwargs.get("stream"):
            samples = drain(
                collector.collect_stream(strategy), AudienceAccumulator()
            ).to_samples()
        else:
            samples = collector.collect(strategy, mode=kwargs.get("mode", "panel"))
        return samples, _stats_tuple(api)

    @pytest.mark.parametrize("strategy_name", ["least_popular", "random"])
    def test_matrices_and_call_stats_match(
        self, parity_reach_model, object_panel, columnar_panel, strategy_name
    ):
        strategy = (
            LeastPopularSelection()
            if strategy_name == "least_popular"
            else RandomSelection(seed=99)
        )
        reference, reference_stats = self._collect(
            parity_reach_model, object_panel, strategy
        )
        for kwargs in (
            {},
            {"mode": "batch"},
            {"executor": ShardExecutor(shard_size=17)},
            {"executor": ShardExecutor(backend="thread", workers=3, shard_size=31)},
            {"stream": True},
        ):
            samples, stats = self._collect(
                parity_reach_model, columnar_panel, strategy, **kwargs
            )
            assert np.array_equal(samples.matrix, reference.matrix, equal_nan=True)
            assert samples.user_ids == reference.user_ids
            assert stats[0] == reference_stats[0]
            # Rate-limiter refill is clock-granular; tolerate float jitter.
            assert stats[1] == pytest.approx(reference_stats[1], abs=1e-3)

    def test_collect_for_users_matches(
        self, parity_reach_model, object_panel, columnar_panel
    ):
        strategy = LeastPopularSelection()
        wanted = [u.user_id for u in object_panel.users[10:30]] + [10**9, 10]
        reference = AudienceSizeCollector(
            self._api(parity_reach_model),
            object_panel,
            max_interests=10,
            locations=country_codes(),
        ).collect_for_users(strategy, wanted)
        columnar = AudienceSizeCollector(
            self._api(parity_reach_model),
            columnar_panel,
            max_interests=10,
            locations=country_codes(),
        ).collect_for_users(strategy, wanted)
        assert np.array_equal(columnar.matrix, reference.matrix, equal_nan=True)
        assert columnar.user_ids == reference.user_ids

    def test_bootstrap_cutpoints_match(
        self, parity_reach_model, object_panel, columnar_panel
    ):
        strategy = RandomSelection(seed=5)
        reference, _ = self._collect(parity_reach_model, object_panel, strategy)
        streamed, _ = self._collect(
            parity_reach_model, columnar_panel, strategy, stream=True
        )
        expected = bootstrap_cutpoints(
            reference, (50.0, 90.0), n_bootstrap=60, seed=3
        )
        produced = bootstrap_cutpoints(
            streamed, (50.0, 90.0), n_bootstrap=60, seed=3
        )
        for q in (50.0, 90.0):
            assert np.array_equal(expected[q], produced[q], equal_nan=True)

    @pytest.mark.slow
    def test_process_backend_matches(
        self, parity_reach_model, object_panel, columnar_panel
    ):
        strategy = LeastPopularSelection()
        reference, reference_stats = self._collect(
            parity_reach_model, object_panel, strategy
        )
        executor = ShardExecutor(backend="process", workers=2, shard_size=31)
        samples, stats = self._collect(
            parity_reach_model, columnar_panel, strategy, executor=executor
        )
        assert np.array_equal(samples.matrix, reference.matrix, equal_nan=True)
        assert stats == reference_stats


@pytest.mark.slow
def test_process_backend_generation_matches(tiny_catalog):
    """Process workers rebuild the assigner from its spec — same columns."""
    from repro.config import CatalogConfig
    from repro.population import AssignerSpec

    config = PopulationConfig(
        n_agents=60, median_interests_per_user=15.0, max_interests_per_user=60
    )
    spec = AssignerSpec(
        catalog_config=CatalogConfig(n_interests=300, n_topics=6, seed=7),
        catalog_seed=7,
    )
    assigner = InterestAssigner(tiny_catalog, spec=spec)
    builder = PopulationBuilder(tiny_catalog, config, assigner=assigner)
    reference = builder.build_columns(seed=29).columns
    executor = ShardExecutor(backend="process", workers=2, shard_size=16)
    produced = builder.build_columns(seed=29, executor=executor).columns
    assert produced.content_equals(reference)


class TestPipelineLayout:
    def test_resolve_layout_env_and_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PANEL_LAYOUT", raising=False)
        assert resolve_panel_layout() == "columnar"
        monkeypatch.setenv("REPRO_PANEL_LAYOUT", "objects")
        assert resolve_panel_layout() == "objects"
        assert resolve_panel_layout("columnar") == "columnar"
        with pytest.raises(ConfigurationError, match="unknown panel layout"):
            resolve_panel_layout("rowwise")

    def test_build_panel_layouts_bit_identical(self, simulation_factory):
        simulation = simulation_factory()
        columnar = build_panel(
            simulation.config, seed=None, catalog=simulation.catalog, layout="columnar"
        )
        objects = build_panel(
            simulation.config, seed=None, catalog=simulation.catalog, layout="objects"
        )
        assert columnar.has_columns and not objects.has_columns
        assert columnar.users == objects.users

    def test_build_simulation_threads_layout(self):
        from repro.config import quick_config

        config = quick_config(factor=120)
        simulation = build_simulation(config, seed=3, panel_layout="columnar")
        assert simulation.panel.has_columns
        reference = build_simulation(config, seed=3, panel_layout="objects")
        assert not reference.panel.has_columns
        assert simulation.panel.users == reference.panel.users


class TestSweepLayoutNote:
    def _grid(self):
        return [
            ScenarioSpec(
                name="layout-note",
                study="uniqueness",
                factor=120,
                seed=5,
                probabilities=(0.9,),
                n_bootstrap=20,
            )
        ]

    def test_manifest_records_layout(self):
        report = SweepRunner().run_report(self._grid())
        assert report.manifest.notes["panel_layout"] == "columnar"

    def test_resume_rejects_layout_mismatch(self, monkeypatch):
        report = SweepRunner().run_report(self._grid())
        monkeypatch.setenv("REPRO_PANEL_LAYOUT", "objects")
        with pytest.raises(ConfigurationError, match="panel layout"):
            SweepRunner().run_report(self._grid(), resume=report.manifest)

    def test_resume_accepts_matching_layout(self):
        report = SweepRunner().run_report(self._grid())
        resumed = SweepRunner().run_report(self._grid(), resume=report.manifest)
        assert resumed.manifest.notes["panel_layout"] == "columnar"
        assert all(entry.resumed for entry in resumed.manifest.completed())

    def test_legacy_manifest_without_note_resumes(self):
        report = SweepRunner().run_report(self._grid())
        notes = report.manifest.notes
        notes.pop("panel_layout")
        legacy = RunManifest(report.manifest.completed(), notes=notes)
        resumed = SweepRunner().run_report(self._grid(), resume=legacy)
        assert resumed.manifest.notes["panel_layout"] == "columnar"


@pytest.mark.slow
def test_moderate_scale_columnar_end_to_end(tiny_catalog):
    """Scalable end-to-end smoke: build -> collect (sharded) -> bootstrap.

    Runs at a moderate default; set ``REPRO_SCALE_USERS=1000000`` to drive
    the full million-user acceptance (the bench script's scale stage is
    the instrumented version with the memory gates).
    """
    from repro.config import ReachModelConfig
    from repro.reach import StatisticalReachModel

    n_users = int(os.environ.get("REPRO_SCALE_USERS", "3000"))
    config = PanelConfig(
        n_users=n_users,
        n_men=n_users - 2 * (n_users // 5) - n_users // 10,
        n_women=2 * (n_users // 5),
        n_gender_undisclosed=n_users // 10,
        n_adolescents=n_users // 10,
        n_early_adults=n_users - 3 * (n_users // 10),
        n_adults=n_users // 10,
        n_matures=n_users // 10,
        n_age_undisclosed=0,
        median_interests_per_user=10.0,
        max_interests_per_user=60,
        seed=19,
    )
    panel = PanelBuilder(tiny_catalog, config).build_columns(
        seed=19, executor=ShardExecutor(backend="thread", workers=2, shard_size=512)
    )
    assert panel.has_columns and len(panel) == n_users
    api = AdsManagerAPI(
        StatisticalReachModel(tiny_catalog, ReachModelConfig()),
        platform=PlatformConfig.legacy_2017(),
        clock=SimClock(),
    )
    collector = AudienceSizeCollector(
        api, panel, max_interests=10, locations=country_codes()
    )
    store = drain(
        collector.collect_stream(
            LeastPopularSelection(), executor=ShardExecutor(shard_size=1024)
        ),
        AudienceAccumulator(),
    )
    assert store.n_users == n_users
    cutpoints = bootstrap_cutpoints(store, (50.0,), n_bootstrap=30, seed=11)
    assert np.isfinite(cutpoints[50.0]).any() or np.isnan(cutpoints[50.0]).all()
