"""Chaos-parity suite for the fault-tolerance layer (:mod:`repro.faults`).

The load-bearing claims, each pinned here:

* **Determinism** — injected faults are a pure hash of
  ``(seed, task_index, attempt)``; the same plan replays identically.
* **Chaos parity** — with fault injection on and retries enabled,
  results, ``CallStats`` and ``TokenBucket`` levels are bit-identical to
  the fault-free run on every backend × worker count, including a
  simulated worker crash on each backend.
* **Graceful degradation** — a spec that exhausts its retries
  dead-letters (error + traceback captured) under ``on_error="skip"``
  and aborts with shard context under ``"raise"``.
* **Kill–resume** — a sweep interrupted after a partial manifest resumes
  to a result set bit-identical to the undisturbed run.
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.adsapi import AdsManagerAPI
from repro.core.collection import AudienceSizeCollector
from repro.core.quantiles import AudienceAccumulator
from repro.core.results import ScenarioResult
from repro.core.selection import RandomSelection
from repro.errors import (
    ConfigurationError,
    InjectedFaultError,
    PanelError,
    ShardFailedError,
    TransientApiError,
    WorkerCrashError,
)
from repro.exec import ShardExecutor, make_runner
from repro.faults import (
    FAULT_DEPTHS,
    FAULT_RATE_ENV,
    FAULT_SEED_ENV,
    FaultPlan,
    RetryPolicy,
    WallClockRetryPolicy,
    ambient_chaos,
    fire_inner,
    guarded_call,
    run_guarded,
)
from repro.reach import country_codes
from repro.scenarios import (
    RunManifest,
    ScenarioSpec,
    SweepRunner,
    expand_grid,
    run_scenario,
)
from repro.scenarios.manifest import ManifestEntry

from _builders import fresh_legacy_api

#: A plan busy enough that every kind fires somewhere on a small task set.
CHAOS = FaultPlan(seed=5, transient_rate=0.3, error_rate=0.2, slow_rate=0.2)

#: Enough attempts to outlast CHAOS's max_faults_per_task bound.
RETRIES = RetryPolicy(max_attempts=CHAOS.max_faults_per_task + 1)


def _square(x: int) -> int:
    return x * x


class TestFaultPlan:
    def test_decisions_are_deterministic_and_instance_independent(self):
        plan_a = FaultPlan(seed=9, transient_rate=0.2, error_rate=0.2, crash_rate=0.1)
        plan_b = FaultPlan(seed=9, transient_rate=0.2, error_rate=0.2, crash_rate=0.1)
        decisions = [plan_a.decide(i, a) for i in range(50) for a in range(3)]
        assert decisions == [plan_b.decide(i, a) for i in range(50) for a in range(3)]
        assert any(d is not None for d in decisions)

    def test_different_seeds_give_different_schedules(self):
        one = FaultPlan(seed=1, error_rate=0.5).preview(64)
        two = FaultPlan(seed=2, error_rate=0.5).preview(64)
        assert one != two

    def test_max_faults_per_task_bounds_the_stream(self):
        plan = FaultPlan(seed=3, error_rate=1.0, max_faults_per_task=2)
        assert plan.decide(0, 0) is not None
        assert plan.decide(0, 1) is not None
        assert plan.decide(0, 2) is None  # guaranteed-clean attempt

    def test_fire_raises_the_decided_kind(self):
        plan = FaultPlan(seed=3, transient_rate=1.0)
        with pytest.raises(TransientApiError) as excinfo:
            plan.fire(0, 0)
        assert excinfo.value.retry_after_seconds == plan.retry_after_seconds
        with pytest.raises(InjectedFaultError):
            FaultPlan(seed=3, error_rate=1.0).fire(0, 0)
        with pytest.raises(WorkerCrashError):
            FaultPlan(seed=3, crash_rate=1.0).fire(0, 0)
        # "slow" returns its decision instead of raising.
        decision = FaultPlan(seed=3, slow_rate=1.0, slow_seconds=7.0).fire(0, 0)
        assert decision.kind == "slow" and decision.seconds == 7.0

    def test_restricted_keeps_only_named_kinds(self):
        crash_only = CHAOS.restricted("crash")
        assert crash_only.transient_rate == 0.0
        assert crash_only.error_rate == 0.0
        assert crash_only.slow_rate == 0.0
        assert crash_only.crash_rate == CHAOS.crash_rate
        assert crash_only.seed == CHAOS.seed
        with pytest.raises(ConfigurationError):
            CHAOS.restricted("meteor")

    def test_derive_follows_the_seed_discipline(self):
        assert FaultPlan.derive(11, "sweep").seed == FaultPlan.derive(11, "sweep").seed
        assert FaultPlan.derive(11, "sweep").seed != FaultPlan.derive(11, "shard").seed

    def test_invalid_plans_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(seed=1, error_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(seed=1, transient_rate=0.6, error_rate=0.6)
        with pytest.raises(ConfigurationError):
            FaultPlan(seed=1, max_faults_per_task=-1)
        with pytest.raises(ConfigurationError):
            FaultPlan(seed=1, slow_seconds=-1.0)

    def test_preview_lists_every_decision(self):
        plan = FaultPlan(seed=5, error_rate=0.5, max_faults_per_task=2)
        decisions = plan.preview(32, attempts=2)
        assert decisions == [
            d
            for i in range(32)
            for a in range(2)
            if (d := plan.decide(i, a)) is not None
        ]


class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(base_delay_seconds=1.0, multiplier=3.0, max_delay_seconds=5.0)
        assert policy.backoff_delay(0) == 1.0
        assert policy.backoff_delay(1) == 3.0
        assert policy.backoff_delay(2) == 5.0  # capped

    def test_retry_after_hint_raises_the_floor(self):
        policy = RetryPolicy(base_delay_seconds=0.1)
        error = TransientApiError(retry_after_seconds=9.0)
        assert policy.backoff_delay(0, error) == 9.0

    def test_retryable_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(TransientApiError())
        assert policy.is_retryable(WorkerCrashError("boom"))
        assert not policy.is_retryable(ConfigurationError("bad"))
        assert not policy.is_retryable(PanelError("bad"))

    def test_invalid_policies_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(deadline_seconds=0.0)


class TestGuardedCall:
    def test_transient_faults_retry_to_success(self):
        plan = FaultPlan(seed=3, transient_rate=1.0, max_faults_per_task=2)
        value, attempts = guarded_call(
            _square, 6, index=0, retry=RetryPolicy(max_attempts=3), faults=plan
        )
        assert value == 36
        assert attempts == 3  # two injected failures, then the clean attempt

    def test_without_retry_the_fault_propagates(self):
        plan = FaultPlan(seed=3, error_rate=1.0)
        with pytest.raises(InjectedFaultError):
            run_guarded(_square, 6, index=0, faults=plan)

    def test_non_retryable_errors_fail_fast(self):
        calls = []

        def explode(x):
            calls.append(x)
            raise ConfigurationError("not transient")

        with pytest.raises(ConfigurationError):
            guarded_call(explode, 1, index=0, retry=RetryPolicy(max_attempts=5))
        assert len(calls) == 1

    def test_exhausted_attempts_annotate_the_error(self):
        plan = FaultPlan(seed=3, error_rate=1.0, max_faults_per_task=10)
        with pytest.raises(InjectedFaultError) as excinfo:
            guarded_call(
                _square, 6, index=0, retry=RetryPolicy(max_attempts=3), faults=plan
            )
        assert excinfo.value.attempts == 3

    def test_deadline_stops_retrying_early(self):
        plan = FaultPlan(seed=3, transient_rate=1.0, max_faults_per_task=10)
        policy = RetryPolicy(
            max_attempts=50,
            base_delay_seconds=10.0,
            multiplier=1.0,
            deadline_seconds=25.0,
        )
        with pytest.raises(TransientApiError) as excinfo:
            guarded_call(_square, 6, index=0, retry=policy, faults=plan)
        # 10s + 10s backoffs fit the 25s budget, the third does not.
        assert excinfo.value.attempts == 3

    def test_base_attempt_offsets_the_fault_stream(self):
        plan = FaultPlan(seed=3, error_rate=1.0, max_faults_per_task=2)
        # Starting past the fault bound, the task runs clean first try.
        value, attempts = guarded_call(
            _square, 6, index=0, faults=plan, base_attempt=plan.max_faults_per_task
        )
        assert (value, attempts) == (36, 1)


class TestWallClockRetryPolicy:
    """The service-side retry policy: same contract, real clock, full jitter."""

    def _virtual_timer_pair(self):
        """A fake (timer, sleeper) pair: sleeping advances the timer."""
        now = [0.0]
        sleeps: list[float] = []

        def timer() -> float:
            return now[0]

        def sleeper(seconds: float) -> None:
            sleeps.append(seconds)
            now[0] += seconds

        return timer, sleeper, sleeps

    def test_jitter_is_seeded_and_reproducible(self):
        policy = WallClockRetryPolicy(jitter_seed=7)
        twin = WallClockRetryPolicy(jitter_seed=7)
        pairs = [(a, s) for a in range(4) for s in range(3)]
        delays = [policy.backoff_delay(a, salt=s) for a, s in pairs]
        assert delays == [twin.backoff_delay(a, salt=s) for a, s in pairs]
        assert delays != [
            WallClockRetryPolicy(jitter_seed=8).backoff_delay(a, salt=s)
            for a, s in pairs
        ]

    def test_full_jitter_stays_under_the_exponential_cap(self):
        wall = WallClockRetryPolicy(jitter_seed=3)
        sim = RetryPolicy()  # shares the exponential-cap knobs
        for attempt in range(12):
            cap = sim.backoff_delay(attempt)
            for salt in range(5):
                assert 0.0 <= wall.backoff_delay(attempt, salt=salt) <= cap

    def test_salts_decorrelate_concurrent_callers(self):
        # Same attempt, different callers: the reach service salts with
        # the request id precisely so a shared outage does not stampede.
        policy = WallClockRetryPolicy(jitter_seed=1)
        delays = {policy.backoff_delay(0, salt=s) for s in range(16)}
        assert len(delays) > 1

    def test_retry_after_hint_raises_the_floor(self):
        policy = WallClockRetryPolicy(jitter_seed=1, base_delay_seconds=0.01)
        hinted = TransientApiError("throttled", retry_after_seconds=9.0)
        assert policy.backoff_delay(0, hinted, salt=0) >= 9.0

    def test_describe_reports_the_clock(self):
        wall = WallClockRetryPolicy(jitter_seed=4).describe()
        assert wall["clock"] == "wall"
        assert wall["jitter"] == "full"
        assert wall["jitter_seed"] == 4
        assert RetryPolicy().describe()["clock"] == "sim"

    def test_policy_is_picklable_with_default_timer_pair(self):
        # The timer/sleeper defaults resolve lazily, so the policy ships
        # to process-pool workers like the simulated one does.
        policy = WallClockRetryPolicy(max_attempts=4, jitter_seed=2)
        clone = pickle.loads(pickle.dumps(policy))
        assert clone == policy
        assert clone.backoff_delay(1, salt=0) == policy.backoff_delay(1, salt=0)

    def test_injected_timer_pair_drives_guarded_call_without_sleeping(self):
        timer, sleeper, sleeps = self._virtual_timer_pair()
        plan = FaultPlan(seed=3, transient_rate=1.0, max_faults_per_task=2)
        policy = WallClockRetryPolicy(
            max_attempts=3, jitter_seed=1, timer=timer, sleeper=sleeper
        )
        value, attempts = guarded_call(
            _square, 6, index=0, retry=policy, faults=plan
        )
        assert (value, attempts) == (36, 3)
        hinted = TransientApiError("", retry_after_seconds=plan.retry_after_seconds)
        assert sleeps == pytest.approx(
            [policy.backoff_delay(a, hinted, salt=0) for a in (0, 1)]
        )

    def test_wall_deadline_measured_on_the_injected_timer(self):
        timer, sleeper, sleeps = self._virtual_timer_pair()
        # The injected retry_after floor (6s) already blows the 5s budget,
        # so the first failure gives up without sleeping at all.
        plan = FaultPlan(
            seed=3, transient_rate=1.0, retry_after_seconds=6.0,
            max_faults_per_task=10,
        )
        policy = WallClockRetryPolicy(
            max_attempts=50, deadline_seconds=5.0, timer=timer, sleeper=sleeper
        )
        with pytest.raises(TransientApiError) as excinfo:
            guarded_call(_square, 6, index=0, retry=policy, faults=plan)
        assert excinfo.value.attempts == 1
        assert sleeps == []


class TestKernelDepthInjection:
    """Plans with ``depth="kernel"`` fire at :func:`fire_inner` sites."""

    def test_fire_inner_is_a_no_op_without_context(self):
        fire_inner("kernel")  # outside any guarded_call: nothing to fire

    def test_depth_is_validated(self):
        assert FAULT_DEPTHS == ("guard", "kernel", "cache", "billing")
        with pytest.raises(ConfigurationError):
            FaultPlan(seed=1, error_rate=0.1, depth="basement")
        # Latency and worker exits belong to the guard layer only.
        for inner in ("kernel", "cache", "billing"):
            with pytest.raises(ConfigurationError):
                FaultPlan(seed=1, slow_rate=0.1, depth=inner)
            with pytest.raises(ConfigurationError):
                FaultPlan(seed=1, crash_rate=0.1, depth=inner)

    def test_kernel_faults_fire_inside_the_task_body(self):
        plan = FaultPlan(seed=3, error_rate=1.0, depth="kernel", max_faults_per_task=1)
        entered = []

        def body(x):
            entered.append(x)
            fire_inner("kernel")
            return x

        with pytest.raises(InjectedFaultError):
            run_guarded(body, 1, index=0, faults=plan)
        # Unlike guard depth, the body was already running when it failed.
        assert entered == [1]

    def test_kernel_faults_retry_to_convergence(self):
        plan = FaultPlan(seed=3, error_rate=1.0, depth="kernel", max_faults_per_task=2)

        def body(x):
            fire_inner("kernel")
            return x * x

        value, attempts = guarded_call(
            body, 6, index=0, retry=RetryPolicy(max_attempts=3), faults=plan
        )
        assert (value, attempts) == (36, 3)

    def test_sites_and_depths_must_match(self):
        plan = FaultPlan(seed=3, error_rate=1.0, depth="kernel", max_faults_per_task=10)

        def body(x):
            fire_inner("guard")  # wrong site: stays silent
            return x

        assert run_guarded(body, 5, index=0, faults=plan) == 5
        # The context is reset after the call — later sites see nothing.
        fire_inner("kernel")

    def test_guard_depth_plans_never_reach_inner_sites(self):
        plan = FaultPlan(seed=3, error_rate=1.0, max_faults_per_task=1)

        def body(x):
            fire_inner("kernel")  # must not double-fire the same decision
            return x

        with pytest.raises(InjectedFaultError):
            run_guarded(body, 1, index=0, faults=plan)
        # Consumed at the guard: attempt 1 runs clean, body included.
        value, attempts = guarded_call(
            body, 7, index=0, retry=RetryPolicy(max_attempts=2), faults=plan
        )
        assert (value, attempts) == (7, 2)


class TestRunnerFaultTolerance:
    TASKS = list(range(40))
    EXPECTED = [x * x for x in TASKS]

    @pytest.mark.parametrize(
        "backend,workers",
        [
            ("serial", 1),
            ("thread", 3),
            pytest.param("process", 2, marks=pytest.mark.slow),
        ],
    )
    def test_chaos_run_matches_fault_free(self, backend, workers):
        runner = make_runner(backend, workers, retry=RETRIES, faults=CHAOS)
        assert runner.run(_square, self.TASKS) == self.EXPECTED
        assert list(runner.stream(_square, self.TASKS)) == self.EXPECTED

    @pytest.mark.parametrize("backend,workers", [("serial", 1), ("thread", 2)])
    def test_simulated_worker_crash_is_retried_in_process(self, backend, workers):
        crash = FaultPlan(seed=11, crash_rate=0.3, max_faults_per_task=1)
        runner = make_runner(
            backend, workers, retry=RetryPolicy(max_attempts=2), faults=crash
        )
        assert crash.preview(len(self.TASKS))  # the plan does fire
        assert runner.run(_square, self.TASKS) == self.EXPECTED

    @pytest.mark.slow
    def test_process_pool_crash_recovery(self):
        # On the process backend a "crash" decision hard-exits the worker,
        # breaking the pool for real; the runner rebuilds it and resubmits
        # every unfinished shard with an advanced attempt counter.
        crash = FaultPlan(seed=11, crash_rate=0.15, max_faults_per_task=1)
        runner = make_runner(
            "process", 3, retry=RetryPolicy(max_attempts=5), faults=crash
        )
        assert crash.preview(len(self.TASKS))
        assert runner.run(_square, self.TASKS) == self.EXPECTED

    @pytest.mark.slow
    def test_process_pool_crash_without_retry_surfaces_shard_context(self):
        crash = FaultPlan(seed=11, crash_rate=1.0, max_faults_per_task=1)
        runner = make_runner("process", 2, faults=crash)
        with pytest.raises(ShardFailedError) as excinfo:
            runner.run(_square, self.TASKS)
        assert excinfo.value.backend == "process"
        assert isinstance(excinfo.value.cause, WorkerCrashError)

    @pytest.mark.parametrize("backend,workers", [("serial", 1), ("thread", 2)])
    def test_failures_surface_with_shard_context(self, backend, workers):
        doomed = FaultPlan(seed=3, error_rate=1.0, max_faults_per_task=1)
        runner = make_runner(backend, workers, faults=doomed)
        with pytest.raises(ShardFailedError) as excinfo:
            runner.run(_square, self.TASKS)
        assert excinfo.value.shard_index == 0
        assert excinfo.value.backend == backend
        assert isinstance(excinfo.value.cause, InjectedFaultError)
        assert isinstance(excinfo.value.__cause__, InjectedFaultError)

    def test_plain_serial_runner_stays_raw(self, monkeypatch):
        # Without a fault layer the serial backend is the zero-overhead
        # passthrough it always was: exceptions propagate unwrapped.
        # (Ambient chaos would deliberately add the layer, so clear it —
        # the chaos CI lane runs this suite with REPRO_FAULT_RATE set.)
        monkeypatch.delenv(FAULT_RATE_ENV, raising=False)
        monkeypatch.delenv(FAULT_SEED_ENV, raising=False)

        def explode(x):
            raise ValueError("raw")

        with pytest.raises(ValueError):
            make_runner("serial").run(explode, [1])

    def test_guarded_serial_stream_is_still_lazy(self):
        runner = make_runner("serial", retry=RETRIES, faults=CHAOS)
        seen = []

        def fn(x):
            seen.append(x)
            return x

        stream = runner.stream(fn, [1, 2, 3])
        assert seen == []
        assert next(stream) == 1


class TestCollectionChaosParity:
    """Fault injection through the collection stack: samples AND billing."""

    def _accounting(self, api: AdsManagerAPI) -> tuple:
        return (api.call_stats(), api.rate_limiter.available_tokens, api.clock.now())

    @pytest.mark.parametrize(
        "backend,workers",
        [
            ("serial", 1),
            pytest.param("thread", 2, marks=pytest.mark.slow),
        ],
    )
    def test_bit_identical_to_fault_free(self, simulation, backend, workers):
        reference_api = fresh_legacy_api(simulation)
        reference = AudienceSizeCollector(
            reference_api, simulation.panel, max_interests=8,
            locations=country_codes(),
        ).collect_sharded(
            RandomSelection(seed=13),
            executor=ShardExecutor(backend=backend, workers=workers, shard_size=7),
        )

        api = fresh_legacy_api(simulation)
        chaotic = AudienceSizeCollector(
            api, simulation.panel, max_interests=8, locations=country_codes()
        ).collect_sharded(
            RandomSelection(seed=13),
            executor=ShardExecutor(
                backend=backend,
                workers=workers,
                shard_size=7,
                retry=RETRIES,
                faults=CHAOS,
            ),
        )
        assert np.array_equal(chaotic.matrix, reference.matrix, equal_nan=True)
        assert chaotic.user_ids == reference.user_ids
        # Exactly-once billing: retried shards leave no accounting trace.
        assert self._accounting(api) == self._accounting(reference_api)


class TestBillingChaosParity:
    """Plans with ``depth="billing"`` fire inside ``settle_reach_bill``.

    The fire site sits *before* the bucket drain, so a faulted settle
    must leave zero accounting trace and a retried settle must land
    exactly once — throttle counters, bucket level and clock all
    bit-identical to a fault-free run.
    """

    def _accounting(self, api: AdsManagerAPI) -> tuple:
        return (api.call_stats(), api.rate_limiter.available_tokens, api.clock.now())

    def test_faulted_settle_leaves_no_accounting_trace(self, simulation):
        api = fresh_legacy_api(simulation)
        untouched = self._accounting(api)
        bill = api.reach_matrix_bill([5, 4, 8])
        plan = FaultPlan(
            seed=5, error_rate=1.0, depth="billing", max_faults_per_task=1
        )
        with pytest.raises(InjectedFaultError):
            run_guarded(api.settle_reach_bill, bill, index=0, faults=plan)
        assert self._accounting(api) == untouched

    def test_retried_settle_bills_exactly_once(self, simulation):
        reference_api = fresh_legacy_api(simulation)
        reference_api.settle_reach_bill(reference_api.reach_matrix_bill([5, 4, 8]))

        api = fresh_legacy_api(simulation)
        plan = FaultPlan(
            seed=5, error_rate=1.0, depth="billing", max_faults_per_task=1
        )
        _, attempts = guarded_call(
            api.settle_reach_bill,
            api.reach_matrix_bill([5, 4, 8]),
            index=0,
            retry=RetryPolicy(max_attempts=3),
            faults=plan,
        )
        assert attempts == 2
        assert self._accounting(api) == self._accounting(reference_api)

    def test_billing_faults_never_fire_at_other_sites(self, simulation):
        # A billing-depth plan must not kill the pure compute path: the
        # shard kernel's fire_inner("kernel") site stays silent under it.
        plan = FaultPlan(
            seed=5, error_rate=1.0, depth="billing", max_faults_per_task=10
        )

        def body(x):
            fire_inner("kernel")
            return x * x

        assert run_guarded(body, 4, index=0, faults=plan) == 16


#: Kernel-depth chaos: error kinds only, raised *inside* the reach-shard
#: body (mid-work, after the API objects exist) rather than at the guard.
KERNEL_CHAOS = FaultPlan(
    seed=21, transient_rate=0.3, error_rate=0.2, depth="kernel"
)

#: Enough attempts to outlast KERNEL_CHAOS's per-task fault bound.
KERNEL_RETRIES = RetryPolicy(max_attempts=KERNEL_CHAOS.max_faults_per_task + 1)


class TestKernelChaosParity:
    """Mid-work injection: the shard body dies *inside* the API kernel.

    Guard-depth parity (above) only proves that a task which never
    started leaves no trace.  Kernel depth is the harder claim: the shard
    body is already holding a worker-local API clone when the fault fires
    mid-stream, and the retry must still converge to bit-identical
    samples and billing — i.e. a half-run shard attempt leaks nothing
    into the merged result or the coordinator-side accounting.
    """

    def _accounting(self, api: AdsManagerAPI) -> tuple:
        return (api.call_stats(), api.rate_limiter.available_tokens, api.clock.now())

    def _collector(self, simulation, api):
        return AudienceSizeCollector(
            api, simulation.panel, max_interests=8, locations=country_codes()
        )

    @pytest.mark.parametrize(
        "backend,workers",
        [
            ("serial", 1),
            pytest.param("thread", 2, marks=pytest.mark.slow),
        ],
    )
    def test_collect_sharded_survives_kernel_faults(
        self, simulation, backend, workers
    ):
        reference_api = fresh_legacy_api(simulation)
        reference = self._collector(simulation, reference_api).collect_sharded(
            RandomSelection(seed=13),
            executor=ShardExecutor(backend=backend, workers=workers, shard_size=7),
        )

        api = fresh_legacy_api(simulation)
        chaotic = self._collector(simulation, api).collect_sharded(
            RandomSelection(seed=13),
            executor=ShardExecutor(
                backend=backend,
                workers=workers,
                shard_size=7,
                retry=KERNEL_RETRIES,
                faults=KERNEL_CHAOS,
            ),
        )
        assert KERNEL_CHAOS.preview(20)  # the plan does fire on this task set
        assert np.array_equal(chaotic.matrix, reference.matrix, equal_nan=True)
        assert chaotic.user_ids == reference.user_ids
        assert self._accounting(api) == self._accounting(reference_api)

    def test_streamed_accumulator_merge_survives_kernel_faults(self, simulation):
        reference_api = fresh_legacy_api(simulation)
        reference = AudienceAccumulator()
        for block in self._collector(simulation, reference_api).collect_stream(
            RandomSelection(seed=13),
            executor=ShardExecutor(shard_size=5),
        ):
            reference.update(block)

        # Chaotic run: blocks stream mid-fault, split across two
        # accumulators merged afterwards — the PR 4 merge path must be
        # oblivious to which attempt produced each block.
        api = fresh_legacy_api(simulation)
        blocks = list(
            self._collector(simulation, api).collect_stream(
                RandomSelection(seed=13),
                executor=ShardExecutor(
                    shard_size=5, retry=KERNEL_RETRIES, faults=KERNEL_CHAOS
                ),
            )
        )
        split = len(blocks) // 2
        left, right = AudienceAccumulator(), AudienceAccumulator()
        for block in blocks[:split]:
            left.update(block)
        for block in blocks[split:]:
            right.update(block)
        merged = left.merge(right).finalize()

        assert np.array_equal(
            merged.to_samples().matrix,
            reference.finalize().to_samples().matrix,
            equal_nan=True,
        )
        assert self._accounting(api) == self._accounting(reference_api)

    def test_kernel_faults_without_retry_surface_shard_context(self, simulation):
        doomed = FaultPlan(seed=3, error_rate=1.0, depth="kernel")
        with pytest.raises(ShardFailedError) as excinfo:
            self._collector(simulation, fresh_legacy_api(simulation)).collect_sharded(
                RandomSelection(seed=13),
                executor=ShardExecutor(shard_size=7, faults=doomed),
            )
        assert isinstance(excinfo.value.cause, InjectedFaultError)


def _grid() -> tuple[ScenarioSpec, ...]:
    base = ScenarioSpec(
        name="chaos",
        study="uniqueness",
        factor=80,
        seed=3,
        strategies=("random",),
        probabilities=(0.9,),
        n_bootstrap=10,
    )
    return expand_grid(
        base, {"strategies": [("least_popular",), ("random",)], "seed": [1, 2]}
    )


@pytest.fixture(scope="module")
def grid():
    return _grid()


@pytest.fixture(scope="module")
def reference_results(grid):
    """The undisturbed sweep every chaos/resume variant must reproduce."""
    return SweepRunner(executor=ShardExecutor()).run(grid)


class TestSweepChaosParity:
    @pytest.mark.parametrize(
        "backend,workers",
        [
            ("serial", 1),
            pytest.param("thread", 2, marks=pytest.mark.slow),
            pytest.param("process", 2, marks=pytest.mark.slow),
        ],
    )
    def test_chaos_sweep_is_bit_identical(
        self, grid, reference_results, backend, workers
    ):
        runner = SweepRunner(
            executor=ShardExecutor(backend=backend, workers=workers),
            retry=RETRIES,
            faults=CHAOS,
        )
        report = runner.run_report(grid)
        assert report.ok
        assert report.results == reference_results
        assert report.counts()["retried"] > 0  # chaos actually fired

    @pytest.mark.slow
    def test_chaos_sweep_with_worker_crash_on_process_backend(
        self, grid, reference_results
    ):
        plan = FaultPlan(
            seed=5, transient_rate=0.2, error_rate=0.1, crash_rate=0.2,
            max_faults_per_task=1,
        )
        runner = SweepRunner(
            executor=ShardExecutor(backend="process", workers=2),
            retry=RetryPolicy(max_attempts=4),
            faults=plan,
        )
        report = runner.run_report(grid)
        assert report.ok
        assert report.results == reference_results

    def test_executor_carried_fault_layer_applies(self, grid, reference_results):
        # The whole choice can ride the ShardExecutor handle alone.
        runner = SweepRunner(
            executor=ShardExecutor(retry=RETRIES, faults=CHAOS)
        )
        assert runner.run(grid) == reference_results

    def test_dead_letter_keeps_partial_results(self, grid, reference_results):
        doomed = FaultPlan(seed=5, error_rate=0.5, max_faults_per_task=10)
        runner = SweepRunner(
            executor=ShardExecutor(),
            retry=RetryPolicy(max_attempts=2),
            faults=doomed,
            on_error="skip",
        )
        report = runner.run_report(grid)
        assert not report.ok
        counts = report.counts()
        assert counts["failed"] >= 1
        assert counts["completed"] + counts["failed"] == len(grid)
        # Completed rows are bit-identical to their fault-free selves.
        for result in report.results:
            assert result == reference_results.get(result.scenario)
        for entry in report.manifest.failures():
            assert "InjectedFaultError" in entry.error
            assert "InjectedFaultError" in entry.traceback
            assert entry.attempts == 2

    def test_on_error_raise_aborts_with_shard_context(self, grid):
        doomed = FaultPlan(seed=5, error_rate=0.5, max_faults_per_task=10)
        runner = SweepRunner(
            executor=ShardExecutor(),
            retry=RetryPolicy(max_attempts=2),
            faults=doomed,
        )
        with pytest.raises(ShardFailedError) as excinfo:
            runner.run(grid)
        assert isinstance(excinfo.value.cause, InjectedFaultError)

    def test_unknown_on_error_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(on_error="ignore")


class TestKillResume:
    def test_interrupted_sweep_resumes_bit_identical(
        self, tmp_path, grid, reference_results
    ):
        manifest_path = tmp_path / "manifest.json"
        runner = SweepRunner(executor=ShardExecutor(shard_size=1))

        # Simulate a kill mid-sweep: run only the first half; the
        # incremental manifest on disk is what a dead process leaves.
        runner.run_report(grid[:2], manifest_path=manifest_path)
        half = RunManifest.load(manifest_path)
        assert len(half.completed()) == 2

        report = runner.run_report(
            grid, resume=manifest_path, manifest_path=manifest_path
        )
        assert report.results == reference_results
        assert report.counts()["resumed"] == 2
        # The saved manifest now covers the full grid, in grid order.
        final = RunManifest.load(manifest_path)
        assert [e.scenario for e in final] == [spec.name for spec in grid]

    def test_resume_reruns_edited_specs(self, tmp_path, grid):
        manifest_path = tmp_path / "manifest.json"
        runner = SweepRunner(executor=ShardExecutor())
        runner.run_report(grid, manifest_path=manifest_path)

        # Tamper with one recorded fingerprint: that row must re-run.
        payload = json.loads(manifest_path.read_text())
        payload["entries"][0]["fingerprint"] = "0" * 64
        manifest_path.write_text(json.dumps(payload))

        report = runner.run_report(grid, resume=manifest_path)
        assert report.counts()["resumed"] == len(grid) - 1
        assert report.ok

    def test_resume_skips_dead_letters(self, tmp_path, grid, reference_results):
        manifest_path = tmp_path / "manifest.json"
        doomed = FaultPlan(seed=5, error_rate=0.5, max_faults_per_task=10)
        chaos_runner = SweepRunner(
            executor=ShardExecutor(),
            retry=RetryPolicy(max_attempts=2),
            faults=doomed,
            on_error="skip",
        )
        first = chaos_runner.run_report(grid, manifest_path=manifest_path)
        assert not first.ok

        # Resume without injection: only the dead letters re-run, and the
        # final set matches the undisturbed reference bit-for-bit.
        clean_runner = SweepRunner(executor=ShardExecutor())
        second = clean_runner.run_report(grid, resume=manifest_path)
        assert second.ok
        assert second.results == reference_results
        assert second.counts()["resumed"] == first.counts()["completed"]


class TestManifest:
    def test_round_trip(self, tmp_path):
        result = ScenarioResult(
            scenario="s",
            study="uniqueness",
            seed=1,
            metrics=(("m", 1.5),),
            table=({"strategy": "random", "ci": (1.0, 2.0)},),
            summary=("line",),
        )
        manifest = RunManifest(
            [
                ManifestEntry(
                    scenario="s",
                    fingerprint="f" * 64,
                    status="completed",
                    attempts=2,
                    result=result.to_dict(),
                ),
                ManifestEntry(
                    scenario="t",
                    fingerprint="a" * 64,
                    status="failed",
                    error="InjectedFaultError: boom",
                    traceback="Traceback ...",
                ),
            ]
        )
        path = manifest.save(tmp_path / "m.json")
        loaded = RunManifest.load(path)
        # JSON turns tuples inside result payloads into lists; hydration
        # canonicalises them back (asserted below), so the dict views are
        # compared after the same round trip.
        assert loaded.to_dict() == json.loads(json.dumps(manifest.to_dict()))
        assert loaded.get("s").hydrate() == result
        assert loaded.counts() == {
            "total": 2, "completed": 1, "failed": 1, "retried": 1, "resumed": 0,
        }

    def test_scenario_result_json_round_trip_is_exact(self):
        spec = ScenarioSpec(
            name="rt", study="uniqueness", factor=80, seed=3,
            strategies=("random",), probabilities=(0.9,), n_bootstrap=10,
        )
        result = run_scenario(spec)
        hydrated = ScenarioResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert hydrated == result

    def test_reusable_requires_matching_fingerprint_and_completion(self):
        entry = ManifestEntry(
            scenario="s", fingerprint="f", status="completed", result={"x": 1}
        )
        dead = ManifestEntry(
            scenario="t", fingerprint="g", status="failed", error="boom"
        )
        manifest = RunManifest([entry, dead])
        assert manifest.reusable("f", "s") is entry
        assert manifest.reusable("other", "s") is None
        assert manifest.reusable("g", "t") is None  # failed entries never reuse
        assert manifest.reusable("f", "missing") is None

    def test_invalid_entries_and_files_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ManifestEntry(scenario="s", fingerprint="f", status="nope")
        with pytest.raises(ConfigurationError):
            ManifestEntry(scenario="s", fingerprint="f", status="completed")
        with pytest.raises(ConfigurationError):
            ManifestEntry(scenario="s", fingerprint="f", status="failed")
        with pytest.raises(ConfigurationError):
            RunManifest.load(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(ConfigurationError):
            RunManifest.load(bad)
        bad.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ConfigurationError):
            RunManifest.load(bad)
        bad.write_text(json.dumps({"version": 1, "entries": {}}))
        with pytest.raises(ConfigurationError):
            RunManifest.load(bad)

    def test_spec_fingerprint_tracks_every_field(self):
        spec = ScenarioSpec(name="s", study="uniqueness", seed=1)
        same = ScenarioSpec(name="s", study="uniqueness", seed=1)
        assert spec.fingerprint() == same.fingerprint()
        assert spec.fingerprint() != ScenarioSpec(
            name="s", study="uniqueness", seed=2
        ).fingerprint()
        assert spec.fingerprint() != ScenarioSpec(
            name="s", study="uniqueness", seed=1, n_bootstrap=11
        ).fingerprint()


class TestAmbientChaos:
    def test_disabled_without_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_RATE", raising=False)
        assert ambient_chaos() == (None, None)
        monkeypatch.setenv("REPRO_FAULT_RATE", "0")
        assert ambient_chaos() == (None, None)

    def test_environment_builds_a_converging_pair(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.3")
        monkeypatch.setenv("REPRO_FAULT_SEED", "7")
        retry, plan = ambient_chaos()
        assert plan.total_rate == pytest.approx(0.3)
        assert plan.crash_rate == 0.0  # ambient chaos never crashes workers
        assert retry.max_attempts > plan.max_faults_per_task

    def test_ambient_chaos_applies_to_default_runners(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.4")
        monkeypatch.setenv("REPRO_FAULT_SEED", "7")
        runner = make_runner("serial")
        assert runner.faults is not None and runner.retry is not None
        tasks = list(range(30))
        assert runner.run(_square, tasks) == [x * x for x in tasks]
        # Explicit configuration always wins over the environment.
        assert make_runner("serial", retry=RETRIES).faults is None

    def test_invalid_rate_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_RATE", "nope")
        with pytest.raises(ConfigurationError):
            ambient_chaos()
        monkeypatch.setenv("REPRO_FAULT_RATE", "1.5")
        with pytest.raises(ConfigurationError):
            ambient_chaos()
