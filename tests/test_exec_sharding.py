"""Parity of the sharded, streaming execution layer with the fused panel tier.

The contract pinned here: for every runner backend, worker count and shard
size, ``collect_sharded`` and ``collect_stream`` return **bit-identical**
audience samples *and* rate-limit accounting (``call_stats``, token-bucket
level, simulated clock) to the fused ``collect(mode="panel")`` pass —
including ragged panels and users without interests — and the streamed
accumulator answers quantile and bootstrap queries bit-identically to the
dense matrix without ever materialising it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PlatformConfig
from repro.adsapi import AdsManagerAPI, CallBill
from repro.core import (
    AudienceAccumulator,
    AudienceSizeCollector,
    LeastPopularSelection,
    RandomSelection,
    UniquenessModel,
    bootstrap_cutpoints,
)
from repro.config import UniquenessConfig
from repro.core.quantiles import AudienceSamples
from repro.countermeasures import (
    InterestCapRule,
    MinActiveAudienceRule,
    evaluate_workload_impact,
    run_protected_experiment,
)
from repro.core import NanotargetingExperiment
from repro.delivery import DeliveryEngine
from repro.errors import ConfigurationError, ModelError
from repro.exec import (
    ExecutionPlan,
    ShardExecutor,
    drain,
    make_runner,
)
from repro.fdvt import FDVTPanel
from repro.population import SyntheticUser
from repro.reach import country_codes
from repro.simclock import SimClock

from _builders import fresh_legacy_api


def _accounting(api: AdsManagerAPI) -> tuple:
    return (api.call_stats(), api.rate_limiter.available_tokens, api.clock.now())


@pytest.fixture(scope="module")
def reference(simulation):
    """The fused panel-tier collection plus its end-state accounting."""
    api = fresh_legacy_api(simulation)
    collector = AudienceSizeCollector(
        api, simulation.panel, max_interests=8, locations=country_codes()
    )
    samples = collector.collect(RandomSelection(seed=13), mode="panel")
    return samples, _accounting(api)


class TestExecutionPlan:
    def test_balanced_partition_covers_all_rows(self):
        plan = ExecutionPlan.partition(10, n_shards=3)
        assert [(s.start, s.stop) for s in plan] == [(0, 4), (4, 7), (7, 10)]
        assert plan.max_shard_rows == 4

    def test_shard_size_policy(self):
        plan = ExecutionPlan.partition(10, shard_size=4)
        assert len(plan) == 3
        assert sum(s.size for s in plan) == 10

    def test_more_shards_than_rows_is_clamped(self):
        plan = ExecutionPlan.partition(2, n_shards=8)
        assert len(plan) == 2
        assert all(s.size == 1 for s in plan)

    def test_empty_plan(self):
        assert len(ExecutionPlan.partition(0)) == 0

    def test_invalid_partitions_rejected(self):
        with pytest.raises(ConfigurationError):
            ExecutionPlan.partition(-1)
        with pytest.raises(ConfigurationError):
            ExecutionPlan.partition(5, n_shards=2, shard_size=2)
        with pytest.raises(ConfigurationError):
            ExecutionPlan.partition(5, shard_size=0)

    def test_non_contiguous_shards_rejected(self):
        from repro.exec import Shard

        with pytest.raises(ConfigurationError):
            ExecutionPlan(n_rows=4, shards=(Shard(0, 0, 2), Shard(1, 3, 4)))


class TestRunners:
    @pytest.mark.parametrize("backend,workers", [("serial", 1), ("thread", 3)])
    def test_run_and_stream_preserve_order(self, backend, workers):
        runner = make_runner(backend, workers)
        items = list(range(7))
        assert runner.run(lambda x: x * x, items) == [x * x for x in items]
        assert list(runner.stream(lambda x: x + 1, items)) == [x + 1 for x in items]

    def test_serial_stream_is_lazy(self):
        runner = make_runner("serial")
        seen = []

        def fn(x):
            seen.append(x)
            return x

        stream = runner.stream(fn, [1, 2, 3])
        assert seen == []
        assert next(stream) == 1
        assert seen == [1]

    def test_unknown_backend_and_bad_workers(self):
        with pytest.raises(ConfigurationError):
            make_runner("warp")
        with pytest.raises(ConfigurationError):
            make_runner("thread", 0)
        with pytest.raises(ConfigurationError):
            make_runner("serial", 2)
        with pytest.raises(ConfigurationError):
            ShardExecutor(backend="warp")


class TestCallBill:
    def test_merge(self):
        assert CallBill.merged([CallBill(1), CallBill(2)]) == CallBill(3)
        assert CallBill.merged([]) == CallBill(0)

    def test_negative_rejected(self):
        with pytest.raises(Exception):
            CallBill(-1)


class TestShardedCollectParity:
    @pytest.mark.parametrize(
        "backend,workers",
        [("serial", 1), ("thread", 2), ("thread", 4)],
    )
    def test_bit_identical_across_backends_and_workers(
        self, simulation, reference, backend, workers
    ):
        ref_samples, ref_accounting = reference
        api = fresh_legacy_api(simulation)
        collector = AudienceSizeCollector(
            api, simulation.panel, max_interests=8, locations=country_codes()
        )
        samples = collector.collect_sharded(
            RandomSelection(seed=13),
            executor=ShardExecutor(backend=backend, workers=workers, shard_size=7),
        )
        assert np.array_equal(samples.matrix, ref_samples.matrix, equal_nan=True)
        assert samples.user_ids == ref_samples.user_ids
        assert _accounting(api) == ref_accounting

    def test_process_backend_rebuilds_model_from_spec(self, simulation, reference):
        ref_samples, ref_accounting = reference
        assert simulation.reach_model.spec is not None
        api = fresh_legacy_api(simulation)
        collector = AudienceSizeCollector(
            api, simulation.panel, max_interests=8, locations=country_codes()
        )
        samples = collector.collect_sharded(
            RandomSelection(seed=13),
            executor=ShardExecutor(backend="process", workers=2, shard_size=24),
        )
        assert np.array_equal(samples.matrix, ref_samples.matrix, equal_nan=True)
        assert _accounting(api) == ref_accounting

    def test_rebuilt_spec_model_is_bit_identical(self, simulation):
        spec = simulation.reach_model.spec
        rebuilt = spec.build()
        ids = simulation.catalog.interest_ids[:30].reshape(3, 10)
        counts = np.array([10, 4, 0], dtype=np.int64)
        assert np.array_equal(
            rebuilt.prefix_audiences_panel(ids, counts, ("US", "ES")),
            simulation.reach_model.prefix_audiences_panel(ids, counts, ("US", "ES")),
            equal_nan=True,
        )

    def test_shard_size_does_not_change_results(self, simulation, reference):
        ref_samples, ref_accounting = reference
        for shard_size in (1, 3, 1000):
            api = fresh_legacy_api(simulation)
            collector = AudienceSizeCollector(
                api, simulation.panel, max_interests=8, locations=country_codes()
            )
            samples = collector.collect_sharded(
                RandomSelection(seed=13), shard_size=shard_size
            )
            assert np.array_equal(samples.matrix, ref_samples.matrix, equal_nan=True)
            assert _accounting(api) == ref_accounting

    def test_ragged_panel_with_empty_user(self, simulation):
        catalog = simulation.catalog
        pool = [int(i) for i in catalog.interest_ids[:40]]
        users = [
            SyntheticUser(user_id=1, country="US", interest_ids=tuple(pool[:25])),
            SyntheticUser(user_id=2, country="ES", interest_ids=()),
            SyntheticUser(user_id=3, country="MX", interest_ids=tuple(pool[25:28])),
            SyntheticUser(user_id=4, country="AR", interest_ids=tuple(pool[28:29])),
        ]
        panel = FDVTPanel(users, catalog)
        fused_api = fresh_legacy_api(simulation)
        fused = AudienceSizeCollector(
            fused_api, panel, max_interests=10, locations=country_codes()
        ).collect(LeastPopularSelection(), mode="panel")
        sharded_api = fresh_legacy_api(simulation)
        sharded = AudienceSizeCollector(
            sharded_api, panel, max_interests=10, locations=country_codes()
        ).collect_sharded(LeastPopularSelection(), shard_size=1)
        assert np.isnan(sharded.matrix[1]).all()
        assert np.array_equal(sharded.matrix, fused.matrix, equal_nan=True)
        assert _accounting(sharded_api) == _accounting(fused_api)

    def test_all_empty_panel_issues_no_requests(self, simulation):
        users = [
            SyntheticUser(user_id=n, country="US", interest_ids=()) for n in (1, 2, 3)
        ]
        panel = FDVTPanel(users, simulation.catalog)
        api = fresh_legacy_api(simulation)
        collector = AudienceSizeCollector(
            api, panel, max_interests=5, locations=country_codes()
        )
        samples = collector.collect_sharded(LeastPopularSelection(), shard_size=2)
        assert np.isnan(samples.matrix).all()
        assert samples.matrix.shape == (3, 5)
        assert api.call_stats().reach_estimates == 0

    def test_executor_and_loose_knobs_are_exclusive(self, simulation):
        collector = AudienceSizeCollector(
            fresh_legacy_api(simulation),
            simulation.panel,
            max_interests=3,
            locations=country_codes(),
        )
        with pytest.raises(ModelError):
            collector.collect_sharded(
                LeastPopularSelection(), executor=ShardExecutor(), workers=2
            )


class TestCollectStream:
    def test_blocks_concatenate_to_the_fused_matrix(self, simulation, reference):
        ref_samples, ref_accounting = reference
        api = fresh_legacy_api(simulation)
        collector = AudienceSizeCollector(
            api, simulation.panel, max_interests=8, locations=country_codes()
        )
        blocks = list(collector.collect_stream(RandomSelection(seed=13), shard_size=5))
        assert len(blocks) > 1
        assert all(b.matrix.shape[1] == 8 for b in blocks)
        stacked = np.concatenate([b.matrix for b in blocks])
        assert np.array_equal(stacked, ref_samples.matrix, equal_nan=True)
        assert (
            tuple(uid for b in blocks for uid in b.user_ids) == ref_samples.user_ids
        )
        assert _accounting(api) == ref_accounting

    def test_stream_is_lazy_and_bills_incrementally(self, simulation):
        api = fresh_legacy_api(simulation)
        collector = AudienceSizeCollector(
            api, simulation.panel, max_interests=4, locations=country_codes()
        )
        stream = collector.collect_stream(LeastPopularSelection(), shard_size=5)
        # Nothing is ordered, settled or billed until the first block is pulled.
        assert api.call_stats().reach_estimates == 0
        first = next(stream)
        billed = api.call_stats().reach_estimates
        assert billed == np.count_nonzero(~np.isnan(first.matrix))
        remaining = list(stream)
        total = billed + sum(
            np.count_nonzero(~np.isnan(b.matrix)) for b in remaining
        )
        assert api.call_stats().reach_estimates == total

    def test_accumulator_matches_dense_samples(self, simulation, reference):
        ref_samples, _ = reference
        api = fresh_legacy_api(simulation)
        collector = AudienceSizeCollector(
            api, simulation.panel, max_interests=8, locations=country_codes()
        )
        streamed = drain(
            collector.collect_stream(RandomSelection(seed=13), shard_size=6),
            AudienceAccumulator(),
        )
        assert streamed.n_users == ref_samples.n_users
        assert streamed.max_interests == ref_samples.max_interests
        assert streamed.user_ids == ref_samples.user_ids
        qs = [25.0, 50.0, 90.0, 95.0]
        assert np.array_equal(
            streamed.vas_many(qs), ref_samples.vas_many(qs), equal_nan=True
        )
        rng = np.random.default_rng(5)
        idx = rng.integers(0, ref_samples.n_users, size=(4, ref_samples.n_users))
        assert np.array_equal(
            streamed.take_rows(idx), ref_samples.matrix[idx], equal_nan=True
        )
        assert np.array_equal(
            streamed.to_samples().matrix, ref_samples.matrix, equal_nan=True
        )

    def test_accumulator_merge_matches_single_accumulator(self, simulation, reference):
        ref_samples, _ = reference
        collector = AudienceSizeCollector(
            fresh_legacy_api(simulation),
            simulation.panel,
            max_interests=8,
            locations=country_codes(),
        )
        blocks = list(collector.collect_stream(RandomSelection(seed=13), shard_size=4))
        split = len(blocks) // 2
        left, right = AudienceAccumulator(), AudienceAccumulator()
        for block in blocks[:split]:
            left.update(block)
        for block in blocks[split:]:
            right.update(block)
        merged = left.merge(right).finalize()
        assert np.array_equal(
            merged.to_samples().matrix, ref_samples.matrix, equal_nan=True
        )

    def test_streamed_bootstrap_is_bit_identical(self, simulation, reference):
        ref_samples, _ = reference
        collector = AudienceSizeCollector(
            fresh_legacy_api(simulation),
            simulation.panel,
            max_interests=8,
            locations=country_codes(),
        )
        streamed = drain(
            collector.collect_stream(RandomSelection(seed=13), shard_size=9),
            AudienceAccumulator(),
        )
        qs = (50.0, 90.0)
        dense = bootstrap_cutpoints(ref_samples, qs, n_bootstrap=60, seed=7)
        stream = bootstrap_cutpoints(streamed, qs, n_bootstrap=60, seed=7)
        for q in qs:
            assert np.array_equal(dense[q], stream[q], equal_nan=True)

    def test_accumulator_rejects_misuse(self, simulation):
        accumulator = AudienceAccumulator()
        with pytest.raises(ModelError):
            accumulator.finalize()
        block = AudienceSamples(np.array([[1.0, np.nan]]), floor=20)
        other_floor = AudienceSamples(np.array([[2.0, 3.0]]), floor=1000)
        accumulator.update(block)
        with pytest.raises(ModelError):
            accumulator.update(other_floor)
        holey = AudienceSamples(np.array([[np.nan, 4.0]]), floor=20)
        with pytest.raises(ModelError):
            AudienceAccumulator().update(holey)


class TestUniquenessModelTiers:
    @pytest.fixture(scope="class")
    def model(self, simulation):
        return UniquenessModel(
            fresh_legacy_api(simulation),
            simulation.panel,
            UniquenessConfig(max_interests=6, n_bootstrap=40, seed=4242),
            locations=country_codes(),
        )

    def test_estimates_identical_across_routes(self, model):
        strategy = RandomSelection(seed=13)
        fused = model.estimate(strategy)
        sharded = model.estimate(
            strategy, executor=ShardExecutor(backend="thread", workers=2, shard_size=9)
        )
        streamed = model.estimate(
            strategy, stream=True, executor=ShardExecutor(shard_size=9)
        )
        for probability, estimate in fused.estimates.items():
            for other in (sharded, streamed):
                rival = other.estimates[probability]
                assert rival.n_p == estimate.n_p
                assert rival.confidence_interval == estimate.confidence_interval
                assert rival.r_squared == estimate.r_squared

    def test_cache_is_keyed_per_tier(self, model):
        strategy = RandomSelection(seed=13)
        fused = model.collect(strategy)
        sharded = model.collect(strategy, executor=ShardExecutor(shard_size=9))
        streamed = model.collect_streamed(strategy, executor=ShardExecutor(shard_size=9))
        # Three distinct cache entries: refreshing one tier leaves the others.
        assert model.collect(strategy) is fused
        assert model.collect(strategy, executor=ShardExecutor(shard_size=9)) is sharded
        assert (
            model.collect_streamed(strategy, executor=ShardExecutor(shard_size=9))
            is streamed
        )
        refreshed = model.collect(strategy, refresh=True)
        assert refreshed is not fused
        assert model.collect(strategy, executor=ShardExecutor(shard_size=9)) is sharded

    def test_mode_and_executor_are_exclusive(self, model):
        with pytest.raises(ModelError):
            model.collect(
                RandomSelection(seed=13), mode="batch", executor=ShardExecutor()
            )

    def test_cache_clear_drops_every_tier(self, model):
        model.collect(RandomSelection(seed=13))
        model.cache_clear()
        assert model._cache == {}


class TestProtectedExperimentBinding:
    def test_rules_install_on_the_experiments_own_api(self, simulation):
        api = AdsManagerAPI(
            simulation.reach_model,
            platform=PlatformConfig.modern_2020(),
            clock=SimClock(),
        )
        other_api = AdsManagerAPI(
            simulation.reach_model,
            platform=PlatformConfig.modern_2020(),
            clock=SimClock(),
        )
        engine = DeliveryEngine(simulation.catalog, seed=5)
        experiment = NanotargetingExperiment(other_api, engine, seed=11)
        targets = experiment.select_targets(simulation.panel.users)
        with pytest.raises(ModelError):
            run_protected_experiment(
                api,
                engine,
                targets,
                [InterestCapRule(max_interests=9)],
                experiment=experiment,
            )

    def test_policy_rule_order_restored_exactly(self, simulation):
        api = AdsManagerAPI(
            simulation.reach_model,
            platform=PlatformConfig.modern_2020(),
            clock=SimClock(),
        )
        engine = DeliveryEngine(simulation.catalog, seed=5)
        experiment = NanotargetingExperiment(api, engine, seed=11)
        targets = experiment.select_targets(simulation.panel.users)
        # Pre-install a rule equal to an installed one: list.remove would
        # have deleted this one and left the appended copy mid-list.
        preexisting = [MinActiveAudienceRule(min_active_users=1_000), InterestCapRule()]
        api.policy.rules.extend(preexisting)
        run_protected_experiment(
            api,
            engine,
            targets,
            [InterestCapRule(), MinActiveAudienceRule(min_active_users=1_000)],
            experiment=experiment,
        )
        assert api.policy.rules == preexisting


class TestWorkloadImpactKernel:
    @pytest.fixture(scope="class")
    def workload(self, simulation):
        from repro.campaigns import AdvertiserWorkloadGenerator

        return AdvertiserWorkloadGenerator(simulation.catalog).generate(120, seed=3)

    def test_matches_scalar_rule_loop(self, simulation, workload):
        api = AdsManagerAPI(
            simulation.reach_model,
            platform=PlatformConfig.modern_2020(),
            clock=SimClock(),
        )
        rules = [
            InterestCapRule(max_interests=9),
            MinActiveAudienceRule(min_active_users=1_000),
        ]
        expected = 0
        for spec in workload:
            raw = api.backend.audience_for(
                spec.interests, spec.effective_locations(), combine=spec.interest_combine
            )
            if any(rule.evaluate(spec, raw, raw) is not None for rule in rules):
                expected += 1
        impact = evaluate_workload_impact(api, workload, rules)
        assert impact.total_campaigns == len(workload)
        assert impact.rejected_campaigns == expected
        sharded = evaluate_workload_impact(
            api,
            workload,
            rules,
            executor=ShardExecutor(backend="thread", workers=2, shard_size=16),
        )
        assert sharded == impact

    def test_rules_without_matrix_kernel_fall_back(self, simulation, workload):
        class OddInterestRule:
            name = "odd_interests"

            def evaluate(self, spec, raw_audience, active_audience):
                return "odd" if spec.interest_count % 2 else None

        api = AdsManagerAPI(
            simulation.reach_model,
            platform=PlatformConfig.modern_2020(),
            clock=SimClock(),
        )
        impact = evaluate_workload_impact(api, workload, [OddInterestRule()])
        expected = sum(1 for spec in workload if spec.interest_count % 2)
        assert impact.rejected_campaigns == expected

    def test_evaluate_matrix_agrees_with_scalar_evaluate(self):
        counts = np.array([1, 5, 9, 10, 25])
        raw = np.array([10.0, 500.0, 999.0, 1_000.0, 5e6])
        cap = InterestCapRule(max_interests=9)
        minimum = MinActiveAudienceRule(min_active_users=1_000)
        from repro.adsapi import TargetingSpec

        for index, count in enumerate(counts):
            spec = TargetingSpec.for_interests(range(count))
            assert (cap.evaluate(spec, raw[index], raw[index]) is not None) == bool(
                cap.evaluate_matrix(counts, raw, raw)[index]
            )
            assert (
                minimum.evaluate(spec, raw[index], raw[index]) is not None
            ) == bool(minimum.evaluate_matrix(counts, raw, raw)[index])


class TestShardedBootstrap:
    """bootstrap_cutpoints replicate chunks over the runner backends."""

    QS = (50.0, 90.0)

    @pytest.fixture(scope="class")
    def samples(self, simulation):
        api = fresh_legacy_api(simulation)
        collector = AudienceSizeCollector(
            api, simulation.panel, max_interests=8, locations=country_codes()
        )
        return collector.collect(RandomSelection(seed=13))

    @pytest.fixture(scope="class")
    def serial_cutpoints(self, samples):
        return bootstrap_cutpoints(samples, self.QS, n_bootstrap=60, seed=3)

    @pytest.mark.parametrize(
        "executor",
        [
            ShardExecutor(),
            ShardExecutor(backend="thread", workers=2),
            ShardExecutor(backend="thread", workers=4),
            ShardExecutor(backend="thread", workers=2, shard_size=7),
        ],
        ids=["serial", "thread-2", "thread-4", "thread-2-chunk-7"],
    )
    def test_executor_parity(self, samples, serial_cutpoints, executor):
        sharded = bootstrap_cutpoints(
            samples, self.QS, n_bootstrap=60, seed=3, executor=executor
        )
        for q in self.QS:
            assert np.array_equal(serial_cutpoints[q], sharded[q], equal_nan=True)

    def test_chunk_size_does_not_change_results(self, samples, serial_cutpoints):
        rechunked = bootstrap_cutpoints(
            samples, self.QS, n_bootstrap=60, seed=3, chunk_size=11
        )
        for q in self.QS:
            assert np.array_equal(serial_cutpoints[q], rechunked[q], equal_nan=True)

    def test_streamed_store_parity(self, simulation, samples, serial_cutpoints):
        api = fresh_legacy_api(simulation)
        collector = AudienceSizeCollector(
            api, simulation.panel, max_interests=8, locations=country_codes()
        )
        streamed = drain(
            collector.collect_stream(RandomSelection(seed=13)), AudienceAccumulator()
        )
        sharded = bootstrap_cutpoints(
            streamed,
            self.QS,
            n_bootstrap=60,
            seed=3,
            executor=ShardExecutor(backend="thread", workers=3),
        )
        for q in self.QS:
            assert np.array_equal(serial_cutpoints[q], sharded[q], equal_nan=True)

    def test_estimate_threads_executor_into_bootstrap(self, simulation):
        api = fresh_legacy_api(simulation)
        model = UniquenessModel(
            api,
            simulation.panel,
            UniquenessConfig(max_interests=8, n_bootstrap=40, seed=21),
            locations=country_codes(),
        )
        strategy = RandomSelection(seed=13)
        plain = model.estimate(strategy, probabilities=(0.9,))
        sharded = model.estimate(
            strategy,
            probabilities=(0.9,),
            executor=ShardExecutor(backend="thread", workers=2),
        )
        assert plain.estimates[0.9] == sharded.estimates[0.9]


class TestFusedStreamedGather:
    """StreamedAudienceSamples.take_rows: the single-take gather kernel."""

    @pytest.fixture(scope="class")
    def stores(self, simulation):
        api = fresh_legacy_api(simulation)
        collector = AudienceSizeCollector(
            api, simulation.panel, max_interests=8, locations=country_codes()
        )
        dense = collector.collect(RandomSelection(seed=13))
        streamed = drain(
            collector.collect_stream(RandomSelection(seed=13)), AudienceAccumulator()
        )
        return dense, streamed

    def test_row_blocks_match_dense_matrix(self, stores):
        dense, streamed = stores
        rng = np.random.default_rng(5)
        for shape in ((4,), (3, 5), (2, 3, 4)):
            indices = rng.integers(0, dense.n_users, size=shape)
            assert np.array_equal(
                streamed.take_rows(indices), dense.matrix[indices], equal_nan=True
            )

    def test_repeated_and_full_gathers(self, stores):
        dense, streamed = stores
        everyone = np.arange(dense.n_users)
        assert np.array_equal(
            streamed.take_rows(everyone), dense.matrix, equal_nan=True
        )
        # the cached table serves every subsequent gather
        assert np.array_equal(
            streamed.take_rows(everyone[::-1]), dense.matrix[::-1], equal_nan=True
        )

    def test_gather_table_is_cached(self, stores):
        _, streamed = stores
        streamed.take_rows(np.array([0]))
        first = streamed._gather_table()
        assert streamed._gather_table() is first


class TestShardedRiskReports:
    """FDVTExtension.build_risk_reports over an ExecutionPlan."""

    @pytest.fixture(scope="class")
    def users(self, simulation):
        return list(simulation.panel)[:15]

    @pytest.fixture(scope="class")
    def reference_reports(self, simulation, users):
        from repro.fdvt import FDVTExtension

        api = fresh_legacy_api(simulation)
        extension = FDVTExtension(api, simulation.catalog)
        return extension.build_risk_reports(users), _accounting(api)

    @pytest.mark.parametrize(
        "executor",
        [
            ShardExecutor(),
            ShardExecutor(backend="thread", workers=2),
            ShardExecutor(backend="thread", workers=3, shard_size=5),
        ],
        ids=["serial", "thread-2", "thread-3-small-shards"],
    )
    def test_sharded_reports_and_accounting_parity(
        self, simulation, users, reference_reports, executor
    ):
        from repro.fdvt import FDVTExtension

        expected_reports, expected_accounting = reference_reports
        api = fresh_legacy_api(simulation)
        extension = FDVTExtension(api, simulation.catalog)
        reports = extension.build_risk_reports(users, executor=executor)
        assert reports == expected_reports
        assert _accounting(api) == expected_accounting
