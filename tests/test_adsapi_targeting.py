"""Tests for targeting specs and their validation against platform limits."""

from __future__ import annotations

import pytest

from repro.adsapi import TargetingSpec, validate_spec
from repro.config import PlatformConfig
from repro.errors import TargetingValidationError, UnknownLocationError
from repro.population import Gender
from repro.reach import WORLDWIDE, country_codes


class TestTargetingSpec:
    def test_default_is_worldwide(self):
        spec = TargetingSpec()
        assert spec.is_worldwide
        assert spec.effective_locations() is None

    def test_for_interests_builder(self):
        spec = TargetingSpec.for_interests([3, 1, 2])
        assert spec.interests == (3, 1, 2)
        assert spec.interest_count == 3
        assert spec.interest_combine == "and"

    def test_specific_locations_are_preserved(self):
        spec = TargetingSpec.for_interests([1], locations=["ES", "FR"])
        assert not spec.is_worldwide
        assert spec.effective_locations() == ("ES", "FR")

    def test_duplicate_interests_rejected(self):
        with pytest.raises(TargetingValidationError):
            TargetingSpec(interests=(1, 1))

    def test_empty_locations_rejected(self):
        with pytest.raises(TargetingValidationError):
            TargetingSpec(locations=())

    def test_invalid_combine_rejected(self):
        with pytest.raises(TargetingValidationError):
            TargetingSpec(interest_combine="xor")

    def test_age_bounds_validated(self):
        with pytest.raises(TargetingValidationError):
            TargetingSpec(age_min=10)
        with pytest.raises(TargetingValidationError):
            TargetingSpec(age_min=30, age_max=20)

    def test_with_interests_and_without_interest(self):
        spec = TargetingSpec.for_interests([1, 2, 3])
        widened = spec.with_interests([4, 5])
        assert widened.interests == (4, 5)
        narrowed = spec.without_interest(2)
        assert narrowed.interests == (1, 3)

    def test_with_locations(self):
        spec = TargetingSpec.for_interests([1]).with_locations(["ES"])
        assert spec.locations == ("ES",)

    def test_describe_is_serialisable(self):
        spec = TargetingSpec.for_interests([1, 2], locations=["ES"])
        described = spec.describe()
        assert described["interests"] == [1, 2]
        assert described["locations"] == ["ES"]

    def test_custom_audience_flag(self):
        spec = TargetingSpec(custom_audience_id="ca_000001", genders=(Gender.MALE,))
        assert spec.uses_custom_audience


class TestValidation:
    def test_valid_spec_passes(self):
        validate_spec(TargetingSpec.for_interests([1, 2, 3]), PlatformConfig())

    def test_worldwide_rejected_on_legacy_platform(self):
        legacy = PlatformConfig.legacy_2017()
        with pytest.raises(TargetingValidationError):
            validate_spec(TargetingSpec.for_interests([1]), legacy)

    def test_country_list_accepted_on_legacy_platform(self):
        legacy = PlatformConfig.legacy_2017()
        spec = TargetingSpec.for_interests([1], locations=country_codes())
        validate_spec(spec, legacy)

    def test_more_than_25_interests_rejected(self):
        spec = TargetingSpec.for_interests(list(range(26)))
        with pytest.raises(TargetingValidationError):
            validate_spec(spec, PlatformConfig())

    def test_exactly_25_interests_allowed(self):
        spec = TargetingSpec.for_interests(list(range(25)))
        validate_spec(spec, PlatformConfig())

    def test_more_than_50_locations_rejected(self):
        codes = list(country_codes()) + [WORLDWIDE]
        spec = TargetingSpec(locations=tuple(codes), interests=(1,))
        with pytest.raises(TargetingValidationError):
            validate_spec(spec, PlatformConfig(max_locations_per_query=50))

    def test_unknown_location_rejected(self):
        spec = TargetingSpec(locations=("XX",), interests=(1,))
        with pytest.raises(UnknownLocationError):
            validate_spec(spec, PlatformConfig())

    def test_worldwide_cannot_be_mixed_with_countries(self):
        spec = TargetingSpec(locations=(WORLDWIDE, "ES"), interests=(1,))
        with pytest.raises(TargetingValidationError):
            validate_spec(spec, PlatformConfig())

    def test_negative_interest_ids_rejected(self):
        spec = TargetingSpec(interests=(-1,))
        with pytest.raises(TargetingValidationError):
            validate_spec(spec, PlatformConfig())
