"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.exec import ShardExecutor
from repro.scenarios import ScenarioSpec, SweepRunner, expand_grid

#: A very small scale keeps every CLI invocation fast.
FACTOR = ["--factor", "80"]


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["uniqueness"])
        assert args.factor == 20
        assert args.probabilities == [0.5, 0.8, 0.9, 0.95]


class TestDatasetCommand:
    def test_writes_catalog_and_panel(self, tmp_path, capsys):
        exit_code = main(
            ["dataset", *FACTOR, "--output-dir", str(tmp_path / "data")]
        )
        assert exit_code == 0
        assert (tmp_path / "data" / "catalog.json").exists()
        assert (tmp_path / "data" / "panel.json").exists()
        captured = capsys.readouterr().out
        assert "catalog" in captured and "panel" in captured


class TestUniquenessCommand:
    def test_prints_table_and_writes_json(self, tmp_path, capsys):
        output = tmp_path / "table1.json"
        exit_code = main(
            [
                "uniqueness",
                *FACTOR,
                "--probabilities",
                "0.5",
                "0.9",
                "--output",
                str(output),
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "least_popular" in captured
        assert "random" in captured
        payload = json.loads(output.read_text())
        assert set(payload) == {"least_popular", "random"}
        assert "0.9" in payload["random"]["estimates"]


class TestNanotargetingCommand:
    def test_runs_21_campaigns(self, tmp_path, capsys):
        output = tmp_path / "table2.json"
        exit_code = main(["nanotargeting", *FACTOR, "--output", str(output)])
        assert exit_code == 0
        payload = json.loads(output.read_text())
        assert payload["n_campaigns"] == 21
        assert "successful campaigns" in capsys.readouterr().out

    def test_fail_on_success_flag(self, capsys):
        exit_code = main(["nanotargeting", *FACTOR, "--fail-on-success"])
        # The unprotected platform lets nanotargeting succeed, so the
        # regression-check mode must signal failure.
        assert exit_code == 1


class TestFdvtReportCommand:
    def test_prints_risk_rows(self, capsys):
        exit_code = main(["fdvt-report", *FACTOR, "--limit", "5"])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "risk breakdown" in captured
        assert "panel user #" in captured


class TestCountermeasuresCommand:
    def test_reports_attack_reduction(self, capsys):
        exit_code = main(["countermeasures", *FACTOR, "--workload-size", "50"])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "protected successes: 0/21" in captured
        assert "attack reduction" in captured


def _spec_payload(**overrides) -> dict:
    spec = dict(
        name="ext",
        study="uniqueness",
        factor=80,
        seed=3,
        strategies=["random"],
        probabilities=[0.9],
        n_bootstrap=10,
    )
    spec.update(overrides)
    return spec


class TestScenarioSweepSpecFile:
    """`scenario sweep --spec file.json`: external grids on the cached path."""

    def test_grid_file_round_trips_the_result_set(self, tmp_path, capsys):
        spec_file = tmp_path / "grid.json"
        spec_file.write_text(
            json.dumps(
                {
                    "base": _spec_payload(),
                    "grid": {"strategies": [["least_popular"], ["random"]]},
                }
            )
        )
        output = tmp_path / "results.json"
        exit_code = main(
            ["scenario", "sweep", "--spec", str(spec_file), "--output", str(output)]
        )
        assert exit_code == 0
        assert "swept 2 scenarios" in capsys.readouterr().out
        # The CLI output is exactly the ResultSet the library produces for
        # the same grid — the file-driven path rides the same sweep.
        grid = expand_grid(
            ScenarioSpec.from_dict(_spec_payload()),
            {"strategies": [("least_popular",), ("random",)]},
        )
        expected = SweepRunner(executor=ShardExecutor()).run(grid)
        payload = json.loads(output.read_text())
        # JSON turns the confidence-interval tuples into lists, so compare
        # the expected dicts after the same round-trip.
        assert payload == {"scenarios": json.loads(json.dumps(expected.to_dicts()))}

    def test_list_file_runs_each_row(self, tmp_path, capsys):
        spec_file = tmp_path / "rows.json"
        spec_file.write_text(
            json.dumps(
                [
                    _spec_payload(name="row-a"),
                    _spec_payload(name="row-b", study="fdvt_risk", risk_users=4),
                ]
            )
        )
        exit_code = main(["scenario", "sweep", "--spec", str(spec_file)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "row-a" in out and "row-b" in out

    def test_factor_and_seed_overrides_apply_to_file_specs(self, tmp_path, capsys):
        spec_file = tmp_path / "base.json"
        spec_file.write_text(json.dumps({"base": _spec_payload(seed=None)}))
        output = tmp_path / "results.json"
        exit_code = main(
            [
                "scenario",
                "sweep",
                "--spec",
                str(spec_file),
                "--seed",
                "3",
                "--output",
                str(output),
            ]
        )
        assert exit_code == 0
        payload = json.loads(output.read_text())
        assert [entry["seed"] for entry in payload["scenarios"]] == [3]

    @pytest.mark.parametrize(
        "content,message",
        [
            ("not json", "not valid JSON"),
            ("{}", "'base' spec"),
            ('{"nope": 1}', "'base' spec"),
            ('{"base": {"name": "x"}, "grid": {}, "extra": 1}', "unknown top-level"),
            ("[]", "spec list is empty"),
            ('{"base": {"name": "x", "study": "nope"}}', "unknown study"),
            (
                '[{"name": "x", "study": "uniqueness", "n_bootstraps": 1}]',
                "unknown scenario fields",
            ),
            ('{"base": {"name": "x", "study": "uniqueness"}, "grid": [1]}', "grid"),
            ('{"base": {"name": "x", "study": "uniqueness"}, "grid": []}', "grid"),
            (
                '[{"name": "dup", "study": "uniqueness"},'
                ' {"name": "dup", "study": "fdvt_risk"}]',
                "duplicate scenario names",
            ),
            (
                '{"base": {"name": "x", "study": "uniqueness"},'
                ' "grid": {"api_tier": "modern_2020"}}',
                "axis 'api_tier' must be a JSON list",
            ),
            ('[["name"]]', "must be a JSON object"),
            (
                '{"base": {"name": "x", "study": "uniqueness"},'
                ' "grid": {"seed": [1, 1]}}',
                "duplicate scenario names",
            ),
        ],
        ids=[
            "not-json",
            "empty-object",
            "no-base",
            "extra-keys",
            "empty-list",
            "bad-study",
            "unknown-field",
            "grid-not-object",
            "grid-falsy-list",
            "duplicate-names",
            "grid-axis-not-list",
            "row-not-object",
            "grid-duplicate-names",
        ],
    )
    def test_malformed_spec_files_exit_with_diagnostics(
        self, tmp_path, content, message
    ):
        spec_file = tmp_path / "bad.json"
        spec_file.write_text(content)
        with pytest.raises(SystemExit) as excinfo:
            main(["scenario", "sweep", "--spec", str(spec_file)])
        assert message in str(excinfo.value)

    def test_missing_file_and_conflicting_arguments(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read file"):
            main(["scenario", "sweep", "--spec", str(tmp_path / "absent.json")])
        spec_file = tmp_path / "ok.json"
        spec_file.write_text(json.dumps([_spec_payload()]))
        with pytest.raises(SystemExit, match="not both"):
            main(
                ["scenario", "sweep", "uniqueness-table1", "--spec", str(spec_file)]
            )
        with pytest.raises(SystemExit, match="belongs in the --spec"):
            main(
                [
                    "scenario",
                    "sweep",
                    "--spec",
                    str(spec_file),
                    "--grid",
                    "seed=1,2",
                ]
            )
        with pytest.raises(SystemExit, match="name .*--spec FILE.* is required"):
            main(["scenario", "sweep"])
