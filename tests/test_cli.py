"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main

#: A very small scale keeps every CLI invocation fast.
FACTOR = ["--factor", "80"]


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["uniqueness"])
        assert args.factor == 20
        assert args.probabilities == [0.5, 0.8, 0.9, 0.95]


class TestDatasetCommand:
    def test_writes_catalog_and_panel(self, tmp_path, capsys):
        exit_code = main(
            ["dataset", *FACTOR, "--output-dir", str(tmp_path / "data")]
        )
        assert exit_code == 0
        assert (tmp_path / "data" / "catalog.json").exists()
        assert (tmp_path / "data" / "panel.json").exists()
        captured = capsys.readouterr().out
        assert "catalog" in captured and "panel" in captured


class TestUniquenessCommand:
    def test_prints_table_and_writes_json(self, tmp_path, capsys):
        output = tmp_path / "table1.json"
        exit_code = main(
            [
                "uniqueness",
                *FACTOR,
                "--probabilities",
                "0.5",
                "0.9",
                "--output",
                str(output),
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "least_popular" in captured
        assert "random" in captured
        payload = json.loads(output.read_text())
        assert set(payload) == {"least_popular", "random"}
        assert "0.9" in payload["random"]["estimates"]


class TestNanotargetingCommand:
    def test_runs_21_campaigns(self, tmp_path, capsys):
        output = tmp_path / "table2.json"
        exit_code = main(["nanotargeting", *FACTOR, "--output", str(output)])
        assert exit_code == 0
        payload = json.loads(output.read_text())
        assert payload["n_campaigns"] == 21
        assert "successful campaigns" in capsys.readouterr().out

    def test_fail_on_success_flag(self, capsys):
        exit_code = main(["nanotargeting", *FACTOR, "--fail-on-success"])
        # The unprotected platform lets nanotargeting succeed, so the
        # regression-check mode must signal failure.
        assert exit_code == 1


class TestFdvtReportCommand:
    def test_prints_risk_rows(self, capsys):
        exit_code = main(["fdvt-report", *FACTOR, "--limit", "5"])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "risk breakdown" in captured
        assert "panel user #" in captured


class TestCountermeasuresCommand:
    def test_reports_attack_reduction(self, capsys):
        exit_code = main(["countermeasures", *FACTOR, "--workload-size", "50"])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "protected successes: 0/21" in captured
        assert "attack reduction" in captured
