"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.exec import ShardExecutor
from repro.scenarios import ScenarioSpec, SweepRunner, expand_grid

#: A very small scale keeps every CLI invocation fast.
FACTOR = ["--factor", "80"]


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["uniqueness"])
        assert args.factor == 20
        assert args.probabilities == [0.5, 0.8, 0.9, 0.95]


class TestDatasetCommand:
    def test_writes_catalog_and_panel(self, tmp_path, capsys):
        exit_code = main(
            ["dataset", *FACTOR, "--output-dir", str(tmp_path / "data")]
        )
        assert exit_code == 0
        assert (tmp_path / "data" / "catalog.json").exists()
        assert (tmp_path / "data" / "panel.json").exists()
        captured = capsys.readouterr().out
        assert "catalog" in captured and "panel" in captured


class TestUniquenessCommand:
    def test_prints_table_and_writes_json(self, tmp_path, capsys):
        output = tmp_path / "table1.json"
        exit_code = main(
            [
                "uniqueness",
                *FACTOR,
                "--probabilities",
                "0.5",
                "0.9",
                "--output",
                str(output),
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "least_popular" in captured
        assert "random" in captured
        payload = json.loads(output.read_text())
        assert set(payload) == {"least_popular", "random"}
        assert "0.9" in payload["random"]["estimates"]


class TestNanotargetingCommand:
    def test_runs_21_campaigns(self, tmp_path, capsys):
        output = tmp_path / "table2.json"
        exit_code = main(["nanotargeting", *FACTOR, "--output", str(output)])
        assert exit_code == 0
        payload = json.loads(output.read_text())
        assert payload["n_campaigns"] == 21
        assert "successful campaigns" in capsys.readouterr().out

    def test_fail_on_success_flag(self, capsys):
        exit_code = main(["nanotargeting", *FACTOR, "--fail-on-success"])
        # The unprotected platform lets nanotargeting succeed, so the
        # regression-check mode must signal failure.
        assert exit_code == 1


class TestFdvtReportCommand:
    def test_prints_risk_rows(self, capsys):
        exit_code = main(["fdvt-report", *FACTOR, "--limit", "5"])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "risk breakdown" in captured
        assert "panel user #" in captured


class TestCountermeasuresCommand:
    def test_reports_attack_reduction(self, capsys):
        exit_code = main(["countermeasures", *FACTOR, "--workload-size", "50"])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "protected successes: 0/21" in captured
        assert "attack reduction" in captured


def _spec_payload(**overrides) -> dict:
    spec = dict(
        name="ext",
        study="uniqueness",
        factor=80,
        seed=3,
        strategies=["random"],
        probabilities=[0.9],
        n_bootstrap=10,
    )
    spec.update(overrides)
    return spec


class TestScenarioSweepSpecFile:
    """`scenario sweep --spec file.json`: external grids on the cached path."""

    def test_grid_file_round_trips_the_result_set(self, tmp_path, capsys):
        spec_file = tmp_path / "grid.json"
        spec_file.write_text(
            json.dumps(
                {
                    "base": _spec_payload(),
                    "grid": {"strategies": [["least_popular"], ["random"]]},
                }
            )
        )
        output = tmp_path / "results.json"
        exit_code = main(
            ["scenario", "sweep", "--spec", str(spec_file), "--output", str(output)]
        )
        assert exit_code == 0
        assert "swept 2 scenarios" in capsys.readouterr().out
        # The CLI output is exactly the ResultSet the library produces for
        # the same grid — the file-driven path rides the same sweep.
        grid = expand_grid(
            ScenarioSpec.from_dict(_spec_payload()),
            {"strategies": [("least_popular",), ("random",)]},
        )
        expected = SweepRunner(executor=ShardExecutor()).run(grid)
        payload = json.loads(output.read_text())
        # JSON turns the confidence-interval tuples into lists, so compare
        # the expected dicts after the same round-trip.
        assert payload == {"scenarios": json.loads(json.dumps(expected.to_dicts()))}

    def test_list_file_runs_each_row(self, tmp_path, capsys):
        spec_file = tmp_path / "rows.json"
        spec_file.write_text(
            json.dumps(
                [
                    _spec_payload(name="row-a"),
                    _spec_payload(name="row-b", study="fdvt_risk", risk_users=4),
                ]
            )
        )
        exit_code = main(["scenario", "sweep", "--spec", str(spec_file)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "row-a" in out and "row-b" in out

    def test_factor_and_seed_overrides_apply_to_file_specs(self, tmp_path, capsys):
        spec_file = tmp_path / "base.json"
        spec_file.write_text(json.dumps({"base": _spec_payload(seed=None)}))
        output = tmp_path / "results.json"
        exit_code = main(
            [
                "scenario",
                "sweep",
                "--spec",
                str(spec_file),
                "--seed",
                "3",
                "--output",
                str(output),
            ]
        )
        assert exit_code == 0
        payload = json.loads(output.read_text())
        assert [entry["seed"] for entry in payload["scenarios"]] == [3]

    @pytest.mark.parametrize(
        "content,message",
        [
            ("not json", "not valid JSON"),
            ("{}", "'base' spec"),
            ('{"nope": 1}', "'base' spec"),
            ('{"base": {"name": "x"}, "grid": {}, "extra": 1}', "unknown top-level"),
            ("[]", "spec list is empty"),
            ('{"base": {"name": "x", "study": "nope"}}', "unknown study"),
            (
                '[{"name": "x", "study": "uniqueness", "n_bootstraps": 1}]',
                "unknown scenario fields",
            ),
            ('{"base": {"name": "x", "study": "uniqueness"}, "grid": [1]}', "grid"),
            ('{"base": {"name": "x", "study": "uniqueness"}, "grid": []}', "grid"),
            (
                '[{"name": "dup", "study": "uniqueness"},'
                ' {"name": "dup", "study": "fdvt_risk"}]',
                "duplicate scenario names",
            ),
            (
                '{"base": {"name": "x", "study": "uniqueness"},'
                ' "grid": {"api_tier": "modern_2020"}}',
                "axis 'api_tier' must be a JSON list",
            ),
            ('[["name"]]', "must be a JSON object"),
            (
                '{"base": {"name": "x", "study": "uniqueness"},'
                ' "grid": {"seed": [1, 1]}}',
                "duplicate scenario names",
            ),
        ],
        ids=[
            "not-json",
            "empty-object",
            "no-base",
            "extra-keys",
            "empty-list",
            "bad-study",
            "unknown-field",
            "grid-not-object",
            "grid-falsy-list",
            "duplicate-names",
            "grid-axis-not-list",
            "row-not-object",
            "grid-duplicate-names",
        ],
    )
    def test_malformed_spec_files_exit_with_diagnostics(
        self, tmp_path, content, message
    ):
        spec_file = tmp_path / "bad.json"
        spec_file.write_text(content)
        with pytest.raises(SystemExit) as excinfo:
            main(["scenario", "sweep", "--spec", str(spec_file)])
        assert message in str(excinfo.value)

class TestErrorHygiene:
    """Library failures exit with a one-line diagnostic, never a traceback."""

    def test_configuration_errors_exit_2(self, capsys):
        exit_code = main(["scenario", "run", "no-such-scenario", *FACTOR])
        assert exit_code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert err.startswith("repro-facebook: configuration error:")
        assert "no-such-scenario" in err

    def test_execution_errors_exit_3(self, capsys):
        exit_code = main(["fdvt-report", *FACTOR, "--user-id", "999999"])
        assert exit_code == 3
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert err.startswith("repro-facebook: PanelError:")

    def test_doomed_chaos_sweep_exits_3_with_shard_context(
        self, tmp_path, capsys
    ):
        spec_file = tmp_path / "grid.json"
        spec_file.write_text(
            json.dumps({"base": _spec_payload(), "grid": {"seed": [1, 2]}})
        )
        # --fault-seed 1 dooms grid row 0 twice in a row, which a
        # --retries 1 budget cannot outlast; on_error defaults to raise.
        exit_code = main(
            [
                "scenario", "sweep", "--spec", str(spec_file),
                "--retries", "1", "--fault-rate", "0.9", "--fault-seed", "1",
            ]
        )
        assert exit_code == 3
        assert "ShardFailedError" in capsys.readouterr().err


class TestScenarioSweepFaultTolerance:
    def _grid_file(self, tmp_path):
        spec_file = tmp_path / "grid.json"
        spec_file.write_text(
            json.dumps({"base": _spec_payload(), "grid": {"seed": [1, 2]}})
        )
        return spec_file

    def test_chaos_sweep_output_is_bit_identical_to_fault_free(
        self, tmp_path, capsys
    ):
        spec_file = self._grid_file(tmp_path)
        clean, chaotic = tmp_path / "clean.json", tmp_path / "chaos.json"
        assert main(
            ["scenario", "sweep", "--spec", str(spec_file), "--output", str(clean)]
        ) == 0
        assert main(
            [
                "scenario", "sweep", "--spec", str(spec_file),
                "--retries", "3", "--fault-rate", "0.9", "--fault-seed", "1",
                "--output", str(chaotic),
            ]
        ) == 0
        assert json.loads(chaotic.read_text()) == json.loads(clean.read_text())
        assert "retried" in capsys.readouterr().out

    def test_on_error_skip_dead_letters_and_exits_1(self, tmp_path, capsys):
        spec_file = self._grid_file(tmp_path)
        output = tmp_path / "partial.json"
        exit_code = main(
            [
                "scenario", "sweep", "--spec", str(spec_file),
                "--retries", "1", "--fault-rate", "0.9", "--fault-seed", "1",
                "--on-error", "skip", "--output", str(output),
            ]
        )
        assert exit_code == 1
        captured = capsys.readouterr()
        assert "1 dead-lettered" in captured.out
        assert "failed after 2 attempt(s)" in captured.err
        # The partial results still cover the surviving row.
        assert len(json.loads(output.read_text())["scenarios"]) == 1

    def test_manifest_resume_round_trip(self, tmp_path, capsys):
        spec_file = self._grid_file(tmp_path)
        manifest = tmp_path / "manifest.json"
        clean, resumed = tmp_path / "clean.json", tmp_path / "resumed.json"
        assert main(
            [
                "scenario", "sweep", "--spec", str(spec_file),
                "--manifest", str(manifest), "--output", str(clean),
            ]
        ) == 0
        payload = json.loads(manifest.read_text())
        assert [e["status"] for e in payload["entries"]] == ["completed"] * 2
        assert main(
            [
                "scenario", "sweep", "--spec", str(spec_file),
                "--resume", str(manifest), "--output", str(resumed),
            ]
        ) == 0
        assert "2 resumed" in capsys.readouterr().out
        assert json.loads(resumed.read_text()) == json.loads(clean.read_text())

    def test_manifest_notes_record_the_retry_clock(self, tmp_path, capsys):
        spec_file = self._grid_file(tmp_path)
        manifest = tmp_path / "manifest.json"
        assert main(
            [
                "scenario", "sweep", "--spec", str(spec_file),
                "--retries", "1", "--manifest", str(manifest),
            ]
        ) == 0
        assert json.loads(manifest.read_text())["notes"]["retry_clock"] == "sim"
        assert main(
            [
                "scenario", "sweep", "--spec", str(spec_file),
                "--retries", "1", "--wall-clock-retries",
                "--manifest", str(manifest),
            ]
        ) == 0
        assert json.loads(manifest.read_text())["notes"]["retry_clock"] == "wall"

    def test_resume_with_a_bad_manifest_exits_2(self, tmp_path, capsys):
        spec_file = self._grid_file(tmp_path)
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        exit_code = main(
            ["scenario", "sweep", "--spec", str(spec_file), "--resume", str(bad)]
        )
        assert exit_code == 2
        assert "configuration error" in capsys.readouterr().err


class TestFaultsCommand:
    def test_describes_plan_and_previews_decisions(self, capsys):
        exit_code = main(["faults", "--seed", "7", "--tasks", "8"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "fault plan:" in out
        assert "retry policy (sim clock" in out
        assert "retry policy (wall clock" in out
        assert "clock: sim" in out
        assert "clock: wall" in out
        assert "jitter: full" in out
        assert "preview:" in out
        assert "convergence: guaranteed" in out

    def test_flags_unconverging_budgets(self, capsys):
        exit_code = main(["faults", "--retries", "1"])
        assert exit_code == 0
        assert "NOT guaranteed" in capsys.readouterr().out

    def test_same_seed_prints_the_same_schedule(self, capsys):
        main(["faults", "--seed", "9"])
        first = capsys.readouterr().out
        main(["faults", "--seed", "9"])
        assert capsys.readouterr().out == first


class TestServeCommand:
    """`repro-facebook serve`: the always-on reach service smoke path."""

    def test_serves_a_chaotic_trace_with_parity(self, tmp_path, capsys):
        output = tmp_path / "serve.json"
        exit_code = main(
            [
                "serve", *FACTOR, "--seed", "3",
                "--duration", "5", "--rps", "4", "--tenants", "2",
                "--fault-rate", "0.2", "--retries", "3",
                "--verify-parity", "--output", str(output),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "served" in out and "shed rate" in out
        assert "parity: all" in out
        payload = json.loads(output.read_text())
        assert payload["parity_ok"] is True
        assert payload["summary"]["status_counts"].get("ok", 0) >= 1
        assert payload["service"]["counters"]["submitted"] == sum(
            payload["summary"]["status_counts"].values()
        )

    def test_saved_trace_replays_bit_identically(self, tmp_path, capsys):
        trace_file = tmp_path / "trace.json"
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        args = ["serve", *FACTOR, "--seed", "5", "--duration", "4", "--rps", "3"]
        assert main(
            [*args, "--trace-out", str(trace_file), "--output", str(first)]
        ) == 0
        assert trace_file.exists()
        assert main(
            [*args, "--trace", str(trace_file), "--output", str(second)]
        ) == 0
        capsys.readouterr()
        # Wall-clock timing differs between runs; everything virtual must not.
        a, b = json.loads(first.read_text()), json.loads(second.read_text())
        assert a["summary"] == b["summary"]
        assert a["service"]["counters"] == b["service"]["counters"]

    def test_service_errors_exit_4_with_one_line(self, capsys, monkeypatch):
        from repro.errors import OverloadedError

        def explode(args):
            raise OverloadedError("queue full", retry_after_seconds=1.0)

        monkeypatch.setattr("repro.cli.cmd_serve", explode)
        exit_code = main(["serve", *FACTOR])
        assert exit_code == 4
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert err.startswith("repro-facebook: service error: OverloadedError:")


class TestScenarioSweepSpecFileErrors:
    def test_missing_file_and_conflicting_arguments(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read file"):
            main(["scenario", "sweep", "--spec", str(tmp_path / "absent.json")])
        spec_file = tmp_path / "ok.json"
        spec_file.write_text(json.dumps([_spec_payload()]))
        with pytest.raises(SystemExit, match="not both"):
            main(
                ["scenario", "sweep", "uniqueness-table1", "--spec", str(spec_file)]
            )
        with pytest.raises(SystemExit, match="belongs in the --spec"):
            main(
                [
                    "scenario",
                    "sweep",
                    "--spec",
                    str(spec_file),
                    "--grid",
                    "seed=1,2",
                ]
            )
        with pytest.raises(SystemExit, match="name .*--spec FILE.* is required"):
            main(["scenario", "sweep"])
