"""Tests for the RNG plumbing and the simulated clock."""

from __future__ import annotations

import numpy as np
import pytest

from repro._rng import (
    as_generator,
    derive_generator,
    derive_seed,
    spawn_generators,
    stable_hash,
)
from repro.errors import ConfigurationError
from repro.simclock import SimClock


class TestAsGenerator:
    def test_none_uses_library_default_seed(self):
        first = as_generator(None).integers(0, 2**32, size=5)
        second = as_generator(None).integers(0, 2**32, size=5)
        assert np.array_equal(first, second)

    def test_int_seed_is_deterministic(self):
        assert np.array_equal(
            as_generator(42).integers(0, 100, size=10),
            as_generator(42).integers(0, 100, size=10),
        )

    def test_generator_passthrough(self):
        rng = np.random.default_rng(1)
        assert as_generator(rng) is rng

    def test_rejects_unsupported_types(self):
        with pytest.raises(TypeError):
            as_generator("not a seed")


class TestStableHash:
    def test_is_deterministic_across_calls(self):
        assert stable_hash("a", 1, (2, 3)) == stable_hash("a", 1, (2, 3))

    def test_different_keys_give_different_hashes(self):
        assert stable_hash("a") != stable_hash("b")

    def test_order_matters(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_non_negative(self):
        assert stable_hash("anything", 123) >= 0


class TestDerivedGenerators:
    def test_derive_seed_is_stable(self):
        assert derive_seed(10, "panel") == derive_seed(10, "panel")

    def test_derive_seed_differs_per_key(self):
        assert derive_seed(10, "panel") != derive_seed(10, "catalog")

    def test_derive_generator_streams_are_independent(self):
        a = derive_generator(5, "a").integers(0, 2**32, size=4)
        b = derive_generator(5, "b").integers(0, 2**32, size=4)
        assert not np.array_equal(a, b)

    def test_spawn_generators_covers_all_names(self):
        streams = spawn_generators(3, ["x", "y", "z"])
        assert set(streams) == {"x", "y", "z"}


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(10.0)
        clock.advance(5.0)
        assert clock.now() == pytest.approx(15.0)

    def test_advance_hours(self):
        clock = SimClock()
        clock.advance_hours(2.0)
        assert clock.now() == pytest.approx(7200.0)
        assert clock.now_hours() == pytest.approx(2.0)

    def test_cannot_move_backwards(self):
        clock = SimClock()
        clock.advance(10.0)
        with pytest.raises(ConfigurationError):
            clock.advance(-1.0)
        with pytest.raises(ConfigurationError):
            clock.set_time(5.0)

    def test_set_time_forward(self):
        clock = SimClock()
        clock.set_time(100.0)
        assert clock.now() == pytest.approx(100.0)
