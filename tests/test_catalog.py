"""Tests for the interest catalog subsystem."""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog import (
    Interest,
    InterestCatalog,
    PopularityModel,
    TOPICS,
    interest_name,
    topic_for_index,
    validate_topic,
)
from repro.config import CatalogConfig
from repro.errors import CatalogError, ConfigurationError, UnknownInterestError


class TestInterest:
    def test_valid_interest(self):
        interest = Interest(1, "Italian food", "Food and drink", 100_000)
        assert interest.audience_size == 100_000

    def test_rejects_negative_id(self):
        with pytest.raises(CatalogError):
            Interest(-1, "x", "Food and drink", 10)

    def test_rejects_negative_audience(self):
        with pytest.raises(CatalogError):
            Interest(1, "x", "Food and drink", -5)

    def test_rejects_empty_name_or_topic(self):
        with pytest.raises(CatalogError):
            Interest(1, "", "Food and drink", 10)
        with pytest.raises(CatalogError):
            Interest(1, "x", "", 10)

    def test_rarer_comparison(self):
        rare = Interest(1, "a", "People", 50)
        popular = Interest(2, "b", "People", 5_000)
        assert rare.is_rarer_than(popular)
        assert not popular.is_rarer_than(rare)

    def test_round_trip_serialisation(self):
        interest = Interest(7, "Vintage cameras", "Hobbies and activities", 12_345)
        assert Interest.from_dict(interest.to_dict()) == interest


class TestTaxonomy:
    def test_topics_are_unique(self):
        assert len(set(TOPICS)) == len(TOPICS)

    def test_topic_for_index_round_robin(self):
        assert topic_for_index(0) == TOPICS[0]
        assert topic_for_index(len(TOPICS)) == TOPICS[0]

    def test_topic_for_index_respects_n_topics(self):
        assert topic_for_index(5, n_topics=3) == TOPICS[5 % 3]

    def test_topic_for_index_rejects_negative(self):
        with pytest.raises(CatalogError):
            topic_for_index(-1)

    def test_interest_name_is_deterministic(self):
        assert interest_name(3, "Music") == interest_name(3, "Music")

    def test_validate_topic(self):
        assert validate_topic("Music") == "Music"
        with pytest.raises(CatalogError):
            validate_topic("Not a topic")


class TestPopularityModel:
    def test_samples_respect_bounds(self):
        model = PopularityModel(min_audience=20, max_audience=10**7)
        samples = model.sample(5_000, seed=3)
        assert samples.min() >= 20
        assert samples.max() <= 10**7

    def test_sample_count_and_dtype(self):
        samples = PopularityModel().sample(100, seed=1)
        assert samples.shape == (100,)
        assert samples.dtype == np.int64

    def test_empty_sample(self):
        assert PopularityModel().sample(0, seed=1).size == 0

    def test_negative_sample_size_rejected(self):
        with pytest.raises(ConfigurationError):
            PopularityModel().sample(-1)

    def test_median_roughly_matches_configuration(self):
        model = PopularityModel(median_audience=400_000, rare_tail_fraction=0.0)
        samples = model.sample(20_000, seed=5)
        median = np.median(samples)
        assert 200_000 < median < 800_000

    def test_quantile_is_monotone(self):
        model = PopularityModel()
        assert model.quantile(0.25) < model.quantile(0.5) < model.quantile(0.75)

    def test_from_config_caps_at_world_fraction(self):
        config = CatalogConfig(max_audience_fraction=0.1)
        model = PopularityModel.from_config(config, world_population=1_000_000)
        assert model.max_audience == 100_000

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            PopularityModel(median_audience=-1)
        with pytest.raises(ConfigurationError):
            PopularityModel(log10_sigma=0)
        with pytest.raises(ConfigurationError):
            PopularityModel(max_audience=10, min_audience=20)


class TestInterestCatalog:
    def test_generation_size(self, tiny_catalog):
        assert len(tiny_catalog) == 300

    def test_generation_is_deterministic(self):
        config = CatalogConfig(n_interests=200, seed=13)
        first = InterestCatalog.generate(config, seed=13)
        second = InterestCatalog.generate(config, seed=13)
        assert first.to_dicts() == second.to_dicts()

    def test_different_seeds_differ(self):
        config = CatalogConfig(n_interests=200)
        first = InterestCatalog.generate(config, seed=1)
        second = InterestCatalog.generate(config, seed=2)
        assert first.to_dicts() != second.to_dicts()

    def test_get_unknown_interest_raises(self, tiny_catalog):
        with pytest.raises(UnknownInterestError):
            tiny_catalog.get(10**9)

    def test_contains_and_iteration(self, tiny_catalog):
        ids = [interest.interest_id for interest in tiny_catalog]
        assert len(ids) == len(tiny_catalog)
        assert ids[0] in tiny_catalog

    def test_audience_sizes_vector(self, tiny_catalog):
        ids = tiny_catalog.interest_ids[:10]
        sizes = tiny_catalog.audience_sizes(ids)
        assert sizes.shape == (10,)
        assert (sizes > 0).all()

    def test_rarest_and_most_popular_are_ordered(self, tiny_catalog):
        rarest = tiny_catalog.rarest(5)
        popular = tiny_catalog.most_popular(5)
        assert all(
            rarest[i].audience_size <= rarest[i + 1].audience_size for i in range(4)
        )
        assert all(
            popular[i].audience_size >= popular[i + 1].audience_size for i in range(4)
        )
        assert rarest[0].audience_size <= popular[-1].audience_size

    def test_by_topic_partitions_catalog(self, tiny_catalog):
        total = sum(len(tiny_catalog.by_topic(topic)) for topic in tiny_catalog.topics())
        assert total == len(tiny_catalog)

    def test_sample_ids_without_replacement_unique(self, tiny_catalog):
        sampled = tiny_catalog.sample_ids(50, seed=3)
        assert len(set(int(i) for i in sampled)) == 50

    def test_sample_ids_rejects_oversampling(self, tiny_catalog):
        with pytest.raises(CatalogError):
            tiny_catalog.sample_ids(len(tiny_catalog) + 1, seed=1)

    def test_sample_ids_with_weights_validation(self, tiny_catalog):
        with pytest.raises(CatalogError):
            tiny_catalog.sample_ids(5, seed=1, weights=np.ones(3))

    def test_duplicate_ids_rejected(self):
        interest = Interest(1, "a", "Music", 10)
        with pytest.raises(CatalogError):
            InterestCatalog([interest, interest])

    def test_empty_catalog_rejected(self):
        with pytest.raises(CatalogError):
            InterestCatalog([])

    def test_round_trip_serialisation(self, tiny_catalog):
        rebuilt = InterestCatalog.from_dicts(tiny_catalog.to_dicts())
        assert rebuilt.to_dicts() == tiny_catalog.to_dicts()

    def test_audience_percentiles_are_monotone(self, tiny_catalog):
        p25, p50, p75 = tiny_catalog.audience_percentiles([25, 50, 75])
        assert p25 <= p50 <= p75


class TestFullScaleCatalogCalibration:
    """The full-scale catalog must reproduce the Figure 2 quartiles."""

    @pytest.fixture(scope="class")
    def full_catalog(self):
        return InterestCatalog.generate(CatalogConfig(n_interests=30_000, seed=5))

    def test_quartiles_match_paper_order_of_magnitude(self, full_catalog):
        p25, p50, p75 = full_catalog.audience_percentiles([25, 50, 75])
        # Paper (Figure 2): 113,193 / 418,530 / 1,719,925.
        assert 3e4 < p25 < 4e5
        assert 1.5e5 < p50 < 1.2e6
        assert 6e5 < p75 < 5e6

    def test_contains_rare_interests(self, full_catalog):
        rarest = full_catalog.rarest(10)
        assert rarest[0].audience_size < 5_000
