"""Tests for the attacker-side planner built on the uniqueness model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AttackPlanner, fit_vas
from repro.core.bootstrap import ConfidenceInterval
from repro.core.results import NPEstimate, UniquenessReport
from repro.errors import ModelError
from repro.population import SyntheticUser


def _report(cutpoints: dict[float, float]) -> UniquenessReport:
    """Build a synthetic uniqueness report with prescribed cutpoints."""
    estimates = {}
    for probability, cutpoint in cutpoints.items():
        # Build a fit whose cutpoint equals the requested value.
        slope = 6.0
        intercept = slope * np.log10(cutpoint + 1.0)
        vas = 10 ** (intercept - slope * np.log10(np.arange(1, 26) + 1.0))
        fit = fit_vas(np.maximum(vas, 1.0), floor=1)
        estimates[probability] = NPEstimate(
            probability=probability,
            n_p=fit.cutpoint,
            confidence_interval=ConfidenceInterval(
                low=fit.cutpoint * 0.9, high=fit.cutpoint * 1.1, level=0.95
            ),
            r_squared=fit.r_squared,
            fit=fit,
        )
    return UniquenessReport(
        strategy_name="random",
        estimates=estimates,
        vas_curves={p: np.array([]) for p in cutpoints},
        n_users=100,
        floor=20,
    )


PAPER_LIKE = {0.5: 11.4, 0.8: 17.3, 0.9: 22.2, 0.95: 27.0}


class TestSuccessProbability:
    def test_matches_cutpoints_exactly(self):
        planner = AttackPlanner(_report(PAPER_LIKE))
        assert planner.success_probability(12) == pytest.approx(0.5, abs=0.05)
        assert planner.success_probability(23) == pytest.approx(0.9, abs=0.05)

    def test_monotone_in_interest_count(self):
        planner = AttackPlanner(_report(PAPER_LIKE))
        values = [planner.success_probability(n) for n in range(1, 30)]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_saturates_at_highest_probability(self):
        planner = AttackPlanner(_report(PAPER_LIKE))
        assert planner.success_probability(200) == pytest.approx(0.95)

    def test_small_counts_have_small_probability(self):
        planner = AttackPlanner(_report(PAPER_LIKE))
        assert planner.success_probability(2) < 0.2

    def test_invalid_count_rejected(self):
        planner = AttackPlanner(_report(PAPER_LIKE))
        with pytest.raises(ModelError):
            planner.success_probability(0)


class TestInterestsNeeded:
    def test_paper_regime(self):
        planner = AttackPlanner(_report(PAPER_LIKE))
        assert planner.interests_needed(0.5) <= 13
        assert 18 <= planner.interests_needed(0.9) <= 24

    def test_95_percent_attack_is_not_actionable(self):
        """The paper: 27 interests exceed the 25-interest platform cap."""
        planner = AttackPlanner(_report(PAPER_LIKE))
        with pytest.raises(ModelError):
            planner.interests_needed(0.95)

    def test_invalid_probability_rejected(self):
        planner = AttackPlanner(_report(PAPER_LIKE))
        with pytest.raises(ModelError):
            planner.interests_needed(1.5)


class TestAssessAndPlan:
    def test_assessment_uses_at_most_the_platform_cap(self):
        planner = AttackPlanner(_report(PAPER_LIKE))
        assessment = planner.assess(list(range(40)))
        assert assessment.n_interests_known == 40
        assert assessment.n_interests_used == 25
        assert assessment.actionable

    def test_assessment_requires_known_interests(self):
        planner = AttackPlanner(_report(PAPER_LIKE))
        with pytest.raises(ModelError):
            planner.assess([])

    def test_predicted_audience_decreases_with_interests(self):
        planner = AttackPlanner(_report(PAPER_LIKE))
        assert planner.predicted_audience(5) > planner.predicted_audience(20)

    def test_plan_filters_wrong_guesses(self):
        planner = AttackPlanner(_report(PAPER_LIKE))
        victim = SyntheticUser(7, "ES", interest_ids=tuple(range(10, 40)))
        known = list(range(0, 20))  # only 10..19 are actually the victim's
        plan = planner.plan(victim, known)
        assert set(plan.interests) <= set(victim.interest_ids)
        assert plan.assessment.n_interests_known == 10
        assert plan.victim_user_id == 7

    def test_plan_requires_at_least_one_correct_interest(self):
        planner = AttackPlanner(_report(PAPER_LIKE))
        victim = SyntheticUser(7, "ES", interest_ids=(1, 2, 3))
        with pytest.raises(ModelError):
            planner.plan(victim, [99, 100])

    def test_planner_on_simulated_report(self, simulation):
        """Integration: plan an attack from a report estimated on the panel."""
        from repro.adsapi import AdsManagerAPI
        from repro.config import PlatformConfig, UniquenessConfig
        from repro.core import RandomSelection, UniquenessModel
        from repro.reach import country_codes
        from repro.simclock import SimClock

        api = AdsManagerAPI(
            simulation.reach_model, platform=PlatformConfig.legacy_2017(), clock=SimClock()
        )
        model = UniquenessModel(
            api, simulation.panel, UniquenessConfig(n_bootstrap=20, seed=3),
            locations=country_codes(),
        )
        report = model.estimate(RandomSelection(seed=3), probabilities=[0.5, 0.9])
        planner = AttackPlanner(report)
        victim = max(simulation.panel.users, key=lambda u: u.interest_count)
        plan = planner.plan(victim, victim.interest_ids[:25])
        assert plan.assessment.success_probability > 0.5
        assert len(plan.interests) <= 25
