"""Reference values published in the paper.

Keeping the paper's headline numbers as structured data lets tests,
benchmarks and reports compare a reproduction run against the original
results without copying magic constants around.  All values are transcribed
from the IMC '21 paper (Tables 1 and 2, Figures 1, 2 and 8-10, Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Figure 1 — interests per panellist.
PAPER_INTERESTS_PER_USER = {
    "min": 1,
    "median": 426,
    "max": 8_950,
    "panel_size": 2_390,
    "unique_interests": 98_982,
    "total_occurrences": 1_500_000,
}

#: Figure 2 — audience-size percentiles of the unique interests.
PAPER_INTEREST_AUDIENCE_PERCENTILES = {25: 113_193, 50: 418_530, 75: 1_719_925}

#: Table 1 — N_P point estimates per strategy and probability.
PAPER_TABLE1 = {
    "least_popular": {0.5: 2.74, 0.8: 3.96, 0.9: 4.16, 0.95: 5.89},
    "random": {0.5: 11.41, 0.8: 17.31, 0.9: 22.21, 0.95: 26.98},
}

#: Table 1 — 95% confidence intervals.
PAPER_TABLE1_CI = {
    "least_popular": {
        0.5: (2.72, 2.75),
        0.8: (3.91, 4.02),
        0.9: (4.09, 4.37),
        0.95: (5.62, 6.15),
    },
    "random": {
        0.5: (11.21, 11.6),
        0.8: (16.98, 17.6),
        0.9: (21.73, 22.69),
        0.95: (26.34, 27.68),
    },
}

#: Section 5 / Table 2 — aggregate outcomes of the nanotargeting experiment.
PAPER_TABLE2_SUMMARY = {
    "n_campaigns": 21,
    "n_targets": 3,
    "interest_counts": (5, 7, 9, 12, 18, 20, 22),
    "successful_campaigns": 9,
    "successes_by_interests": {5: 0, 7: 0, 9: 0, 12: 1, 18: 2, 20: 3, 22: 3},
    "successful_cost_eur": 0.12,
    "total_cost_eur": 305.36,
    "min_tfi_minutes": 44,
    "max_tfi_minutes": 32 * 60 + 10,
    "active_hours": 33,
}

#: Appendix C — N_0.9 per demographic group (least popular, random).
PAPER_DEMOGRAPHICS_N09 = {
    "gender": {"men": (4.16, 21.92), "women": (4.20, 23.80)},
    "age": {
        "adolescence": (4.11, 24.92),
        "early_adulthood": (4.16, 21.99),
        "adulthood": (4.45, 22.20),
    },
    "country": {
        "FR": (4.21, 19.28),
        "ES": (4.29, 21.70),
        "MX": (3.96, 22.05),
        "AR": (4.03, 24.49),
    },
}

#: Section 8.3 — fraction of real campaigns combining more than 9 interests.
PAPER_CAMPAIGNS_ABOVE_9_INTERESTS = 0.01


@dataclass(frozen=True, slots=True)
class ReferenceCheck:
    """Outcome of comparing one reproduced quantity against the paper."""

    name: str
    paper_value: float
    measured_value: float
    tolerance_ratio: float

    @property
    def ratio(self) -> float:
        """Measured / paper ratio (1.0 means exact agreement)."""
        if self.paper_value == 0:
            return float("inf") if self.measured_value else 1.0
        return self.measured_value / self.paper_value

    @property
    def within_tolerance(self) -> bool:
        """True when the measured value is within the multiplicative tolerance."""
        return 1.0 / self.tolerance_ratio <= self.ratio <= self.tolerance_ratio

    def describe(self) -> str:
        """One-line human-readable summary."""
        status = "ok" if self.within_tolerance else "off"
        return (
            f"{self.name}: paper={self.paper_value:g} measured={self.measured_value:g} "
            f"ratio={self.ratio:.2f} [{status}]"
        )
