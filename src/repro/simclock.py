"""A deterministic simulated clock.

The Ads API rate limiter, the campaign scheduler and the delivery engine all
need a notion of time.  Using the wall clock would make the pipeline
non-reproducible and slow to test, so every time-dependent component accepts
a :class:`SimClock` that only moves when told to.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ConfigurationError


@dataclass
class SimClock:
    """A monotonically increasing simulated clock measured in seconds."""

    _now: float = field(default=0.0)

    def now(self) -> float:
        """Return the current simulated time in seconds."""
        return self._now

    def now_hours(self) -> float:
        """Return the current simulated time in hours."""
        return self._now / 3600.0

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ConfigurationError("cannot move a SimClock backwards")
        self._now += seconds
        return self._now

    def advance_hours(self, hours: float) -> float:
        """Advance the clock by ``hours`` and return the new time in seconds."""
        return self.advance(hours * 3600.0)

    def set_time(self, seconds: float) -> None:
        """Jump forward to an absolute time (never backwards)."""
        if seconds < self._now:
            raise ConfigurationError("cannot move a SimClock backwards")
        self._now = seconds
