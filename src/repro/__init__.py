"""repro — reproduction of "Unique on Facebook" (IMC 2021).

The package reproduces, on fully synthetic substrates, the two contributions
of González-Cabañas et al., IMC '21:

* a data-driven model of ``N_P`` — the number of (non-PII) interests that
  make a Facebook user unique with probability ``P`` (Section 4);
* a systematic nanotargeting experiment showing that an attacker knowing
  enough interests of a user can deliver ads exclusively to that user
  (Section 5) — plus the FDVT-side and platform-side countermeasures of
  Sections 6 and 8.

Quick start::

    from repro import build_simulation, quick_config

    simulation = build_simulation(quick_config())
    model = simulation.uniqueness_model()
    lp, random = simulation.strategies()
    report = model.estimate(random)
    print(report.summary_lines())
"""

from .cache import (
    BuildCache,
    CacheInfo,
    DiskCache,
    build_cache,
    reset_build_cache,
    resolve_cache_root,
    resolve_cache_size,
    stable_fingerprint,
)
from .config import (
    CatalogConfig,
    ExperimentConfig,
    PanelConfig,
    PlatformConfig,
    PopulationConfig,
    ReachModelConfig,
    ReproductionConfig,
    UniquenessConfig,
    default_config,
    quick_config,
)
from .errors import (
    AdsApiError,
    ArtifactError,
    CalibrationError,
    CatalogError,
    ConfigurationError,
    DeliveryError,
    ExecError,
    InsufficientDataError,
    ModelError,
    PanelError,
    PopulationError,
    ReproError,
    ServiceError,
    ShardFailedError,
    TransientApiError,
)
from .faults import FaultPlan, RetryPolicy, WallClockRetryPolicy
from .pipeline import (
    PANEL_LAYOUTS,
    Simulation,
    assemble_simulation,
    build_catalog,
    build_panel,
    build_simulation,
    catalog_fingerprint,
    panel_fingerprint,
    resolve_panel_layout,
    simulation_fingerprint,
)
from .scenarios import (
    RunManifest,
    ScenarioSpec,
    SweepReport,
    SweepRunner,
    expand_grid,
    get_scenario,
    list_scenarios,
    register_scenario,
    run_scenario,
)
from .service import (
    ReachRequest,
    ReachResponse,
    ReachService,
    RequestTrace,
    ServiceConfig,
    run_trace,
)
from .simclock import SimClock

__version__ = "1.0.0"

__all__ = [
    "AdsApiError",
    "ArtifactError",
    "BuildCache",
    "CacheInfo",
    "CalibrationError",
    "CatalogConfig",
    "CatalogError",
    "ConfigurationError",
    "DeliveryError",
    "DiskCache",
    "ExecError",
    "ExperimentConfig",
    "FaultPlan",
    "InsufficientDataError",
    "ModelError",
    "PANEL_LAYOUTS",
    "PanelConfig",
    "PanelError",
    "PlatformConfig",
    "PopulationConfig",
    "PopulationError",
    "ReachModelConfig",
    "ReachRequest",
    "ReachResponse",
    "ReachService",
    "ReproError",
    "ReproductionConfig",
    "RequestTrace",
    "RetryPolicy",
    "RunManifest",
    "ScenarioSpec",
    "ServiceConfig",
    "ServiceError",
    "ShardFailedError",
    "SimClock",
    "Simulation",
    "SweepReport",
    "SweepRunner",
    "TransientApiError",
    "UniquenessConfig",
    "WallClockRetryPolicy",
    "__version__",
    "assemble_simulation",
    "build_cache",
    "build_catalog",
    "build_panel",
    "build_simulation",
    "catalog_fingerprint",
    "default_config",
    "expand_grid",
    "get_scenario",
    "list_scenarios",
    "panel_fingerprint",
    "quick_config",
    "register_scenario",
    "reset_build_cache",
    "resolve_cache_root",
    "resolve_cache_size",
    "resolve_panel_layout",
    "run_scenario",
    "run_trace",
    "simulation_fingerprint",
    "stable_fingerprint",
]
