"""Figure-series builders.

The library does not plot; instead each figure of the paper maps to a
function returning the numeric series a plotting tool (or a benchmark
assertion) needs.  All series are plain dataclasses of numpy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..catalog import InterestCatalog
from ..core.fitting import LogLogFit, fit_vas
from ..core.quantiles import AudienceSamples
from ..core.results import UniquenessReport
from ..errors import ModelError
from ..fdvt.panel import FDVTPanel
from .cdf import EmpiricalCDF


@dataclass(frozen=True)
class CDFSeries:
    """A CDF curve: sorted x values and cumulative probabilities."""

    label: str
    x: np.ndarray
    cumulative: np.ndarray

    def __post_init__(self) -> None:
        if self.x.shape != self.cumulative.shape:
            raise ModelError("x and cumulative must have the same shape")


@dataclass(frozen=True)
class VASSeries:
    """One VAS(Q) curve plus its fitted line (Figures 3, 4 and 5)."""

    quantile_percent: float
    n_interests: np.ndarray
    audience_sizes: np.ndarray
    fit: LogLogFit

    @property
    def fitted_curve(self) -> np.ndarray:
        """The fitted audience sizes at every N."""
        return self.fit.predict_many(self.n_interests)


@dataclass(frozen=True)
class BarSeries:
    """Bar-plot data for the demographic figures (Figures 8-10)."""

    labels: tuple[str, ...]
    values: np.ndarray
    ci_low: np.ndarray
    ci_high: np.ndarray


def figure1_interests_per_user(panel: FDVTPanel, *, n_points: int | None = None) -> CDFSeries:
    """Figure 1: CDF of the number of interests per panel user."""
    cdf = EmpiricalCDF.from_samples(panel.interests_per_user())
    x, cumulative = cdf.series(n_points)
    return CDFSeries(label="interests per user", x=x, cumulative=cumulative)


def figure2_interest_audience_cdf(
    catalog: InterestCatalog,
    panel: FDVTPanel | None = None,
    *,
    n_points: int | None = None,
) -> CDFSeries:
    """Figure 2: CDF of the audience size of the unique interests observed.

    When a panel is given only the interests actually assigned to at least
    one panellist are considered (as in the paper); otherwise the whole
    catalog is used.
    """
    if panel is not None:
        interest_ids = panel.unique_interest_ids()
        audiences = catalog.audience_sizes(interest_ids)
    else:
        audiences = catalog.all_audience_sizes()
    cdf = EmpiricalCDF.from_samples(audiences)
    x, cumulative = cdf.series(n_points)
    return CDFSeries(label="interest audience size", x=x, cumulative=cumulative)


def vas_series(
    samples: AudienceSamples, quantile_percents: Sequence[float]
) -> list[VASSeries]:
    """VAS(Q) curves with fits for several quantiles (Figures 3-5)."""
    series = []
    for quantile in quantile_percents:
        vas = samples.vas(quantile)
        fit = fit_vas(vas, samples.floor)
        n = np.arange(1, vas.size + 1, dtype=float)
        series.append(
            VASSeries(
                quantile_percent=float(quantile),
                n_interests=n,
                audience_sizes=vas,
                fit=fit,
            )
        )
    return series


def figure3_illustration(samples: AudienceSamples) -> list[VASSeries]:
    """Figure 3: VAS(50) and VAS(90) with their fitted lines."""
    return vas_series(samples, (50.0, 90.0))


def figures4_5_quantile_curves(samples: AudienceSamples) -> list[VASSeries]:
    """Figures 4 and 5: VAS(Q) for Q in {50, 80, 90, 95} with fits."""
    return vas_series(samples, (50.0, 80.0, 90.0, 95.0))


def demographic_bar_series(
    group_reports: Mapping[str, UniquenessReport] | Sequence[tuple[str, UniquenessReport]],
    *,
    probability: float = 0.9,
) -> BarSeries:
    """Figures 8-10: N_0.9 per demographic group with confidence intervals."""
    if isinstance(group_reports, Mapping):
        items = list(group_reports.items())
    else:
        items = list(group_reports)
    if not items:
        raise ModelError("at least one group report is required")
    labels = []
    values = []
    low = []
    high = []
    for label, report in items:
        estimate = report.estimate_for(probability)
        labels.append(label)
        values.append(estimate.n_p)
        low.append(estimate.confidence_interval.low)
        high.append(estimate.confidence_interval.high)
    return BarSeries(
        labels=tuple(labels),
        values=np.asarray(values, dtype=float),
        ci_low=np.asarray(low, dtype=float),
        ci_high=np.asarray(high, dtype=float),
    )
