"""Plain-text table rendering for reports and benchmark output."""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import ModelError


def format_cell(value: object) -> str:
    """Render one cell value."""
    if isinstance(value, float):
        return f"{value:,.2f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    if not headers:
        raise ModelError("a table needs at least one column")
    rendered_rows = [[format_cell(cell) for cell in row] for row in rows]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ModelError("every row must have one cell per header")
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_records(records: Sequence[Mapping[str, object]]) -> str:
    """Render a list of homogeneous dictionaries as a table."""
    if not records:
        raise ModelError("at least one record is required")
    headers = list(records[0].keys())
    rows = [[record.get(header, "") for header in headers] for record in records]
    return format_table(headers, rows)
