"""Empirical CDF utilities (Figures 1 and 2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ModelError


@dataclass(frozen=True)
class EmpiricalCDF:
    """The empirical cumulative distribution function of a sample."""

    sorted_values: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.sorted_values, dtype=float)
        if values.ndim != 1 or values.size == 0:
            raise ModelError("an empirical CDF needs a non-empty 1-D sample")
        object.__setattr__(self, "sorted_values", np.sort(values))

    @staticmethod
    def from_samples(samples: Sequence[float]) -> "EmpiricalCDF":
        """Build a CDF from an unsorted sample."""
        return EmpiricalCDF(np.asarray(list(samples), dtype=float))

    @property
    def n_samples(self) -> int:
        """Number of samples in the CDF."""
        return int(self.sorted_values.size)

    def evaluate(self, value: float) -> float:
        """P(X <= value) under the empirical distribution."""
        return float(np.searchsorted(self.sorted_values, value, side="right")) / self.n_samples

    def evaluate_many(self, values: Sequence[float]) -> np.ndarray:
        """Vectorised :meth:`evaluate`."""
        positions = np.searchsorted(
            self.sorted_values, np.asarray(values, dtype=float), side="right"
        )
        return positions / self.n_samples

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of the sample (q in [0, 100])."""
        if not 0.0 <= q <= 100.0:
            raise ModelError("q must lie in [0, 100]")
        return float(np.percentile(self.sorted_values, q))

    def percentiles(self, qs: Sequence[float]) -> np.ndarray:
        """Several percentiles at once."""
        return np.percentile(self.sorted_values, list(qs))

    @property
    def median(self) -> float:
        """The sample median."""
        return self.percentile(50.0)

    @property
    def minimum(self) -> float:
        """The smallest sample value."""
        return float(self.sorted_values[0])

    @property
    def maximum(self) -> float:
        """The largest sample value."""
        return float(self.sorted_values[-1])

    def series(self, n_points: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) series suitable for plotting the CDF curve.

        When ``n_points`` is given the series is downsampled to roughly that
        many points, which keeps figure data manageable for large samples.
        """
        values = self.sorted_values
        cumulative = np.arange(1, values.size + 1) / values.size
        if n_points is not None and n_points < values.size:
            if n_points < 2:
                raise ModelError("n_points must be at least 2")
            indices = np.unique(
                np.linspace(0, values.size - 1, n_points).astype(int)
            )
            values = values[indices]
            cumulative = cumulative[indices]
        return values, cumulative
