"""Comparison of reproduced results against the paper's published numbers.

The reproduction runs on synthetic substrates, so absolute agreement with
the paper is neither expected nor claimed; what must hold is the *shape* —
orderings, ratios, and the conclusions drawn from them.  The helpers here
turn a pair of uniqueness reports (or a nanotargeting experiment report)
into a structured comparison that EXPERIMENTS.md, the benchmarks and
downstream users can inspect programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.nanotargeting import ExperimentReport
from ..core.results import UniquenessReport
from ..errors import ModelError
from ..paperdata import PAPER_TABLE1, PAPER_TABLE2_SUMMARY, ReferenceCheck


@dataclass(frozen=True)
class Table1Comparison:
    """Comparison of reproduced N_P estimates against the paper's Table 1."""

    checks: tuple[ReferenceCheck, ...]
    shape_findings: tuple[str, ...]

    @property
    def shape_holds(self) -> bool:
        """True when every qualitative (shape) finding of the paper holds."""
        return not self.shape_findings

    def summary_lines(self) -> list[str]:
        """Readable per-quantity summary plus any shape violations."""
        lines = [check.describe() for check in self.checks]
        lines.extend(f"shape violation: {finding}" for finding in self.shape_findings)
        return lines


def compare_table1(
    reports: Mapping[str, UniquenessReport], *, tolerance_ratio: float = 3.0
) -> Table1Comparison:
    """Compare reproduced Table 1 rows against the paper.

    ``reports`` maps strategy names (``"least_popular"``, ``"random"``) to
    their uniqueness reports.  The per-value checks use a generous
    multiplicative tolerance (synthetic substrate); the shape findings are
    strict: N grows with P, LP needs fewer interests than random at every
    probability, and the random strategy at P=0.95 needs close to (or more
    than) the 25-interest cap.
    """
    missing = {"least_popular", "random"} - set(reports)
    if missing:
        raise ModelError(f"missing reports for strategies: {sorted(missing)}")

    checks: list[ReferenceCheck] = []
    findings: list[str] = []
    for strategy, paper_values in PAPER_TABLE1.items():
        report = reports[strategy]
        previous = None
        for probability, paper_value in sorted(paper_values.items()):
            try:
                estimate = report.estimate_for(probability)
            except ModelError:
                continue
            checks.append(
                ReferenceCheck(
                    name=f"N({strategy})_{probability:g}",
                    paper_value=paper_value,
                    measured_value=estimate.n_p,
                    tolerance_ratio=tolerance_ratio,
                )
            )
            if previous is not None and estimate.n_p + 1e-9 < previous:
                findings.append(
                    f"N({strategy})_P does not grow with P around P={probability:g}"
                )
            previous = estimate.n_p

    shared = sorted(
        set(PAPER_TABLE1["least_popular"])
        & set(reports["least_popular"].estimates)
        & set(reports["random"].estimates)
    )
    for probability in shared:
        lp = reports["least_popular"].estimate_for(probability).n_p
        random_value = reports["random"].estimate_for(probability).n_p
        if lp >= random_value:
            findings.append(
                f"least-popular needs as many interests as random at P={probability:g}"
            )
    if 0.95 in reports["random"].estimates:
        if reports["random"].estimate_for(0.95).n_p < 15:
            findings.append(
                "random selection at P=0.95 is far below the 25-interest regime"
            )
    return Table1Comparison(checks=tuple(checks), shape_findings=tuple(findings))


@dataclass(frozen=True)
class Table2Comparison:
    """Comparison of a nanotargeting run against the paper's Table 2."""

    checks: tuple[ReferenceCheck, ...]
    shape_findings: tuple[str, ...]

    @property
    def shape_holds(self) -> bool:
        """True when the experiment reproduces the paper's qualitative outcome."""
        return not self.shape_findings

    def summary_lines(self) -> list[str]:
        """Readable summary of the comparison."""
        lines = [check.describe() for check in self.checks]
        lines.extend(f"shape violation: {finding}" for finding in self.shape_findings)
        return lines


def compare_table2(
    report: ExperimentReport, *, tolerance_ratio: float = 2.5
) -> Table2Comparison:
    """Compare a nanotargeting experiment report against the paper's summary."""
    paper = PAPER_TABLE2_SUMMARY
    checks = [
        ReferenceCheck(
            name="campaigns",
            paper_value=paper["n_campaigns"],
            measured_value=report.n_campaigns,
            tolerance_ratio=1.0,
        ),
        ReferenceCheck(
            name="successful campaigns",
            paper_value=paper["successful_campaigns"],
            measured_value=report.success_count,
            tolerance_ratio=tolerance_ratio,
        ),
        ReferenceCheck(
            name="successful cost (EUR)",
            paper_value=paper["successful_cost_eur"],
            measured_value=max(report.successful_cost_eur(), 0.01),
            tolerance_ratio=20.0,
        ),
    ]
    findings = []
    rates = report.success_rate_by_interests()
    if rates.get(5, 0.0) > 0.0:
        findings.append("5-interest campaigns should never nanotarget")
    high = [rates.get(n, 0.0) for n in (18, 20, 22)]
    low = [rates.get(n, 0.0) for n in (5, 7, 9)]
    if high and low and sum(high) / len(high) <= sum(low) / len(low):
        findings.append("high-interest campaigns do not outperform low-interest ones")
    if report.success_count and report.successful_cost_eur() > 5.0:
        findings.append("successful nanotargeting should cost well under a few euro")
    return Table2Comparison(checks=tuple(checks), shape_findings=tuple(findings))
