"""Analysis helpers: empirical CDFs, tables and figure-series builders."""

from .cdf import EmpiricalCDF
from .comparison import (
    Table1Comparison,
    Table2Comparison,
    compare_table1,
    compare_table2,
)
from .figures import (
    BarSeries,
    CDFSeries,
    VASSeries,
    demographic_bar_series,
    figure1_interests_per_user,
    figure2_interest_audience_cdf,
    figure3_illustration,
    figures4_5_quantile_curves,
    vas_series,
)
from .tables import format_records, format_table

__all__ = [
    "BarSeries",
    "CDFSeries",
    "EmpiricalCDF",
    "Table1Comparison",
    "Table2Comparison",
    "VASSeries",
    "compare_table1",
    "compare_table2",
    "demographic_bar_series",
    "figure1_interests_per_user",
    "figure2_interest_audience_cdf",
    "figure3_illustration",
    "figures4_5_quantile_curves",
    "format_records",
    "format_table",
    "vas_series",
]
