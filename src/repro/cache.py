"""Content-addressed build cache for the expensive pipeline stages.

Sweeps and test suites compile many :class:`~repro.pipeline.Simulation`\\ s
whose grid rows often differ only in *analysis* knobs (strategies,
probabilities, API tier, countermeasure rules) while the expensive build
stages — catalog generation and panel assembly — are identical.  This
module provides the two primitives that let those stages be shared:

* :func:`stable_fingerprint` — the fingerprint contract.  A fingerprint is
  the SHA-256 hex digest of the canonical JSON encoding (sorted keys,
  compact separators) of ``{"kind": <stage or class tag>, "payload":
  <plain data>}``.  Canonical JSON makes the digest independent of dict
  insertion order, process boundaries and ``PYTHONHASHSEED``; the ``kind``
  tag keeps equal payloads of different stages (or config classes) from
  colliding.  Every seed that influences a build is part of the payload,
  so two fingerprints collide exactly when the builds they describe are
  bit-identical.

* :class:`BuildCache` — a thread-safe in-process LRU keyed by such
  fingerprints.  :meth:`BuildCache.get_or_build` runs the builder on a
  miss (at most once per key, even under concurrent callers — per-key
  locks serialise racing builders) and returns the cached artifact on a
  hit; :meth:`BuildCache.cache_info` exposes hit/miss/eviction accounting
  and :meth:`BuildCache.clear` empties the cache and resets the counters.

Cache invalidation rules
------------------------
Keys are *content* fingerprints: any change to a config field, a seed or
the world population changes the key, so there is no staleness to manage —
a stale entry is simply never looked up again and eventually falls out of
the LRU.  The only explicit invalidation is :meth:`BuildCache.clear`
(used by tests and benchmarks to measure cold builds).  Cached artifacts
(catalogs, panels) are treated as immutable by every consumer; mutable
per-run state (APIs, clocks, click logs, delivery engines) is always
rebuilt fresh by :func:`repro.pipeline.assemble_simulation` and never
enters the cache.

:func:`build_cache` returns the process-global instance shared by
:class:`~repro.scenarios.sweep.SweepRunner` chunks and the exec layer's
process workers: serial and thread backends share one cache per process,
while each process-pool worker amortises its own across chunks and sweeps.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

__all__ = [
    "BuildCache",
    "CacheInfo",
    "build_cache",
    "catalog_stage_key",
    "stable_fingerprint",
]

#: Default bound on the number of cached artifacts.  Entries are whole
#: catalogs and panels, so the cache is sized in dozens, not thousands.
DEFAULT_CACHE_SIZE = 32


def stable_fingerprint(kind: str, payload: Any) -> str:
    """The SHA-256 fingerprint of ``payload`` under the ``kind`` tag.

    ``payload`` must be JSON-serialisable plain data (the configs'
    ``to_dict()`` views qualify: dataclass fields of ints, floats, strings,
    bools, ``None`` and nested dicts/lists/tuples).  The encoding is
    canonical — sorted keys, compact separators, no NaN shortcuts — so the
    digest is stable across dict insertion orders, interpreter restarts and
    machines.
    """
    document = {"kind": kind, "payload": payload}
    encoded = json.dumps(
        document, sort_keys=True, separators=(",", ":"), allow_nan=False, default=_coerce
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def _coerce(value: Any) -> Any:
    """JSON fallback: sets become sorted lists (tuples the encoder handles
    natively as arrays); anything else is rejected loudly."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    raise TypeError(f"unfingerprintable value in payload: {value!r}")


def catalog_stage_key(
    catalog_config: Any, seed: int | None, world_population: float
) -> str:
    """The fingerprint of one catalog build.

    Shared by :func:`repro.pipeline.build_catalog` and
    :meth:`repro.reach.ReachModelSpec.build` so a sweep's panel stage and a
    process worker's reach-model rebuild hit the same cache entry.
    ``catalog_config`` is duck-typed on ``to_dict()`` to keep this module
    free of :mod:`repro.config` imports (which import this module).
    """
    return stable_fingerprint(
        "stage:catalog",
        {
            "config": catalog_config.to_dict(),
            "seed": None if seed is None else int(seed),
            "world_population": float(world_population),
        },
    )


@dataclass(frozen=True)
class CacheInfo:
    """A snapshot of one :class:`BuildCache`'s accounting."""

    hits: int
    misses: int
    evictions: int
    currsize: int
    maxsize: int


class BuildCache:
    """Thread-safe in-process LRU of build artifacts keyed by fingerprint.

    ``get_or_build`` guarantees each key's builder runs at most once even
    when several threads miss concurrently: a per-key lock makes the
    racing callers wait for the first builder instead of duplicating the
    work (the property behind the sweep acceptance criterion that an
    analysis-knob-only sweep builds its catalog and panel exactly once).
    """

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self._maxsize = int(maxsize)
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._key_locks: dict[str, threading.Lock] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def maxsize(self) -> int:
        """The LRU bound this cache was built with."""
        return self._maxsize

    def get_or_build(self, key: str, builder: Callable[[], Any]) -> Any:
        """Return the artifact for ``key``, building (once) on a miss."""
        while True:
            with self._lock:
                if key in self._entries:
                    self._hits += 1
                    self._entries.move_to_end(key)
                    return self._entries[key]
                key_lock = self._key_locks.setdefault(key, threading.Lock())
            with key_lock:
                # Double-check: a racing builder may have finished while
                # we waited on the key lock; that wait counts as a hit.
                with self._lock:
                    if key in self._entries:
                        self._hits += 1
                        self._entries.move_to_end(key)
                        return self._entries[key]
                    if self._key_locks.get(key) is not key_lock:
                        # The builder we waited on failed and retired this
                        # lock; restart so every retry serialises on the
                        # current lock instead of racing a fresh one.
                        continue
                try:
                    artifact = builder()
                except BaseException:
                    # A failing builder must not leak its per-key lock;
                    # the next caller recreates one and retries the build.
                    with self._lock:
                        if self._key_locks.get(key) is key_lock:
                            del self._key_locks[key]
                    raise
                with self._lock:
                    self._misses += 1
                    self._entries[key] = artifact
                    self._entries.move_to_end(key)
                    while len(self._entries) > self._maxsize:
                        self._entries.popitem(last=False)
                        self._evictions += 1
                    self._key_locks.pop(key, None)
                return artifact

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def cache_info(self) -> CacheInfo:
        """Hit/miss/eviction accounting plus the current and maximum size."""
        with self._lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                currsize=len(self._entries),
                maxsize=self._maxsize,
            )

    def clear(self) -> None:
        """Drop every entry and reset the accounting counters."""
        with self._lock:
            self._entries.clear()
            self._key_locks.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0


#: The process-global cache (built lazily; one per process, including each
#: process-pool worker).
_PROCESS_CACHE: BuildCache | None = None
_PROCESS_CACHE_LOCK = threading.Lock()


def build_cache() -> BuildCache:
    """The process-global :class:`BuildCache` shared by sweeps and workers."""
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        with _PROCESS_CACHE_LOCK:
            if _PROCESS_CACHE is None:
                _PROCESS_CACHE = BuildCache()
    return _PROCESS_CACHE
