"""Content-addressed build cache for the expensive pipeline stages.

Sweeps and test suites compile many :class:`~repro.pipeline.Simulation`\\ s
whose grid rows often differ only in *analysis* knobs (strategies,
probabilities, API tier, countermeasure rules) while the expensive build
stages — catalog generation and panel assembly — are identical.  This
module provides the primitives that let those stages be shared:

* :func:`stable_fingerprint` — the fingerprint contract.  A fingerprint is
  the SHA-256 hex digest of the canonical JSON encoding (sorted keys,
  compact separators) of ``{"kind": <stage or class tag>, "payload":
  <plain data>}``.  Canonical JSON makes the digest independent of dict
  insertion order, process boundaries and ``PYTHONHASHSEED``; the ``kind``
  tag keeps equal payloads of different stages (or config classes) from
  colliding.  Every seed that influences a build is part of the payload,
  so two fingerprints collide exactly when the builds they describe are
  bit-identical.

* :class:`BuildCache` — a thread-safe in-process LRU keyed by such
  fingerprints.  :meth:`BuildCache.get_or_build` runs the builder on a
  miss (at most once per key, even under concurrent callers — per-key
  locks serialise racing builders) and returns the cached artifact on a
  hit; :meth:`BuildCache.cache_info` exposes per-tier hit/miss/eviction
  accounting and :meth:`BuildCache.clear` empties the memory tier and
  resets the counters.

* :class:`DiskCache` — the optional on-disk tier behind the memory LRU.
  Artifacts live as single files named by their stage fingerprint under
  ``<root>/objects/``; lookups go memory → disk → build, and every
  successful build with a registered codec is published back to disk so
  the *next* process cold-starts by loading instead of rebuilding.

Cache invalidation rules
------------------------
Keys are *content* fingerprints: any change to a config field, a seed or
the world population changes the key, so there is no staleness to manage —
a stale entry is simply never looked up again and eventually falls out of
the LRU (disk entries linger until ``repro-facebook cache clear``, which
is garbage collection, not invalidation).  The only explicit invalidation
is :meth:`BuildCache.clear` (used by tests and benchmarks to measure cold
builds); it drops the memory tier only, so a cleared cache backed by a
warm root re-hydrates from disk.  Cached artifacts (catalogs, panels) are
treated as immutable by every consumer; mutable per-run state (APIs,
clocks, click logs, delivery engines) is always rebuilt fresh by
:func:`repro.pipeline.assemble_simulation` and never enters the cache.

Disk-tier contract
------------------
* **Content keys.**  Disk artifacts reuse the in-memory fingerprints, so
  a disk hit is exactly as trustworthy as a memory hit: equal key ⇔
  bit-identical build.  A disk-hydrated run must therefore reproduce an
  in-memory run exactly (catalog, ``PanelColumns`` arrays, downstream
  ResultSets/CallStats) — pinned by ``tests/test_disk_cache.py``.
* **Versioned format.**  Every artifact embeds a header with a format
  version, its kind and a content digest (see :mod:`repro.io.artifacts`).
  A wrong version, wrong kind, bad digest, truncated or otherwise
  unreadable file is a *miss* — the artifact is rebuilt, never trusted —
  so format evolution invalidates cleanly by bumping the version tag.
* **Atomic publication.**  Artifacts are written to a temp file in the
  same directory and ``os.replace``-d into place, so concurrent readers
  never observe a partial artifact and concurrent publishers of the same
  key both succeed (last writer wins with identical content).
* **Graceful degradation.**  A read-only, missing or otherwise flaky
  cache root degrades to in-memory-only behaviour with a single warning;
  load and store failures are counted (``disk_load_errors`` /
  ``disk_store_errors``) but never raised.  Fault plans with
  ``depth="cache"`` inject errors at the :func:`repro.faults.fire_inner`
  sites inside the load/store paths to prove exactly this.
* **``cache clear``.**  ``repro-facebook cache clear`` removes every
  artifact (and any sweep manifests) under the root;
  ``repro-facebook cache info`` reports tier sizes and ``cache warm``
  pre-builds artifacts for a scenario grid.

The disk tier is enabled for the process-global cache whenever the
``REPRO_CACHE_ROOT`` environment variable names a directory (the CLI
``cache`` subcommand defaults to ``~/.cache/repro-facebook``); the
in-process LRU bound comes from ``REPRO_CACHE_SIZE`` (default
:data:`DEFAULT_CACHE_SIZE`).

:func:`build_cache` returns the process-global instance shared by
:class:`~repro.scenarios.sweep.SweepRunner` chunks and the exec layer's
process workers: serial and thread backends share one cache per process,
while each process-pool worker amortises its own across chunks and sweeps
— and, with a cache root, every worker hydrates from the same disk tier
instead of regenerating catalogs from scratch.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Protocol

from .errors import ConfigurationError
from .faults import fire_inner

__all__ = [
    "BuildCache",
    "CacheInfo",
    "DiskCache",
    "SpecMemo",
    "build_cache",
    "catalog_stage_key",
    "reset_build_cache",
    "resolve_cache_root",
    "resolve_cache_size",
    "stable_fingerprint",
]

#: Default bound on the number of cached artifacts.  Entries are whole
#: catalogs and panels, so the cache is sized in dozens, not thousands.
DEFAULT_CACHE_SIZE = 32

#: Environment variable naming the disk-tier root directory.  When set,
#: the process-global cache publishes and hydrates artifacts there.
CACHE_ROOT_ENV = "REPRO_CACHE_ROOT"

#: Environment variable overriding the in-process LRU bound.
CACHE_SIZE_ENV = "REPRO_CACHE_SIZE"

#: Default disk-tier root used by the CLI ``cache`` subcommand when
#: neither an explicit ``--root`` nor ``REPRO_CACHE_ROOT`` is given.
DEFAULT_CACHE_ROOT = Path("~/.cache/repro-facebook")


def stable_fingerprint(kind: str, payload: Any) -> str:
    """The SHA-256 fingerprint of ``payload`` under the ``kind`` tag.

    ``payload`` must be JSON-serialisable plain data (the configs'
    ``to_dict()`` views qualify: dataclass fields of ints, floats, strings,
    bools, ``None`` and nested dicts/lists/tuples).  The encoding is
    canonical — sorted keys, compact separators, no NaN shortcuts — so the
    digest is stable across dict insertion orders, interpreter restarts and
    machines.
    """
    document = {"kind": kind, "payload": payload}
    encoded = json.dumps(
        document, sort_keys=True, separators=(",", ":"), allow_nan=False, default=_coerce
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def _coerce(value: Any) -> Any:
    """JSON fallback: sets become sorted lists (tuples the encoder handles
    natively as arrays); anything else is rejected loudly."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    raise TypeError(f"unfingerprintable value in payload: {value!r}")


def catalog_stage_key(
    catalog_config: Any, seed: int | None, world_population: float
) -> str:
    """The fingerprint of one catalog build.

    Shared by :func:`repro.pipeline.build_catalog` and
    :meth:`repro.reach.ReachModelSpec.build` so a sweep's panel stage and a
    process worker's reach-model rebuild hit the same cache entry.
    ``catalog_config`` is duck-typed on ``to_dict()`` to keep this module
    free of :mod:`repro.config` imports (which import this module).
    """
    return stable_fingerprint(
        "stage:catalog",
        {
            "config": catalog_config.to_dict(),
            "seed": None if seed is None else int(seed),
            "world_population": float(world_population),
        },
    )


def resolve_cache_size(explicit: int | None = None) -> int:
    """The in-process LRU bound: explicit > ``REPRO_CACHE_SIZE`` > default."""
    if explicit is not None:
        if explicit < 1:
            raise ConfigurationError("cache size must be >= 1")
        return int(explicit)
    raw = os.environ.get(CACHE_SIZE_ENV)
    if raw is None or not raw.strip():
        return DEFAULT_CACHE_SIZE
    try:
        size = int(raw)
    except ValueError as exc:
        raise ConfigurationError(
            f"{CACHE_SIZE_ENV} must be an integer, got {raw!r}"
        ) from exc
    if size < 1:
        raise ConfigurationError(f"{CACHE_SIZE_ENV} must be >= 1, got {size}")
    return size


def resolve_cache_root(explicit: str | Path | None = None) -> Path:
    """The disk-tier root: explicit > ``REPRO_CACHE_ROOT`` > ``~/.cache``.

    Used by the CLI ``cache`` subcommand and the sweep-manifest default
    path; the *process-global* cache only attaches a disk tier when the
    environment variable is actually set (see :func:`build_cache`), so
    library behaviour without the variable is byte-for-byte the pre-disk
    behaviour.
    """
    if explicit is not None:
        return Path(explicit).expanduser()
    env = os.environ.get(CACHE_ROOT_ENV)
    if env:
        return Path(env).expanduser()
    return DEFAULT_CACHE_ROOT.expanduser()


class SpecMemo:
    """Bounded per-process memo of artifacts rebuilt from frozen specs.

    Worker processes resolve shard payloads (reach-model specs, assigner
    specs) to live objects once per process — but long-lived sweep and
    service workers see an unbounded variety of specs over their lifetime,
    so an unbounded ``dict`` memo is a slow leak.  This is the bounded
    replacement: an LRU keyed like the build cache (by the spec's content
    fingerprint), with a second small LRU memoising spec → fingerprint so
    the shard hot path pays a dataclass hash per task, not a SHA-256.

    Not thread-safe by design: worker-side resolution happens on one
    thread per process, and a lost race would only rebuild an artifact
    twice, never corrupt it.
    """

    def __init__(self, maxsize: int = 8) -> None:
        if maxsize < 1:
            raise ConfigurationError("SpecMemo maxsize must be >= 1")
        self._maxsize = int(maxsize)
        self._keys: OrderedDict[Any, str] = OrderedDict()
        self._artifacts: OrderedDict[str, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._artifacts)

    @property
    def maxsize(self) -> int:
        """Bound on memoised artifacts (the key memo holds 4x as many)."""
        return self._maxsize

    def key_for(self, spec: Any) -> str:
        """``spec.fingerprint()``, memoised per spec value."""
        key = self._keys.get(spec)
        if key is None:
            key = spec.fingerprint()
            self._keys[spec] = key
            # Distinct spec values can share a fingerprint (e.g. defaults
            # spelled explicitly), so the key memo gets its own, larger
            # allowance instead of riding the artifact bound.
            if len(self._keys) > 4 * self._maxsize:
                self._keys.popitem(last=False)
        else:
            self._keys.move_to_end(spec)
        return key

    def get_or_build(self, spec: Any, build: Callable[[Any], Any]) -> Any:
        """The artifact for ``spec``, building via ``build(spec)`` on a miss."""
        key = self.key_for(spec)
        artifact = self._artifacts.get(key)
        if artifact is None:
            artifact = build(spec)
            self._artifacts[key] = artifact
            if len(self._artifacts) > self._maxsize:
                self._artifacts.popitem(last=False)
        else:
            self._artifacts.move_to_end(key)
        return artifact

    def clear(self) -> None:
        """Drop every memoised key and artifact (test isolation hook)."""
        self._keys.clear()
        self._artifacts.clear()


class ArtifactCodec(Protocol):
    """How one artifact type serialises to a single disk file.

    Implementations (see :mod:`repro.io.artifacts`) own the on-disk
    format — header, version tag and content digest included.  ``decode``
    must raise on *any* integrity problem; the disk tier maps every
    exception to a miss-and-rebuild.
    """

    #: Artifact type tag, embedded in the header and checked on load.
    kind: str
    #: Filename extension, e.g. ``"catalog.json"`` — the artifact for key
    #: ``k`` lives at ``<root>/objects/<k>.<extension>``.
    extension: str

    def encode(self, artifact: Any, path: Path) -> None:
        """Write ``artifact`` to ``path`` (a temp file the tier renames)."""

    def decode(self, path: Path) -> Any:
        """Load the artifact at ``path``, raising on any integrity issue."""


class DiskCache:
    """The on-disk artifact tier: fingerprint-named files under a root.

    Every operation degrades instead of raising: a load that fails for
    any reason is a miss, a store that fails is skipped (with one warning
    for unusable roots), and the caller's accounting records the error.
    ``fire_inner("cache")`` sites at the top of both paths let fault plans
    with ``depth="cache"`` chaos-test exactly this degradation.
    """

    def __init__(self, root: str | Path) -> None:
        self._root = Path(root).expanduser()
        self._warned = False
        self._warn_lock = threading.Lock()

    @property
    def root(self) -> Path:
        """The root directory artifacts are published under."""
        return self._root

    @property
    def objects_dir(self) -> Path:
        """Where artifact files live (``<root>/objects``)."""
        return self._root / "objects"

    @property
    def manifests_dir(self) -> Path:
        """Where default sweep manifests live (``<root>/manifests``)."""
        return self._root / "manifests"

    def path_for(self, key: str, codec: ArtifactCodec) -> Path:
        """The artifact file for ``key`` under ``codec``'s format."""
        return self.objects_dir / f"{key}.{codec.extension}"

    def load(self, key: str, codec: ArtifactCodec) -> tuple[str, Any]:
        """``("hit", artifact)``, ``("miss", None)`` or ``("error", None)``."""
        path = self.path_for(key, codec)
        try:
            fire_inner("cache")
            if not path.is_file():
                return "miss", None
            artifact = codec.decode(path)
        except Exception:
            return "error", None
        # Mark the artifact recently-used so :meth:`prune`'s LRU-by-mtime
        # ordering reflects reads, not just writes.  Best-effort: a
        # read-only root still serves hits.
        try:
            os.utime(path)
        except OSError:
            pass
        return "hit", artifact

    def store(self, key: str, codec: ArtifactCodec, artifact: Any) -> bool:
        """Publish ``artifact`` atomically; False (never an error) on failure."""
        path = self.path_for(key, codec)
        tmp = path.parent / f"{path.name}.tmp-{os.getpid()}-{threading.get_ident()}"
        try:
            fire_inner("cache")
            path.parent.mkdir(parents=True, exist_ok=True)
            codec.encode(artifact, tmp)
            os.replace(tmp, path)
            return True
        except Exception as exc:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            if isinstance(exc, OSError):
                self._warn_once(exc)
            return False

    def _warn_once(self, exc: BaseException) -> None:
        with self._warn_lock:
            if self._warned:
                return
            self._warned = True
        warnings.warn(
            f"cache root {self._root} is unusable; continuing in-memory only "
            f"({type(exc).__name__}: {exc})",
            RuntimeWarning,
            stacklevel=4,
        )

    # -- maintenance (the CLI ``cache`` subcommand) -----------------------------

    def artifact_paths(self) -> list[Path]:
        """Every published artifact file, sorted (temp files excluded)."""
        if not self.objects_dir.is_dir():
            return []
        return sorted(
            path
            for path in self.objects_dir.iterdir()
            if path.is_file() and ".tmp-" not in path.name
        )

    def manifest_paths(self) -> list[Path]:
        """Every sweep manifest folded into this root, sorted."""
        if not self.manifests_dir.is_dir():
            return []
        return sorted(
            path for path in self.manifests_dir.iterdir() if path.is_file()
        )

    def info(self) -> dict:
        """Artifact counts and byte totals, split by artifact kind."""
        kinds: dict[str, dict[str, int]] = {}
        total_bytes = 0
        paths = self.artifact_paths()
        for path in paths:
            # <key>.<kind>.<ext>: keys are hex digests, so the second
            # dot-separated component is the codec's kind tag.
            parts = path.name.split(".")
            kind = parts[1] if len(parts) >= 3 else "unknown"
            entry = kinds.setdefault(kind, {"count": 0, "bytes": 0})
            size = path.stat().st_size
            entry["count"] += 1
            entry["bytes"] += size
            total_bytes += size
        return {
            "root": str(self._root),
            "artifacts": len(paths),
            "bytes": total_bytes,
            "kinds": kinds,
            "manifests": len(self.manifest_paths()),
        }

    def prune(self, max_bytes: int) -> dict[str, int]:
        """Evict least-recently-used artifacts until the root fits ``max_bytes``.

        Eviction order is by mtime, oldest first — :meth:`load` touches an
        artifact on every hit, so mtime order *is* recency order.  Each
        eviction is a single atomic ``unlink``: a concurrent reader that
        already opened the file keeps its data (POSIX keeps unlinked inodes
        readable), and one that races the unlink sees an ordinary miss and
        rebuilds — an object is never observed half-deleted.  Stray temp
        files and manifests are left alone (temp files belong to in-flight
        stores; manifests are tiny and name-addressed).

        Returns ``{"removed", "freed_bytes", "remaining_bytes"}``.
        """
        if max_bytes < 0:
            raise ConfigurationError("max_bytes must be non-negative")
        entries: list[tuple[int, int, Path]] = []
        total = 0
        for path in self.artifact_paths():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime_ns, stat.st_size, path))
            total += stat.st_size
        entries.sort()
        removed = 0
        freed = 0
        for _, size, path in entries:
            if total - freed <= max_bytes:
                break
            try:
                path.unlink()
            except FileNotFoundError:
                # A racing pruner (or clear) got there first; its bytes are
                # gone either way.
                freed += size
                continue
            except OSError:
                continue
            removed += 1
            freed += size
        return {
            "removed": removed,
            "freed_bytes": freed,
            "remaining_bytes": max(total - freed, 0),
        }

    def clear(self) -> int:
        """Remove every artifact, stray temp file and manifest; return count."""
        removed = 0
        for directory in (self.objects_dir, self.manifests_dir):
            if not directory.is_dir():
                continue
            for path in sorted(directory.iterdir()):
                if path.is_file():
                    path.unlink()
                    removed += 1
        return removed


@dataclass(frozen=True)
class CacheInfo:
    """A snapshot of one :class:`BuildCache`'s accounting.

    ``hits`` counts every lookup served without running the builder —
    ``memory_hits + disk_hits`` — so pre-disk consumers keep their
    meaning; ``misses`` counts builder runs.  The ``disk_*`` fields are
    zero for caches without a disk tier.
    """

    hits: int
    misses: int
    evictions: int
    currsize: int
    maxsize: int
    memory_hits: int = 0
    disk_hits: int = 0
    disk_load_errors: int = 0
    disk_store_errors: int = 0


class BuildCache:
    """Thread-safe in-process LRU of build artifacts keyed by fingerprint.

    ``get_or_build`` guarantees each key's builder runs at most once even
    when several threads miss concurrently: a per-key lock makes the
    racing callers wait for the first builder instead of duplicating the
    work (the property behind the sweep acceptance criterion that an
    analysis-knob-only sweep builds its catalog and panel exactly once).

    With a ``disk`` tier attached, lookups go memory → disk → build and
    fresh builds are published back to disk — but only for calls that
    pass a ``codec`` (catalogs and panels); codec-less keys stay
    memory-only.  ``maxsize=None`` resolves the bound from
    ``REPRO_CACHE_SIZE`` (default :data:`DEFAULT_CACHE_SIZE`).
    """

    def __init__(
        self, maxsize: int | None = DEFAULT_CACHE_SIZE, *, disk: DiskCache | None = None
    ) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self._maxsize = resolve_cache_size(maxsize)
        self._disk = disk
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._key_locks: dict[str, threading.Lock] = {}
        self._memory_hits = 0
        self._disk_hits = 0
        self._misses = 0
        self._evictions = 0
        self._disk_load_errors = 0
        self._disk_store_errors = 0

    @property
    def maxsize(self) -> int:
        """The LRU bound this cache was built with."""
        return self._maxsize

    @property
    def disk(self) -> DiskCache | None:
        """The attached disk tier, if any."""
        return self._disk

    def get_or_build(
        self,
        key: str,
        builder: Callable[[], Any],
        *,
        codec: ArtifactCodec | None = None,
    ) -> Any:
        """Return the artifact for ``key``: memory → disk → build (once).

        ``codec`` opts the key into the disk tier; without one (or
        without an attached :class:`DiskCache`) behaviour is exactly the
        in-memory contract.  Disk loads that fail integrity checks — or
        fail at all — count as ``disk_load_errors`` and fall through to
        the builder, so a flaky root can slow a run down but never
        corrupt it.
        """
        while True:
            with self._lock:
                if key in self._entries:
                    self._memory_hits += 1
                    self._entries.move_to_end(key)
                    return self._entries[key]
                key_lock = self._key_locks.setdefault(key, threading.Lock())
            with key_lock:
                # Double-check: a racing builder may have finished while
                # we waited on the key lock; that wait counts as a hit.
                with self._lock:
                    if key in self._entries:
                        self._memory_hits += 1
                        self._entries.move_to_end(key)
                        return self._entries[key]
                    if self._key_locks.get(key) is not key_lock:
                        # The builder we waited on failed and retired this
                        # lock; restart so every retry serialises on the
                        # current lock instead of racing a fresh one.
                        continue
                use_disk = self._disk is not None and codec is not None
                if use_disk:
                    status, loaded = self._disk.load(key, codec)
                    if status == "hit":
                        with self._lock:
                            self._disk_hits += 1
                            self._insert(key, loaded)
                            self._key_locks.pop(key, None)
                        return loaded
                    if status == "error":
                        with self._lock:
                            self._disk_load_errors += 1
                try:
                    artifact = builder()
                except BaseException:
                    # A failing builder must not leak its per-key lock;
                    # the next caller recreates one and retries the build.
                    with self._lock:
                        if self._key_locks.get(key) is key_lock:
                            del self._key_locks[key]
                    raise
                if use_disk and not self._disk.store(key, codec, artifact):
                    with self._lock:
                        self._disk_store_errors += 1
                with self._lock:
                    self._misses += 1
                    self._insert(key, artifact)
                    self._key_locks.pop(key, None)
                return artifact

    def _insert(self, key: str, artifact: Any) -> None:
        """Insert ``key`` at the LRU head, evicting as needed (lock held)."""
        self._entries[key] = artifact
        self._entries.move_to_end(key)
        while len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
            self._evictions += 1

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def cache_info(self) -> CacheInfo:
        """Per-tier hit/miss/eviction accounting plus current and max size."""
        with self._lock:
            return CacheInfo(
                hits=self._memory_hits + self._disk_hits,
                misses=self._misses,
                evictions=self._evictions,
                currsize=len(self._entries),
                maxsize=self._maxsize,
                memory_hits=self._memory_hits,
                disk_hits=self._disk_hits,
                disk_load_errors=self._disk_load_errors,
                disk_store_errors=self._disk_store_errors,
            )

    def clear(self) -> None:
        """Drop every memory entry and reset the accounting counters.

        The disk tier is untouched (use :meth:`DiskCache.clear` / the CLI
        ``cache clear`` for that), so a cleared cache backed by a warm
        root re-hydrates instead of rebuilding.
        """
        with self._lock:
            self._entries.clear()
            self._key_locks.clear()
            self._memory_hits = 0
            self._disk_hits = 0
            self._misses = 0
            self._evictions = 0
            self._disk_load_errors = 0
            self._disk_store_errors = 0


#: The process-global cache (built lazily; one per process, including each
#: process-pool worker).
_PROCESS_CACHE: BuildCache | None = None
_PROCESS_CACHE_LOCK = threading.Lock()


def _ambient_disk_cache() -> DiskCache | None:
    """A :class:`DiskCache` at ``REPRO_CACHE_ROOT``, or None when unset."""
    env = os.environ.get(CACHE_ROOT_ENV)
    if not env or not env.strip():
        return None
    return DiskCache(env)


def build_cache() -> BuildCache:
    """The process-global :class:`BuildCache` shared by sweeps and workers.

    Built lazily from the environment: ``REPRO_CACHE_SIZE`` bounds the
    memory LRU and ``REPRO_CACHE_ROOT`` (when set) attaches the disk
    tier, so process-pool workers — which inherit the environment —
    hydrate their catalog/panel rebuilds from the same root as the
    coordinator.
    """
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        with _PROCESS_CACHE_LOCK:
            if _PROCESS_CACHE is None:
                _PROCESS_CACHE = BuildCache(
                    maxsize=None, disk=_ambient_disk_cache()
                )
    return _PROCESS_CACHE


def reset_build_cache() -> None:
    """Drop the process-global cache so the next use re-reads the environment.

    For tests and the CLI ``cache`` subcommand; library code never needs
    it (fingerprint keys cannot go stale).
    """
    global _PROCESS_CACHE
    with _PROCESS_CACHE_LOCK:
        _PROCESS_CACHE = None
