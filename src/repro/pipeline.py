"""High-level pipeline: build every component of the reproduction in one call.

Examples, tests and benchmarks all need the same stack: an interest catalog,
the world-scale reach model, the simulated Ads API, the FDVT panel and a
delivery engine.  :func:`build_simulation` wires them together from a single
:class:`~repro.config.ReproductionConfig`, keeping every component consistent
(same catalog, same seeds).

This is also the compilation target of the declarative scenario layer:
:meth:`repro.scenarios.ScenarioSpec.compile` resolves a spec to a config
and calls :func:`build_simulation`, so scenario runs and hand-wired runs
build byte-for-byte the same stack.
"""

from __future__ import annotations

from dataclasses import dataclass

from ._rng import derive_seed
from .adsapi import AdsManagerAPI
from .catalog import InterestCatalog
from .config import PlatformConfig, ReproductionConfig, default_config
from .core import (
    LeastPopularSelection,
    NanotargetingExperiment,
    RandomSelection,
    UniquenessModel,
)
from .delivery import ClickLog, DeliveryEngine
from .exec import ShardExecutor
from .fdvt import FDVTExtension, FDVTPanel, PanelBuilder
from .population import InterestAssigner
from .reach import ReachModelSpec, StatisticalReachModel, country_codes
from .simclock import SimClock


@dataclass(frozen=True)
class Simulation:
    """Every component needed to reproduce the paper, pre-wired."""

    config: ReproductionConfig
    catalog: InterestCatalog
    reach_model: StatisticalReachModel
    uniqueness_api: AdsManagerAPI
    campaign_api: AdsManagerAPI
    panel: FDVTPanel
    delivery_engine: DeliveryEngine
    click_log: ClickLog

    # -- convenience constructors of the paper's two analyses --------------------

    def uniqueness_model(self) -> UniquenessModel:
        """The Section 4 model, bound to the 2017 platform and the 50-country base."""
        return UniquenessModel(
            self.uniqueness_api,
            self.panel,
            self.config.uniqueness,
            locations=country_codes(),
        )

    def nanotargeting_experiment(self, seed: int | None = None) -> NanotargetingExperiment:
        """The Section 5 experiment, bound to the 2020 platform."""
        return NanotargetingExperiment(
            self.campaign_api,
            self.delivery_engine,
            self.config.experiment,
            click_log=self.click_log,
            seed=seed,
        )

    def fdvt_extension(self) -> FDVTExtension:
        """The Section 6 FDVT extension, bound to the 2017 platform API."""
        return FDVTExtension(self.uniqueness_api, self.catalog)

    def strategies(self) -> tuple[LeastPopularSelection, RandomSelection]:
        """The two interest-selection strategies of Section 4.2."""
        return (
            LeastPopularSelection(),
            RandomSelection(seed=derive_seed(self.config.uniqueness.seed, "random-strategy")),
        )

    def executor(
        self,
        *,
        backend: str = "serial",
        workers: int = 1,
        shard_size: int | None = None,
    ) -> ShardExecutor:
        """A :class:`~repro.exec.ShardExecutor` for panel-scale fan-outs.

        The handle threads through ``UniquenessModel`` /
        ``AudienceSizeCollector.collect_sharded`` / ``collect_stream`` and
        the countermeasure evaluation; every backend and worker count
        returns bit-identical results, so the choice is purely about
        hardware.
        """
        return ShardExecutor(backend=backend, workers=workers, shard_size=shard_size)


def build_simulation(
    config: ReproductionConfig | None = None, *, seed: int | None = None
) -> Simulation:
    """Build a fully wired :class:`Simulation` from ``config``.

    The uniqueness API uses the January 2017 platform limits (reporting floor
    of 20 users, no worldwide location) while the campaign API uses the late
    2020 limits (floor of 1,000 users, worldwide location available), exactly
    matching the two phases of the paper.
    """
    config = config or default_config()
    catalog_seed = config.catalog.seed if seed is None else derive_seed(seed, "catalog")
    panel_seed = config.panel.seed if seed is None else derive_seed(seed, "panel")
    delivery_seed = (
        config.experiment.seed if seed is None else derive_seed(seed, "delivery")
    )

    catalog = InterestCatalog.generate(config.catalog, seed=catalog_seed)
    # The spec lets process-pool shard workers rebuild this exact model from
    # config + seed instead of unpickling the whole catalog.
    reach_spec = ReachModelSpec(
        catalog_config=config.catalog,
        reach_config=config.reach,
        catalog_seed=None if catalog_seed is None else int(catalog_seed),
    )
    reach_model = StatisticalReachModel(catalog, config.reach, spec=reach_spec)
    uniqueness_api = AdsManagerAPI(
        reach_model, platform=PlatformConfig.legacy_2017(), clock=SimClock()
    )
    campaign_api = AdsManagerAPI(
        reach_model, platform=PlatformConfig.modern_2020(), clock=SimClock()
    )
    assigner = InterestAssigner(
        catalog, topic_affinity_boost=1.0 + 10.0 * config.reach.topic_affinity_boost
    )
    panel = PanelBuilder(catalog, config.panel, assigner=assigner).build(seed=panel_seed)
    delivery_engine = DeliveryEngine(catalog, seed=delivery_seed)
    return Simulation(
        config=config,
        catalog=catalog,
        reach_model=reach_model,
        uniqueness_api=uniqueness_api,
        campaign_api=campaign_api,
        panel=panel,
        delivery_engine=delivery_engine,
        click_log=ClickLog(),
    )
