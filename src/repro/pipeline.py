"""High-level pipeline: build every component of the reproduction in one call.

Examples, tests and benchmarks all need the same stack: an interest catalog,
the world-scale reach model, the simulated Ads API, the FDVT panel and a
delivery engine.  :func:`build_simulation` wires them together from a single
:class:`~repro.config.ReproductionConfig`, keeping every component consistent
(same catalog, same seeds).

This is also the compilation target of the declarative scenario layer:
:meth:`repro.scenarios.ScenarioSpec.compile` resolves a spec to a config
and calls :func:`build_simulation`, so scenario runs and hand-wired runs
build byte-for-byte the same stack.

Stage decomposition
-------------------
The build is three stages, split along its cost structure:

* :func:`build_catalog` — generate the interest catalog (the dominant cost
  together with the panel);
* :func:`build_panel` — assign interests to the FDVT panel on top of a
  catalog;
* :func:`assemble_simulation` — wire the cheap, *mutable* per-run shell
  (reach model, the two platform APIs with fresh clocks and rate limiters,
  delivery engine, click log) around the two expensive artifacts.

The first two stages are pure functions of (config, resolved stage seed)
and accept a :class:`~repro.cache.BuildCache`: their results are keyed by
the content fingerprints :func:`catalog_fingerprint` /
:func:`panel_fingerprint` (seed-aware, see the contract in
:mod:`repro.config`), so sweeps whose grid rows only vary analysis knobs
share one catalog + panel build across every row.  Cached artifacts are
treated as immutable; the assembled shell is always fresh, which is why a
cached and an uncached build are bit-identical — including rate-limit and
clock accounting.  ``build_simulation(config, seed=seed)`` without a cache
is byte-for-byte the pre-cache behaviour.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ._rng import derive_seed
from .cache import BuildCache, catalog_stage_key, stable_fingerprint
from .adsapi import AdsManagerAPI
from .catalog import DEFAULT_WORLD_POPULATION, InterestCatalog
from .config import PlatformConfig, ReproductionConfig, default_config
from .core import (
    LeastPopularSelection,
    NanotargetingExperiment,
    RandomSelection,
    UniquenessModel,
)
from .delivery import ClickLog, DeliveryEngine
from .errors import ConfigurationError
from .exec import ShardExecutor
from .fdvt import FDVTExtension, FDVTPanel, PanelBuilder
from .io.artifacts import CATALOG_CODEC, PanelArtifactCodec
from .population import AssignerSpec, InterestAssigner
from .reach import ReachModelSpec, StatisticalReachModel, country_codes
from .simclock import SimClock

#: Supported panel storage layouts — columnar is the default since the
#: million-user scale-up; ``"objects"`` keeps the original
#: tuple-of-SyntheticUser panel.  Both hold bit-identical content.
PANEL_LAYOUTS = ("columnar", "objects")


def resolve_panel_layout(layout: str | None = None) -> str:
    """Resolve the panel storage layout for this run.

    Explicit ``layout`` wins, then the ``REPRO_PANEL_LAYOUT`` environment
    variable, then the ``"columnar"`` default.  The resolved value is what
    sweeps record in their run manifests, so resumed runs cannot silently
    mix layouts.
    """
    resolved = layout or os.environ.get("REPRO_PANEL_LAYOUT") or "columnar"
    if resolved not in PANEL_LAYOUTS:
        raise ConfigurationError(
            f"unknown panel layout: {resolved!r} (expected one of {PANEL_LAYOUTS})"
        )
    return resolved


@dataclass(frozen=True)
class Simulation:
    """Every component needed to reproduce the paper, pre-wired."""

    config: ReproductionConfig
    catalog: InterestCatalog
    reach_model: StatisticalReachModel
    uniqueness_api: AdsManagerAPI
    campaign_api: AdsManagerAPI
    panel: FDVTPanel
    delivery_engine: DeliveryEngine
    click_log: ClickLog

    # -- convenience constructors of the paper's two analyses --------------------

    def uniqueness_model(self) -> UniquenessModel:
        """The Section 4 model, bound to the 2017 platform and the 50-country base."""
        return UniquenessModel(
            self.uniqueness_api,
            self.panel,
            self.config.uniqueness,
            locations=country_codes(),
        )

    def nanotargeting_experiment(self, seed: int | None = None) -> NanotargetingExperiment:
        """The Section 5 experiment, bound to the 2020 platform."""
        return NanotargetingExperiment(
            self.campaign_api,
            self.delivery_engine,
            self.config.experiment,
            click_log=self.click_log,
            seed=seed,
        )

    def fdvt_extension(self) -> FDVTExtension:
        """The Section 6 FDVT extension, bound to the 2017 platform API."""
        return FDVTExtension(self.uniqueness_api, self.catalog)

    def strategies(self) -> tuple[LeastPopularSelection, RandomSelection]:
        """The two interest-selection strategies of Section 4.2."""
        return (
            LeastPopularSelection(),
            RandomSelection(seed=derive_seed(self.config.uniqueness.seed, "random-strategy")),
        )

    def executor(
        self,
        *,
        backend: str = "serial",
        workers: int = 1,
        shard_size: int | None = None,
    ) -> ShardExecutor:
        """A :class:`~repro.exec.ShardExecutor` for panel-scale fan-outs.

        The handle threads through ``UniquenessModel`` /
        ``AudienceSizeCollector.collect_sharded`` / ``collect_stream`` and
        the countermeasure evaluation; every backend and worker count
        returns bit-identical results, so the choice is purely about
        hardware.
        """
        return ShardExecutor(backend=backend, workers=workers, shard_size=shard_size)


# -- stage seeds and fingerprints ---------------------------------------------------


def _catalog_seed(config: ReproductionConfig, seed: int | None) -> int:
    """The resolved catalog-stage seed for a top-level ``seed``."""
    return config.catalog.seed if seed is None else derive_seed(seed, "catalog")


def _panel_seed(config: ReproductionConfig, seed: int | None) -> int:
    """The resolved panel-stage seed for a top-level ``seed``."""
    return config.panel.seed if seed is None else derive_seed(seed, "panel")


def catalog_fingerprint(config: ReproductionConfig, seed: int | None = None) -> str:
    """The content fingerprint of the catalog stage under ``(config, seed)``.

    Two (config, seed) pairs share this digest exactly when
    :func:`build_catalog` would produce bit-identical catalogs.
    """
    return catalog_stage_key(
        config.catalog, _catalog_seed(config, seed), DEFAULT_WORLD_POPULATION
    )


def panel_fingerprint(config: ReproductionConfig, seed: int | None = None) -> str:
    """The content fingerprint of the panel stage under ``(config, seed)``.

    The panel depends on the catalog it is assigned from, its own config
    and seed, and the interest assigner's topic-affinity boost (derived
    from the reach config), so all four feed the digest.
    """
    return stable_fingerprint(
        "stage:panel",
        {
            "catalog": catalog_fingerprint(config, seed),
            "panel": config.panel.to_dict(),
            "topic_affinity_boost": config.reach.topic_affinity_boost,
            "seed": int(_panel_seed(config, seed)),
        },
    )


def simulation_fingerprint(config: ReproductionConfig, seed: int | None = None) -> str:
    """The content fingerprint of a fully assembled simulation.

    Not a cache key (the assembled shell is mutable and always built
    fresh) but the identity tests and fixtures key shared builds on.
    """
    return stable_fingerprint(
        "stage:simulation",
        {"config": config.to_dict(), "seed": None if seed is None else int(seed)},
    )


# -- cacheable build stages ---------------------------------------------------------


def build_catalog(
    config: ReproductionConfig,
    *,
    seed: int | None = None,
    cache: BuildCache | None = None,
) -> InterestCatalog:
    """Build (or fetch) the interest catalog stage of ``config``.

    ``seed`` is the *top-level* simulation seed, resolved to the catalog
    stage seed exactly like :func:`build_simulation` does.  With a
    ``cache``, the catalog is keyed by :func:`catalog_fingerprint` and
    shared with every other build of the same stage — including the reach
    model rebuilds of process-pool shard workers, which use the same key
    (:meth:`repro.reach.ReachModelSpec.build`).  A cache with a disk tier
    hydrates the catalog from (and publishes it to) its root, so cold
    processes load instead of regenerating; loaded catalogs are
    bit-identical to generated ones.
    """
    stage_seed = _catalog_seed(config, seed)

    def generate() -> InterestCatalog:
        return InterestCatalog.generate(config.catalog, seed=stage_seed)

    if cache is None:
        return generate()
    return cache.get_or_build(
        catalog_fingerprint(config, seed), generate, codec=CATALOG_CODEC
    )


def build_panel(
    config: ReproductionConfig,
    *,
    seed: int | None = None,
    catalog: InterestCatalog | None = None,
    cache: BuildCache | None = None,
    layout: str | None = None,
    executor: ShardExecutor | None = None,
) -> FDVTPanel:
    """Build (or fetch) the FDVT panel stage of ``config``.

    Builds on ``catalog`` when given (it must be the catalog stage of the
    same (config, seed) — the fingerprint assumes so), otherwise resolves
    the catalog stage itself through the same ``cache``.

    ``layout`` picks the storage mode (see :func:`resolve_panel_layout`);
    the columnar and object panels hold bit-identical content, so the
    cache key (:func:`panel_fingerprint`) is layout-free and a cached
    panel of either mode satisfies both — a panel hydrated from a cache's
    disk tier is always columnar, for the same reason.  ``executor``
    shards the columnar generation loop (serial by default; ignored for
    object layout).
    """
    if catalog is None:
        catalog = build_catalog(config, seed=seed, cache=cache)
    stage_seed = _panel_seed(config, seed)
    resolved_layout = resolve_panel_layout(layout)

    def assemble() -> FDVTPanel:
        boost = 1.0 + 10.0 * config.reach.topic_affinity_boost
        catalog_seed = _catalog_seed(config, seed)
        # The spec lets process-pool generation shards rebuild the assigner
        # from config + seed instead of unpickling the whole catalog.
        spec = AssignerSpec(
            catalog_config=config.catalog,
            catalog_seed=None if catalog_seed is None else int(catalog_seed),
            topic_affinity_boost=boost,
        )
        assigner = InterestAssigner(catalog, topic_affinity_boost=boost, spec=spec)
        builder = PanelBuilder(catalog, config.panel, assigner=assigner)
        if resolved_layout == "columnar":
            return builder.build_columns(seed=stage_seed, executor=executor)
        return builder.build(seed=stage_seed)

    if cache is None:
        return assemble()
    return cache.get_or_build(
        panel_fingerprint(config, seed), assemble, codec=PanelArtifactCodec(catalog)
    )


def assemble_simulation(
    config: ReproductionConfig,
    catalog: InterestCatalog,
    panel: FDVTPanel,
    *,
    seed: int | None = None,
) -> Simulation:
    """Wire the per-run shell around the (possibly cached) build artifacts.

    Everything mutable lives here — reach-model memo caches, the two
    platform APIs with fresh clocks and token buckets, the delivery engine
    and the click log — so simulations sharing cached artifacts never
    share run state.
    """
    catalog_seed = _catalog_seed(config, seed)
    delivery_seed = (
        config.experiment.seed if seed is None else derive_seed(seed, "delivery")
    )
    # The spec lets process-pool shard workers rebuild this exact model from
    # config + seed instead of unpickling the whole catalog.
    reach_spec = ReachModelSpec(
        catalog_config=config.catalog,
        reach_config=config.reach,
        catalog_seed=None if catalog_seed is None else int(catalog_seed),
    )
    reach_model = StatisticalReachModel(catalog, config.reach, spec=reach_spec)
    uniqueness_api = AdsManagerAPI(
        reach_model, platform=PlatformConfig.legacy_2017(), clock=SimClock()
    )
    campaign_api = AdsManagerAPI(
        reach_model, platform=PlatformConfig.modern_2020(), clock=SimClock()
    )
    delivery_engine = DeliveryEngine(catalog, seed=delivery_seed)
    return Simulation(
        config=config,
        catalog=catalog,
        reach_model=reach_model,
        uniqueness_api=uniqueness_api,
        campaign_api=campaign_api,
        panel=panel,
        delivery_engine=delivery_engine,
        click_log=ClickLog(),
    )


def build_simulation(
    config: ReproductionConfig | None = None,
    *,
    seed: int | None = None,
    cache: BuildCache | None = None,
    panel_layout: str | None = None,
) -> Simulation:
    """Build a fully wired :class:`Simulation` from ``config``.

    The uniqueness API uses the January 2017 platform limits (reporting floor
    of 20 users, no worldwide location) while the campaign API uses the late
    2020 limits (floor of 1,000 users, worldwide location available), exactly
    matching the two phases of the paper.

    ``cache`` threads a :class:`~repro.cache.BuildCache` through the
    catalog and panel stages; results are bit-identical with and without
    it (catalog generation and panel assembly are deterministic in their
    fingerprinted inputs), so callers opt in purely for speed.
    ``panel_layout`` picks the panel storage mode (columnar by default —
    see :func:`resolve_panel_layout`); content is layout-independent.
    """
    config = config or default_config()
    catalog = build_catalog(config, seed=seed, cache=cache)
    panel = build_panel(
        config, seed=seed, catalog=catalog, cache=cache, layout=panel_layout
    )
    return assemble_simulation(config, catalog, panel, seed=seed)
