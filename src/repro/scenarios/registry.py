"""The scenario registry: named, reusable experiment specs.

The registry maps scenario names to :class:`~repro.scenarios.spec.ScenarioSpec`
instances so the CLI (``repro scenario list/run/sweep``), the examples and
downstream scripts can refer to experiments by name instead of re-wiring
them.  The four paper studies ship as built-ins; projects register their
own with :func:`register_scenario` (a spec is ~20 declarative lines, not a
new module).  Specs round-trip losslessly through ``to_dict``/``from_dict``,
so a registry entry can be exported, edited as JSON and re-registered.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .spec import ScenarioSpec

_REGISTRY: dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, *, replace: bool = False) -> ScenarioSpec:
    """Add ``spec`` to the registry (``replace=True`` to overwrite)."""
    if not replace and spec.name in _REGISTRY:
        raise ConfigurationError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up one registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        available = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ConfigurationError(
            f"unknown scenario: {name!r} (registered: {available})"
        ) from None


def list_scenarios() -> tuple[ScenarioSpec, ...]:
    """Every registered scenario, in registration order."""
    return tuple(_REGISTRY.values())


# -- built-ins: the four paper studies --------------------------------------------

register_scenario(
    ScenarioSpec(
        name="uniqueness-table1",
        study="uniqueness",
        description="Section 4: N_P for both strategies (Table 1)",
    )
)
register_scenario(
    ScenarioSpec(
        name="nanotargeting-table2",
        study="nanotargeting",
        description="Section 5: the 21-campaign nanotargeting experiment (Table 2)",
    )
)
register_scenario(
    ScenarioSpec(
        name="nanotargeting-protected",
        study="nanotargeting",
        description="Section 8.3: the same attack with the recommended rules installed",
        countermeasures=("interest_cap:9", "min_active_audience:1000"),
    )
)
register_scenario(
    ScenarioSpec(
        name="workload-impact",
        study="workload_impact",
        description="Section 8.3: benign-advertiser impact of the interest cap",
        countermeasures=("interest_cap:9",),
    )
)
register_scenario(
    ScenarioSpec(
        name="fdvt-risk",
        study="fdvt_risk",
        description="Section 6: bulk FDVT interest-risk reports",
    )
)
