"""Declarative scenario specifications.

A :class:`ScenarioSpec` is the ~20-line description of one paper-style
experiment: which study to run (uniqueness, nanotargeting, the
countermeasure workload impact or the FDVT risk reports), at what scale,
with which seed, selection strategies, API tier, query locations,
countermeasure rules and delivery knobs.  The spec is pure data — a frozen
dataclass of primitives, picklable and round-trippable through
:meth:`ScenarioSpec.to_dict` / :meth:`ScenarioSpec.from_dict` — and
compiles into a fully wired :class:`~repro.pipeline.Simulation` via
:meth:`ScenarioSpec.compile` (which rides
:func:`repro.pipeline.build_simulation`, so a scenario run is bit-identical
to hand-wiring the same components).

Seed discipline: a spec either pins ``seed`` explicitly or leaves it
``None`` (the library's config-default seeds, exactly like
``build_simulation(config)``).  Sweeps derive per-scenario seeds
deterministically with :meth:`ScenarioSpec.derived` —
``_rng.derive_seed(base, "scenario", name)`` — so the same spec produces
the same simulation whether it runs alone or inside any sweep.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

from .._rng import derive_seed
from ..cache import BuildCache, stable_fingerprint
from ..config import ReproductionConfig, default_config, quick_config
from ..errors import ConfigurationError
from ..pipeline import (
    Simulation,
    build_simulation,
    catalog_fingerprint,
    panel_fingerprint,
    simulation_fingerprint,
)

#: The four paper studies a scenario can run.
STUDIES = ("uniqueness", "nanotargeting", "workload_impact", "fdvt_risk")

#: Interest-selection strategies a uniqueness scenario can request.
STRATEGY_NAMES = ("least_popular", "random")

#: Platform tiers a scenario can pin ("auto" keeps the study's default).
API_TIERS = ("auto", "legacy_2017", "modern_2020")

#: Query-location mixes ("auto" keeps the study's default).
LOCATION_MIXES = ("auto", "countries", "worldwide")


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative experiment: a study plus every knob it honours.

    Unused knobs are simply ignored by the other studies (a uniqueness
    scenario does not read ``workload_size``), so one spec shape covers the
    whole family and grids can sweep any axis.
    """

    name: str
    study: str
    description: str = ""
    #: Scale divisor applied to the paper-scale configuration (1 = full scale).
    factor: int = 20
    #: Top-level seed; ``None`` keeps the library's config-default seeds.
    seed: int | None = None
    #: Panel-size override (users); quotas rescale proportionally.
    panel_users: int | None = None
    #: Query-location mix: study default, the 50-country base, or worldwide.
    locations: str = "auto"
    #: Platform tier: study default, January 2017 or late 2020 limits.
    api_tier: str = "auto"
    #: Selection strategies evaluated by the uniqueness study.
    strategies: tuple[str, ...] = STRATEGY_NAMES
    #: Uniqueness probabilities (empty = the config default).
    probabilities: tuple[float, ...] = ()
    #: Bootstrap replicate override for the uniqueness study.
    n_bootstrap: int | None = None
    #: Nanotargeting target-count override.
    n_targets: int | None = None
    #: Nanotargeting campaign interest counts (empty = the paper's seven).
    interest_counts: tuple[int, ...] = ()
    #: Delivery knob: daily campaign budget override (EUR).
    daily_budget_eur: float | None = None
    #: Countermeasure rules, e.g. ("interest_cap:9", "min_active_audience:1000").
    countermeasures: tuple[str, ...] = ()
    #: Campaigns in the benign workload (workload_impact study).
    workload_size: int = 500
    #: Panel users covered by the FDVT risk-report study.
    risk_users: int = 25

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a scenario needs a name")
        if self.study not in STUDIES:
            raise ConfigurationError(
                f"unknown study: {self.study!r} (expected one of {STUDIES})"
            )
        if self.factor < 1:
            raise ConfigurationError("factor must be >= 1")
        object.__setattr__(self, "strategies", tuple(self.strategies))
        object.__setattr__(self, "probabilities", tuple(self.probabilities))
        object.__setattr__(self, "interest_counts", tuple(self.interest_counts))
        object.__setattr__(self, "countermeasures", tuple(self.countermeasures))
        if not self.strategies:
            raise ConfigurationError("at least one strategy is required")
        for strategy in self.strategies:
            if strategy not in STRATEGY_NAMES:
                raise ConfigurationError(
                    f"unknown strategy: {strategy!r} (expected one of {STRATEGY_NAMES})"
                )
        if self.api_tier not in API_TIERS:
            raise ConfigurationError(
                f"unknown api_tier: {self.api_tier!r} (expected one of {API_TIERS})"
            )
        if self.locations not in LOCATION_MIXES:
            raise ConfigurationError(
                f"unknown locations mix: {self.locations!r} "
                f"(expected one of {LOCATION_MIXES})"
            )
        if self.panel_users is not None and self.panel_users < 1:
            raise ConfigurationError("panel_users must be >= 1")
        if self.n_bootstrap is not None and self.n_bootstrap < 1:
            raise ConfigurationError("n_bootstrap must be >= 1")
        if self.workload_size < 1:
            raise ConfigurationError("workload_size must be >= 1")
        if self.risk_users < 1:
            raise ConfigurationError("risk_users must be >= 1")

    # -- seed derivation -----------------------------------------------------------

    def derived(self, base_seed: int) -> "ScenarioSpec":
        """A copy with a deterministic per-scenario seed derived from ``base_seed``.

        Specs that already pin a seed are returned unchanged, so a sweep
        seed never overrides an explicit scenario seed.
        """
        if self.seed is not None:
            return self
        return replace(self, seed=derive_seed(base_seed, "scenario", self.name))

    # -- compilation ---------------------------------------------------------------

    def config(self) -> ReproductionConfig:
        """The :class:`~repro.config.ReproductionConfig` this spec describes."""
        config = default_config() if self.factor <= 1 else quick_config(self.factor)
        if self.panel_users is not None:
            config = config.with_panel_users(self.panel_users)
        uniqueness = config.uniqueness
        if self.probabilities:
            uniqueness = replace(uniqueness, probabilities=self.probabilities)
        if self.n_bootstrap is not None:
            uniqueness = replace(uniqueness, n_bootstrap=self.n_bootstrap)
        experiment = config.experiment
        if self.n_targets is not None:
            experiment = replace(experiment, n_targets=self.n_targets)
        if self.interest_counts:
            experiment = replace(experiment, interest_counts=self.interest_counts)
        if self.daily_budget_eur is not None:
            experiment = replace(experiment, daily_budget_eur=self.daily_budget_eur)
        return replace(config, uniqueness=uniqueness, experiment=experiment)

    def compile(self, *, cache: BuildCache | None = None) -> Simulation:
        """Build the fully wired simulation this spec describes.

        Exactly ``build_simulation(self.config(), seed=self.seed)`` — the
        same call the hand-wired examples and the CLI make, which is what
        keeps scenario runs bit-identical to direct invocations.  With a
        :class:`~repro.cache.BuildCache` the catalog and panel stages are
        fetched by fingerprint when another compile already built them
        (bit-identical either way; see :mod:`repro.pipeline`).
        """
        return build_simulation(self.config(), seed=self.seed, cache=cache)

    def stage_fingerprints(self) -> dict[str, str]:
        """The content fingerprints of this spec's build stages.

        Keys: ``"catalog"``, ``"panel"``, ``"simulation"`` — the digests
        :func:`repro.pipeline.catalog_fingerprint` /
        :func:`~repro.pipeline.panel_fingerprint` /
        :func:`~repro.pipeline.simulation_fingerprint` assign to the
        resolved config + seed.  Two specs share a stage fingerprint
        exactly when compiling them builds a bit-identical stage artifact,
        which is what :class:`~repro.scenarios.sweep.SweepRunner` groups
        grid rows by.
        """
        config = self.config()
        return {
            "catalog": catalog_fingerprint(config, self.seed),
            "panel": panel_fingerprint(config, self.seed),
            "simulation": simulation_fingerprint(config, self.seed),
        }

    def fingerprint(self) -> str:
        """Content fingerprint of the *whole* spec (every knob + seed).

        Unlike :meth:`stage_fingerprints` (which keys build artifacts and
        deliberately ignores analysis knobs), this digest changes when any
        field changes — it identifies "the same experiment".  Sweep
        manifests key per-spec outcomes on it, so a resumed sweep only
        trusts a recorded result when the spec that produced it matches
        bit-for-bit.
        """
        return stable_fingerprint("scenario-spec", self.to_dict())

    # -- round-trip ----------------------------------------------------------------

    def to_dict(self) -> dict:
        """Serialisable view; :meth:`from_dict` restores the exact spec."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (lists become tuples)."""
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown scenario fields: {sorted(unknown)}"
            )
        data = dict(payload)
        for field_name in ("strategies", "probabilities", "interest_counts", "countermeasures"):
            if field_name in data and data[field_name] is not None:
                data[field_name] = tuple(data[field_name])
        return cls(**data)
