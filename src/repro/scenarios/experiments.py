"""The uniform Experiment protocol and the four paper-study adapters.

Every study runs through the same four-stage shape —

    plan() → execute(executor) → merge(parts) → summarize(merged)

— where ``plan`` resolves the units of work (strategies, targets, workload
specs, panel users), ``execute`` runs them (threading an optional
:class:`~repro.exec.ShardExecutor` into every stage that can shard),
``merge`` combines per-unit parts, and ``summarize`` reduces everything
into the canonical :class:`~repro.core.results.ScenarioResult`.
:func:`run_experiment` chains the stages and :func:`run_scenario` is the
one-call entry point a :class:`~repro.scenarios.sweep.SweepRunner` (or the
``repro scenario run`` CLI) fans out.

The adapters are deliberately thin: they wire the *existing* study
implementations — :class:`~repro.core.UniquenessModel`,
:class:`~repro.core.NanotargetingExperiment`,
:func:`~repro.countermeasures.evaluate_workload_impact`,
:meth:`~repro.fdvt.FDVTExtension.build_risk_reports` — with exactly the
arguments the hand-wired examples and CLI pass, so every scenario result is
bit-identical to its pre-scenario direct invocation (pinned by
``tests/test_scenarios.py``).
"""

from __future__ import annotations

from typing import Any, Protocol, Sequence, runtime_checkable

from .._rng import derive_seed
from ..adsapi import AdsManagerAPI
from ..cache import BuildCache
from ..campaigns import AdvertiserWorkloadGenerator
from ..core import NanotargetingExperiment, UniquenessModel
from ..core.results import ScenarioResult
from ..core.selection import LeastPopularSelection, RandomSelection, SelectionStrategy
from ..countermeasures import (
    InterestCapRule,
    MinActiveAudienceRule,
    evaluate_workload_impact,
    run_protected_experiment,
)
from ..errors import ConfigurationError
from ..exec import ShardExecutor
from ..fdvt import FDVTExtension
from ..pipeline import Simulation
from ..reach import country_codes
from .spec import ScenarioSpec


@runtime_checkable
class Experiment(Protocol):
    """One study bound to a compiled simulation, runnable in four stages."""

    spec: ScenarioSpec

    def plan(self) -> Sequence[Any]:
        """Resolve the units of work (deterministic, no heavy compute)."""
        ...  # pragma: no cover - protocol definition

    def execute(self, executor: ShardExecutor | None = None) -> Sequence[Any]:
        """Run every planned unit, optionally sharded across ``executor``."""
        ...  # pragma: no cover - protocol definition

    def merge(self, parts: Sequence[Any]) -> Any:
        """Combine per-unit parts into the study's raw result."""
        ...  # pragma: no cover - protocol definition

    def summarize(self, merged: Any) -> ScenarioResult:
        """Reduce the raw result into the canonical scenario result."""
        ...  # pragma: no cover - protocol definition


def run_experiment(
    experiment: Experiment, executor: ShardExecutor | None = None
) -> ScenarioResult:
    """Drive one experiment through execute → merge → summarize."""
    return experiment.summarize(experiment.merge(experiment.execute(executor)))


def build_experiment(
    spec: ScenarioSpec,
    simulation: Simulation | None = None,
    *,
    cache: BuildCache | None = None,
) -> Experiment:
    """Bind ``spec`` to its study adapter (compiling the simulation if needed).

    ``cache`` threads a :class:`~repro.cache.BuildCache` into the compile
    so repeated builds of the same catalog/panel stages are shared;
    ignored when ``simulation`` is already provided.
    """
    simulation = simulation or spec.compile(cache=cache)
    adapters = {
        "uniqueness": UniquenessStudy,
        "nanotargeting": NanotargetingStudy,
        "workload_impact": WorkloadImpactStudy,
        "fdvt_risk": FDVTRiskStudy,
    }
    return adapters[spec.study](spec, simulation)


def run_scenario(
    spec: ScenarioSpec,
    *,
    executor: ShardExecutor | None = None,
    simulation: Simulation | None = None,
    cache: BuildCache | None = None,
) -> ScenarioResult:
    """Compile, bind and run one scenario — the unit a sweep fans out."""
    return run_experiment(build_experiment(spec, simulation, cache=cache), executor)


# -- shared wiring helpers -------------------------------------------------------


def parse_rules(names: Sequence[str]) -> tuple:
    """Countermeasure rules from their spec strings.

    ``"interest_cap"`` / ``"interest_cap:9"`` build an
    :class:`~repro.countermeasures.InterestCapRule`;
    ``"min_active_audience"`` / ``"min_active_audience:1000"`` build a
    :class:`~repro.countermeasures.MinActiveAudienceRule`.
    """
    rules = []
    for entry in names:
        rule_name, _, argument = entry.partition(":")
        if rule_name == "interest_cap":
            rules.append(
                InterestCapRule(max_interests=int(argument)) if argument else InterestCapRule()
            )
        elif rule_name == "min_active_audience":
            rules.append(
                MinActiveAudienceRule(min_active_users=int(argument))
                if argument
                else MinActiveAudienceRule()
            )
        else:
            raise ConfigurationError(f"unknown countermeasure rule: {entry!r}")
    return tuple(rules)


def _resolve_api(spec: ScenarioSpec, simulation: Simulation, default: str) -> AdsManagerAPI:
    """The platform API a study runs against under ``spec.api_tier``."""
    tier = default if spec.api_tier == "auto" else spec.api_tier
    return simulation.uniqueness_api if tier == "legacy_2017" else simulation.campaign_api


def _resolve_locations(spec: ScenarioSpec, default: str) -> tuple[str, ...] | None:
    """The query-location list under ``spec.locations`` (None = worldwide)."""
    mix = default if spec.locations == "auto" else spec.locations
    return None if mix == "worldwide" else country_codes()


# -- the four study adapters ------------------------------------------------------


class UniquenessStudy:
    """Section 4 (Table 1): N_P estimation for the requested strategies."""

    def __init__(self, spec: ScenarioSpec, simulation: Simulation) -> None:
        self.spec = spec
        self.simulation = simulation
        config = simulation.config
        self._model = UniquenessModel(
            _resolve_api(spec, simulation, "legacy_2017"),
            simulation.panel,
            config.uniqueness,
            locations=_resolve_locations(spec, "countries"),
        )
        # The same strategy objects Simulation.strategies() hands the
        # hand-wired examples — in particular the random strategy's derived
        # seed — so scenario collections match direct runs bit-for-bit.
        by_name: dict[str, SelectionStrategy] = {
            "least_popular": LeastPopularSelection(),
            "random": RandomSelection(
                seed=derive_seed(config.uniqueness.seed, "random-strategy")
            ),
        }
        self._strategies = tuple(by_name[name] for name in spec.strategies)

    @property
    def model(self) -> UniquenessModel:
        """The bound uniqueness model (its collect cache is warm after a run)."""
        return self._model

    def plan(self) -> tuple[SelectionStrategy, ...]:
        return self._strategies

    def execute(self, executor: ShardExecutor | None = None) -> tuple:
        probabilities = self.spec.probabilities or None
        return tuple(
            self._model.estimate(strategy, probabilities=probabilities, executor=executor)
            for strategy in self.plan()
        )

    def merge(self, parts: Sequence) -> dict:
        return {report.strategy_name: report for report in parts}

    def summarize(self, merged: dict) -> ScenarioResult:
        metrics = []
        table = []
        summary: list[str] = []
        for name, report in merged.items():
            for probability in report.probabilities:
                metrics.append(
                    (f"{name}:n_p@{probability:g}", float(report.estimates[probability].n_p))
                )
            table.append(report.table_row())
            summary.extend(report.summary_lines())
        return ScenarioResult(
            scenario=self.spec.name,
            study=self.spec.study,
            seed=self.spec.seed,
            metrics=tuple(metrics),
            table=tuple(table),
            summary=tuple(summary),
            raw=merged,
        )


class NanotargetingStudy:
    """Section 5 (Table 2): the nanotargeting campaigns, optionally protected."""

    def __init__(self, spec: ScenarioSpec, simulation: Simulation) -> None:
        self.spec = spec
        self.simulation = simulation
        self._experiment = NanotargetingExperiment(
            _resolve_api(spec, simulation, "modern_2020"),
            simulation.delivery_engine,
            simulation.config.experiment,
            click_log=simulation.click_log,
            seed=spec.seed,
        )

    def plan(self) -> tuple:
        """The targeted users, selected exactly like a direct run."""
        return tuple(self._experiment.select_targets(self.simulation.panel.users))

    def execute(self, executor: ShardExecutor | None = None) -> tuple:
        # Campaign delivery is inherently sequential (shared account, clock
        # and click log), so the executor is not threaded further here; the
        # audience planning inside already rides the bulk prefix kernel.
        targets = self.plan()
        if self.spec.countermeasures:
            report = run_protected_experiment(
                self._experiment.api,
                self.simulation.delivery_engine,
                targets,
                list(parse_rules(self.spec.countermeasures)),
                experiment=self._experiment,
            )
        else:
            report = self._experiment.run(targets)
        return (report,)

    def merge(self, parts: Sequence):
        (report,) = parts
        return report

    def summarize(self, report) -> ScenarioResult:
        rejected = sum(1 for record in report.records if record.rejected)
        metrics = (
            ("success_count", float(report.success_count)),
            ("n_campaigns", float(report.n_campaigns)),
            ("rejected_campaigns", float(rejected)),
            ("total_cost_eur", report.total_cost_eur()),
            ("successful_cost_eur", report.successful_cost_eur()),
            ("account_suspended", float(report.account_suspended)),
        )
        summary = (
            f"successful campaigns: {report.success_count}/{report.n_campaigns} "
            f"(rejected: {rejected})",
            f"total cost: €{report.total_cost_eur():.2f}, successful cost: "
            f"€{report.successful_cost_eur():.2f}",
        )
        return ScenarioResult(
            scenario=self.spec.name,
            study=self.spec.study,
            seed=self.spec.seed,
            metrics=metrics,
            table=tuple(report.table_rows()),
            summary=summary,
            raw=report,
        )


class WorkloadImpactStudy:
    """Section 8.3: fraction of a benign workload the rules would reject."""

    def __init__(self, spec: ScenarioSpec, simulation: Simulation) -> None:
        self.spec = spec
        self.simulation = simulation
        self._api = _resolve_api(spec, simulation, "modern_2020")
        # The paper's advertiser-impact argument is about the interest cap;
        # it stays the default when the spec names no rules.
        self._rules = (
            parse_rules(spec.countermeasures)
            if spec.countermeasures
            else (InterestCapRule(),)
        )

    def plan(self) -> tuple:
        """The benign campaign workload (seeded like the CLI's direct call)."""
        generator = AdvertiserWorkloadGenerator(self.simulation.catalog)
        return tuple(generator.generate(self.spec.workload_size, seed=self.spec.seed or 0))

    def execute(self, executor: ShardExecutor | None = None) -> tuple:
        return (
            evaluate_workload_impact(
                self._api, list(self.plan()), list(self._rules), executor=executor
            ),
        )

    def merge(self, parts: Sequence):
        (impact,) = parts
        return impact

    def summarize(self, impact) -> ScenarioResult:
        metrics = (
            ("total_campaigns", float(impact.total_campaigns)),
            ("rejected_campaigns", float(impact.rejected_campaigns)),
            ("rejection_rate", impact.rejection_rate),
        )
        rules = ", ".join(rule.name for rule in self._rules)
        summary = (
            f"{impact.rejected_campaigns}/{impact.total_campaigns} benign campaigns "
            f"rejected ({impact.rejection_rate:.2%}) by rules: {rules}",
        )
        table = (
            {
                "rules": rules,
                "total": impact.total_campaigns,
                "rejected": impact.rejected_campaigns,
                "rate": round(impact.rejection_rate, 6),
            },
        )
        return ScenarioResult(
            scenario=self.spec.name,
            study=self.spec.study,
            seed=self.spec.seed,
            metrics=metrics,
            table=table,
            summary=summary,
            raw=impact,
        )


class FDVTRiskStudy:
    """Section 6: bulk FDVT risk reports for a slice of the panel."""

    def __init__(self, spec: ScenarioSpec, simulation: Simulation) -> None:
        self.spec = spec
        self.simulation = simulation
        self._extension = FDVTExtension(
            _resolve_api(spec, simulation, "legacy_2017"), simulation.catalog
        )

    def plan(self) -> tuple:
        """The first ``risk_users`` panel users (panel order), as in the bench."""
        return tuple(self.simulation.panel.users[: self.spec.risk_users])

    def execute(self, executor: ShardExecutor | None = None) -> tuple:
        return self._extension.build_risk_reports(self.plan(), executor=executor)

    def merge(self, parts: Sequence) -> tuple:
        return tuple(parts)

    def summarize(self, reports: tuple) -> ScenarioResult:
        total_entries = 0
        level_totals: dict[str, int] = {}
        table = []
        for report in reports:
            counts = {level.value: count for level, count in report.risk_counts().items()}
            total_entries += len(report.entries)
            for level, count in counts.items():
                level_totals[level] = level_totals.get(level, 0) + count
            table.append({"user_id": report.user_id, "interests": len(report.entries), **counts})
        metrics = (
            ("n_users", float(len(reports))),
            ("n_entries", float(total_entries)),
            *((f"n_{level}", float(count)) for level, count in sorted(level_totals.items())),
        )
        summary = (
            f"{len(reports)} risk reports, {total_entries} interest entries "
            + ", ".join(f"{level}={count}" for level, count in sorted(level_totals.items())),
        )
        return ScenarioResult(
            scenario=self.spec.name,
            study=self.spec.study,
            seed=self.spec.seed,
            metrics=metrics,
            table=tuple(table),
            summary=summary,
            raw=reports,
        )
