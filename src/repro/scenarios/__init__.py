"""Scenario orchestration: declarative specs, a uniform Experiment protocol,
and sharded sweeps over the execution layer.

The paper's results are one family of experiments — uniqueness (Section 4),
nanotargeting (Section 5), the FDVT risk reports (Section 6), the
countermeasure evaluation (Section 8.3) — run over varying populations,
strategies and platform configurations.  This package makes that family a
first-class object:

* :class:`~repro.scenarios.spec.ScenarioSpec` — a ~20-line declarative
  description (study, scale, seed, strategies, API tier, locations,
  countermeasure rules, delivery knobs) that compiles to a fully wired
  :class:`~repro.pipeline.Simulation`;
* the :class:`~repro.scenarios.experiments.Experiment` protocol
  (``plan → execute(executor) → merge → summarize``) with thin adapters
  binding each existing study implementation, all summarising into the
  shared :class:`~repro.core.results.ScenarioResult`;
* :class:`~repro.scenarios.sweep.SweepRunner` +
  :func:`~repro.scenarios.sweep.expand_grid` — grids of specs fanned over
  the same :class:`~repro.exec.runner.ShardRunner` backends as collection,
  reducing into the mergeable :class:`~repro.core.results.ResultSet`
  bit-identically for every backend and worker count; with a
  :class:`~repro.faults.RetryPolicy` / :class:`~repro.faults.FaultPlan`
  the sweep degrades gracefully instead of crashing, records per-spec
  outcomes in a :class:`~repro.scenarios.manifest.RunManifest` and can
  resume an interrupted run from it
  (:meth:`~repro.scenarios.sweep.SweepRunner.run_report`);
* the scenario registry (:func:`~repro.scenarios.registry.register_scenario`
  et al.) behind the ``repro scenario list/run/sweep`` CLI.

Adding the next scenario is a spec, not a module::

    from repro.scenarios import ScenarioSpec, run_scenario

    spec = ScenarioSpec(
        name="uniqueness-worldwide",
        study="uniqueness",
        factor=20,
        seed=7,
        strategies=("least_popular",),
        probabilities=(0.9,),
        api_tier="modern_2020",
        locations="worldwide",
    )
    print(run_scenario(spec).summary)
"""

from .experiments import (
    Experiment,
    FDVTRiskStudy,
    NanotargetingStudy,
    UniquenessStudy,
    WorkloadImpactStudy,
    build_experiment,
    parse_rules,
    run_experiment,
    run_scenario,
)
from .manifest import ManifestEntry, RunManifest
from .registry import get_scenario, list_scenarios, register_scenario
from .spec import API_TIERS, LOCATION_MIXES, STRATEGY_NAMES, STUDIES, ScenarioSpec
from .sweep import SweepReport, SweepRunner, expand_grid, manifest_path_for

__all__ = [
    "API_TIERS",
    "Experiment",
    "FDVTRiskStudy",
    "LOCATION_MIXES",
    "ManifestEntry",
    "NanotargetingStudy",
    "RunManifest",
    "STRATEGY_NAMES",
    "STUDIES",
    "ScenarioSpec",
    "SweepReport",
    "SweepRunner",
    "UniquenessStudy",
    "WorkloadImpactStudy",
    "build_experiment",
    "expand_grid",
    "get_scenario",
    "list_scenarios",
    "manifest_path_for",
    "parse_rules",
    "register_scenario",
    "run_experiment",
    "run_scenario",
]
