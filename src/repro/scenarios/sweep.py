"""Sharded scenario sweeps: a grid of specs fanned over the exec layer.

:class:`SweepRunner` takes an ordered grid of
:class:`~repro.scenarios.spec.ScenarioSpec`\\ s, partitions it with the
executor's :class:`~repro.exec.ExecutionPlan` (one row per scenario) and
runs the chunks on the same :class:`~repro.exec.runner.ShardRunner`
backends as collection — serial, thread pool or process pool (specs are
pure data, so process workers pickle a few primitives and compile their own
simulations).  Per-chunk :class:`~repro.core.results.ResultSet` blocks
reassemble in grid order, so the sweep result lists scenarios exactly in
grid order and is **identical** to running every spec directly — each
scenario compiles its own simulation from its own (derived) seed, no run
state is shared across grid rows.

Shared builds: with ``share_builds`` (the default) the runner groups grid
rows by their (catalog, panel) stage fingerprints
(:meth:`ScenarioSpec.stage_fingerprints`) so rows that only vary analysis
knobs — strategies, probabilities, API tier, countermeasure rules — land
in the same chunks, and every chunk compiles through the process-global
:class:`~repro.cache.BuildCache`.  An analysis-knob-only sweep therefore
builds its catalog and panel exactly once (per process) instead of once
per row, while the results stay bit-identical to the uncached path:
cached artifacts are immutable inputs and the per-run shell is always
fresh (see :mod:`repro.pipeline`).

:func:`expand_grid` builds the grid: the cartesian product of a base spec
and per-field axes, with deterministic ``name/field=value`` naming that the
per-scenario seed derivation (:meth:`ScenarioSpec.derived`) keys on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import product
from typing import Mapping, Sequence

from ..cache import build_cache
from ..core.results import ResultSet
from ..errors import ConfigurationError
from ..exec import ShardExecutor
from .experiments import run_scenario
from .spec import ScenarioSpec

#: Tuple-valued spec fields and their element types (grid axis values are
#: coerced on expansion; CLI tokens join elements with "+").
_TUPLE_FIELDS: Mapping[str, type] = {
    "strategies": str,
    "countermeasures": str,
    "probabilities": float,
    "interest_counts": int,
}


def coerce_axis_value(field_name: str, token: str) -> object:
    """Parse one CLI token into the value type of a ScenarioSpec grid axis.

    The single source of truth for ``--grid field=v1,v2`` coercion: tuple
    fields come from :data:`_TUPLE_FIELDS` (elements joined with ``+``),
    scalar fields follow the dataclass annotation, so a new spec field
    needs no CLI-side table update.
    """
    fields = ScenarioSpec.__dataclass_fields__
    if field_name not in fields:
        raise ConfigurationError(f"unknown scenario field: {field_name!r}")
    if field_name in _TUPLE_FIELDS:
        element = _TUPLE_FIELDS[field_name]
        return tuple(element(part) for part in token.split("+"))
    annotation = str(fields[field_name].type)
    if "int" in annotation:
        return int(token)
    if "float" in annotation:
        return float(token)
    return token


@dataclass(frozen=True)
class _SweepChunk:
    """One picklable unit of sweep work: a run of specs plus the cache flag."""

    specs: tuple[ScenarioSpec, ...]
    share_builds: bool


def _run_scenario_chunk(chunk: _SweepChunk) -> ResultSet:
    """Run one chunk of the grid (the unit a runner executes).

    With ``share_builds`` every compile in the chunk goes through the
    process-global :class:`~repro.cache.BuildCache`: serial and thread
    backends share one cache across all chunks, each process-pool worker
    amortises its own across the chunks (and sweeps) it executes.
    """
    cache = build_cache() if chunk.share_builds else None
    results = ResultSet()
    for spec in chunk.specs:
        results.add(run_scenario(spec, cache=cache))
    return results


@dataclass(frozen=True)
class SweepRunner:
    """Runs a grid of scenarios across a shard-runner backend.

    ``seed`` (when given) derives a deterministic per-scenario seed for
    every spec that does not pin one — ``derive_seed(seed, "scenario",
    name)`` — so re-running the sweep, running a single grid row directly,
    or moving the sweep to another backend or worker count all produce
    bit-identical :class:`~repro.core.results.ResultSet`\\ s.

    ``share_builds`` (default on) routes every chunk's simulation compiles
    through the process-global :class:`~repro.cache.BuildCache` and packs
    rows with equal (catalog, panel) stage fingerprints into the same
    chunks, so expensive builds happen once per distinct fingerprint
    rather than once per row.  The result set is bit-identical either way
    — ``share_builds=False`` is the reference path benchmarks and parity
    tests pin against.
    """

    executor: ShardExecutor = field(default_factory=ShardExecutor)
    seed: int | None = None
    share_builds: bool = True

    def resolve(self, specs: Sequence[ScenarioSpec]) -> tuple[ScenarioSpec, ...]:
        """The grid as it will actually run (seeds derived, names checked)."""
        resolved = tuple(
            spec if self.seed is None else spec.derived(self.seed) for spec in specs
        )
        names = [spec.name for spec in resolved]
        if len(set(names)) != len(names):
            raise ConfigurationError("scenario names in a sweep must be unique")
        return resolved

    def build_groups(
        self, resolved: Sequence[ScenarioSpec]
    ) -> tuple[tuple[ScenarioSpec, ...], ...]:
        """The grid regrouped by shared (catalog, panel) build fingerprints.

        Groups are ordered by first appearance and rows keep grid order
        within their group, so the regrouping is a stable permutation —
        the runner maps results back to grid order by scenario name.
        """
        groups: dict[tuple[str, str], list[ScenarioSpec]] = {}
        for spec in resolved:
            stages = spec.stage_fingerprints()
            groups.setdefault((stages["catalog"], stages["panel"]), []).append(spec)
        return tuple(tuple(group) for group in groups.values())

    def _chunks(self, resolved: tuple[ScenarioSpec, ...]) -> list[_SweepChunk]:
        """Partition the grid into runner chunks under the executor's plan.

        Without shared builds the chunks cut the grid contiguously (the
        pre-cache behaviour).  With shared builds the grid is first
        regrouped by build fingerprint so chunk boundaries — and hence
        process-pool worker assignments — never split a group more than
        the plan demands, keeping per-worker builds to one per distinct
        (catalog, panel) stage wherever possible.
        """
        if self.share_builds:
            ordered: list[ScenarioSpec] = [
                spec for group in self.build_groups(resolved) for spec in group
            ]
        else:
            ordered = list(resolved)
        return [
            _SweepChunk(tuple(ordered[shard.start : shard.stop]), self.share_builds)
            for shard in self.executor.plan(len(ordered))
        ]

    def run(self, specs: Sequence[ScenarioSpec]) -> ResultSet:
        """Run every scenario and reassemble the results in grid order."""
        resolved = self.resolve(specs)
        if not resolved:
            return ResultSet()
        runner = self.executor.runner()
        by_name = {}
        for block in runner.run(_run_scenario_chunk, self._chunks(resolved)):
            for result in block:
                by_name[result.scenario] = result
        merged = ResultSet(by_name[spec.name] for spec in resolved)
        return merged.finalize()


def expand_grid(
    base: ScenarioSpec, axes: Mapping[str, Sequence[object]]
) -> tuple[ScenarioSpec, ...]:
    """The cartesian product of ``base`` and the given per-field axes.

    Every grid point is ``base`` with the axis fields replaced and a
    deterministic derived name (``base/field=value/...`` in axis order) —
    ~20 lines of spec turn into an arbitrarily large sweep.  Tuple-valued
    fields accept any sequence; scalar axis values are used as-is.
    """
    if not axes:
        return (base,)
    for field_name in axes:
        if field_name not in ScenarioSpec.__dataclass_fields__:
            raise ConfigurationError(f"unknown scenario field: {field_name!r}")
        if field_name == "name":
            raise ConfigurationError("the name field is derived, not an axis")
    names = list(axes)
    combos = product(*(list(axes[name]) for name in names))
    specs = []
    for combo in combos:
        overrides: dict[str, object] = {}
        suffix_parts = []
        for field_name, value in zip(names, combo):
            if field_name in _TUPLE_FIELDS:
                value = tuple(value)  # type: ignore[arg-type]
                label = ",".join(str(v) for v in value)
            else:
                label = str(value)
            overrides[field_name] = value
            suffix_parts.append(f"{field_name}={label}")
        spec = replace(base, **overrides)
        specs.append(replace(spec, name=f"{base.name}/{'/'.join(suffix_parts)}"))
    return tuple(specs)
