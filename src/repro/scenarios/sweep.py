"""Sharded scenario sweeps: a grid of specs fanned over the exec layer.

:class:`SweepRunner` takes an ordered grid of
:class:`~repro.scenarios.spec.ScenarioSpec`\\ s, partitions it with the
executor's :class:`~repro.exec.ExecutionPlan` (one row per scenario) and
runs the chunks on the same :class:`~repro.exec.runner.ShardRunner`
backends as collection — serial, thread pool or process pool (specs are
pure data, so process workers pickle a few primitives and compile their own
simulations).  Per-chunk :class:`~repro.core.results.ResultSet` blocks
reassemble in grid order, so the sweep result lists scenarios exactly in
grid order and is **identical** to running every spec directly — each
scenario compiles its own simulation from its own (derived) seed, no run
state is shared across grid rows.

Shared builds: with ``share_builds`` (the default) the runner groups grid
rows by their (catalog, panel) stage fingerprints
(:meth:`ScenarioSpec.stage_fingerprints`) so rows that only vary analysis
knobs — strategies, probabilities, API tier, countermeasure rules — land
in the same chunks, and every chunk compiles through the process-global
:class:`~repro.cache.BuildCache`.  An analysis-knob-only sweep therefore
builds its catalog and panel exactly once (per process) instead of once
per row, while the results stay bit-identical to the uncached path:
cached artifacts are immutable inputs and the per-run shell is always
fresh (see :mod:`repro.pipeline`).

Fault tolerance (see :mod:`repro.faults`): a sweep optionally carries a
:class:`~repro.faults.RetryPolicy` and a seeded
:class:`~repro.faults.FaultPlan`.  Error-kind faults are injected *per
grid row* — keyed by the row's position in the resolved grid, which is
invariant under chunking, build-grouping and worker counts, so a chaos
sweep replays identically on every backend — while "crash" faults are
handed down to the shard runner (:meth:`FaultPlan.restricted`), whose
pool-rebuild recovery they exercise.  ``on_error`` picks the degradation
mode: ``"raise"`` aborts on the first spec that exhausts its retries,
``"skip"`` dead-letters it (error + traceback captured in the
:class:`~repro.scenarios.manifest.RunManifest`) and returns the partial
results.  :meth:`SweepRunner.run_report` saves the manifest incrementally
and can *resume* from one, re-running only non-completed specs keyed by
full-spec fingerprints — a resumed sweep is bit-identical to an
undisturbed one.

:func:`expand_grid` builds the grid: the cartesian product of a base spec
and per-field axes, with deterministic ``name/field=value`` naming that the
per-scenario seed derivation (:meth:`ScenarioSpec.derived`) keys on.
"""

from __future__ import annotations

import traceback as traceback_module
from dataclasses import dataclass, field, replace
from itertools import product
from pathlib import Path
from typing import Mapping, Sequence

from ..cache import build_cache, resolve_cache_root, stable_fingerprint
from ..core.results import ResultSet, ScenarioResult
from ..errors import ConfigurationError
from ..exec import ShardExecutor
from ..faults import FaultPlan, RetryPolicy, WallClockRetryPolicy, guarded_call
from .experiments import run_scenario
from .manifest import ManifestEntry, RunManifest
from .spec import ScenarioSpec

#: Degradation modes for specs that exhaust their retries.
ON_ERROR_MODES = ("raise", "skip")

#: Fault kinds injected per grid row (everything except worker crashes,
#: which belong to the runner layer — see :meth:`SweepRunner._fault_split`).
_SPEC_FAULT_KINDS = ("transient_api", "task_error", "slow")

#: Tuple-valued spec fields and their element types (grid axis values are
#: coerced on expansion; CLI tokens join elements with "+").
_TUPLE_FIELDS: Mapping[str, type] = {
    "strategies": str,
    "countermeasures": str,
    "probabilities": float,
    "interest_counts": int,
}


def coerce_axis_value(field_name: str, token: str) -> object:
    """Parse one CLI token into the value type of a ScenarioSpec grid axis.

    The single source of truth for ``--grid field=v1,v2`` coercion: tuple
    fields come from :data:`_TUPLE_FIELDS` (elements joined with ``+``),
    scalar fields follow the dataclass annotation, so a new spec field
    needs no CLI-side table update.
    """
    fields = ScenarioSpec.__dataclass_fields__
    if field_name not in fields:
        raise ConfigurationError(f"unknown scenario field: {field_name!r}")
    if field_name in _TUPLE_FIELDS:
        element = _TUPLE_FIELDS[field_name]
        return tuple(element(part) for part in token.split("+"))
    annotation = str(fields[field_name].type)
    if "int" in annotation:
        return int(token)
    if "float" in annotation:
        return float(token)
    return token


@dataclass(frozen=True)
class _SweepChunk:
    """One picklable unit of sweep work: a run of specs plus their context.

    ``indices`` carries each spec's position in the *resolved grid* so
    per-row fault injection keys on a quantity invariant under chunking
    and build-grouping; ``retry`` / ``faults`` / ``on_error`` travel with
    the chunk because process workers cannot see the coordinator's state.
    """

    specs: tuple[ScenarioSpec, ...]
    share_builds: bool
    indices: tuple[int, ...] = ()
    retry: RetryPolicy | None = None
    faults: FaultPlan | None = None
    on_error: str = "raise"


@dataclass(frozen=True)
class _SpecOutcome:
    """The picklable per-spec verdict a chunk run reports back."""

    scenario: str
    attempts: int
    result: ScenarioResult | None = None
    error: str | None = None
    traceback: str | None = None


def _run_scenario_chunk(chunk: _SweepChunk) -> list[_SpecOutcome]:
    """Run one chunk of the grid (the unit a runner executes).

    With ``share_builds`` every compile in the chunk goes through the
    process-global :class:`~repro.cache.BuildCache`: serial and thread
    backends share one cache across all chunks, each process-pool worker
    amortises its own across the chunks (and sweeps) it executes.

    Each spec runs through :func:`~repro.faults.guarded_call` when a
    retry policy or fault plan is configured (plain directly otherwise —
    the fault-free path stays zero-overhead).  A spec that exhausts its
    retries either aborts the chunk (``on_error="raise"``; the runner
    wraps the error with shard context) or is dead-lettered in place with
    its traceback captured (``on_error="skip"``).
    """
    cache = build_cache() if chunk.share_builds else None
    indices = chunk.indices or tuple(range(len(chunk.specs)))
    guarded = chunk.retry is not None or chunk.faults is not None

    def execute(spec: ScenarioSpec) -> ScenarioResult:
        return run_scenario(spec, cache=cache)

    outcomes: list[_SpecOutcome] = []
    for index, spec in zip(indices, chunk.specs):
        try:
            if guarded:
                result, attempts = guarded_call(
                    execute,
                    spec,
                    index=index,
                    retry=chunk.retry,
                    faults=chunk.faults,
                )
            else:
                result, attempts = execute(spec), 1
        except Exception as error:
            if chunk.on_error == "raise":
                raise
            outcomes.append(
                _SpecOutcome(
                    scenario=spec.name,
                    attempts=getattr(error, "attempts", 1),
                    error=f"{type(error).__name__}: {error}",
                    traceback=traceback_module.format_exc(),
                )
            )
            continue
        outcomes.append(
            _SpecOutcome(scenario=spec.name, attempts=attempts, result=result)
        )
    return outcomes


@dataclass(frozen=True)
class SweepReport:
    """Everything one sweep produced: results, outcomes, failure detail.

    ``results`` lists the completed scenarios in grid order (all of them
    when the sweep ran clean, a partial set under ``on_error="skip"``);
    ``manifest`` records every spec's outcome, including dead letters
    with captured tracebacks, and is what a later run resumes from.
    """

    results: ResultSet
    manifest: RunManifest

    @property
    def ok(self) -> bool:
        """True when every spec completed."""
        return not self.manifest.failures()

    def counts(self) -> dict[str, int]:
        """Summary counts (total / completed / failed / retried / resumed)."""
        return self.manifest.counts()

    def failure_lines(self) -> list[str]:
        """One human-readable line per dead-lettered spec."""
        return [
            f"[{entry.scenario}] failed after {entry.attempts} attempt(s): {entry.error}"
            for entry in self.manifest.failures()
        ]


@dataclass(frozen=True)
class SweepRunner:
    """Runs a grid of scenarios across a shard-runner backend.

    ``seed`` (when given) derives a deterministic per-scenario seed for
    every spec that does not pin one — ``derive_seed(seed, "scenario",
    name)`` — so re-running the sweep, running a single grid row directly,
    or moving the sweep to another backend or worker count all produce
    bit-identical :class:`~repro.core.results.ResultSet`\\ s.

    ``share_builds`` (default on) routes every chunk's simulation compiles
    through the process-global :class:`~repro.cache.BuildCache` and packs
    rows with equal (catalog, panel) stage fingerprints into the same
    chunks, so expensive builds happen once per distinct fingerprint
    rather than once per row.  The result set is bit-identical either way
    — ``share_builds=False`` is the reference path benchmarks and parity
    tests pin against.

    ``retry`` / ``faults`` / ``on_error`` configure the fault-tolerance
    layer (module docstring above; full contract in :mod:`repro.faults`).
    When ``retry`` or ``faults`` is unset the executor's own fields apply,
    so one :class:`~repro.exec.ShardExecutor` can carry the whole choice.
    """

    executor: ShardExecutor = field(default_factory=ShardExecutor)
    seed: int | None = None
    share_builds: bool = True
    retry: RetryPolicy | None = None
    faults: FaultPlan | None = None
    on_error: str = "raise"

    def __post_init__(self) -> None:
        if self.on_error not in ON_ERROR_MODES:
            raise ConfigurationError(
                f"unknown on_error mode: {self.on_error!r} "
                f"(expected one of {ON_ERROR_MODES})"
            )

    def resolve(self, specs: Sequence[ScenarioSpec]) -> tuple[ScenarioSpec, ...]:
        """The grid as it will actually run (seeds derived, names checked)."""
        resolved = tuple(
            spec if self.seed is None else spec.derived(self.seed) for spec in specs
        )
        names = [spec.name for spec in resolved]
        if len(set(names)) != len(names):
            raise ConfigurationError("scenario names in a sweep must be unique")
        return resolved

    def build_groups(
        self, resolved: Sequence[ScenarioSpec]
    ) -> tuple[tuple[ScenarioSpec, ...], ...]:
        """The grid regrouped by shared (catalog, panel) build fingerprints.

        Groups are ordered by first appearance and rows keep grid order
        within their group, so the regrouping is a stable permutation —
        the runner maps results back to grid order by scenario name.
        """
        groups: dict[tuple[str, str], list[ScenarioSpec]] = {}
        for spec in resolved:
            stages = spec.stage_fingerprints()
            groups.setdefault((stages["catalog"], stages["panel"]), []).append(spec)
        return tuple(tuple(group) for group in groups.values())

    def _fault_split(self) -> tuple[
        RetryPolicy | None, FaultPlan | None, FaultPlan | None
    ]:
        """(retry, per-spec faults, runner faults) with the crash kind split out.

        One configured plan must never double-fire: error kinds
        (transient API, task error, slow) are injected per grid row inside
        the chunk, while "crash" — which has to kill a *worker*, not a
        row — is restricted down to the shard runner.
        """
        retry = self.retry if self.retry is not None else self.executor.retry
        faults = self.faults if self.faults is not None else self.executor.faults
        if faults is None:
            return retry, None, None
        spec_faults = faults.restricted(*_SPEC_FAULT_KINDS)
        runner_faults = faults.restricted("crash")
        return (
            retry,
            spec_faults if spec_faults.active else None,
            runner_faults if runner_faults.active else None,
        )

    def _chunks(
        self,
        resolved: Sequence[ScenarioSpec],
        positions: Mapping[str, int],
        retry: RetryPolicy | None,
        faults: FaultPlan | None,
    ) -> list[_SweepChunk]:
        """Partition the pending grid into runner chunks under the executor's plan.

        Without shared builds the chunks cut the grid contiguously (the
        pre-cache behaviour).  With shared builds the grid is first
        regrouped by build fingerprint so chunk boundaries — and hence
        process-pool worker assignments — never split a group more than
        the plan demands, keeping per-worker builds to one per distinct
        (catalog, panel) stage wherever possible.
        """
        if self.share_builds:
            ordered: list[ScenarioSpec] = [
                spec for group in self.build_groups(resolved) for spec in group
            ]
        else:
            ordered = list(resolved)
        return [
            _SweepChunk(
                specs=tuple(ordered[shard.start : shard.stop]),
                share_builds=self.share_builds,
                indices=tuple(
                    positions[spec.name]
                    for spec in ordered[shard.start : shard.stop]
                ),
                retry=retry,
                faults=faults,
                on_error=self.on_error,
            )
            for shard in self.executor.plan(len(ordered))
        ]

    def run(self, specs: Sequence[ScenarioSpec]) -> ResultSet:
        """Run every scenario and reassemble the results in grid order.

        The historical entry point: equivalent to
        ``run_report(specs).results`` (with ``on_error="skip"`` the set is
        partial; inspect :meth:`run_report` for the failure detail).
        """
        return self.run_report(specs).results

    def run_report(
        self,
        specs: Sequence[ScenarioSpec],
        *,
        resume: RunManifest | str | Path | None = None,
        manifest_path: str | Path | None = None,
    ) -> SweepReport:
        """Run the grid with per-spec outcome tracking, optionally resuming.

        With ``resume`` (a :class:`RunManifest` or a path to one saved by
        a previous run), specs whose completed entry matches their
        full-spec fingerprint hydrate from the manifest instead of
        re-running — bit-identical, because the canonical result fields
        round-trip JSON exactly.  With ``manifest_path`` the manifest is
        saved after every finished chunk (atomic write-then-rename), so a
        killed sweep leaves a valid resume point behind; on an aborting
        failure (``on_error="raise"``) the manifest is saved one last
        time before the error propagates.
        """
        resolved = self.resolve(specs)
        if isinstance(resume, (str, Path)):
            resume = RunManifest.load(resume)
        retry, spec_faults, runner_faults = self._fault_split()

        # Record the panel storage layout so a resumed run cannot silently
        # mix columnar- and object-built rows (content is bit-identical,
        # but a mixed run would invalidate performance accounting and any
        # layout-sensitive debugging of the original manifest).
        from ..pipeline import resolve_panel_layout

        layout = resolve_panel_layout()
        if resume is not None:
            stored_layout = resume.notes.get("panel_layout")
            if stored_layout is not None and stored_layout != layout:
                raise ConfigurationError(
                    f"cannot resume a {stored_layout!r}-layout sweep with panel "
                    f"layout {layout!r}; rerun with the original layout or "
                    "start a fresh sweep"
                )

        manifest = RunManifest(
            notes={
                "retry_clock": _retry_clock_note(retry),
                "panel_layout": layout,
            }
        )
        fingerprints = {spec.name: spec.fingerprint() for spec in resolved}
        positions = {spec.name: index for index, spec in enumerate(resolved)}
        pending: list[ScenarioSpec] = []
        for spec in resolved:
            entry = (
                resume.reusable(fingerprints[spec.name], spec.name)
                if resume is not None
                else None
            )
            if entry is not None:
                manifest.record(replace(entry, resumed=True))
            else:
                pending.append(spec)

        live: dict[str, ScenarioResult] = {}
        if pending:
            # The sweep's fault split replaces whatever plan the executor
            # carries, so one configured plan never fires at both layers.
            runner = replace(
                self.executor, retry=retry, faults=runner_faults
            ).runner()
            chunks = self._chunks(pending, positions, retry, spec_faults)
            try:
                for outcomes in runner.stream(_run_scenario_chunk, chunks):
                    for outcome in outcomes:
                        manifest.record(_entry_for(outcome, fingerprints))
                        if outcome.result is not None:
                            live[outcome.scenario] = outcome.result
                    if manifest_path is not None:
                        manifest.save(manifest_path)
            except BaseException:
                if manifest_path is not None:
                    manifest.save(manifest_path)
                raise

        # Reassemble in grid order; under on_error="skip" the set is partial.
        # Freshly run rows keep their live results (``raw`` included);
        # resumed rows hydrate the canonical fields from the manifest.
        ordered = RunManifest(
            (manifest.get(spec.name) for spec in resolved if spec.name in manifest),
            notes=manifest.notes,
        )
        results = ResultSet(
            live.get(entry.scenario) or entry.hydrate()
            for entry in ordered.completed()
        )
        if manifest_path is not None:
            ordered.save(manifest_path)
        return SweepReport(results=results.finalize(), manifest=ordered)


def manifest_path_for(
    specs: Sequence[ScenarioSpec], root: str | Path | None = None
) -> Path:
    """The content-addressed default manifest path for a *resolved* grid.

    Folds sweep manifests into the disk-cache root (explicit ``root`` >
    ``REPRO_CACHE_ROOT`` > ``~/.cache/repro-facebook``, the same
    resolution the artifact tier uses): the path is
    ``<root>/manifests/<digest>.json`` where the digest fingerprints the
    full-spec fingerprints of the grid in order.  The same sweep command
    therefore always maps to the same manifest file — which is what lets
    ``--resume`` with no argument find the manifest a killed run left
    behind, and keeps resume state and artifact hydration in one root.

    ``specs`` must already carry their derived per-row seeds (pass them
    through :meth:`SweepRunner.resolve`); otherwise two sweeps differing
    only in ``--sweep-seed`` would collide on one manifest.
    """
    digest = stable_fingerprint(
        "sweep-manifest", {"specs": [spec.fingerprint() for spec in specs]}
    )
    return resolve_cache_root(root) / "manifests" / f"{digest}.json"


def _retry_clock_note(retry: RetryPolicy | None) -> str:
    """Which clock drove retry backoff: "wall", "sim" or "none".

    Recorded as a manifest note so a resumed or audited run can tell
    whether its retries really slept (jittered wall clock) or elapsed on
    the free simulated clock.
    """
    if retry is None:
        return "none"
    if isinstance(retry, WallClockRetryPolicy):
        return "wall"
    return "sim"


def _entry_for(
    outcome: _SpecOutcome, fingerprints: Mapping[str, str]
) -> ManifestEntry:
    """Translate one chunk outcome into its manifest entry."""
    if outcome.result is not None:
        return ManifestEntry(
            scenario=outcome.scenario,
            fingerprint=fingerprints[outcome.scenario],
            status="completed",
            attempts=outcome.attempts,
            result=outcome.result.to_dict(),
        )
    return ManifestEntry(
        scenario=outcome.scenario,
        fingerprint=fingerprints[outcome.scenario],
        status="failed",
        attempts=outcome.attempts,
        error=outcome.error,
        traceback=outcome.traceback,
    )


def expand_grid(
    base: ScenarioSpec, axes: Mapping[str, Sequence[object]]
) -> tuple[ScenarioSpec, ...]:
    """The cartesian product of ``base`` and the given per-field axes.

    Every grid point is ``base`` with the axis fields replaced and a
    deterministic derived name (``base/field=value/...`` in axis order) —
    ~20 lines of spec turn into an arbitrarily large sweep.  Tuple-valued
    fields accept any sequence; scalar axis values are used as-is.
    """
    if not axes:
        return (base,)
    for field_name in axes:
        if field_name not in ScenarioSpec.__dataclass_fields__:
            raise ConfigurationError(f"unknown scenario field: {field_name!r}")
        if field_name == "name":
            raise ConfigurationError("the name field is derived, not an axis")
    names = list(axes)
    combos = product(*(list(axes[name]) for name in names))
    specs = []
    for combo in combos:
        overrides: dict[str, object] = {}
        suffix_parts = []
        for field_name, value in zip(names, combo):
            if field_name in _TUPLE_FIELDS:
                value = tuple(value)  # type: ignore[arg-type]
                label = ",".join(str(v) for v in value)
            else:
                label = str(value)
            overrides[field_name] = value
            suffix_parts.append(f"{field_name}={label}")
        spec = replace(base, **overrides)
        specs.append(replace(spec, name=f"{base.name}/{'/'.join(suffix_parts)}"))
    return tuple(specs)
