"""Sharded scenario sweeps: a grid of specs fanned over the exec layer.

:class:`SweepRunner` takes an ordered grid of
:class:`~repro.scenarios.spec.ScenarioSpec`\\ s, partitions it with the
executor's :class:`~repro.exec.ExecutionPlan` (one row per scenario) and
runs the chunks on the same :class:`~repro.exec.runner.ShardRunner`
backends as collection — serial, thread pool or process pool (specs are
pure data, so process workers pickle a few primitives and compile their own
simulations).  Per-chunk :class:`~repro.core.results.ResultSet` blocks
merge back in shard order, so the sweep result lists scenarios exactly in
grid order and is **identical** to running every spec directly — each
scenario compiles its own simulation from its own (derived) seed, no state
is shared across grid rows.

:func:`expand_grid` builds the grid: the cartesian product of a base spec
and per-field axes, with deterministic ``name/field=value`` naming that the
per-scenario seed derivation (:meth:`ScenarioSpec.derived`) keys on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import product
from typing import Mapping, Sequence

from ..core.results import ResultSet
from ..errors import ConfigurationError
from ..exec import ShardExecutor
from .experiments import run_scenario
from .spec import ScenarioSpec

#: Tuple-valued spec fields and their element types (grid axis values are
#: coerced on expansion; CLI tokens join elements with "+").
_TUPLE_FIELDS: Mapping[str, type] = {
    "strategies": str,
    "countermeasures": str,
    "probabilities": float,
    "interest_counts": int,
}


def coerce_axis_value(field_name: str, token: str) -> object:
    """Parse one CLI token into the value type of a ScenarioSpec grid axis.

    The single source of truth for ``--grid field=v1,v2`` coercion: tuple
    fields come from :data:`_TUPLE_FIELDS` (elements joined with ``+``),
    scalar fields follow the dataclass annotation, so a new spec field
    needs no CLI-side table update.
    """
    fields = ScenarioSpec.__dataclass_fields__
    if field_name not in fields:
        raise ConfigurationError(f"unknown scenario field: {field_name!r}")
    if field_name in _TUPLE_FIELDS:
        element = _TUPLE_FIELDS[field_name]
        return tuple(element(part) for part in token.split("+"))
    annotation = str(fields[field_name].type)
    if "int" in annotation:
        return int(token)
    if "float" in annotation:
        return float(token)
    return token


def _run_scenario_chunk(specs: tuple[ScenarioSpec, ...]) -> ResultSet:
    """Run one contiguous chunk of the grid (the unit a runner executes)."""
    results = ResultSet()
    for spec in specs:
        results.add(run_scenario(spec))
    return results


@dataclass(frozen=True)
class SweepRunner:
    """Runs a grid of scenarios across a shard-runner backend.

    ``seed`` (when given) derives a deterministic per-scenario seed for
    every spec that does not pin one — ``derive_seed(seed, "scenario",
    name)`` — so re-running the sweep, running a single grid row directly,
    or moving the sweep to another backend or worker count all produce
    bit-identical :class:`~repro.core.results.ResultSet`\\ s.
    """

    executor: ShardExecutor = field(default_factory=ShardExecutor)
    seed: int | None = None

    def resolve(self, specs: Sequence[ScenarioSpec]) -> tuple[ScenarioSpec, ...]:
        """The grid as it will actually run (seeds derived, names checked)."""
        resolved = tuple(
            spec if self.seed is None else spec.derived(self.seed) for spec in specs
        )
        names = [spec.name for spec in resolved]
        if len(set(names)) != len(names):
            raise ConfigurationError("scenario names in a sweep must be unique")
        return resolved

    def run(self, specs: Sequence[ScenarioSpec]) -> ResultSet:
        """Run every scenario and merge the per-chunk results in grid order."""
        resolved = self.resolve(specs)
        if not resolved:
            return ResultSet()
        runner = self.executor.runner()
        chunks = [
            resolved[shard.start : shard.stop]
            for shard in self.executor.plan(len(resolved))
        ]
        merged = ResultSet()
        for block in runner.run(_run_scenario_chunk, chunks):
            merged.merge(block)
        return merged.finalize()


def expand_grid(
    base: ScenarioSpec, axes: Mapping[str, Sequence[object]]
) -> tuple[ScenarioSpec, ...]:
    """The cartesian product of ``base`` and the given per-field axes.

    Every grid point is ``base`` with the axis fields replaced and a
    deterministic derived name (``base/field=value/...`` in axis order) —
    ~20 lines of spec turn into an arbitrarily large sweep.  Tuple-valued
    fields accept any sequence; scalar axis values are used as-is.
    """
    if not axes:
        return (base,)
    for field_name in axes:
        if field_name not in ScenarioSpec.__dataclass_fields__:
            raise ConfigurationError(f"unknown scenario field: {field_name!r}")
        if field_name == "name":
            raise ConfigurationError("the name field is derived, not an axis")
    names = list(axes)
    combos = product(*(list(axes[name]) for name in names))
    specs = []
    for combo in combos:
        overrides: dict[str, object] = {}
        suffix_parts = []
        for field_name, value in zip(names, combo):
            if field_name in _TUPLE_FIELDS:
                value = tuple(value)  # type: ignore[arg-type]
                label = ",".join(str(v) for v in value)
            else:
                label = str(value)
            overrides[field_name] = value
            suffix_parts.append(f"{field_name}={label}")
        spec = replace(base, **overrides)
        specs.append(replace(spec, name=f"{base.name}/{'/'.join(suffix_parts)}"))
    return tuple(specs)
