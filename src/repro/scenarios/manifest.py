"""Run manifests: durable per-spec outcomes for resumable sweeps.

A :class:`RunManifest` records what happened to every
:class:`~repro.scenarios.spec.ScenarioSpec` of a sweep — completed with
its canonical :class:`~repro.core.results.ScenarioResult`, or dead-lettered
with the captured error and traceback — keyed by the spec's full content
fingerprint (:meth:`ScenarioSpec.fingerprint`).  The shape follows the
checkpoint-style stage pipelines of batch frameworks: persist per-unit
results as JSON so a rerun *skips* completed units instead of starting
over.

Resume contract
---------------
:meth:`SweepRunner.run_report <repro.scenarios.sweep.SweepRunner.run_report>`
saves the manifest incrementally (after every finished chunk), so a killed
sweep leaves a loadable manifest behind.  On resume, a recorded result is
only trusted when the stored fingerprint matches the resolved spec
bit-for-bit — edit a spec and its row reruns; leave it alone and the row
hydrates through :meth:`ScenarioResult.from_dict
<repro.core.results.ScenarioResult.from_dict>`, which restores the exact
canonical value (scalars, strings and tuples round-trip JSON losslessly).
A resumed sweep is therefore bit-identical to an undisturbed one — the
property ``tests/test_faults.py`` pins.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Mapping

from ..core.results import ScenarioResult
from ..errors import ConfigurationError

#: Manifest schema version (bumped on incompatible layout changes).
MANIFEST_VERSION = 1

#: The outcome states a manifest entry can record.
ENTRY_STATUSES = ("completed", "failed")


@dataclass(frozen=True)
class ManifestEntry:
    """The recorded outcome of one scenario spec."""

    scenario: str
    #: Full-spec content fingerprint (:meth:`ScenarioSpec.fingerprint`).
    fingerprint: str
    #: "completed" or "failed" (dead-lettered).
    status: str
    #: Attempts observed for this spec (>= 1; > 1 means retries fired).
    attempts: int = 1
    #: One-line error description for dead-lettered specs.
    error: str | None = None
    #: Captured traceback for dead-lettered specs.
    traceback: str | None = None
    #: Canonical result payload (``ScenarioResult.to_dict``) when completed.
    result: Mapping | None = None
    #: True when the entry was hydrated from a prior manifest, not re-run.
    resumed: bool = False

    def __post_init__(self) -> None:
        if self.status not in ENTRY_STATUSES:
            raise ConfigurationError(
                f"unknown manifest status: {self.status!r} "
                f"(expected one of {ENTRY_STATUSES})"
            )
        if self.status == "completed" and self.result is None:
            raise ConfigurationError("a completed entry needs a result payload")
        if self.status == "failed" and self.error is None:
            raise ConfigurationError("a failed entry needs an error description")

    def hydrate(self) -> ScenarioResult:
        """The canonical scenario result this entry recorded."""
        if self.result is None:
            raise ConfigurationError(
                f"scenario {self.scenario!r} dead-lettered, no result to hydrate"
            )
        return ScenarioResult.from_dict(self.result)

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "attempts": self.attempts,
            "error": self.error,
            "traceback": self.traceback,
            "result": dict(self.result) if self.result is not None else None,
            "resumed": self.resumed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ManifestEntry":
        return cls(
            scenario=payload["scenario"],
            fingerprint=payload["fingerprint"],
            status=payload["status"],
            attempts=int(payload.get("attempts", 1)),
            error=payload.get("error"),
            traceback=payload.get("traceback"),
            result=payload.get("result"),
            resumed=bool(payload.get("resumed", False)),
        )


class RunManifest:
    """Ordered per-spec outcomes of one sweep run (insertion = grid order)."""

    def __init__(
        self,
        entries: Iterable[ManifestEntry] = (),
        *,
        notes: Mapping | None = None,
    ) -> None:
        self._entries: dict[str, ManifestEntry] = {}
        self._notes: dict[str, object] = dict(notes or {})
        for entry in entries:
            self.record(entry)

    # -- recording -----------------------------------------------------------------

    def record(self, entry: ManifestEntry) -> "RunManifest":
        """Record (or overwrite) the outcome for one scenario."""
        self._entries[entry.scenario] = entry
        return self

    def annotate(self, key: str, value: object) -> "RunManifest":
        """Attach a run-level note (e.g. which retry clock the sweep used).

        Notes are JSON-scalar metadata about *how* the run was executed —
        they ride along in :meth:`to_dict`/:meth:`save` but never affect
        entry matching or the resume contract.
        """
        self._notes[key] = value
        return self

    @property
    def notes(self) -> dict:
        """Run-level metadata notes (a copy)."""
        return dict(self._notes)

    # -- views ---------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ManifestEntry]:
        return iter(self._entries.values())

    def __contains__(self, scenario: str) -> bool:
        return scenario in self._entries

    def get(self, scenario: str) -> ManifestEntry:
        """The entry for one scenario by name."""
        try:
            return self._entries[scenario]
        except KeyError:
            raise ConfigurationError(
                f"no manifest entry for scenario {scenario!r}"
            ) from None

    def completed(self) -> tuple[ManifestEntry, ...]:
        """Entries that finished with a result, in order."""
        return tuple(e for e in self if e.status == "completed")

    def failures(self) -> tuple[ManifestEntry, ...]:
        """Dead-lettered entries, in order."""
        return tuple(e for e in self if e.status == "failed")

    def counts(self) -> dict[str, int]:
        """Summary counts: total / completed / failed / retried / resumed."""
        return {
            "total": len(self),
            "completed": len(self.completed()),
            "failed": len(self.failures()),
            "retried": sum(1 for e in self if e.attempts > 1),
            "resumed": sum(1 for e in self if e.resumed),
        }

    def reusable(self, fingerprint: str, scenario: str) -> ManifestEntry | None:
        """The completed entry a resumed sweep may trust, if any.

        Matching is on the *full-spec* fingerprint and the name: a spec
        edited between runs changes its fingerprint and reruns; a renamed
        spec reruns too (names key result sets, so reuse under a new name
        would fabricate a row the recorded run never produced).
        """
        entry = self._entries.get(scenario)
        if (
            entry is not None
            and entry.status == "completed"
            and entry.fingerprint == fingerprint
        ):
            return entry
        return None

    # -- persistence ---------------------------------------------------------------

    def to_dict(self) -> dict:
        payload = {
            "version": MANIFEST_VERSION,
            "entries": [entry.to_dict() for entry in self],
        }
        if self._notes:
            payload["notes"] = dict(self._notes)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RunManifest":
        version = payload.get("version")
        if version != MANIFEST_VERSION:
            raise ConfigurationError(
                f"unsupported manifest version: {version!r} "
                f"(expected {MANIFEST_VERSION})"
            )
        entries = payload.get("entries")
        if not isinstance(entries, list):
            raise ConfigurationError("manifest 'entries' must be a list")
        return cls(
            (ManifestEntry.from_dict(entry) for entry in entries),
            notes=payload.get("notes"),
        )

    def save(self, path: str | Path) -> Path:
        """Write the manifest as JSON (atomically: write-then-rename)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        tmp.replace(path)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        """Read a manifest saved by :meth:`save`."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except OSError as error:
            raise ConfigurationError(f"cannot read manifest: {error}") from error
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"manifest {path} is not valid JSON: {error}"
            ) from error
        if not isinstance(payload, Mapping):
            raise ConfigurationError("a manifest must be a JSON object")
        return cls.from_dict(payload)
