"""Bootstrap confidence intervals for the N_P cutpoints.

The paper assesses the uncertainty of its cutpoint estimates by repeating
the aggregation and fit over 10,000 bootstrap resamples of the panel and
reporting the 95% confidence interval.  The resampling is done over *users*
(rows of the sample matrix), which keeps the per-user correlation across N
values intact.

Batch kernel design
-------------------
A paper-scale bootstrap is 10,000 resamples x several quantiles, which the
original implementation evaluated with one ``nanpercentile`` and one SVD
least-squares fit per replicate in a Python loop.  :func:`bootstrap_cutpoints`
now draws the resample index matrices in bulk (one generator call per
chunk — stream-identical to a single up-front draw), gathers
and reduces the replicates in memory-bounded chunks (one sort-based
:func:`~repro.core.quantiles.masked_column_quantiles` pass per chunk — bit-
identical to per-replicate ``nanpercentile`` without its per-slice Python
dispatch — with O(chunk * users * N) transient memory), and fits every
replicate of a chunk at once with :func:`~repro.core.fitting.fit_vas_many` —
closed-form masked least squares across rows, no per-replicate Python work.  Replicates
whose fit would fail (degenerate resample, non-positive slope) surface as
``NaN`` exactly like the scalar loop did.

Streaming support
-----------------
:func:`bootstrap_cutpoints` reads its input through the row-gather
interface (``samples.take_rows`` plus the ``n_users`` / ``max_interests`` /
``floor`` views) shared by the dense :class:`~repro.core.quantiles.AudienceSamples`
and the streamed :class:`~repro.core.quantiles.StreamedAudienceSamples`
column store, so the whole collection → quantiles → bootstrap chain can run
off accumulated per-shard blocks without ever materialising the users x N
matrix.  Both stores gather bit-identical resample stacks, hence
bit-identical cutpoint distributions.

Sharded execution
-----------------
With an ``executor`` (:class:`~repro.exec.ShardExecutor`), the replicate
chunks fan out across the same :class:`~repro.exec.runner.ShardRunner`
backends as collection: the index matrices are still drawn sequentially
from one generator (so the draw stream — and hence every cutpoint — is
bit-identical for every backend, worker count and chunk size), only the
pure per-chunk gather + quantile + fit work runs on the runner, and chunk
results are reassembled in draw order.  The sharded route materialises all
index chunks up front (``n_bootstrap × n_users`` int64), which the serial
route avoids by drawing and discarding per chunk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._rng import SeedLike, as_generator
from ..errors import ModelError
from ..exec import ShardExecutor
from .fitting import fit_vas_many
from .quantiles import (
    AudienceSamples,
    StreamedAudienceSamples,
    masked_column_quantiles,
)

#: Target transient-buffer size (floats) when chunking bootstrap replicates.
_CHUNK_BUDGET = 4_000_000


@dataclass(frozen=True, slots=True)
class ConfidenceInterval:
    """A two-sided percentile confidence interval."""

    low: float
    high: float
    level: float

    def __post_init__(self) -> None:
        if not 0.0 < self.level < 1.0:
            raise ModelError("confidence level must lie in (0, 1)")
        if self.high < self.low:
            raise ModelError("interval upper bound must be >= lower bound")

    @property
    def width(self) -> float:
        """Width of the interval."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """True if ``value`` falls inside the interval (inclusive)."""
        return self.low <= value <= self.high


def percentile_interval(values: Sequence[float], level: float) -> ConfidenceInterval:
    """Percentile bootstrap interval over a sample of estimates."""
    array = np.asarray(list(values), dtype=float)
    array = array[np.isfinite(array)]
    if array.size == 0:
        raise ModelError("cannot build a confidence interval from no finite values")
    tail = (1.0 - level) / 2.0 * 100.0
    low, high = np.percentile(array, [tail, 100.0 - tail])
    return ConfidenceInterval(low=float(low), high=float(high), level=level)


@dataclass(frozen=True)
class _BootstrapChunkTask:
    """One replicate chunk: the sample store, quantiles and drawn indices."""

    samples: AudienceSamples | StreamedAudienceSamples
    q_percents: tuple[float, ...]
    indices: np.ndarray


def _run_bootstrap_chunk(task: _BootstrapChunkTask) -> np.ndarray:
    """Gather, quantile and fit one chunk; returns a (n_q, chunk) array.

    Pure compute over inputs fixed at draw time — chunk results do not
    depend on which worker (or process) evaluates them, which is what keeps
    the sharded bootstrap bit-identical across backends and worker counts.
    """
    resampled = task.samples.take_rows(task.indices)
    with np.errstate(all="ignore"):
        vas_rows = masked_column_quantiles(resampled, task.q_percents)
    return np.stack(
        [
            fit_vas_many(replicate_rows, task.samples.floor).cutpoints
            for replicate_rows in vas_rows
        ]
    )


def bootstrap_cutpoints(
    samples: AudienceSamples | StreamedAudienceSamples,
    q_percents: Sequence[float],
    *,
    n_bootstrap: int,
    seed: SeedLike = None,
    chunk_size: int | None = None,
    executor: ShardExecutor | None = None,
) -> dict[float, np.ndarray]:
    """Bootstrap distributions of the N_P cutpoint for several quantiles.

    Returns a mapping from each requested percentile to the array of
    cutpoints obtained across ``n_bootstrap`` resamples.  Replicates whose
    fit fails (e.g. a degenerate resample) contribute ``NaN`` and are
    ignored by :func:`percentile_interval`.

    The resample index matrices are drawn in bulk (one generator call per
    chunk, stream-identical to a single up-front draw) and the replicate
    quantiles and log-log fits are evaluated in vectorised chunks
    (``chunk_size`` replicates at a time, sized automatically to bound
    transient memory when not given; an ``executor`` with an explicit
    ``shard_size`` overrides the automatic sizing).  With ``executor`` the
    chunks run on its :class:`~repro.exec.runner.ShardRunner` backend —
    results are bit-identical for every backend, worker count and chunk
    size because the draws happen before dispatch and each chunk's
    computation is chunk-local.
    """
    if n_bootstrap < 1:
        raise ModelError("n_bootstrap must be >= 1")
    rng = as_generator(seed)
    qs = tuple(float(q) for q in q_percents)
    n_users, width = samples.n_users, samples.max_interests
    if chunk_size is None:
        if executor is not None and executor.shard_size is not None:
            chunk_size = executor.shard_size
        else:
            chunk_size = max(
                1, min(n_bootstrap, _CHUNK_BUDGET // max(1, n_users * width))
            )
    results = {q: np.empty(n_bootstrap, dtype=float) for q in qs}
    starts = range(0, n_bootstrap, chunk_size)
    # Drawing per chunk keeps peak memory O(chunk); the concatenated
    # stream is identical to one up-front (n_bootstrap, n_users) draw,
    # so results do not depend on the chunk size.
    if executor is None:
        for start in starts:
            count = min(chunk_size, n_bootstrap - start)
            chunk = rng.integers(0, n_users, size=(count, n_users))
            cutpoints = _run_bootstrap_chunk(
                _BootstrapChunkTask(samples=samples, q_percents=qs, indices=chunk)
            )
            for q, row in zip(qs, cutpoints):
                results[q][start : start + chunk.shape[0]] = row
        return results
    # Sharded route: draw every chunk first (sequentially, preserving the
    # stream), then fan the pure chunk work out to the runner and reassemble
    # in draw order.
    tasks = [
        _BootstrapChunkTask(
            samples=samples,
            q_percents=qs,
            indices=rng.integers(
                0, n_users, size=(min(chunk_size, n_bootstrap - start), n_users)
            ),
        )
        for start in starts
    ]
    for start, cutpoints in zip(starts, executor.runner().run(_run_bootstrap_chunk, tasks)):
        for q, row in zip(qs, cutpoints):
            results[q][start : start + row.size] = row
    return results
