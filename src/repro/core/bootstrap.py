"""Bootstrap confidence intervals for the N_P cutpoints.

The paper assesses the uncertainty of its cutpoint estimates by repeating
the aggregation and fit over 10,000 bootstrap resamples of the panel and
reporting the 95% confidence interval.  The resampling is done over *users*
(rows of the sample matrix), which keeps the per-user correlation across N
values intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._rng import SeedLike, as_generator
from ..errors import ModelError
from .fitting import fit_vas
from .quantiles import AudienceSamples


@dataclass(frozen=True, slots=True)
class ConfidenceInterval:
    """A two-sided percentile confidence interval."""

    low: float
    high: float
    level: float

    def __post_init__(self) -> None:
        if not 0.0 < self.level < 1.0:
            raise ModelError("confidence level must lie in (0, 1)")
        if self.high < self.low:
            raise ModelError("interval upper bound must be >= lower bound")

    @property
    def width(self) -> float:
        """Width of the interval."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """True if ``value`` falls inside the interval (inclusive)."""
        return self.low <= value <= self.high


def percentile_interval(values: Sequence[float], level: float) -> ConfidenceInterval:
    """Percentile bootstrap interval over a sample of estimates."""
    array = np.asarray(list(values), dtype=float)
    array = array[np.isfinite(array)]
    if array.size == 0:
        raise ModelError("cannot build a confidence interval from no finite values")
    tail = (1.0 - level) / 2.0 * 100.0
    low, high = np.percentile(array, [tail, 100.0 - tail])
    return ConfidenceInterval(low=float(low), high=float(high), level=level)


def bootstrap_cutpoints(
    samples: AudienceSamples,
    q_percents: Sequence[float],
    *,
    n_bootstrap: int,
    seed: SeedLike = None,
) -> dict[float, np.ndarray]:
    """Bootstrap distributions of the N_P cutpoint for several quantiles.

    Returns a mapping from each requested percentile to the array of
    cutpoints obtained across ``n_bootstrap`` resamples.  Replicates whose
    fit fails (e.g. a degenerate resample) contribute ``NaN`` and are
    ignored by :func:`percentile_interval`.
    """
    if n_bootstrap < 1:
        raise ModelError("n_bootstrap must be >= 1")
    rng = as_generator(seed)
    qs = [float(q) for q in q_percents]
    results: dict[float, list[float]] = {q: [] for q in qs}
    matrix = samples.matrix
    n_users = samples.n_users
    for _ in range(n_bootstrap):
        indices = rng.integers(0, n_users, size=n_users)
        resampled = matrix[indices]
        with np.errstate(all="ignore"):
            vas_rows = np.nanpercentile(resampled, qs, axis=0)
        vas_rows = np.atleast_2d(vas_rows)
        for q, vas in zip(qs, vas_rows):
            try:
                fit = fit_vas(vas, samples.floor)
                results[q].append(fit.cutpoint)
            except ModelError:
                results[q].append(float("nan"))
    return {q: np.asarray(values, dtype=float) for q, values in results.items()}
