"""Interest-selection strategies (Section 4.2).

The number of interests that make a user unique depends heavily on *which*
of their interests are combined.  The paper studies two strategies:

* **Least popular (LP)** — the attacker knows the user's full interest list
  and picks the rarest ones first; this yields the theoretical lower bound
  on uniqueness.
* **Random (R)** — the attacker knows a random subset of the user's
  interests, the realistic attack scenario used in the nanotargeting
  experiment.

Both strategies return a single *ordered* list per user whose length-``N``
prefixes are the combinations evaluated for each ``N``; this mirrors the
paper's construction, where interests are added one by one ("we keep adding
the following least popular interests sequentially one by one").
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from .._rng import SeedLike, as_generator, derive_generator, stable_hash
from ..catalog import InterestCatalog
from ..errors import ModelError
from ..population.user import SyntheticUser


@runtime_checkable
class SelectionStrategy(Protocol):
    """Orders a user's interests for incremental combination."""

    #: Short name used in reports ("least_popular" or "random").
    name: str

    def order_interests(
        self, user: SyntheticUser, catalog: InterestCatalog, max_interests: int
    ) -> tuple[int, ...]:
        """Return up to ``max_interests`` interest ids in combination order."""
        ...  # pragma: no cover - protocol definition


class LeastPopularSelection:
    """Selects the user's rarest interests first."""

    name = "least_popular"

    def order_interests(
        self, user: SyntheticUser, catalog: InterestCatalog, max_interests: int
    ) -> tuple[int, ...]:
        """Rarest interests of the user, ascending by worldwide audience."""
        if max_interests < 1:
            raise ModelError("max_interests must be >= 1")
        audiences = [(catalog.audience_size(i), i) for i in user.interest_ids]
        audiences.sort()
        return tuple(interest_id for _, interest_id in audiences[:max_interests])


class RandomSelection:
    """Selects a random subset of the user's interests.

    Each user gets an independent, deterministic shuffle derived from the
    strategy seed and the user id, so that repeated runs reproduce the same
    combinations (and so that bootstrapping over users stays meaningful).
    """

    name = "random"

    def __init__(self, seed: SeedLike = None) -> None:
        rng = as_generator(seed)
        self._base_seed = int(rng.integers(0, 2**62))

    def order_interests(
        self, user: SyntheticUser, catalog: InterestCatalog, max_interests: int
    ) -> tuple[int, ...]:
        """A random permutation of the user's interests, truncated."""
        if max_interests < 1:
            raise ModelError("max_interests must be >= 1")
        rng = derive_generator(self._base_seed, "random-selection", user.user_id)
        interests = np.array(user.interest_ids, dtype=np.int64)
        rng.shuffle(interests)
        return tuple(int(i) for i in interests[:max_interests])


def nested_subsets(
    ordered_interests: Sequence[int], sizes: Sequence[int]
) -> dict[int, tuple[int, ...]]:
    """Build the nested interest sets used by the nanotargeting experiment.

    The paper builds its 22-interest campaign from a random selection and
    derives the 20-, 18-, 12-, 9-, 7- and 5-interest campaigns by removing
    interests from the previous set; equivalently, every campaign uses a
    prefix of one ordered list.  Sizes larger than the available list raise.
    """
    ordered = tuple(int(i) for i in ordered_interests)
    if len(set(ordered)) != len(ordered):
        raise ModelError("ordered_interests must not contain duplicates")
    subsets: dict[int, tuple[int, ...]] = {}
    for size in sizes:
        if size < 1:
            raise ModelError("subset sizes must be positive")
        if size > len(ordered):
            raise ModelError(
                f"cannot build a subset of {size} interests from only {len(ordered)}"
            )
        subsets[int(size)] = ordered[:size]
    return subsets


def strategy_fingerprint(strategy: SelectionStrategy) -> int:
    """A stable fingerprint used to cache collections per strategy."""
    return stable_hash(type(strategy).__name__, getattr(strategy, "name", ""))
