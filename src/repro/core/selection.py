"""Interest-selection strategies (Section 4.2).

The number of interests that make a user unique depends heavily on *which*
of their interests are combined.  The paper studies two strategies:

* **Least popular (LP)** — the attacker knows the user's full interest list
  and picks the rarest ones first; this yields the theoretical lower bound
  on uniqueness.
* **Random (R)** — the attacker knows a random subset of the user's
  interests, the realistic attack scenario used in the nanotargeting
  experiment.

Both strategies return a single *ordered* list per user whose length-``N``
prefixes are the combinations evaluated for each ``N``; this mirrors the
paper's construction, where interests are added one by one ("we keep adding
the following least popular interests sequentially one by one").

For panel-scale collection, :func:`ordered_interest_matrix` resolves every
user's ordered ids into one padded ``(n_users, width)`` id matrix.  A
strategy may provide a vectorised ``order_interests_matrix`` (the
least-popular strategy orders all users in a single global sort over
id-indexed catalog popularity arrays); otherwise the per-user
``order_interests`` is looped, so any strategy is panel-capable and every
row is bit-identical to the scalar ordering either way.

Columnar panels skip the user objects entirely:
:func:`ordered_interest_matrix_columns` reads a row range straight out of a
:class:`~repro.population.columnar.PanelColumns` CSR store.  The
least-popular core is shared flat-array code either way, and the random
strategy shuffles each CSR row slice with the same per-user-id stream the
object path derives, so the produced matrices are bit-identical across
layouts.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from .._rng import SeedLike, as_generator, derive_generator, stable_hash
from ..catalog import InterestCatalog
from ..errors import ModelError
from ..population.columnar import PanelColumns
from ..population.user import SyntheticUser


@runtime_checkable
class SelectionStrategy(Protocol):
    """Orders a user's interests for incremental combination."""

    #: Short name used in reports ("least_popular" or "random").
    name: str

    def order_interests(
        self, user: SyntheticUser, catalog: InterestCatalog, max_interests: int
    ) -> tuple[int, ...]:
        """Return up to ``max_interests`` interest ids in combination order."""
        ...  # pragma: no cover - protocol definition


class LeastPopularSelection:
    """Selects the user's rarest interests first."""

    name = "least_popular"

    def order_interests(
        self, user: SyntheticUser, catalog: InterestCatalog, max_interests: int
    ) -> tuple[int, ...]:
        """Rarest interests of the user, ascending by worldwide audience."""
        if max_interests < 1:
            raise ModelError("max_interests must be >= 1")
        audiences = [(catalog.audience_size(i), i) for i in user.interest_ids]
        audiences.sort()
        return tuple(interest_id for _, interest_id in audiences[:max_interests])

    def order_interests_matrix(
        self,
        users: Sequence[SyntheticUser],
        catalog: InterestCatalog,
        max_interests: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`order_interests` over a whole panel.

        All users' interest ids are resolved against the catalog's
        id-indexed audience array with one ``searchsorted`` and ordered with
        one global ``lexsort`` keyed ``(row, audience, id)`` — the same
        ``(audience, id)`` ascending order the scalar tuple sort produces,
        so every row is bit-identical to the per-user path.  Returns the
        padded id matrix and per-user counts (see
        :func:`ordered_interest_matrix` for the layout).
        """
        if max_interests < 1:
            raise ModelError("max_interests must be >= 1")
        full_counts = np.array([user.interest_count for user in users], dtype=np.int64)
        total = int(full_counts.sum())
        flat_ids = np.fromiter(
            (i for user in users for i in user.interest_ids),
            dtype=np.int64,
            count=total,
        )
        return _order_least_popular_flat(flat_ids, full_counts, catalog, max_interests)

    def order_interests_matrix_columns(
        self,
        columns: PanelColumns,
        catalog: InterestCatalog,
        max_interests: int,
        start: int = 0,
        stop: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised ordering over rows ``[start, stop)`` of a CSR store.

        The flat id fragment and per-row lengths come straight off the CSR
        arrays — no user objects — and feed the same global-sort core as
        :meth:`order_interests_matrix`.
        """
        if max_interests < 1:
            raise ModelError("max_interests must be >= 1")
        stop = len(columns) if stop is None else stop
        flat_ids = columns.interest_ids[
            columns.indptr[start] : columns.indptr[stop]
        ].astype(np.int64)
        full_counts = np.diff(columns.indptr[start : stop + 1])
        return _order_least_popular_flat(flat_ids, full_counts, catalog, max_interests)


class RandomSelection:
    """Selects a random subset of the user's interests.

    Each user gets an independent, deterministic shuffle derived from the
    strategy seed and the user id, so that repeated runs reproduce the same
    combinations (and so that bootstrapping over users stays meaningful).
    """

    name = "random"

    def __init__(self, seed: SeedLike = None) -> None:
        rng = as_generator(seed)
        self._base_seed = int(rng.integers(0, 2**62))

    def order_interests(
        self, user: SyntheticUser, catalog: InterestCatalog, max_interests: int
    ) -> tuple[int, ...]:
        """A random permutation of the user's interests, truncated."""
        if max_interests < 1:
            raise ModelError("max_interests must be >= 1")
        rng = derive_generator(self._base_seed, "random-selection", user.user_id)
        interests = np.array(user.interest_ids, dtype=np.int64)
        rng.shuffle(interests)
        return tuple(int(i) for i in interests[:max_interests])

    def order_interests_matrix_columns(
        self,
        columns: PanelColumns,
        catalog: InterestCatalog,
        max_interests: int,
        start: int = 0,
        stop: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-row shuffles over rows ``[start, stop)`` of a CSR store.

        Each row's slice is copied to int64 and shuffled with the stream
        derived from its user id — the draw sequence depends only on the
        row length, so it matches the object path's list shuffle exactly.
        """
        if max_interests < 1:
            raise ModelError("max_interests must be >= 1")
        stop = len(columns) if stop is None else stop
        full_counts = np.diff(columns.indptr[start : stop + 1])
        counts = np.minimum(full_counts, max_interests)
        flat_parts: list[np.ndarray] = []
        for row in range(start, stop):
            rng = derive_generator(
                self._base_seed, "random-selection", int(columns.user_ids[row])
            )
            interests = columns.interest_row(row).astype(np.int64)
            rng.shuffle(interests)
            flat_parts.append(interests)
        flat_sorted = (
            np.concatenate(flat_parts) if flat_parts else np.zeros(0, dtype=np.int64)
        )
        return _pack_ordered_rows(flat_sorted, full_counts, counts)


def _order_least_popular_flat(
    flat_ids: np.ndarray,
    full_counts: np.ndarray,
    catalog: InterestCatalog,
    max_interests: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Global least-popular sort of concatenated per-user id segments.

    The shared core of both least-popular bulk paths: resolve every id
    against the catalog's id-indexed audience array with one
    ``searchsorted``, order with one ``lexsort`` keyed ``(row, audience,
    id)``, and pack the leading ``max_interests`` of each segment.
    """
    sorted_ids = catalog.interest_ids
    positions = np.searchsorted(sorted_ids, flat_ids)
    positions = np.minimum(positions, len(sorted_ids) - 1)
    mismatched = sorted_ids[positions] != flat_ids
    if mismatched.any():
        # Defer to the scalar path's error for the first offending id.
        catalog.get(int(flat_ids[np.argmax(mismatched)]))
    flat_audiences = catalog.all_audience_sizes()[positions]
    row_index = np.repeat(np.arange(len(full_counts)), full_counts)
    order = np.lexsort((flat_ids, flat_audiences, row_index))
    flat_sorted = flat_ids[order]
    counts = np.minimum(full_counts, max_interests)
    return _pack_ordered_rows(flat_sorted, full_counts, counts)


def _pack_ordered_rows(
    flat_sorted: np.ndarray, full_counts: np.ndarray, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gather the first ``counts[u]`` entries of each user's sorted segment.

    ``flat_sorted`` concatenates every user's fully ordered interest ids
    (segment ``u`` has length ``full_counts[u]``); the result is the padded
    ``(n_users, width)`` matrix of the leading ``counts[u]`` ids per row,
    padded with ``-1``.
    """
    n_users = len(full_counts)
    width = int(counts.max()) if n_users else 0
    matrix = np.full((n_users, width), -1, dtype=np.int64)
    if width:
        starts = np.concatenate(([0], np.cumsum(full_counts[:-1])))
        columns = np.arange(width)[None, :]
        valid = columns < counts[:, None]
        matrix[valid] = flat_sorted[(starts[:, None] + columns)[valid]]
    return matrix, counts


def pad_id_rows(rows: Sequence[Sequence[int]]) -> tuple[np.ndarray, np.ndarray]:
    """Pack ragged ordered id rows into the padded bulk-kernel layout.

    Returns ``(id_matrix, counts)`` in the convention every bulk kernel
    consumes (``-1`` padding, ``width = max(counts)``; see
    :func:`ordered_interest_matrix`).  This is the entry point for callers
    whose rows are already ordered — the countermeasure workload evaluation
    and the nanotargeting planner — so the padding convention lives in one
    place.
    """
    counts = np.array([len(row) for row in rows], dtype=np.int64)
    flat = np.fromiter(
        (int(i) for row in rows for i in row),
        dtype=np.int64,
        count=int(counts.sum()),
    )
    return _pack_ordered_rows(flat, counts, counts)


def ordered_interest_matrix(
    strategy: SelectionStrategy,
    users: Sequence[SyntheticUser],
    catalog: InterestCatalog,
    max_interests: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Ordered interest ids of every user as one padded id matrix.

    Returns ``(id_matrix, counts)`` where ``id_matrix`` is a
    ``(n_users, width)`` int64 matrix (``width = max(counts)``, capped at
    ``max_interests``), row ``u`` holds
    ``strategy.order_interests(users[u], catalog, max_interests)`` in its
    first ``counts[u]`` cells and ``-1`` padding beyond.  Strategies with a
    vectorised ``order_interests_matrix`` (least popular) resolve the whole
    panel in one pass; other strategies fall back to looping the scalar
    ordering — rows are bit-identical either way.
    """
    if max_interests < 1:
        raise ModelError("max_interests must be >= 1")
    panel_order = getattr(strategy, "order_interests_matrix", None)
    if panel_order is not None:
        return panel_order(users, catalog, max_interests)
    ordered_rows = [
        strategy.order_interests(user, catalog, max_interests) for user in users
    ]
    counts = np.array([len(row) for row in ordered_rows], dtype=np.int64)
    flat_sorted = np.fromiter(
        (i for row in ordered_rows for i in row),
        dtype=np.int64,
        count=int(counts.sum()),
    )
    return _pack_ordered_rows(flat_sorted, counts, counts)


def ordered_interest_matrix_columns(
    strategy: SelectionStrategy,
    columns: PanelColumns,
    catalog: InterestCatalog,
    max_interests: int,
    start: int = 0,
    stop: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Ordered id matrix for rows ``[start, stop)`` of a CSR store.

    The columnar counterpart of :func:`ordered_interest_matrix`: built-in
    strategies consume the CSR slice directly via
    ``order_interests_matrix_columns``; a strategy without that hook gets
    its protocol users materialised row by row and the result is identical
    (the per-row orderings do not depend on the storage layout).
    """
    if max_interests < 1:
        raise ModelError("max_interests must be >= 1")
    stop = len(columns) if stop is None else stop
    column_order = getattr(strategy, "order_interests_matrix_columns", None)
    if column_order is not None:
        return column_order(columns, catalog, max_interests, start, stop)
    ordered_rows = [
        strategy.order_interests(columns.user_at(row), catalog, max_interests)
        for row in range(start, stop)
    ]
    counts = np.array([len(row) for row in ordered_rows], dtype=np.int64)
    flat_sorted = np.fromiter(
        (i for row in ordered_rows for i in row),
        dtype=np.int64,
        count=int(counts.sum()),
    )
    return _pack_ordered_rows(flat_sorted, counts, counts)


def nested_subsets(
    ordered_interests: Sequence[int], sizes: Sequence[int]
) -> dict[int, tuple[int, ...]]:
    """Build the nested interest sets used by the nanotargeting experiment.

    The paper builds its 22-interest campaign from a random selection and
    derives the 20-, 18-, 12-, 9-, 7- and 5-interest campaigns by removing
    interests from the previous set; equivalently, every campaign uses a
    prefix of one ordered list.  Sizes larger than the available list raise.
    """
    ordered = tuple(int(i) for i in ordered_interests)
    if len(set(ordered)) != len(ordered):
        raise ModelError("ordered_interests must not contain duplicates")
    subsets: dict[int, tuple[int, ...]] = {}
    for size in sizes:
        if size < 1:
            raise ModelError("subset sizes must be positive")
        if size > len(ordered):
            raise ModelError(
                f"cannot build a subset of {size} interests from only {len(ordered)}"
            )
        subsets[int(size)] = ordered[:size]
    return subsets


def strategy_fingerprint(strategy: SelectionStrategy) -> int:
    """A stable fingerprint used to cache collections per strategy."""
    return stable_hash(type(strategy).__name__, getattr(strategy, "name", ""))
