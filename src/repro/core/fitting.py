"""Log-log fitting of VAS(Q) and the N_P cutpoint.

The paper fits every quantile vector with

    log10(VAS(Q)) ~ -A * log10(N + 1) + B

and defines ``N_P`` as the number of interests at which the regression line
crosses an audience size of one, i.e. ``N_P = 10^(B/A) - 1``.

Because the Ads API never reports audiences below its floor (20 users in the
2017 dataset), the empirical VAS(Q) flattens at the floor.  The paper keeps
the *first* floored point and drops the rest, making the estimate
conservative but robust to the floor value — the same rule is applied here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InsufficientDataError, ModelError


@dataclass(frozen=True, slots=True)
class LogLogFit:
    """Result of fitting ``log10(VAS) = B - A * log10(N + 1)``."""

    slope_a: float
    intercept_b: float
    r_squared: float
    n_points: int

    def __post_init__(self) -> None:
        if self.n_points < 2:
            raise ModelError("a fit needs at least two points")

    @property
    def cutpoint(self) -> float:
        """``N_P``: the interest count at which the fit crosses audience = 1."""
        if self.slope_a <= 0:
            raise ModelError("the fitted slope must be positive to define a cutpoint")
        return float(10.0 ** (self.intercept_b / self.slope_a) - 1.0)

    def predict(self, n_interests: float) -> float:
        """Predicted audience size for ``n_interests`` combined interests."""
        if n_interests < 0:
            raise ModelError("n_interests must be non-negative")
        return float(
            10.0 ** (self.intercept_b - self.slope_a * np.log10(n_interests + 1.0))
        )

    def predict_many(self, n_interests: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`predict`."""
        n = np.asarray(n_interests, dtype=float)
        return 10.0 ** (self.intercept_b - self.slope_a * np.log10(n + 1.0))


def truncate_at_floor(vas: np.ndarray, floor: int) -> np.ndarray:
    """Keep VAS points up to and including the first floored value.

    Values after the first one that reaches the reporting floor carry no
    information (the API would have reported the floor regardless of the
    true audience), so they are excluded from the fit.  NaN entries (N
    values with no samples) are also trimmed.
    """
    values = np.asarray(vas, dtype=float)
    valid = ~np.isnan(values)
    if not valid.all():
        first_invalid = int(np.argmax(~valid)) if (~valid).any() else values.size
        values = values[:first_invalid]
    at_floor = np.nonzero(values <= floor + 1e-9)[0]
    if at_floor.size == 0:
        return values
    return values[: int(at_floor[0]) + 1]


def fit_vas(vas: np.ndarray, floor: int) -> LogLogFit:
    """Fit the log-log model to one VAS(Q) vector.

    ``vas[k]`` must hold the quantile for ``N = k + 1`` interests.
    """
    if floor < 1:
        raise ModelError("floor must be at least 1")
    values = truncate_at_floor(vas, floor)
    if values.size < 2:
        raise InsufficientDataError(
            "fewer than two usable VAS points remain after floor truncation"
        )
    if np.any(values <= 0):
        raise ModelError("audience sizes must be positive to fit in log space")
    n_values = np.arange(1, values.size + 1, dtype=float)
    x = np.log10(n_values + 1.0)
    y = np.log10(values)
    design = np.column_stack([-x, np.ones_like(x)])
    coefficients, _, _, _ = np.linalg.lstsq(design, y, rcond=None)
    slope_a, intercept_b = float(coefficients[0]), float(coefficients[1])
    predicted = design @ coefficients
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 if ss_tot == 0 else max(0.0, 1.0 - ss_res / ss_tot)
    return LogLogFit(
        slope_a=slope_a,
        intercept_b=intercept_b,
        r_squared=r_squared,
        n_points=int(values.size),
    )
