"""Log-log fitting of VAS(Q) and the N_P cutpoint.

The paper fits every quantile vector with

    log10(VAS(Q)) ~ -A * log10(N + 1) + B

and defines ``N_P`` as the number of interests at which the regression line
crosses an audience size of one, i.e. ``N_P = 10^(B/A) - 1``.

Because the Ads API never reports audiences below its floor (20 users in the
2017 dataset), the empirical VAS(Q) flattens at the floor.  The paper keeps
the *first* floored point and drops the rest, making the estimate
conservative but robust to the floor value — the same rule is applied here.

Both the scalar :func:`fit_vas` and the batched :func:`fit_vas_many` solve
the two-parameter least-squares problem in closed form (masked moment sums
per row, one elementwise solve), so a 10k-replicate bootstrap is a handful
of array operations instead of 10k SVD calls — and the scalar path, which
delegates to the batched kernel with a single row, returns bit-identical
coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InsufficientDataError, ModelError


@dataclass(frozen=True, slots=True)
class LogLogFit:
    """Result of fitting ``log10(VAS) = B - A * log10(N + 1)``."""

    slope_a: float
    intercept_b: float
    r_squared: float
    n_points: int

    def __post_init__(self) -> None:
        if self.n_points < 2:
            raise ModelError("a fit needs at least two points")

    @property
    def cutpoint(self) -> float:
        """``N_P``: the interest count at which the fit crosses audience = 1."""
        if self.slope_a <= 0:
            raise ModelError("the fitted slope must be positive to define a cutpoint")
        # Evaluated through the numpy power ufunc so the scalar cutpoint is
        # bit-identical to the batched :func:`fit_vas_many` computation.
        return float(np.power(10.0, self.intercept_b / self.slope_a) - 1.0)

    def predict(self, n_interests: float) -> float:
        """Predicted audience size for ``n_interests`` combined interests."""
        if n_interests < 0:
            raise ModelError("n_interests must be non-negative")
        return float(
            10.0 ** (self.intercept_b - self.slope_a * np.log10(n_interests + 1.0))
        )

    def predict_many(self, n_interests: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`predict`."""
        n = np.asarray(n_interests, dtype=float)
        return 10.0 ** (self.intercept_b - self.slope_a * np.log10(n + 1.0))


@dataclass(frozen=True, slots=True)
class VASFitBatch:
    """Per-row results of :func:`fit_vas_many`.

    Rows whose fit is undefined (fewer than two usable points after floor
    truncation, a non-positive audience, or a non-positive slope for the
    cutpoint) carry ``NaN`` in the corresponding entries instead of raising
    like the scalar path does.
    """

    slope_a: np.ndarray
    intercept_b: np.ndarray
    r_squared: np.ndarray
    n_points: np.ndarray
    cutpoints: np.ndarray

    @property
    def n_fits(self) -> int:
        """Number of fitted rows."""
        return int(self.slope_a.size)


def truncate_at_floor(vas: np.ndarray, floor: int) -> np.ndarray:
    """Keep VAS points up to and including the first floored value.

    Values after the first one that reaches the reporting floor carry no
    information (the API would have reported the floor regardless of the
    true audience), so they are excluded from the fit.  NaN entries (N
    values with no samples) are also trimmed.
    """
    values = np.asarray(vas, dtype=float)
    valid = ~np.isnan(values)
    if not valid.all():
        values = values[: int(np.argmax(~valid))]
    at_floor = np.nonzero(values <= floor + 1e-9)[0]
    if at_floor.size == 0:
        return values
    return values[: int(at_floor[0]) + 1]


def fit_vas_many(vas_rows: np.ndarray, floor: int) -> VASFitBatch:
    """Fit the log-log model to many VAS vectors at once.

    ``vas_rows[r, k]`` must hold the quantile of replicate ``r`` for
    ``N = k + 1`` interests.  Floor truncation, the masked least-squares
    solve and the cutpoint formula are evaluated with row-wise array
    operations — no Python loop over replicates — and each row matches the
    scalar :func:`fit_vas` (which delegates here) bit-for-bit.
    """
    if floor < 1:
        raise ModelError("floor must be at least 1")
    rows = np.atleast_2d(np.asarray(vas_rows, dtype=float))
    if rows.ndim != 2:
        raise ModelError("vas_rows must be a 1- or 2-dimensional array")
    n_rows, width = rows.shape
    column = np.arange(width)
    invalid = np.isnan(rows)
    # Trim every row at its first NaN, then at its first floored value
    # (keeping the first floored point, as the paper does).
    first_invalid = np.where(invalid.any(axis=1), np.argmax(invalid, axis=1), width)
    before_nan = column[None, :] < first_invalid[:, None]
    at_floor = (rows <= floor + 1e-9) & before_nan
    has_floor = at_floor.any(axis=1)
    first_floor = np.where(has_floor, np.argmax(at_floor, axis=1), width)
    lengths = np.minimum(first_invalid, np.where(has_floor, first_floor + 1, width))
    mask = column[None, :] < lengths[:, None]
    safe = np.where(mask, rows, 1.0)
    usable = (lengths >= 2) & (safe > 0).all(axis=1)

    with np.errstate(all="ignore"):
        x = np.log10(column + 2.0)  # log10(N + 1) with N = column + 1
        y = np.where(mask, np.log10(np.abs(safe)), 0.0)
        weights = mask.astype(float)
        n_points = lengths.astype(float)
        sum_x = (weights * x).sum(axis=1)
        sum_y = y.sum(axis=1)
        sum_xx = (weights * x * x).sum(axis=1)
        sum_xy = (x * y).sum(axis=1)
        denominator = n_points * sum_xx - sum_x * sum_x
        slope_xy = (n_points * sum_xy - sum_x * sum_y) / denominator
        intercept = (sum_y - slope_xy * sum_x) / n_points
        slope_a = -slope_xy
        predicted = intercept[:, None] + slope_xy[:, None] * x[None, :]
        residuals = np.where(mask, y - predicted, 0.0)
        ss_res = (residuals * residuals).sum(axis=1)
        mean_y = sum_y / n_points
        deviations = np.where(mask, y - mean_y[:, None], 0.0)
        ss_tot = (deviations * deviations).sum(axis=1)
        r_squared = np.where(
            ss_tot == 0.0, 1.0, np.maximum(0.0, 1.0 - ss_res / ss_tot)
        )
        cutpoints = np.where(
            usable & (slope_a > 0.0),
            10.0 ** (intercept / np.where(slope_a > 0.0, slope_a, 1.0)) - 1.0,
            np.nan,
        )

    nan = np.full(n_rows, np.nan)
    return VASFitBatch(
        slope_a=np.where(usable, slope_a, nan),
        intercept_b=np.where(usable, intercept, nan),
        r_squared=np.where(usable, r_squared, nan),
        n_points=np.where(usable, lengths, 0).astype(np.int64),
        cutpoints=cutpoints,
    )


def fit_vas(vas: np.ndarray, floor: int) -> LogLogFit:
    """Fit the log-log model to one VAS(Q) vector.

    ``vas[k]`` must hold the quantile for ``N = k + 1`` interests.
    """
    if floor < 1:
        raise ModelError("floor must be at least 1")
    values = truncate_at_floor(vas, floor)
    if values.size < 2:
        raise InsufficientDataError(
            "fewer than two usable VAS points remain after floor truncation"
        )
    if np.any(values <= 0):
        raise ModelError("audience sizes must be positive to fit in log space")
    batch = fit_vas_many(np.asarray(vas, dtype=float)[None, :], floor)
    return LogLogFit(
        slope_a=float(batch.slope_a[0]),
        intercept_b=float(batch.intercept_b[0]),
        r_squared=float(batch.r_squared[0]),
        n_points=int(batch.n_points[0]),
    )
