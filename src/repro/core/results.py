"""Result containers for the uniqueness analysis (Table 1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..errors import ModelError
from .bootstrap import ConfidenceInterval
from .fitting import LogLogFit


@dataclass(frozen=True, slots=True)
class NPEstimate:
    """The estimate of ``N_P`` for one probability and one strategy."""

    probability: float
    n_p: float
    confidence_interval: ConfidenceInterval
    r_squared: float
    fit: LogLogFit

    def __post_init__(self) -> None:
        if not 0.0 < self.probability < 1.0:
            raise ModelError("probability must lie in (0, 1)")
        if self.n_p < 0:
            raise ModelError("N_P must be non-negative")

    @property
    def required_interests(self) -> int:
        """Smallest whole number of interests achieving the probability."""
        return int(np.ceil(self.n_p))

    @property
    def actionable_on_facebook(self) -> bool:
        """True when the required interests fit the 25-interest platform cap."""
        return self.required_interests <= 25


@dataclass(frozen=True)
class UniquenessReport:
    """Complete output of the uniqueness analysis for one strategy."""

    strategy_name: str
    estimates: Mapping[float, NPEstimate]
    vas_curves: Mapping[float, np.ndarray]
    n_users: int
    floor: int

    def __post_init__(self) -> None:
        if not self.estimates:
            raise ModelError("a report needs at least one N_P estimate")

    def estimate_for(self, probability: float) -> NPEstimate:
        """The estimate for one probability (e.g. 0.9)."""
        try:
            return self.estimates[probability]
        except KeyError:
            raise ModelError(
                f"no estimate available for probability {probability}"
            ) from None

    @property
    def probabilities(self) -> tuple[float, ...]:
        """Probabilities covered by the report, ascending."""
        return tuple(sorted(self.estimates))

    def table_row(self) -> dict:
        """One row of Table 1 as a serialisable dictionary."""
        row: dict = {"strategy": self.strategy_name}
        for probability in self.probabilities:
            estimate = self.estimates[probability]
            key = f"P={probability:g}"
            row[key] = round(estimate.n_p, 2)
            row[f"{key} 95% CI"] = (
                round(estimate.confidence_interval.low, 2),
                round(estimate.confidence_interval.high, 2),
            )
            row[f"{key} R2"] = round(estimate.r_squared, 2)
        return row

    def summary_lines(self) -> list[str]:
        """Human-readable summary of the report."""
        lines = [
            f"strategy={self.strategy_name} users={self.n_users} floor={self.floor}"
        ]
        for probability in self.probabilities:
            estimate = self.estimates[probability]
            ci = estimate.confidence_interval
            lines.append(
                f"  N_{probability:g} = {estimate.n_p:.2f} "
                f"(95% CI [{ci.low:.2f}, {ci.high:.2f}], R2={estimate.r_squared:.2f})"
            )
        return lines
