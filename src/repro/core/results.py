"""Result containers shared across the paper's studies.

Alongside the uniqueness-analysis containers (Table 1), this module holds
the result types of the scenario orchestration layer
(:mod:`repro.scenarios`): every study — uniqueness, nanotargeting, the
countermeasure workload impact, the FDVT risk reports — summarises into one
:class:`ScenarioResult` (canonical plain-scalar tables and metrics, plus
the study's raw objects), and sweeps reduce into the mergeable
:class:`ResultSet`, which conforms to the :class:`repro.exec.Sink`
protocol so per-shard scenario blocks can be drained like any other
streamed result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

import numpy as np

from ..errors import ModelError
from .bootstrap import ConfidenceInterval
from .fitting import LogLogFit


@dataclass(frozen=True, slots=True)
class NPEstimate:
    """The estimate of ``N_P`` for one probability and one strategy."""

    probability: float
    n_p: float
    confidence_interval: ConfidenceInterval
    r_squared: float
    fit: LogLogFit

    def __post_init__(self) -> None:
        if not 0.0 < self.probability < 1.0:
            raise ModelError("probability must lie in (0, 1)")
        if self.n_p < 0:
            raise ModelError("N_P must be non-negative")

    @property
    def required_interests(self) -> int:
        """Smallest whole number of interests achieving the probability."""
        return int(np.ceil(self.n_p))

    @property
    def actionable_on_facebook(self) -> bool:
        """True when the required interests fit the 25-interest platform cap."""
        return self.required_interests <= 25


@dataclass(frozen=True)
class UniquenessReport:
    """Complete output of the uniqueness analysis for one strategy."""

    strategy_name: str
    estimates: Mapping[float, NPEstimate]
    vas_curves: Mapping[float, np.ndarray]
    n_users: int
    floor: int

    def __post_init__(self) -> None:
        if not self.estimates:
            raise ModelError("a report needs at least one N_P estimate")

    def estimate_for(self, probability: float) -> NPEstimate:
        """The estimate for one probability (e.g. 0.9)."""
        try:
            return self.estimates[probability]
        except KeyError:
            raise ModelError(
                f"no estimate available for probability {probability}"
            ) from None

    @property
    def probabilities(self) -> tuple[float, ...]:
        """Probabilities covered by the report, ascending."""
        return tuple(sorted(self.estimates))

    def table_row(self) -> dict:
        """One row of Table 1 as a serialisable dictionary."""
        row: dict = {"strategy": self.strategy_name}
        for probability in self.probabilities:
            estimate = self.estimates[probability]
            key = f"P={probability:g}"
            row[key] = round(estimate.n_p, 2)
            row[f"{key} 95% CI"] = (
                round(estimate.confidence_interval.low, 2),
                round(estimate.confidence_interval.high, 2),
            )
            row[f"{key} R2"] = round(estimate.r_squared, 2)
        return row

    def summary_lines(self) -> list[str]:
        """Human-readable summary of the report."""
        lines = [
            f"strategy={self.strategy_name} users={self.n_users} floor={self.floor}"
        ]
        for probability in self.probabilities:
            estimate = self.estimates[probability]
            ci = estimate.confidence_interval
            lines.append(
                f"  N_{probability:g} = {estimate.n_p:.2f} "
                f"(95% CI [{ci.low:.2f}, {ci.high:.2f}], R2={estimate.r_squared:.2f})"
            )
        return lines


@dataclass(frozen=True)
class ScenarioResult:
    """The uniform output of one scenario run (any study).

    ``metrics`` (ordered name/value pairs), ``table`` (rows of plain
    scalars) and ``summary`` (human-readable lines) are canonical: two runs
    of the same scenario are bit-identical exactly when these compare
    equal, which is what the determinism tests and the sweep-vs-direct
    parity checks rely on.  ``raw`` carries the study's native result
    objects (e.g. a :class:`UniquenessReport` per strategy) for callers
    that need more than the canonical view; it is excluded from equality.
    """

    scenario: str
    study: str
    seed: int | None
    metrics: tuple[tuple[str, float], ...]
    table: tuple[dict, ...]
    summary: tuple[str, ...]
    raw: Any = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.scenario:
            raise ModelError("a scenario result needs a scenario name")
        names = [name for name, _ in self.metrics]
        if len(set(names)) != len(names):
            raise ModelError("metric names must be unique")

    def metric(self, name: str) -> float:
        """The value of one named metric."""
        for metric_name, value in self.metrics:
            if metric_name == name:
                return value
        raise ModelError(f"scenario {self.scenario!r} has no metric {name!r}")

    @property
    def metrics_dict(self) -> dict[str, float]:
        """The metrics as a plain dictionary (insertion-ordered)."""
        return dict(self.metrics)

    def to_dict(self) -> dict:
        """Serialisable view (canonical fields only, ``raw`` dropped)."""
        return {
            "scenario": self.scenario,
            "study": self.study,
            "seed": self.seed,
            "metrics": dict(self.metrics),
            "table": [dict(row) for row in self.table],
            "summary": list(self.summary),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ScenarioResult":
        """Rebuild a canonical result from :meth:`to_dict` output.

        The inverse of a JSON round trip: JSON turns the tuples inside
        table rows (e.g. rounded confidence-interval pairs) into lists,
        so sequence values are recursively canonicalised back to tuples.
        Round-tripping is exact — ``ScenarioResult.from_dict(json.loads(
        json.dumps(r.to_dict())))`` compares equal to ``r`` — because the
        canonical fields only ever hold scalars, strings and (nested)
        tuples.  This is what lets a resumed sweep hydrate completed rows
        from a :class:`~repro.scenarios.manifest.RunManifest` bit-identically.
        ``raw`` is not serialised, so a hydrated result carries ``None``
        there (``raw`` is excluded from equality).
        """

        def canonical(value):
            if isinstance(value, (list, tuple)):
                return tuple(canonical(item) for item in value)
            return value

        return cls(
            scenario=payload["scenario"],
            study=payload["study"],
            seed=payload["seed"],
            metrics=tuple(
                (name, float(value)) for name, value in payload["metrics"].items()
            ),
            table=tuple(
                {key: canonical(value) for key, value in row.items()}
                for row in payload["table"]
            ),
            summary=tuple(payload["summary"]),
        )


class ResultSet:
    """An ordered, mergeable collection of :class:`ScenarioResult`\\ s.

    The reduction target of :class:`repro.scenarios.SweepRunner`: per-shard
    scenario blocks :meth:`merge` in shard order, so a sweep's result set
    lists scenarios exactly in grid order for every backend and worker
    count.  ``update`` / ``finalize`` make it a :class:`repro.exec.Sink`,
    and equality compares the ordered canonical results — the property the
    scenario determinism tests pin.
    """

    def __init__(self, results: Iterable[ScenarioResult] = ()) -> None:
        self._results: dict[str, ScenarioResult] = {}
        for result in results:
            self.add(result)

    def add(self, result: ScenarioResult) -> "ResultSet":
        """Append one scenario result (duplicate scenario names raise)."""
        if result.scenario in self._results:
            raise ModelError(f"duplicate scenario in result set: {result.scenario!r}")
        self._results[result.scenario] = result
        return self

    def merge(self, other: "ResultSet") -> "ResultSet":
        """Append another result set's scenarios after this one's (in place)."""
        for result in other:
            self.add(result)
        return self

    # -- Sink protocol -----------------------------------------------------------

    def update(self, block: "ResultSet | ScenarioResult") -> "ResultSet":
        """Absorb one streamed block (a result set or a single result)."""
        if isinstance(block, ScenarioResult):
            return self.add(block)
        return self.merge(block)

    def finalize(self) -> "ResultSet":
        """Produce the final reduced value (the set itself)."""
        return self

    # -- views -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator[ScenarioResult]:
        return iter(self._results.values())

    def __contains__(self, name: str) -> bool:
        return name in self._results

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        return list(self._results.items()) == list(other._results.items())

    @property
    def names(self) -> tuple[str, ...]:
        """Scenario names in insertion (grid) order."""
        return tuple(self._results)

    def get(self, name: str) -> ScenarioResult:
        """The result of one scenario by name."""
        try:
            return self._results[name]
        except KeyError:
            raise ModelError(f"no result for scenario {name!r}") from None

    def table_rows(self) -> list[dict]:
        """Every scenario's metrics as one flat table (scenario column first)."""
        return [
            {"scenario": result.scenario, "study": result.study, **dict(result.metrics)}
            for result in self
        ]

    def summary_lines(self) -> list[str]:
        """Human-readable summary of every scenario, in order."""
        lines: list[str] = []
        for result in self:
            lines.append(f"[{result.scenario}] ({result.study})")
            lines.extend(f"  {line}" for line in result.summary)
        return lines

    def to_dicts(self) -> list[dict]:
        """Serialisable view of every result, in order."""
        return [result.to_dict() for result in self]
