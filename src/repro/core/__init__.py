"""The paper's primary contribution: uniqueness model and nanotargeting experiment."""

from .attack import AttackAssessment, AttackPlan, AttackPlanner
from .bootstrap import ConfidenceInterval, bootstrap_cutpoints, percentile_interval
from .collection import COLLECT_MODES, AudienceSizeCollector
from .demographics import DemographicAnalysis, GroupEstimate
from .fitting import LogLogFit, VASFitBatch, fit_vas, fit_vas_many, truncate_at_floor
from .nanotargeting import (
    CampaignRecord,
    ExperimentReport,
    NanotargetingExperiment,
    SuccessValidation,
)
from .quantiles import (
    AudienceAccumulator,
    AudienceSamples,
    StreamedAudienceSamples,
    masked_column_quantiles,
    probability_to_percentile,
)
from .results import NPEstimate, ResultSet, ScenarioResult, UniquenessReport
from .selection import (
    LeastPopularSelection,
    RandomSelection,
    SelectionStrategy,
    nested_subsets,
    ordered_interest_matrix,
    pad_id_rows,
)
from .uniqueness import UniquenessModel

__all__ = [
    "AttackAssessment",
    "AttackPlan",
    "AttackPlanner",
    "AudienceAccumulator",
    "AudienceSamples",
    "AudienceSizeCollector",
    "COLLECT_MODES",
    "CampaignRecord",
    "ConfidenceInterval",
    "DemographicAnalysis",
    "ExperimentReport",
    "GroupEstimate",
    "LeastPopularSelection",
    "LogLogFit",
    "NPEstimate",
    "NanotargetingExperiment",
    "RandomSelection",
    "ResultSet",
    "ScenarioResult",
    "SelectionStrategy",
    "StreamedAudienceSamples",
    "SuccessValidation",
    "UniquenessModel",
    "UniquenessReport",
    "VASFitBatch",
    "bootstrap_cutpoints",
    "fit_vas",
    "fit_vas_many",
    "masked_column_quantiles",
    "nested_subsets",
    "ordered_interest_matrix",
    "pad_id_rows",
    "percentile_interval",
    "probability_to_percentile",
    "truncate_at_floor",
]
