"""Audience-size sample matrices and the AS(Q, N) / VAS(Q) machinery.

Section 4.1 of the paper defines, for every number of interests ``N`` in
1..25, a vector of audience sizes (one sample per panel user), the quantile
``AS(Q, N)`` of each vector, and the quantile-vs-N vector

    VAS(Q) = [AS(Q, 1), AS(Q, 2), ..., AS(Q, 25)].

:class:`AudienceSamples` stores the underlying samples as a users x N matrix
(``NaN`` where a user has fewer than ``N`` interests) so that quantiles,
bootstrap resampling and per-group subsetting are all cheap array
operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._rng import SeedLike, as_generator
from ..errors import InsufficientDataError, ModelError


@dataclass(frozen=True)
class AudienceSamples:
    """Audience-size samples for combinations of 1..max_interests interests."""

    matrix: np.ndarray
    floor: int
    user_ids: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=float)
        if matrix.ndim != 2:
            raise ModelError("the sample matrix must be 2-dimensional (users x N)")
        if matrix.shape[0] == 0 or matrix.shape[1] == 0:
            raise ModelError("the sample matrix must not be empty")
        if self.floor < 1:
            raise ModelError("floor must be at least 1")
        if self.user_ids and len(self.user_ids) != matrix.shape[0]:
            raise ModelError("user_ids must have one entry per matrix row")
        object.__setattr__(self, "matrix", matrix)

    # -- basic views -------------------------------------------------------------

    @property
    def n_users(self) -> int:
        """Number of panel users contributing samples."""
        return int(self.matrix.shape[0])

    @property
    def max_interests(self) -> int:
        """Largest number of combined interests (the matrix width)."""
        return int(self.matrix.shape[1])

    def samples_for(self, n_interests: int) -> np.ndarray:
        """The audience-size vector for ``n_interests`` (NaN rows dropped)."""
        column = self._column(n_interests)
        return column[~np.isnan(column)]

    def sample_count(self, n_interests: int) -> int:
        """Number of users contributing a sample for ``n_interests``."""
        return int(self.samples_for(n_interests).size)

    # -- quantiles --------------------------------------------------------------------

    def audience_quantile(self, q_percent: float, n_interests: int) -> float:
        """``AS(Q, N)``: the Q-th percentile of the audience size for N interests."""
        samples = self.samples_for(n_interests)
        if samples.size == 0:
            raise InsufficientDataError(
                f"no samples available for N={n_interests}"
            )
        return float(np.percentile(samples, self._validate_q(q_percent)))

    def vas(self, q_percent: float) -> np.ndarray:
        """``VAS(Q)``: the quantile vector across N = 1..max_interests."""
        return self.vas_many([q_percent])[0]

    def vas_many(self, q_percents: Sequence[float]) -> np.ndarray:
        """Quantile vectors for several Q values at once (rows follow input order)."""
        qs = [self._validate_q(q) for q in q_percents]
        with np.errstate(all="ignore"):
            result = np.nanpercentile(self.matrix, qs, axis=0)
        return np.atleast_2d(result)

    # -- resampling --------------------------------------------------------------------

    def bootstrap_resample(self, seed: SeedLike = None) -> "AudienceSamples":
        """Resample users with replacement (one bootstrap replicate)."""
        rng = as_generator(seed)
        indices = rng.integers(0, self.n_users, size=self.n_users)
        ids = tuple(self.user_ids[i] for i in indices) if self.user_ids else ()
        return AudienceSamples(self.matrix[indices], self.floor, ids)

    def subset_rows(self, row_indices: Sequence[int]) -> "AudienceSamples":
        """Build a sample matrix restricted to a subset of users."""
        indices = np.asarray(list(row_indices), dtype=int)
        if indices.size == 0:
            raise InsufficientDataError("cannot build an empty subset")
        ids = tuple(self.user_ids[i] for i in indices) if self.user_ids else ()
        return AudienceSamples(self.matrix[indices], self.floor, ids)

    # -- internals -----------------------------------------------------------------------

    def _column(self, n_interests: int) -> np.ndarray:
        if not 1 <= n_interests <= self.max_interests:
            raise ModelError(
                f"n_interests must lie in [1, {self.max_interests}], got {n_interests}"
            )
        return self.matrix[:, n_interests - 1]

    @staticmethod
    def _validate_q(q_percent: float) -> float:
        if not 0.0 < q_percent < 100.0:
            raise ModelError("quantiles must be expressed in percent, within (0, 100)")
        return float(q_percent)


def masked_column_quantiles(
    stacked: np.ndarray, q_percents: Sequence[float]
) -> np.ndarray:
    """``nanpercentile(..., axis=1)`` over a 3-D replicate stack, vectorised.

    ``stacked`` has shape ``(replicates, users, N)``; the result has shape
    ``(len(q_percents), replicates, N)`` and is bit-identical to calling
    :func:`numpy.nanpercentile` per replicate.  NumPy's nan-aware quantile
    dispatches a Python call per (replicate, N) slice, which dominates the
    bootstrap; this kernel instead sorts the whole stack once (NaNs sort to
    the end), counts valid entries per column, and evaluates the same
    linear-interpolation formula (including the ``gamma >= 0.5`` anti-
    cancellation branch of NumPy's ``_lerp``) with pure array indexing.
    """
    values = np.asarray(stacked, dtype=float)
    if values.ndim != 3:
        raise ModelError("masked_column_quantiles expects a 3-D stack")
    quantiles = np.asarray([float(q) for q in q_percents], dtype=float) / 100.0
    ordered = np.sort(values, axis=1)  # NaNs land after every finite value
    counts = (~np.isnan(ordered)).sum(axis=1)  # (replicates, N)
    top = counts - 1  # index of the largest valid entry
    gathered = np.moveaxis(ordered, 1, 2)  # (replicates, N, users)
    results = np.empty((quantiles.size, values.shape[0], values.shape[2]))
    for position, quantile in enumerate(quantiles):
        virtual = quantile * top
        previous = np.floor(virtual)
        gamma = virtual - previous
        low = previous.astype(np.int64)
        high = low + 1
        at_top = virtual >= top
        low = np.where(at_top, top, low)
        high = np.where(at_top, top, high)
        safe_low = np.maximum(low, 0)
        safe_high = np.maximum(high, 0)
        lower = np.take_along_axis(gathered, safe_low[..., None], axis=2)[..., 0]
        upper = np.take_along_axis(gathered, safe_high[..., None], axis=2)[..., 0]
        difference = upper - lower
        interpolated = np.where(
            gamma >= 0.5,
            upper - difference * (1.0 - gamma),
            lower + difference * gamma,
        )
        results[position] = np.where(counts == 0, np.nan, interpolated)
    return results


def probability_to_percentile(probability: float) -> float:
    """Map a uniqueness probability ``P`` to the percentile used for VAS.

    ``N_P`` is derived from the ``P``-quantile of the audience-size
    distribution: an audience size that is below 1 for the ``P``-th
    percentile means that a fraction ``P`` of users would be unique.
    """
    if not 0.0 < probability < 1.0:
        raise ModelError("probability must lie in (0, 1)")
    return probability * 100.0
