"""Audience-size sample matrices and the AS(Q, N) / VAS(Q) machinery.

Section 4.1 of the paper defines, for every number of interests ``N`` in
1..25, a vector of audience sizes (one sample per panel user), the quantile
``AS(Q, N)`` of each vector, and the quantile-vs-N vector

    VAS(Q) = [AS(Q, 1), AS(Q, 2), ..., AS(Q, 25)].

:class:`AudienceSamples` stores the underlying samples as a users x N matrix
(``NaN`` where a user has fewer than ``N`` interests) so that quantiles,
bootstrap resampling and per-group subsetting are all cheap array
operations.

For streamed collection (``AudienceSizeCollector.collect_stream``) the
mergeable :class:`AudienceAccumulator` absorbs per-shard sample blocks as
they arrive — ``update(block)`` per block, ``merge(other)`` across
accumulators, ``finalize()`` once — and produces a
:class:`StreamedAudienceSamples`: a column store (per-N compact vectors of
the valid samples plus per-user prefix lengths) that supports the same
quantile interface and the bootstrap's row gathers *bit-identically* to the
dense matrix, while the full users x N sample matrix is never materialised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._rng import SeedLike, as_generator
from ..errors import InsufficientDataError, ModelError


@dataclass(frozen=True)
class AudienceSamples:
    """Audience-size samples for combinations of 1..max_interests interests."""

    matrix: np.ndarray
    floor: int
    user_ids: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=float)
        if matrix.ndim != 2:
            raise ModelError("the sample matrix must be 2-dimensional (users x N)")
        if matrix.shape[0] == 0 or matrix.shape[1] == 0:
            raise ModelError("the sample matrix must not be empty")
        if self.floor < 1:
            raise ModelError("floor must be at least 1")
        if self.user_ids and len(self.user_ids) != matrix.shape[0]:
            raise ModelError("user_ids must have one entry per matrix row")
        object.__setattr__(self, "matrix", matrix)

    # -- basic views -------------------------------------------------------------

    @property
    def n_users(self) -> int:
        """Number of panel users contributing samples."""
        return int(self.matrix.shape[0])

    @property
    def max_interests(self) -> int:
        """Largest number of combined interests (the matrix width)."""
        return int(self.matrix.shape[1])

    def samples_for(self, n_interests: int) -> np.ndarray:
        """The audience-size vector for ``n_interests`` (NaN rows dropped)."""
        column = self._column(n_interests)
        return column[~np.isnan(column)]

    def sample_count(self, n_interests: int) -> int:
        """Number of users contributing a sample for ``n_interests``."""
        return int(self.samples_for(n_interests).size)

    # -- quantiles --------------------------------------------------------------------

    def audience_quantile(self, q_percent: float, n_interests: int) -> float:
        """``AS(Q, N)``: the Q-th percentile of the audience size for N interests."""
        samples = self.samples_for(n_interests)
        if samples.size == 0:
            raise InsufficientDataError(
                f"no samples available for N={n_interests}"
            )
        return float(np.percentile(samples, self._validate_q(q_percent)))

    def vas(self, q_percent: float) -> np.ndarray:
        """``VAS(Q)``: the quantile vector across N = 1..max_interests."""
        return self.vas_many([q_percent])[0]

    def vas_many(self, q_percents: Sequence[float]) -> np.ndarray:
        """Quantile vectors for several Q values at once (rows follow input order)."""
        qs = [self._validate_q(q) for q in q_percents]
        with np.errstate(all="ignore"):
            result = np.nanpercentile(self.matrix, qs, axis=0)
        return np.atleast_2d(result)

    # -- resampling --------------------------------------------------------------------

    def bootstrap_resample(self, seed: SeedLike = None) -> "AudienceSamples":
        """Resample users with replacement (one bootstrap replicate)."""
        rng = as_generator(seed)
        indices = rng.integers(0, self.n_users, size=self.n_users)
        ids = tuple(self.user_ids[i] for i in indices) if self.user_ids else ()
        return AudienceSamples(self.matrix[indices], self.floor, ids)

    def subset_rows(self, row_indices: Sequence[int]) -> "AudienceSamples":
        """Build a sample matrix restricted to a subset of users."""
        indices = np.asarray(list(row_indices), dtype=int)
        if indices.size == 0:
            raise InsufficientDataError("cannot build an empty subset")
        ids = tuple(self.user_ids[i] for i in indices) if self.user_ids else ()
        return AudienceSamples(self.matrix[indices], self.floor, ids)

    def take_rows(self, row_indices: np.ndarray) -> np.ndarray:
        """Gather user rows by (possibly multi-dimensional) index array.

        ``take_rows(idx)[..., :]`` equals ``matrix[idx]``; the bootstrap
        resolves its resample index matrices through this method so dense
        and streamed sample stores are interchangeable.
        """
        return self.matrix[np.asarray(row_indices, dtype=np.intp)]

    # -- internals -----------------------------------------------------------------------

    def _column(self, n_interests: int) -> np.ndarray:
        if not 1 <= n_interests <= self.max_interests:
            raise ModelError(
                f"n_interests must lie in [1, {self.max_interests}], got {n_interests}"
            )
        return self.matrix[:, n_interests - 1]

    @staticmethod
    def _validate_q(q_percent: float) -> float:
        if not 0.0 < q_percent < 100.0:
            raise ModelError("quantiles must be expressed in percent, within (0, 100)")
        return float(q_percent)


def masked_column_quantiles(
    stacked: np.ndarray, q_percents: Sequence[float]
) -> np.ndarray:
    """``nanpercentile(..., axis=1)`` over a 3-D replicate stack, vectorised.

    ``stacked`` has shape ``(replicates, users, N)``; the result has shape
    ``(len(q_percents), replicates, N)`` and is bit-identical to calling
    :func:`numpy.nanpercentile` per replicate.  NumPy's nan-aware quantile
    dispatches a Python call per (replicate, N) slice, which dominates the
    bootstrap; this kernel instead sorts the whole stack once (NaNs sort to
    the end), counts valid entries per column, and evaluates the same
    linear-interpolation formula (including the ``gamma >= 0.5`` anti-
    cancellation branch of NumPy's ``_lerp``) with pure array indexing.
    """
    values = np.asarray(stacked, dtype=float)
    if values.ndim != 3:
        raise ModelError("masked_column_quantiles expects a 3-D stack")
    quantiles = np.asarray([float(q) for q in q_percents], dtype=float) / 100.0
    ordered = np.sort(values, axis=1)  # NaNs land after every finite value
    counts = (~np.isnan(ordered)).sum(axis=1)  # (replicates, N)
    top = counts - 1  # index of the largest valid entry
    gathered = np.moveaxis(ordered, 1, 2)  # (replicates, N, users)
    results = np.empty((quantiles.size, values.shape[0], values.shape[2]))
    for position, quantile in enumerate(quantiles):
        virtual = quantile * top
        previous = np.floor(virtual)
        gamma = virtual - previous
        low = previous.astype(np.int64)
        high = low + 1
        at_top = virtual >= top
        low = np.where(at_top, top, low)
        high = np.where(at_top, top, high)
        safe_low = np.maximum(low, 0)
        safe_high = np.maximum(high, 0)
        lower = np.take_along_axis(gathered, safe_low[..., None], axis=2)[..., 0]
        upper = np.take_along_axis(gathered, safe_high[..., None], axis=2)[..., 0]
        difference = upper - lower
        interpolated = np.where(
            gamma >= 0.5,
            upper - difference * (1.0 - gamma),
            lower + difference * gamma,
        )
        results[position] = np.where(counts == 0, np.nan, interpolated)
    return results


@dataclass(frozen=True)
class StreamedAudienceSamples:
    """A column-store view of streamed audience samples.

    Holds, for every interest count ``N``, the compact vector of valid
    samples (users with at least ``N`` interests, in panel-row order) plus
    each user's prefix length — never the dense users x N matrix.  The
    quantile interface (:meth:`vas_many`) and the bootstrap's row gathers
    (:meth:`take_rows`) are bit-identical to their dense
    :class:`AudienceSamples` counterparts: the compact column equals the
    dense column with its ``NaN`` tail removed, and a gathered row block
    reconstructs exactly ``matrix[indices]``.
    """

    #: Per-column compact sample vectors, column k holding the samples of
    #: every user with ``row_counts > k`` in row order.
    columns: tuple[np.ndarray, ...]
    #: Number of valid (leading) samples per user row.
    row_counts: np.ndarray
    floor: int
    user_ids: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.columns:
            raise ModelError("streamed samples need at least one column")
        if self.floor < 1:
            raise ModelError("floor must be at least 1")
        row_counts = np.asarray(self.row_counts, dtype=np.int64)
        if row_counts.ndim != 1 or row_counts.size == 0:
            raise ModelError("row_counts must be a non-empty 1-D vector")
        if self.user_ids and len(self.user_ids) != row_counts.size:
            raise ModelError("user_ids must have one entry per user row")
        for k, column in enumerate(self.columns):
            if column.shape != (int((row_counts > k).sum()),):
                raise ModelError(
                    "column store is inconsistent with the per-row counts"
                )
        object.__setattr__(self, "row_counts", row_counts)

    @property
    def n_users(self) -> int:
        """Number of panel users contributing samples."""
        return int(self.row_counts.size)

    @property
    def max_interests(self) -> int:
        """Largest number of combined interests (the column count)."""
        return len(self.columns)

    def samples_for(self, n_interests: int) -> np.ndarray:
        """The audience-size vector for ``n_interests`` (valid entries only)."""
        if not 1 <= n_interests <= self.max_interests:
            raise ModelError(
                f"n_interests must lie in [1, {self.max_interests}], got {n_interests}"
            )
        return self.columns[n_interests - 1]

    def vas(self, q_percent: float) -> np.ndarray:
        """``VAS(Q)``: the quantile vector across N = 1..max_interests."""
        return self.vas_many([q_percent])[0]

    def vas_many(self, q_percents: Sequence[float]) -> np.ndarray:
        """Quantile vectors for several Q values, from the column store.

        Bit-identical to :meth:`AudienceSamples.vas_many` on the dense
        matrix: ``nanpercentile`` over a matrix column first drops the
        ``NaN`` tail and then computes the plain percentile of exactly the
        vector each compact column stores.
        """
        qs = [AudienceSamples._validate_q(q) for q in q_percents]
        result = np.full((len(qs), self.max_interests), np.nan)
        for k, column in enumerate(self.columns):
            if column.size:
                result[:, k] = np.percentile(column, qs)
        return result

    def take_rows(self, row_indices: np.ndarray) -> np.ndarray:
        """Reconstruct ``matrix[row_indices]`` from the column store.

        The result is a dense gathered block (transient, sized by the
        caller's chunking) — the full matrix itself is never built.  The
        gather is fused: a position table maps every (user, column) cell to
        its offset in the concatenated column values (with one trailing
        ``NaN`` sentinel for the cells past each user's prefix), so a block
        is one row-take on the table plus one value-take — no per-column
        Python loop, no per-call rank recomputation.  Within column ``k``
        the sample of user ``u`` sits at position ``rank_k(u)``, the number
        of earlier rows with more than ``k`` valid samples; the table bakes
        those ranks in once and is reused by every subsequent gather (the
        bootstrap calls this per replicate chunk).
        """
        indices = np.asarray(row_indices, dtype=np.intp)
        values, positions = self._gather_table()
        gathered = values[positions.take(indices.reshape(-1), axis=0)]
        return gathered.reshape(*indices.shape, self.max_interests)

    def _gather_table(self) -> tuple[np.ndarray, np.ndarray]:
        """The fused-gather lookup: (extended values, per-cell positions).

        Built lazily once per store.  ``positions[u, k]`` indexes the
        concatenated column values, or the trailing ``NaN`` sentinel when
        user ``u`` has no sample for column ``k``.  The table costs
        ``n_users × max_interests`` int32/intp cells — a deliberate
        memory-for-time trade that is still well below the dense float
        matrix and is amortised across every bootstrap chunk.
        """
        cached = self.__dict__.get("_gather_cache")
        if cached is None:
            width = self.max_interests
            sizes = np.fromiter(
                (column.size for column in self.columns), dtype=np.int64, count=width
            )
            total = int(sizes.sum())
            offsets = np.zeros(width, dtype=np.int64)
            np.cumsum(sizes[:-1], out=offsets[1:])
            member = self.row_counts[:, None] > np.arange(width)[None, :]
            ranks = np.cumsum(member, axis=0) - 1
            dtype = np.int32 if total + 1 <= np.iinfo(np.int32).max else np.intp
            positions = np.where(
                member, ranks + offsets[None, :], total
            ).astype(dtype, copy=False)
            values = np.empty(total + 1, dtype=float)
            cursor = 0
            for column in self.columns:
                values[cursor : cursor + column.size] = column
                cursor += column.size
            values[total] = np.nan
            cached = (values, positions)
            object.__setattr__(self, "_gather_cache", cached)
        return cached

    def to_samples(self) -> AudienceSamples:
        """Materialise the dense :class:`AudienceSamples` (debug/parity aid)."""
        return AudienceSamples(
            matrix=self.take_rows(np.arange(self.n_users)),
            floor=self.floor,
            user_ids=self.user_ids,
        )


class AudienceAccumulator:
    """Mergeable accumulator of per-shard :class:`AudienceSamples` blocks.

    The streaming counterpart of collecting one dense matrix: feed it the
    blocks of ``AudienceSizeCollector.collect_stream`` (in row order) with
    :meth:`update`, combine independently filled accumulators with
    :meth:`merge`, and :meth:`finalize` into a
    :class:`StreamedAudienceSamples`.  Peak memory is one block plus the
    compact valid samples — the users x N matrix is never materialised.
    Conforms to the :class:`repro.exec.Sink` protocol.
    """

    def __init__(self) -> None:
        self._column_chunks: list[list[np.ndarray]] = []
        self._row_count_chunks: list[np.ndarray] = []
        self._user_id_chunks: list[tuple[int, ...]] = []
        self._all_blocks_carried_ids = True
        self._floor: int | None = None

    @property
    def n_users(self) -> int:
        """User rows absorbed so far."""
        return int(sum(chunk.size for chunk in self._row_count_chunks))

    def update(self, block: AudienceSamples) -> "AudienceAccumulator":
        """Absorb one block of sample rows (rows append in arrival order)."""
        if self._floor is None:
            self._floor = block.floor
        elif self._floor != block.floor:
            raise ModelError("all blocks must share one reporting floor")
        matrix = block.matrix
        valid = ~np.isnan(matrix)
        counts = valid.sum(axis=1)
        # The column store indexes membership by prefix length, which is
        # only sound for the prefix-shaped NaN layout collection produces.
        if not np.array_equal(
            valid, np.arange(matrix.shape[1])[None, :] < counts[:, None]
        ):
            raise ModelError(
                "blocks must have prefix structure (valid samples lead each row)"
            )
        while len(self._column_chunks) < matrix.shape[1]:
            self._column_chunks.append([])
        for k in range(matrix.shape[1]):
            self._column_chunks[k].append(matrix[counts > k, k])
        self._row_count_chunks.append(counts.astype(np.int64))
        if block.user_ids:
            self._user_id_chunks.append(block.user_ids)
        else:
            self._all_blocks_carried_ids = False
        return self

    def merge(self, other: "AudienceAccumulator") -> "AudienceAccumulator":
        """Append another accumulator's rows after this one's (in place)."""
        if other._floor is not None:
            if self._floor is None:
                self._floor = other._floor
            elif self._floor != other._floor:
                raise ModelError("all blocks must share one reporting floor")
        while len(self._column_chunks) < len(other._column_chunks):
            self._column_chunks.append([])
        for k, chunks in enumerate(other._column_chunks):
            self._column_chunks[k].extend(chunks)
        self._row_count_chunks.extend(other._row_count_chunks)
        self._user_id_chunks.extend(other._user_id_chunks)
        self._all_blocks_carried_ids = (
            self._all_blocks_carried_ids and other._all_blocks_carried_ids
        )
        return self

    def finalize(self) -> StreamedAudienceSamples:
        """Seal the accumulator into a :class:`StreamedAudienceSamples`."""
        if self._floor is None or not self._row_count_chunks:
            raise ModelError("cannot finalize an empty accumulator")
        columns = tuple(
            np.concatenate(chunks) if chunks else np.empty(0, dtype=float)
            for chunks in self._column_chunks
        )
        user_ids: tuple[int, ...] = ()
        if self._all_blocks_carried_ids:
            user_ids = tuple(uid for chunk in self._user_id_chunks for uid in chunk)
        return StreamedAudienceSamples(
            columns=columns,
            row_counts=np.concatenate(self._row_count_chunks),
            floor=self._floor,
            user_ids=user_ids,
        )


def probability_to_percentile(probability: float) -> float:
    """Map a uniqueness probability ``P`` to the percentile used for VAS.

    ``N_P`` is derived from the ``P``-quantile of the audience-size
    distribution: an audience size that is below 1 for the ``P``-th
    percentile means that a fraction ``P`` of users would be unique.
    """
    if not 0.0 < probability < 1.0:
        raise ModelError("probability must lie in (0, 1)")
    return probability * 100.0
