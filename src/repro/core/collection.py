"""Audience-size collection from the Ads Manager API.

For every panel user and every number of interests ``N`` in 1..25 the paper
retrieves, from the Ads Manager API, the Potential Reach of the audience
formed by the first ``N`` interests of the user's selection (least popular
or random).  The collector reproduces that loop against the simulated API
and arranges the results as the users x N matrix consumed by the quantile
machinery.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..adsapi import AdsManagerAPI, TargetingSpec
from ..errors import ModelError
from ..fdvt.panel import FDVTPanel
from .quantiles import AudienceSamples
from .selection import SelectionStrategy


class AudienceSizeCollector:
    """Queries the Ads API for every (user, N) audience of a strategy."""

    def __init__(
        self,
        api: AdsManagerAPI,
        panel: FDVTPanel,
        *,
        max_interests: int = 25,
        locations: Sequence[str] | None = None,
    ) -> None:
        if max_interests < 1:
            raise ModelError("max_interests must be >= 1")
        platform_limit = api.platform.max_interests_per_audience
        if max_interests > platform_limit:
            raise ModelError(
                f"max_interests ({max_interests}) exceeds the platform limit "
                f"({platform_limit})"
            )
        self._api = api
        self._panel = panel
        self._max_interests = max_interests
        self._locations = tuple(locations) if locations else None

    @property
    def max_interests(self) -> int:
        """Largest number of interests combined per user."""
        return self._max_interests

    def collect(self, strategy: SelectionStrategy) -> AudienceSamples:
        """Collect the full audience-size matrix for one selection strategy.

        Rows correspond to panel users (in panel order) and column ``k``
        to combinations of ``k + 1`` interests; entries are ``NaN`` when the
        user has fewer interests than the column requires.
        """
        n_users = len(self._panel)
        matrix = np.full((n_users, self._max_interests), np.nan, dtype=float)
        user_ids = []
        catalog = self._panel.catalog
        for row, user in enumerate(self._panel):
            user_ids.append(user.user_id)
            ordered = strategy.order_interests(user, catalog, self._max_interests)
            for n_interests in range(1, min(len(ordered), self._max_interests) + 1):
                spec = TargetingSpec.for_interests(
                    ordered[:n_interests], locations=self._locations
                )
                estimate = self._api.estimate_reach(spec)
                matrix[row, n_interests - 1] = float(estimate.potential_reach)
        return AudienceSamples(
            matrix=matrix,
            floor=self._api.platform.reach_floor,
            user_ids=tuple(user_ids),
        )

    def collect_for_users(
        self, strategy: SelectionStrategy, user_ids: Sequence[int]
    ) -> AudienceSamples:
        """Collect the matrix for a subset of panel users (demographic groups)."""
        wanted = set(int(uid) for uid in user_ids)
        users = [user for user in self._panel if user.user_id in wanted]
        if not users:
            raise ModelError("no panel users match the requested ids")
        sub_panel = self._panel.subset(users)
        collector = AudienceSizeCollector(
            self._api,
            sub_panel,
            max_interests=self._max_interests,
            locations=self._locations,
        )
        return collector.collect(strategy)
