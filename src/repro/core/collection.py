"""Audience-size collection from the Ads Manager API.

For every panel user and every number of interests ``N`` in 1..25 the paper
retrieves, from the Ads Manager API, the Potential Reach of the audience
formed by the first ``N`` interests of the user's selection (least popular
or random).  The collector reproduces that loop against the simulated API
and arranges the results as the users x N matrix consumed by the quantile
machinery.

Three entry points produce bit-identical matrices and tiers of throughput:

* ``mode="panel"`` (the default, and the supported bulk path) resolves the
  whole panel's strategy ordering into one padded id matrix
  (:func:`~repro.core.selection.ordered_interest_matrix`) and issues a
  single spec-free :meth:`AdsManagerAPI.estimate_reach_matrix` call — the
  users × N measurement becomes a handful of array sweeps with no per-user
  Python round-trip;
* ``mode="batch"`` (the per-user tier, kept for parity benchmarking) issues
  one batched prefix-chain query per user through
  :meth:`AdsManagerAPI.estimate_reach_batch`;
* ``mode="scalar"`` (the reference tier) loops one API call per (user, N)
  cell.

Rate-limit / call-stats accounting sees one request per (user, N) cell on
every tier; the panel tier settles the whole bill in one vectorised
accounting step.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..adsapi import AdsManagerAPI, TargetingSpec
from ..errors import ModelError, PanelError
from ..fdvt.panel import FDVTPanel
from .quantiles import AudienceSamples
from .selection import SelectionStrategy, ordered_interest_matrix

#: Collection tiers, fastest first.
COLLECT_MODES = ("panel", "batch", "scalar")


class AudienceSizeCollector:
    """Queries the Ads API for every (user, N) audience of a strategy."""

    def __init__(
        self,
        api: AdsManagerAPI,
        panel: FDVTPanel,
        *,
        max_interests: int = 25,
        locations: Sequence[str] | None = None,
    ) -> None:
        if max_interests < 1:
            raise ModelError("max_interests must be >= 1")
        platform_limit = api.platform.max_interests_per_audience
        if max_interests > platform_limit:
            raise ModelError(
                f"max_interests ({max_interests}) exceeds the platform limit "
                f"({platform_limit})"
            )
        self._api = api
        self._panel = panel
        self._max_interests = max_interests
        self._locations = tuple(locations) if locations else None

    @property
    def max_interests(self) -> int:
        """Largest number of interests combined per user."""
        return self._max_interests

    def collect(
        self,
        strategy: SelectionStrategy,
        *,
        mode: str | None = None,
        batch: bool | None = None,
    ) -> AudienceSamples:
        """Collect the full audience-size matrix for one selection strategy.

        Rows correspond to panel users (in panel order) and column ``k``
        to combinations of ``k + 1`` interests; entries are ``NaN`` when the
        user has fewer interests than the column requires.  ``mode`` picks
        the collection tier (``"panel"`` by default — see the module
        docstring); all tiers return bit-identical matrices.  The legacy
        ``batch`` flag maps ``True``/``False`` to the per-user batch and
        scalar tiers.
        """
        if batch is not None:
            if mode is not None:
                raise ModelError("pass either mode or the legacy batch flag, not both")
            mode = "batch" if batch else "scalar"
        mode = mode or "panel"
        if mode not in COLLECT_MODES:
            raise ModelError(f"unknown collection mode: {mode!r}")
        n_users = len(self._panel)
        matrix = np.full((n_users, self._max_interests), np.nan, dtype=float)
        user_ids = tuple(user.user_id for user in self._panel)
        if mode == "panel":
            id_matrix, counts = ordered_interest_matrix(
                strategy, self._panel.users, self._panel.catalog, self._max_interests
            )
            if id_matrix.shape[1]:
                values = self._api.estimate_reach_matrix(
                    id_matrix, counts, locations=self._locations
                )
                matrix[:, : values.shape[1]] = values
        else:
            catalog = self._panel.catalog
            for row, user in enumerate(self._panel):
                ordered = strategy.order_interests(user, catalog, self._max_interests)
                count = min(len(ordered), self._max_interests)
                if count == 0:
                    continue
                if mode == "batch":
                    # The chain constructor validates the longest spec once;
                    # its prefixes are valid by construction.
                    specs = TargetingSpec.prefix_chain(
                        ordered[:count], locations=self._locations
                    )
                    estimates = self._api.estimate_reach_batch(specs)
                    matrix[row, :count] = np.fromiter(
                        (estimate.potential_reach for estimate in estimates),
                        dtype=float,
                        count=count,
                    )
                else:
                    for n_interests in range(1, count + 1):
                        spec = TargetingSpec.for_interests(
                            ordered[:n_interests], locations=self._locations
                        )
                        estimate = self._api.estimate_reach(spec)
                        matrix[row, n_interests - 1] = float(estimate.potential_reach)
        return AudienceSamples(
            matrix=matrix,
            floor=self._api.platform.reach_floor,
            user_ids=user_ids,
        )

    def collect_for_users(
        self,
        strategy: SelectionStrategy,
        user_ids: Sequence[int],
        *,
        mode: str | None = None,
    ) -> AudienceSamples:
        """Collect the matrix for a subset of panel users (demographic groups).

        Users are resolved through the panel's id index (no full-panel scan)
        and rows follow the caller's requested order, with duplicate ids
        collapsed to their first occurrence and unknown ids ignored.
        """
        users = []
        seen: set[int] = set()
        for user_id in user_ids:
            user_id = int(user_id)
            if user_id in seen:
                continue
            seen.add(user_id)
            try:
                users.append(self._panel.get(user_id))
            except PanelError:
                continue
        if not users:
            raise ModelError("no panel users match the requested ids")
        sub_panel = self._panel.subset(users)
        collector = AudienceSizeCollector(
            self._api,
            sub_panel,
            max_interests=self._max_interests,
            locations=self._locations,
        )
        return collector.collect(strategy, mode=mode)
