"""Audience-size collection from the Ads Manager API.

For every panel user and every number of interests ``N`` in 1..25 the paper
retrieves, from the Ads Manager API, the Potential Reach of the audience
formed by the first ``N`` interests of the user's selection (least popular
or random).  The collector reproduces that loop against the simulated API
and arranges the results as the users x N matrix consumed by the quantile
machinery.

Three entry points produce bit-identical matrices and tiers of throughput:

* ``mode="panel"`` (the default, and the supported bulk path) resolves the
  whole panel's strategy ordering into one padded id matrix
  (:func:`~repro.core.selection.ordered_interest_matrix`) and issues a
  single spec-free :meth:`AdsManagerAPI.estimate_reach_matrix` call — the
  users × N measurement becomes a handful of array sweeps with no per-user
  Python round-trip;
* ``mode="batch"`` (the per-user tier, kept for parity benchmarking) issues
  one batched prefix-chain query per user through
  :meth:`AdsManagerAPI.estimate_reach_batch`;
* ``mode="scalar"`` (the reference tier) loops one API call per (user, N)
  cell.

On top of the three tiers sits the sharded execution layer
(:mod:`repro.exec`): :meth:`AudienceSizeCollector.collect_sharded` cuts the
panel into contiguous row shards — each shard ordered, validated and
kernel-evaluated independently, optionally on a thread or process pool —
and :meth:`AudienceSizeCollector.collect_stream` yields the same per-shard
blocks as a generator so downstream accumulators never hold the full
matrix.  Both are bit-identical to the panel tier for every backend, worker
count and shard size: ordering and the prefix kernel are row-local, and the
rate-limit bill of all shards is merged and settled in one accounting step,
exactly like the fused ``estimate_reach_matrix`` call (pinned by
``tests/test_exec_sharding.py``).

Rate-limit / call-stats accounting sees one request per (user, N) cell on
every tier; the panel tier settles the whole bill in one vectorised
accounting step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..adsapi import AdsManagerAPI, CallBill, TargetingSpec
from ..errors import ModelError, PanelError
from ..exec import ShardExecutor
from ..exec.plan import Shard
from ..exec.tasks import ReachShardTask, run_reach_shard, shard_backend_payload
from ..fdvt.panel import FDVTPanel
from .quantiles import AudienceSamples
from .selection import (
    SelectionStrategy,
    ordered_interest_matrix,
    ordered_interest_matrix_columns,
)

#: Collection tiers, fastest first.
COLLECT_MODES = ("panel", "batch", "scalar")


@dataclass(frozen=True)
class _ShardJob:
    """One planned shard: its ordered block, its bill, its compute task."""

    shard: Shard
    bill: CallBill
    #: ``None`` when the shard has nothing to query (all-empty users).
    task: ReachShardTask | None


class AudienceSizeCollector:
    """Queries the Ads API for every (user, N) audience of a strategy."""

    def __init__(
        self,
        api: AdsManagerAPI,
        panel: FDVTPanel,
        *,
        max_interests: int = 25,
        locations: Sequence[str] | None = None,
    ) -> None:
        if max_interests < 1:
            raise ModelError("max_interests must be >= 1")
        platform_limit = api.platform.max_interests_per_audience
        if max_interests > platform_limit:
            raise ModelError(
                f"max_interests ({max_interests}) exceeds the platform limit "
                f"({platform_limit})"
            )
        self._api = api
        self._panel = panel
        self._max_interests = max_interests
        self._locations = tuple(locations) if locations else None

    @property
    def max_interests(self) -> int:
        """Largest number of interests combined per user."""
        return self._max_interests

    def collect(
        self,
        strategy: SelectionStrategy,
        *,
        mode: str | None = None,
        batch: bool | None = None,
    ) -> AudienceSamples:
        """Collect the full audience-size matrix for one selection strategy.

        Rows correspond to panel users (in panel order) and column ``k``
        to combinations of ``k + 1`` interests; entries are ``NaN`` when the
        user has fewer interests than the column requires.  ``mode`` picks
        the collection tier (``"panel"`` by default — see the module
        docstring); all tiers return bit-identical matrices.  The legacy
        ``batch`` flag maps ``True``/``False`` to the per-user batch and
        scalar tiers.
        """
        if batch is not None:
            if mode is not None:
                raise ModelError("pass either mode or the legacy batch flag, not both")
            mode = "batch" if batch else "scalar"
        mode = mode or "panel"
        if mode not in COLLECT_MODES:
            raise ModelError(f"unknown collection mode: {mode!r}")
        n_users = len(self._panel)
        matrix = np.full((n_users, self._max_interests), np.nan, dtype=float)
        user_ids = self._user_ids()
        if mode == "panel":
            id_matrix, counts = self._ordered_matrix(strategy, 0, n_users)
            if id_matrix.shape[1]:
                values = self._api.estimate_reach_matrix(
                    id_matrix, counts, locations=self._locations
                )
                matrix[:, : values.shape[1]] = values
        else:
            catalog = self._panel.catalog
            for row, user in enumerate(self._panel):
                ordered = strategy.order_interests(user, catalog, self._max_interests)
                count = min(len(ordered), self._max_interests)
                if count == 0:
                    continue
                if mode == "batch":
                    # The chain constructor validates the longest spec once;
                    # its prefixes are valid by construction.
                    specs = TargetingSpec.prefix_chain(
                        ordered[:count], locations=self._locations
                    )
                    estimates = self._api.estimate_reach_batch(specs)
                    matrix[row, :count] = np.fromiter(
                        (estimate.potential_reach for estimate in estimates),
                        dtype=float,
                        count=count,
                    )
                else:
                    for n_interests in range(1, count + 1):
                        spec = TargetingSpec.for_interests(
                            ordered[:n_interests], locations=self._locations
                        )
                        estimate = self._api.estimate_reach(spec)
                        matrix[row, n_interests - 1] = float(estimate.potential_reach)
        return AudienceSamples(
            matrix=matrix,
            floor=self._api.platform.reach_floor,
            user_ids=user_ids,
        )

    def collect_sharded(
        self,
        strategy: SelectionStrategy,
        *,
        executor: ShardExecutor | None = None,
        backend: str | None = None,
        workers: int = 1,
        shard_size: int | None = None,
    ) -> AudienceSamples:
        """Collect the full matrix through the sharded execution layer.

        The panel is cut into contiguous row shards
        (:meth:`~repro.exec.ShardExecutor.plan`); each shard is ordered and
        validated independently, the merged rate-limit bill is settled in
        one step, and the pure kernel blocks run on the executor's runner
        (serial, thread pool or process pool).  The assembled samples,
        ``call_stats`` and token-bucket levels are bit-identical to
        :meth:`collect` on the panel tier for every backend, worker count
        and shard size.  Pass a prebuilt ``executor`` or the loose
        ``backend`` / ``workers`` / ``shard_size`` knobs (``backend``
        defaults to a thread pool when ``workers > 1``).

        Billing is exactly-once even under retries: shard tasks are pure
        compute (no API object, no token bucket), so an executor carrying
        a :class:`~repro.faults.RetryPolicy` / :class:`~repro.faults.FaultPlan`
        can re-run a shard any number of times without double-charging —
        the coordinator settles the one merged bill above, before any
        shard executes.
        """
        executor = self._resolve_executor(executor, backend, workers, shard_size)
        runner = executor.runner()
        jobs = self._plan_shard_jobs(strategy, executor, runner)
        merged = CallBill.merged([job.bill for job in jobs])
        self._api.settle_reach_bill(merged)
        tasks = [job.task for job in jobs if job.task is not None]
        results = iter(runner.run(run_reach_shard, tasks))
        n_users = len(self._panel)
        matrix = np.full((n_users, self._max_interests), np.nan, dtype=float)
        for job in jobs:
            if job.task is None:
                continue
            values = next(results)
            matrix[job.shard.start : job.shard.stop, : values.shape[1]] = values
        self._api.record_reach_bill(merged)
        return AudienceSamples(
            matrix=matrix,
            floor=self._api.platform.reach_floor,
            user_ids=self._user_ids(),
        )

    def collect_stream(
        self,
        strategy: SelectionStrategy,
        *,
        executor: ShardExecutor | None = None,
        backend: str | None = None,
        workers: int = 1,
        shard_size: int | None = None,
    ) -> Iterator[AudienceSamples]:
        """Stream the collection as per-shard :class:`AudienceSamples` blocks.

        A generator yielding one block per shard, in panel-row order; block
        rows concatenated equal :meth:`collect`'s matrix bit-for-bit and
        every block is padded to ``max_interests`` columns, so a mergeable
        accumulator (:class:`~repro.core.quantiles.AudienceAccumulator`)
        can absorb them without ever materialising the full users x N
        sample matrix.  Ordering metadata and rate-limit accounting are
        resolved up front on first iteration — the merged bill of all
        shards is settled in one step before any audience is computed,
        matching the fused pass (with ``auto_wait=False`` the stream raises
        before yielding anything) — after which only one audience block at
        a time is alive on the serial backend, while pooled runners compute
        blocks ahead of consumption.  ``call_stats`` records each shard's
        calls as its block is yielded; a stream abandoned midway leaves the
        settled tokens spent but later shards' calls unrecorded.

        Chaos note: with a kernel-depth :class:`~repro.faults.FaultPlan`
        (``depth="kernel"``), injected faults fire *inside*
        :func:`~repro.exec.tasks.run_reach_shard` — i.e. mid-stream,
        after earlier blocks were already yielded and merged downstream.
        Retried shards recompute from pure inputs, so a consumer folding
        blocks into an accumulator stays bit-identical to the fault-free
        stream (pinned by the kernel-depth chaos-parity tests).
        """
        executor = self._resolve_executor(executor, backend, workers, shard_size)
        runner = executor.runner()
        jobs = self._plan_shard_jobs(strategy, executor, runner)
        self._api.settle_reach_bill(CallBill.merged([job.bill for job in jobs]))
        floor = self._api.platform.reach_floor
        user_ids = self._user_ids()
        tasks = [job.task for job in jobs if job.task is not None]
        results = runner.stream(run_reach_shard, tasks)
        for job in jobs:
            block = np.full((job.shard.size, self._max_interests), np.nan, dtype=float)
            if job.task is not None:
                values = next(results)
                block[:, : values.shape[1]] = values
            self._api.record_reach_bill(job.bill)
            yield AudienceSamples(
                matrix=block,
                floor=floor,
                user_ids=user_ids[job.shard.start : job.shard.stop],
            )

    def _resolve_executor(
        self,
        executor: ShardExecutor | None,
        backend: str | None,
        workers: int,
        shard_size: int | None,
    ) -> ShardExecutor:
        if executor is not None:
            if backend is not None or workers != 1 or shard_size is not None:
                raise ModelError(
                    "pass either an executor or the loose backend/workers/"
                    "shard_size knobs, not both"
                )
            return executor
        if backend is None:
            backend = "thread" if workers > 1 else "serial"
        return ShardExecutor(backend=backend, workers=workers, shard_size=shard_size)

    def _user_ids(self) -> tuple[int, ...]:
        """Panel user ids in row order, without materialising user objects."""
        if self._panel.has_columns:
            return tuple(self._panel.columns.user_ids.tolist())
        return tuple(user.user_id for user in self._panel)

    def _ordered_matrix(
        self, strategy: SelectionStrategy, start: int, stop: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Ordered id matrix for panel rows ``[start, stop)``, layout-aware.

        Column-backed panels feed the kernel input straight from the CSR
        store; object panels keep the user-tuple path.  Both orderings are
        bit-identical (pinned by the columnar parity suite).
        """
        if self._panel.has_columns:
            return ordered_interest_matrix_columns(
                strategy,
                self._panel.columns,
                self._panel.catalog,
                self._max_interests,
                start,
                stop,
            )
        return ordered_interest_matrix(
            strategy,
            self._panel.users[start:stop],
            self._panel.catalog,
            self._max_interests,
        )

    def _plan_shard_jobs(
        self,
        strategy: SelectionStrategy,
        executor: ShardExecutor,
        runner,
    ) -> list[_ShardJob]:
        """Order, validate and bill every shard (no tokens spent yet).

        Per-shard ordering is bit-identical to the global pass (every row
        depends only on its own user) and — like the per-shard kernels —
        faster than one fused sweep at scale because each shard's sort
        stays cache-resident.
        """
        payload = shard_backend_payload(self._api.backend, runner)
        floor = self._api.platform.reach_floor
        jobs: list[_ShardJob] = []
        for shard in executor.plan(len(self._panel)):
            ids, counts = self._ordered_matrix(strategy, shard.start, shard.stop)
            if ids.shape[1]:
                ids, counts, locations = self._api.validate_reach_matrix(
                    ids, counts, locations=self._locations
                )
                task = ReachShardTask(
                    backend=payload,
                    id_matrix=ids,
                    counts=counts,
                    locations=locations,
                    floor=floor,
                )
            else:
                task = None
            jobs.append(
                _ShardJob(
                    shard=shard,
                    bill=self._api.reach_matrix_bill(counts),
                    task=task,
                )
            )
        return jobs

    def collect_for_users(
        self,
        strategy: SelectionStrategy,
        user_ids: Sequence[int],
        *,
        mode: str | None = None,
    ) -> AudienceSamples:
        """Collect the matrix for a subset of panel users (demographic groups).

        Users are resolved through the panel's id index (no full-panel scan)
        and rows follow the caller's requested order, with duplicate ids
        collapsed to their first occurrence and unknown ids ignored.  On a
        column-backed panel the sub-panel is a row gather on the CSR store
        — no user objects are materialised.
        """
        if self._panel.has_columns:
            columns = self._panel.columns
            row_of = {uid: row for row, uid in enumerate(columns.user_ids.tolist())}
            rows: list[int] = []
            seen: set[int] = set()
            for user_id in user_ids:
                user_id = int(user_id)
                if user_id in seen:
                    continue
                seen.add(user_id)
                row = row_of.get(user_id)
                if row is not None:
                    rows.append(row)
            if not rows:
                raise ModelError("no panel users match the requested ids")
            sub_panel = FDVTPanel.from_columns(
                columns.take(np.array(rows, dtype=np.int64)), self._panel.catalog
            )
        else:
            users = []
            seen = set()
            for user_id in user_ids:
                user_id = int(user_id)
                if user_id in seen:
                    continue
                seen.add(user_id)
                try:
                    users.append(self._panel.get(user_id))
                except PanelError:
                    continue
            if not users:
                raise ModelError("no panel users match the requested ids")
            sub_panel = self._panel.subset(users)
        collector = AudienceSizeCollector(
            self._api,
            sub_panel,
            max_interests=self._max_interests,
            locations=self._locations,
        )
        return collector.collect(strategy, mode=mode)
