"""Audience-size collection from the Ads Manager API.

For every panel user and every number of interests ``N`` in 1..25 the paper
retrieves, from the Ads Manager API, the Potential Reach of the audience
formed by the first ``N`` interests of the user's selection (least popular
or random).  The collector reproduces that loop against the simulated API
and arranges the results as the users x N matrix consumed by the quantile
machinery.

The default path issues **one batched prefix query per user** through
:meth:`AdsManagerAPI.estimate_reach_batch`: the N prefix specs of a user
form a prefix chain that the backend resolves with a single O(N) kernel
call, and the resulting row is written with one array assignment.  The
scalar loop is kept (``batch=False``) for benchmarking and parity testing;
both paths produce bit-identical matrices and identical rate-limit /
call-stats accounting.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..adsapi import AdsManagerAPI, TargetingSpec
from ..errors import ModelError, PanelError
from ..fdvt.panel import FDVTPanel
from .quantiles import AudienceSamples
from .selection import SelectionStrategy


class AudienceSizeCollector:
    """Queries the Ads API for every (user, N) audience of a strategy."""

    def __init__(
        self,
        api: AdsManagerAPI,
        panel: FDVTPanel,
        *,
        max_interests: int = 25,
        locations: Sequence[str] | None = None,
    ) -> None:
        if max_interests < 1:
            raise ModelError("max_interests must be >= 1")
        platform_limit = api.platform.max_interests_per_audience
        if max_interests > platform_limit:
            raise ModelError(
                f"max_interests ({max_interests}) exceeds the platform limit "
                f"({platform_limit})"
            )
        self._api = api
        self._panel = panel
        self._max_interests = max_interests
        self._locations = tuple(locations) if locations else None

    @property
    def max_interests(self) -> int:
        """Largest number of interests combined per user."""
        return self._max_interests

    def collect(
        self, strategy: SelectionStrategy, *, batch: bool = True
    ) -> AudienceSamples:
        """Collect the full audience-size matrix for one selection strategy.

        Rows correspond to panel users (in panel order) and column ``k``
        to combinations of ``k + 1`` interests; entries are ``NaN`` when the
        user has fewer interests than the column requires.  ``batch=False``
        falls back to one scalar API call per (user, N) cell — same results,
        kept for benchmarking the batched path against it.
        """
        n_users = len(self._panel)
        matrix = np.full((n_users, self._max_interests), np.nan, dtype=float)
        user_ids = []
        catalog = self._panel.catalog
        for row, user in enumerate(self._panel):
            user_ids.append(user.user_id)
            ordered = strategy.order_interests(user, catalog, self._max_interests)
            count = min(len(ordered), self._max_interests)
            if count == 0:
                continue
            if batch:
                specs = [
                    TargetingSpec.for_interests(
                        ordered[:n_interests], locations=self._locations
                    )
                    for n_interests in range(1, count + 1)
                ]
                estimates = self._api.estimate_reach_batch(specs)
                matrix[row, :count] = [
                    float(estimate.potential_reach) for estimate in estimates
                ]
            else:
                for n_interests in range(1, count + 1):
                    spec = TargetingSpec.for_interests(
                        ordered[:n_interests], locations=self._locations
                    )
                    estimate = self._api.estimate_reach(spec)
                    matrix[row, n_interests - 1] = float(estimate.potential_reach)
        return AudienceSamples(
            matrix=matrix,
            floor=self._api.platform.reach_floor,
            user_ids=tuple(user_ids),
        )

    def collect_for_users(
        self, strategy: SelectionStrategy, user_ids: Sequence[int]
    ) -> AudienceSamples:
        """Collect the matrix for a subset of panel users (demographic groups).

        Users are resolved through the panel's id index (no full-panel scan)
        and rows follow the caller's requested order, with duplicate ids
        collapsed to their first occurrence and unknown ids ignored.
        """
        users = []
        seen: set[int] = set()
        for user_id in user_ids:
            user_id = int(user_id)
            if user_id in seen:
                continue
            seen.add(user_id)
            try:
                users.append(self._panel.get(user_id))
            except PanelError:
                continue
        if not users:
            raise ModelError("no panel users match the requested ids")
        sub_panel = self._panel.subset(users)
        collector = AudienceSizeCollector(
            self._api,
            sub_panel,
            max_interests=self._max_interests,
            locations=self._locations,
        )
        return collector.collect(strategy)
