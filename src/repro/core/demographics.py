"""Demographic breakdown of the uniqueness analysis (Appendix C).

The paper repeats the N_0.9 estimation over sub-panels defined by gender
(Figure 8), Erikson age group (Figure 9) and country of residence
(Figure 10).  The helpers here build the sub-panels, rerun the model on
each, and return comparable group estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..adsapi import AdsManagerAPI
from ..config import UniquenessConfig
from ..errors import PanelError
from ..fdvt.appendix_b import LOCATION_ANALYSIS_COUNTRIES
from ..fdvt.panel import FDVTPanel
from ..population.demographics import AgeGroup, Gender
from .results import NPEstimate
from .selection import SelectionStrategy
from .uniqueness import UniquenessModel


@dataclass(frozen=True)
class GroupEstimate:
    """The per-strategy N_P estimates for one demographic group."""

    group_label: str
    n_users: int
    estimates: Mapping[str, NPEstimate]

    def estimate_for(self, strategy_name: str) -> NPEstimate:
        """Estimate for one strategy name ("least_popular" or "random")."""
        return self.estimates[strategy_name]


class DemographicAnalysis:
    """Runs the uniqueness analysis over demographic sub-panels."""

    def __init__(
        self,
        api: AdsManagerAPI,
        panel: FDVTPanel,
        strategies: Sequence[SelectionStrategy],
        *,
        probability: float = 0.9,
        config: UniquenessConfig | None = None,
        locations: Sequence[str] | None = None,
        min_group_size: int = 10,
    ) -> None:
        self._api = api
        self._panel = panel
        self._strategies = tuple(strategies)
        self._probability = probability
        self._config = config or UniquenessConfig()
        self._locations = locations
        self._min_group_size = min_group_size

    # -- group runners -----------------------------------------------------------

    def by_gender(self) -> list[GroupEstimate]:
        """Figure 8: men vs. women."""
        groups = {
            "men": lambda panel: panel.by_gender(Gender.MALE),
            "women": lambda panel: panel.by_gender(Gender.FEMALE),
        }
        return self._run_groups(groups)

    def by_age_group(self) -> list[GroupEstimate]:
        """Figure 9: adolescence, early adulthood, adulthood.

        The maturity group is excluded, as in the paper, because it holds
        too few users (19) for a meaningful fit.
        """
        groups = {
            "adolescence": lambda panel: panel.by_age_group(AgeGroup.ADOLESCENCE),
            "early_adulthood": lambda panel: panel.by_age_group(AgeGroup.EARLY_ADULTHOOD),
            "adulthood": lambda panel: panel.by_age_group(AgeGroup.ADULTHOOD),
        }
        return self._run_groups(groups)

    def by_country(
        self, countries: Sequence[str] = LOCATION_ANALYSIS_COUNTRIES
    ) -> list[GroupEstimate]:
        """Figure 10: countries with more than 100 panellists."""
        groups = {
            country: (lambda panel, code=country: panel.by_country(code))
            for country in countries
        }
        return self._run_groups(groups)

    # -- internals --------------------------------------------------------------------

    def _run_groups(
        self, groups: Mapping[str, Callable[[FDVTPanel], FDVTPanel]]
    ) -> list[GroupEstimate]:
        results = []
        for label, selector in groups.items():
            try:
                sub_panel = selector(self._panel)
            except PanelError:
                # An empty demographic group (e.g. a country with no
                # panellists) is simply skipped, like groups below the
                # minimum size.
                continue
            if len(sub_panel) < self._min_group_size:
                continue
            model = UniquenessModel(
                self._api, sub_panel, self._config, locations=self._locations
            )
            estimates = {}
            for strategy in self._strategies:
                report = model.estimate(strategy, probabilities=[self._probability])
                estimates[strategy.name] = report.estimate_for(self._probability)
            results.append(
                GroupEstimate(
                    group_label=label, n_users=len(sub_panel), estimates=estimates
                )
            )
        return results
