"""Attacker-side planning: from partial knowledge to a nanotargeting campaign.

Section 5 of the paper argues that an attacker who can infer "a few tens" of
a victim's interests can nanotarget them, and Section 4 quantifies how many
interests are enough.  :class:`AttackPlanner` packages that link: given the
interests an attacker believes the victim holds, it predicts the success
probability of a campaign using them (by interpolating the uniqueness
model's fitted curves) and assembles the campaign plan — respecting the
25-interest platform cap the paper highlights as the reason a 95%-confidence
attack is impossible in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..config import MAX_INTERESTS_PER_AUDIENCE
from ..errors import ModelError
from ..population.user import SyntheticUser
from .results import UniquenessReport


@dataclass(frozen=True)
class AttackAssessment:
    """Prediction for a nanotargeting attempt with a given interest set."""

    n_interests_known: int
    n_interests_used: int
    predicted_audience: float
    success_probability: float
    actionable: bool

    def __post_init__(self) -> None:
        if self.n_interests_used > self.n_interests_known:
            raise ModelError("cannot use more interests than are known")
        if not 0.0 <= self.success_probability <= 1.0:
            raise ModelError("success_probability must lie in [0, 1]")


@dataclass(frozen=True)
class AttackPlan:
    """A concrete campaign plan for one victim."""

    victim_user_id: int
    interests: tuple[int, ...]
    assessment: AttackAssessment


class AttackPlanner:
    """Plans nanotargeting attempts from a uniqueness report.

    The planner works purely from the attacker's viewpoint: it sees a
    :class:`UniquenessReport` (the population-level model) and whatever
    subset of the victim's interests the attacker managed to infer.
    """

    def __init__(
        self,
        report: UniquenessReport,
        *,
        max_interests: int = MAX_INTERESTS_PER_AUDIENCE,
    ) -> None:
        if max_interests < 1:
            raise ModelError("max_interests must be >= 1")
        self._report = report
        self._max_interests = max_interests

    @property
    def report(self) -> UniquenessReport:
        """The uniqueness report the planner interpolates."""
        return self._report

    # -- predictions --------------------------------------------------------------

    def success_probability(self, n_interests: int) -> float:
        """Probability that ``n_interests`` interests single out one user.

        The probability is interpolated between the report's ``N_P``
        estimates: a campaign using exactly ``N_P`` interests succeeds with
        probability ``P``, so the inverse mapping from interest count to
        probability is piecewise linear between the estimated cutpoints.
        """
        if n_interests < 1:
            raise ModelError("n_interests must be >= 1")
        probabilities = np.array(self._report.probabilities, dtype=float)
        cutpoints = np.array(
            [self._report.estimate_for(p).n_p for p in self._report.probabilities],
            dtype=float,
        )
        order = np.argsort(cutpoints)
        cutpoints, probabilities = cutpoints[order], probabilities[order]
        if n_interests <= cutpoints[0]:
            # Below the smallest estimated cutpoint: scale down proportionally.
            return float(probabilities[0] * n_interests / max(cutpoints[0], 1e-9))
        if n_interests >= cutpoints[-1]:
            return float(probabilities[-1])
        return float(np.interp(n_interests, cutpoints, probabilities))

    def predicted_audience(self, n_interests: int, *, probability: float | None = None) -> float:
        """Median (or ``probability``-quantile) audience for ``n_interests``."""
        reference = probability or self._report.probabilities[0]
        estimate = self._report.estimate_for(reference)
        return max(1.0, estimate.fit.predict(n_interests))

    def assess(self, known_interests: Sequence[int]) -> AttackAssessment:
        """Assess an attack that uses every known interest (up to the cap)."""
        known = tuple(dict.fromkeys(int(i) for i in known_interests))
        if not known:
            raise ModelError("the attacker must know at least one interest")
        used = min(len(known), self._max_interests)
        return AttackAssessment(
            n_interests_known=len(known),
            n_interests_used=used,
            predicted_audience=self.predicted_audience(used),
            success_probability=self.success_probability(used),
            actionable=used <= self._max_interests,
        )

    def interests_needed(self, target_probability: float) -> int:
        """Smallest whole number of interests reaching ``target_probability``.

        Raises :class:`ModelError` when the requirement exceeds the platform
        cap — the paper's observation that a 95% attack needs 27 random
        interests and is therefore impossible with the 25-interest limit.
        """
        if not 0.0 < target_probability < 1.0:
            raise ModelError("target_probability must lie in (0, 1)")
        for n_interests in range(1, self._max_interests + 1):
            if self.success_probability(n_interests) >= target_probability:
                return n_interests
        raise ModelError(
            f"reaching a {target_probability:.0%} success probability needs more than "
            f"{self._max_interests} interests, which the platform does not allow"
        )

    # -- planning ------------------------------------------------------------------

    def plan(self, victim: SyntheticUser, known_interests: Sequence[int]) -> AttackPlan:
        """Build the campaign plan for ``victim`` from the known interests.

        Only interests the victim actually holds are usable (the attacker may
        have wrong guesses; those would silently exclude the victim from the
        audience), and at most the platform cap is used.
        """
        usable = [
            int(i) for i in dict.fromkeys(known_interests) if victim.has_interest(int(i))
        ]
        if not usable:
            raise ModelError("none of the known interests belong to the victim")
        chosen = tuple(usable[: self._max_interests])
        assessment = AttackAssessment(
            n_interests_known=len(usable),
            n_interests_used=len(chosen),
            predicted_audience=self.predicted_audience(len(chosen)),
            success_probability=self.success_probability(len(chosen)),
            actionable=len(chosen) <= self._max_interests,
        )
        return AttackPlan(
            victim_user_id=victim.user_id, interests=chosen, assessment=assessment
        )
