"""The nanotargeting experiment (Section 5).

The experiment creates, for each targeted user, one campaign per interest
count in {5, 7, 9, 12, 18, 20, 22}, built as nested random subsets of 22
randomly selected interests of the target.  Every campaign is worldwide,
runs on the paper's 33-active-hour schedule with a ~10 EUR/day budget, and a
campaign *nanotargets* its user only when three validation conditions hold
simultaneously:

1. the dashboard reports exactly one user reached;
2. the web-server click log holds a click from the targeted user on the
   campaign's dedicated landing page;
3. the targeted user captured the ad and its "Why am I seeing this ad?"
   disclosure, and the disclosed targeting matches the configured audience.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._rng import SeedLike, as_generator, derive_generator
from ..adsapi import AdsManagerAPI, TargetingSpec
from ..config import ExperimentConfig
from ..delivery import (
    AdCreative,
    Campaign,
    CampaignSchedule,
    CampaignStatus,
    ClickLog,
    DeliveryEngine,
    DeliveryOutcome,
)
from ..errors import CampaignRejectedError, ModelError
from ..population.user import SyntheticUser


@dataclass(frozen=True, slots=True)
class SuccessValidation:
    """The three validation conditions of Section 5.1."""

    reached_exactly_one: bool
    target_clicked: bool
    disclosure_captured: bool

    @property
    def nanotargeted(self) -> bool:
        """True only when all three conditions hold."""
        return self.reached_exactly_one and self.target_clicked and self.disclosure_captured


@dataclass(frozen=True)
class CampaignRecord:
    """One row of Table 2: a campaign, its delivery outcome and its verdict."""

    target_label: str
    target_user_id: int
    n_interests: int
    campaign: Campaign
    outcome: DeliveryOutcome | None
    validation: SuccessValidation
    rejected: bool = False
    rejection_reason: str = ""

    @property
    def nanotargeting_success(self) -> bool:
        """True when the campaign exclusively reached its target."""
        return not self.rejected and self.validation.nanotargeted

    @property
    def group(self) -> str:
        """The paper's expected-outcome group for this interest count."""
        return "success_group" if self.n_interests >= 12 else "failure_group"

    def table_row(self) -> dict:
        """Serialisable Table 2 row."""
        metrics = self.outcome.metrics if self.outcome else None
        return {
            "target": self.target_label,
            "interests": self.n_interests,
            "seen": "Yes" if (metrics and metrics.seen) else "No",
            "reached": metrics.reached if metrics else 0,
            "impressions": metrics.impressions if metrics else 0,
            "tfi": metrics.format_tfi() if metrics else "-",
            "cost": metrics.format_cost() if metrics else "rejected",
            "clicks": metrics.clicks if metrics else 0,
            "unique_click_ips": metrics.unique_click_ips if metrics else 0,
            "nanotargeted": self.nanotargeting_success,
        }


@dataclass(frozen=True)
class ExperimentReport:
    """Aggregate results of the nanotargeting experiment."""

    records: tuple[CampaignRecord, ...]
    account_suspended: bool

    def __post_init__(self) -> None:
        if not self.records:
            raise ModelError("an experiment report needs at least one campaign record")

    @property
    def n_campaigns(self) -> int:
        """Total number of campaigns in the experiment (21 in the paper)."""
        return len(self.records)

    @property
    def successful_records(self) -> tuple[CampaignRecord, ...]:
        """Campaigns that exclusively reached their target."""
        return tuple(r for r in self.records if r.nanotargeting_success)

    @property
    def success_count(self) -> int:
        """Number of successful nanotargeting campaigns (9/21 in the paper)."""
        return len(self.successful_records)

    def success_rate_by_interests(self) -> dict[int, float]:
        """Fraction of successful campaigns per interest count."""
        rates: dict[int, list[bool]] = {}
        for record in self.records:
            rates.setdefault(record.n_interests, []).append(record.nanotargeting_success)
        return {
            n: sum(outcomes) / len(outcomes) for n, outcomes in sorted(rates.items())
        }

    def records_for_target(self, target_label: str) -> tuple[CampaignRecord, ...]:
        """All campaign records for one targeted user."""
        return tuple(r for r in self.records if r.target_label == target_label)

    def total_cost_eur(self) -> float:
        """Total billed cost across all campaigns."""
        return round(
            sum(r.outcome.metrics.cost_eur for r in self.records if r.outcome), 2
        )

    def successful_cost_eur(self) -> float:
        """Billed cost of the successful nanotargeting campaigns only."""
        return round(
            sum(r.outcome.metrics.cost_eur for r in self.successful_records if r.outcome),
            2,
        )

    def table_rows(self) -> list[dict]:
        """Table 2 as a list of dictionaries (one per campaign)."""
        return [record.table_row() for record in self.records]


class NanotargetingExperiment:
    """Plans and runs the 21-campaign nanotargeting experiment."""

    def __init__(
        self,
        api: AdsManagerAPI,
        engine: DeliveryEngine,
        config: ExperimentConfig | None = None,
        *,
        click_log: ClickLog | None = None,
        seed: SeedLike = None,
    ) -> None:
        self._api = api
        self._engine = engine
        self._config = config or ExperimentConfig()
        self._click_log = click_log or ClickLog()
        rng = as_generator(self._config.seed if seed is None else seed)
        self._base_seed = int(rng.integers(0, 2**62))

    @property
    def config(self) -> ExperimentConfig:
        """The experiment configuration in use."""
        return self._config

    @property
    def api(self) -> AdsManagerAPI:
        """The Ads API this experiment launches its campaigns through.

        Countermeasure evaluations must install rules on *this* API's
        policy (see :func:`repro.countermeasures.run_protected_experiment`)
        — mutating a different instance's policy would not affect the run.
        """
        return self._api

    @property
    def click_log(self) -> ClickLog:
        """The shared web-server click log."""
        return self._click_log

    # -- planning -----------------------------------------------------------------

    def select_targets(self, candidates: Sequence[SyntheticUser]) -> list[SyntheticUser]:
        """Pick the targeted users (the "authors") among eligible candidates.

        A candidate is eligible when they carry at least as many interests
        as the largest campaign size.
        """
        needed = max(self._config.interest_counts)
        eligible = [user for user in candidates if user.interest_count >= needed]
        if len(eligible) < self._config.n_targets:
            raise ModelError(
                f"only {len(eligible)} candidates have >= {needed} interests; "
                f"{self._config.n_targets} targets are required"
            )
        rng = derive_generator(self._base_seed, "target-selection")
        indices = rng.choice(len(eligible), size=self._config.n_targets, replace=False)
        return [eligible[int(i)] for i in sorted(indices)]

    def plan_interest_sets(self, target: SyntheticUser) -> dict[int, tuple[int, ...]]:
        """Nested random interest subsets for one target (paper Section 5.1)."""
        from .selection import nested_subsets

        max_count = max(self._config.interest_counts)
        rng = derive_generator(self._base_seed, "interest-sets", target.user_id)
        interests = list(target.interest_ids)
        rng.shuffle(interests)
        return nested_subsets(interests[:max_count], self._config.interest_counts)

    def plan_audiences(
        self, interest_sets: dict[int, tuple[int, ...]]
    ) -> dict[int, float]:
        """Raw audience of every planned campaign from one batched query.

        All campaign interest sets of a target are prefixes of the largest
        one (:meth:`plan_interest_sets` builds nested subsets), so a single
        :meth:`~repro.reach.ReachBackend.prefix_audiences` kernel call
        resolves every size — bit-identical to querying the backend once per
        campaign, without the per-campaign Python round-trip.
        """
        if not interest_sets:
            return {}
        sizes = sorted(interest_sets)
        longest = interest_sets[sizes[-1]]
        for size in sizes:
            if interest_sets[size] != longest[:size]:
                raise ModelError(
                    "interest sets must be nested prefixes of the largest set"
                )
        # Campaigns are worldwide (the experiment ran with the 2020
        # platform), matching TargetingSpec.for_interests' default.
        prefix = self._api.backend.prefix_audiences(longest, None)
        return {size: float(prefix[size - 1]) for size in sizes}

    def plan_audiences_panel(
        self, interest_sets_per_target: Sequence[dict[int, tuple[int, ...]]]
    ) -> list[dict[int, float]]:
        """Raw audiences for *every* target's campaigns in one matrix sweep.

        Stacks each target's largest nested set into one padded id matrix
        and resolves all campaign audiences with a single row-parallel
        prefix kernel call — the bulk kernel behind
        :meth:`~repro.adsapi.AdsManagerAPI.estimate_reach_matrix`, without
        the reporting floor since delivery consumes raw audiences.  Row
        ``t`` is bit-identical to :meth:`plan_audiences` for target ``t``.
        """
        plans = [dict(sets) for sets in interest_sets_per_target]
        if not plans:
            return []
        longest_rows = []
        for sets in plans:
            sizes = sorted(sets)
            if not sizes:
                longest_rows.append(())
                continue
            longest = sets[sizes[-1]]
            for size in sizes:
                if sets[size] != longest[:size]:
                    raise ModelError(
                        "interest sets must be nested prefixes of the largest set"
                    )
            longest_rows.append(longest)
        from .selection import pad_id_rows

        ids, counts = pad_id_rows(longest_rows)
        if ids.shape[1] == 0:
            return [{} for _ in plans]
        prefix = self._api.backend.prefix_audiences_panel(ids, counts, None)
        return [
            {size: float(prefix[row, size - 1]) for size in sorted(sets)}
            for row, sets in enumerate(plans)
        ]

    def build_campaign(
        self, target: SyntheticUser, target_label: str, interests: Sequence[int]
    ) -> Campaign:
        """Build one worldwide campaign for a (target, interest set) pair."""
        n_interests = len(interests)
        creative = AdCreative.for_experiment(target_label, n_interests)
        spec = TargetingSpec.for_interests(interests)
        return Campaign(
            campaign_id=f"nano-{target_label.lower().replace(' ', '-')}-{n_interests}",
            spec=spec,
            creative=creative,
            schedule=CampaignSchedule.paper_schedule(),
            daily_budget_eur=self._config.daily_budget_eur,
            initial_budget_eur=self._config.initial_budget_eur,
            metadata={"target_user_id": target.user_id, "n_interests": n_interests},
        )

    # -- execution -------------------------------------------------------------------

    def run(self, targets: Sequence[SyntheticUser] | None = None, *,
            candidates: Sequence[SyntheticUser] | None = None) -> ExperimentReport:
        """Run the full experiment and return the Table 2 report.

        Either pass explicit ``targets`` (e.g. three specific panel users) or
        ``candidates`` from which targets are selected automatically.
        """
        if targets is None:
            if candidates is None:
                raise ModelError("either targets or candidates must be provided")
            targets = self.select_targets(candidates)
        records: list[CampaignRecord] = []
        raw_audiences: list[float] = []
        # Plan every target's interest sets first so all campaign audiences
        # resolve through one bulk prefix sweep instead of one backend
        # round-trip per target.
        interest_sets_per_target = [self.plan_interest_sets(t) for t in targets]
        audiences_per_target = self.plan_audiences_panel(interest_sets_per_target)
        for index, target in enumerate(targets):
            label = f"User {index + 1}"
            interest_sets = interest_sets_per_target[index]
            audiences = audiences_per_target[index]
            for n_interests in self._config.interest_counts:
                campaign = self.build_campaign(target, label, interest_sets[n_interests])
                record = self._run_campaign(
                    campaign, target, label, audiences[n_interests]
                )
                records.append(record)
                if record.outcome is not None:
                    raw_audiences.append(record.outcome.raw_audience)
        review_time = CampaignSchedule.paper_schedule().windows[-1].end_hour
        suspended = self._api.policy.post_campaign_review(
            self._api.account, raw_audiences, review_time_hours=review_time
        )
        return ExperimentReport(records=tuple(records), account_suspended=suspended)

    # -- internals ----------------------------------------------------------------------

    def _run_campaign(
        self,
        campaign: Campaign,
        target: SyntheticUser,
        label: str,
        audience: float | None = None,
    ) -> CampaignRecord:
        try:
            # The planned audience (when present) came off the bulk prefix
            # kernel and is bit-identical to the scalar lookup authorize
            # would otherwise issue.
            self._api.authorize_campaign(campaign.spec, raw_audience=audience)
        except CampaignRejectedError as exc:
            return CampaignRecord(
                target_label=label,
                target_user_id=target.user_id,
                n_interests=campaign.interest_count,
                campaign=campaign.with_status(CampaignStatus.REJECTED),
                outcome=None,
                validation=SuccessValidation(False, False, False),
                rejected=True,
                rejection_reason=str(exc),
            )
        if audience is None:
            audience = self._api.backend.audience_for(
                campaign.spec.interests,
                campaign.spec.effective_locations(),
                combine=campaign.spec.interest_combine,
            )
        outcome = self._engine.run(
            campaign.with_status(CampaignStatus.ACTIVE),
            audience_size=audience,
            target_user_id=target.user_id,
            target_in_audience=True,
            click_log=self._click_log,
        )
        self._api.account.charge(outcome.metrics.cost_eur)
        validation = SuccessValidation(
            reached_exactly_one=outcome.metrics.exclusively_reached_one_user,
            target_clicked=self._click_log.has_target_click(campaign.campaign_id),
            disclosure_captured=(
                outcome.disclosure is not None
                and outcome.disclosure.matches_spec(campaign)
            ),
        )
        return CampaignRecord(
            target_label=label,
            target_user_id=target.user_id,
            n_interests=campaign.interest_count,
            campaign=campaign.with_status(CampaignStatus.STOPPED),
            outcome=outcome,
            validation=validation,
        )
