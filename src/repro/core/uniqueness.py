"""The end-to-end uniqueness model (Section 4).

:class:`UniquenessModel` wires together the collection of audience sizes
from the Ads API, the quantile machinery, the log-log fit and the bootstrap
confidence intervals, and produces the :class:`UniquenessReport` rows of
Table 1 plus the VAS(Q) curves of Figures 3-5.

Both heavy stages run on the batched kernels: :meth:`UniquenessModel.collect`
rides the collector's panel tier — one vectorised strategy-ordering pass
plus one spec-free :meth:`~repro.adsapi.AdsManagerAPI.estimate_reach_matrix`
call for the whole users × N matrix (the per-user
:meth:`~repro.adsapi.AdsManagerAPI.estimate_reach_batch` and scalar tiers
remain available through :class:`AudienceSizeCollector` for parity
benchmarking) — and :meth:`UniquenessModel.estimate` computes its
confidence intervals with the vectorised
:func:`~repro.core.bootstrap.bootstrap_cutpoints`.  All tiers are
bit-identical; the panel tier is several times faster again at paper scale
(see ``benchmarks/bench_perf_hot_paths.py``).

On top of the tiers sits the sharded execution layer (:mod:`repro.exec`):
pass a :class:`~repro.exec.ShardExecutor` to run collection shard-parallel
(:meth:`UniquenessModel.collect` / :meth:`UniquenessModel.estimate` with
``executor=...``), or set ``stream=True`` to run the whole collection →
quantiles → bootstrap chain through the mergeable
:class:`~repro.core.quantiles.AudienceAccumulator` without ever
materialising the users × N sample matrix.  Every route returns
bit-identical estimates.  Collected samples are cached per
``(strategy, tier)`` — a refreshed panel-tier result is never silently
served to a caller that asked for a different tier — and
:meth:`UniquenessModel.cache_clear` drops the cache wholesale.
"""

from __future__ import annotations

from typing import Sequence

from .._rng import derive_generator
from ..adsapi import AdsManagerAPI
from ..config import UniquenessConfig
from ..errors import ModelError
from ..exec import ShardExecutor, drain
from ..fdvt.panel import FDVTPanel
from .bootstrap import bootstrap_cutpoints, percentile_interval
from .collection import AudienceSizeCollector
from .fitting import fit_vas
from .quantiles import (
    AudienceAccumulator,
    AudienceSamples,
    StreamedAudienceSamples,
    probability_to_percentile,
)
from .results import NPEstimate, UniquenessReport
from .selection import SelectionStrategy, strategy_fingerprint


class UniquenessModel:
    """Estimates N_P (the interests making a user unique) on the simulated platform."""

    def __init__(
        self,
        api: AdsManagerAPI,
        panel: FDVTPanel,
        config: UniquenessConfig | None = None,
        *,
        locations: Sequence[str] | None = None,
    ) -> None:
        self._api = api
        self._panel = panel
        self._config = config or UniquenessConfig()
        max_interests = min(
            self._config.max_interests, api.platform.max_interests_per_audience
        )
        self._collector = AudienceSizeCollector(
            api, panel, max_interests=max_interests, locations=locations
        )
        self._cache: dict[
            tuple[int, tuple], AudienceSamples | StreamedAudienceSamples
        ] = {}

    @property
    def config(self) -> UniquenessConfig:
        """The analysis configuration in use."""
        return self._config

    @property
    def panel(self) -> FDVTPanel:
        """The panel the model analyses."""
        return self._panel

    # -- data collection -----------------------------------------------------------

    def collect(
        self,
        strategy: SelectionStrategy,
        *,
        refresh: bool = False,
        mode: str | None = None,
        executor: ShardExecutor | None = None,
    ) -> AudienceSamples:
        """Collect (or return cached) audience samples for one strategy.

        ``mode`` picks a collection tier (``"panel"`` by default) and
        ``executor`` routes collection through the sharded execution layer
        instead; the two are mutually exclusive.  Results are cached per
        ``(strategy, tier)``: all tiers return bit-identical samples, but a
        caller that asked for a specific tier or shard plan never gets a
        result silently served from a different one (and ``refresh`` only
        refreshes its own tier's entry).
        """
        if mode is not None and executor is not None:
            raise ModelError("pass either mode or executor, not both")
        if executor is not None:
            tier: tuple = ("sharded", *executor.fingerprint)
        else:
            tier = (mode or "panel",)
        key = (strategy_fingerprint(strategy), tier)
        if refresh or key not in self._cache:
            if executor is not None:
                samples: AudienceSamples = self._collector.collect_sharded(
                    strategy, executor=executor
                )
            else:
                samples = self._collector.collect(strategy, mode=mode)
            self._cache[key] = samples
        return self._cache[key]

    def collect_streamed(
        self,
        strategy: SelectionStrategy,
        *,
        refresh: bool = False,
        executor: ShardExecutor | None = None,
    ) -> StreamedAudienceSamples:
        """Collect via the streaming path into a mergeable accumulator.

        Per-shard blocks from
        :meth:`~repro.core.collection.AudienceSizeCollector.collect_stream`
        drain into an :class:`~repro.core.quantiles.AudienceAccumulator`;
        the finalized column store answers quantile and bootstrap queries
        bit-identically to the materialised tiers without the full users × N
        matrix ever existing.  Cached per ``(strategy, shard plan)`` like
        the other tiers.
        """
        executor = executor or ShardExecutor()
        key = (strategy_fingerprint(strategy), ("stream", *executor.fingerprint))
        if refresh or key not in self._cache:
            self._cache[key] = drain(
                self._collector.collect_stream(strategy, executor=executor),
                AudienceAccumulator(),
            )
        samples = self._cache[key]
        assert isinstance(samples, StreamedAudienceSamples)
        return samples

    def cache_clear(self) -> None:
        """Drop every cached collection (all strategies, all tiers)."""
        self._cache.clear()

    # -- estimation -------------------------------------------------------------------

    def estimate(
        self,
        strategy: SelectionStrategy,
        *,
        probabilities: Sequence[float] | None = None,
        samples: AudienceSamples | StreamedAudienceSamples | None = None,
        executor: ShardExecutor | None = None,
        stream: bool = False,
    ) -> UniquenessReport:
        """Estimate N_P for every requested probability under one strategy.

        With ``executor`` both heavy stages run shard-parallel — collection
        over panel-row shards and the bootstrap over replicate chunks on the
        same runner backend; with ``stream=True`` collection additionally
        streams per-shard blocks into the mergeable accumulator so
        collection → quantiles → bootstrap never hold the full sample
        matrix.  Every route is bit-identical.
        """
        if probabilities is None:
            probabilities = self._config.probabilities
        probabilities = tuple(probabilities)
        if not probabilities:
            raise ModelError("at least one probability is required")
        if samples is None:
            if stream:
                samples = self.collect_streamed(strategy, executor=executor)
            else:
                samples = self.collect(strategy, executor=executor)
        percentiles = [probability_to_percentile(p) for p in probabilities]
        vas_rows = samples.vas_many(percentiles)
        bootstrap_seed = derive_generator(
            self._config.seed, "bootstrap", strategy.name
        )
        cutpoint_distributions = bootstrap_cutpoints(
            samples,
            percentiles,
            n_bootstrap=self._config.n_bootstrap,
            seed=bootstrap_seed,
            executor=executor,
        )
        estimates = {}
        vas_curves = {}
        for probability, percentile, vas in zip(probabilities, percentiles, vas_rows):
            fit = fit_vas(vas, samples.floor)
            interval = percentile_interval(
                cutpoint_distributions[percentile], self._config.confidence_level
            )
            estimates[probability] = NPEstimate(
                probability=probability,
                n_p=fit.cutpoint,
                confidence_interval=interval,
                r_squared=fit.r_squared,
                fit=fit,
            )
            vas_curves[probability] = vas
        return UniquenessReport(
            strategy_name=strategy.name,
            estimates=estimates,
            vas_curves=vas_curves,
            n_users=samples.n_users,
            floor=samples.floor,
        )

    def estimate_single(
        self, strategy: SelectionStrategy, probability: float
    ) -> NPEstimate:
        """Convenience wrapper returning the estimate for one probability."""
        report = self.estimate(strategy, probabilities=[probability])
        return report.estimate_for(probability)
