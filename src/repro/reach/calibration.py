"""Calibration of the reach model's correlation exponent.

The only free parameter of :class:`~repro.reach.model.StatisticalReachModel`
is the conditional-retention exponent ``alpha``.  The paper does not report
it (it is an artefact of our substitution for the live Ads API), so we
calibrate it against the paper's headline result: the *median* number of
random interests making a user unique, ``N(R)_0.5 ≈ 11.4`` (Table 1).

The calibration uses a closed-form approximation of the model: for a set of
interests with marginal probabilities ``p_1..p_N`` (rarest first), the
modelled audience is ``W * p_(1) * prod p_(k)^alpha``, so the expected
number of interests needed to reach an audience of one is the smallest ``N``
with ``log10(W) + log10(p_(1)) + alpha * sum_{k>=2} log10(p_(k)) <= 0``.
Bisection on ``alpha`` then matches the median of that cutpoint across a
sample of per-user interest-rarity profiles to the target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import CalibrationError


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of the correlation-exponent calibration."""

    alpha: float
    achieved_median_cutpoint: float
    target_median_cutpoint: float
    iterations: int

    @property
    def error(self) -> float:
        """Absolute difference between achieved and target cutpoints."""
        return abs(self.achieved_median_cutpoint - self.target_median_cutpoint)


def _profile_cutpoint(
    log10_probs: np.ndarray, alpha: float, log10_world: float
) -> float:
    """Smallest N at which the modelled audience of the first N interests is <= 1.

    ``log10_probs`` holds the log10 marginal probabilities of a user's
    interests in the order they would be combined (already selected, e.g.
    randomly shuffled or sorted by rarity).
    """
    if log10_probs.size == 0:
        return np.inf
    rarest_so_far = np.minimum.accumulate(log10_probs)
    cumulative = np.cumsum(log10_probs)
    # audience(N) = W * p_min(N) * prod_{others} p^alpha
    log10_audience = log10_world + rarest_so_far + alpha * (cumulative - rarest_so_far)
    below = np.nonzero(log10_audience <= 0.0)[0]
    if below.size == 0:
        # Extrapolate linearly from the last two points.
        if log10_probs.size < 2 or log10_audience[-1] >= log10_audience[-2]:
            return float(log10_probs.size * 2)
        slope = log10_audience[-1] - log10_audience[-2]
        extra = -log10_audience[-1] / slope
        return float(log10_probs.size + extra)
    return float(below[0] + 1)


def median_cutpoint(
    profiles: Sequence[np.ndarray], alpha: float, world_population: float
) -> float:
    """Median uniqueness cutpoint across per-user probability profiles."""
    if not profiles:
        raise CalibrationError("at least one interest profile is required")
    log10_world = np.log10(world_population)
    cutpoints = [
        _profile_cutpoint(np.log10(np.asarray(profile, dtype=float)), alpha, log10_world)
        for profile in profiles
    ]
    return float(np.median(cutpoints))


def calibrate_correlation_alpha(
    profiles: Sequence[np.ndarray],
    world_population: float,
    *,
    target_median_cutpoint: float = 11.41,
    tolerance: float = 0.25,
    max_iterations: int = 60,
) -> CalibrationResult:
    """Find ``alpha`` so the median random-selection cutpoint hits the target.

    Parameters
    ----------
    profiles:
        One array per (synthetic) panel user holding the marginal
        probabilities of that user's interests in random order.
    world_population:
        The user base ``W`` over which uniqueness is measured.
    target_median_cutpoint:
        The paper's ``N(R)_0.5`` value by default.
    """
    if not profiles:
        raise CalibrationError("at least one interest profile is required")
    if target_median_cutpoint <= 1:
        raise CalibrationError("target_median_cutpoint must exceed 1")

    low, high = 0.01, 1.0
    # The cutpoint decreases as alpha grows (more independence -> faster decay).
    low_value = median_cutpoint(profiles, low, world_population)
    high_value = median_cutpoint(profiles, high, world_population)
    if not (high_value <= target_median_cutpoint <= low_value):
        raise CalibrationError(
            "target cutpoint "
            f"{target_median_cutpoint} is outside the achievable range "
            f"[{high_value:.2f}, {low_value:.2f}]"
        )

    alpha = (low + high) / 2.0
    achieved = median_cutpoint(profiles, alpha, world_population)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        alpha = (low + high) / 2.0
        achieved = median_cutpoint(profiles, alpha, world_population)
        if abs(achieved - target_median_cutpoint) <= tolerance:
            break
        if achieved > target_median_cutpoint:
            low = alpha
        else:
            high = alpha
    return CalibrationResult(
        alpha=alpha,
        achieved_median_cutpoint=achieved,
        target_median_cutpoint=target_median_cutpoint,
        iterations=iterations,
    )
