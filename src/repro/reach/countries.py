"""The Facebook country user base used in the uniqueness analysis.

Appendix A (Table 3) of the paper lists the 50 countries with the largest
number of Facebook users at the time the dataset was collected (January
2017).  Together they account for roughly 1.5 billion monthly active users,
81% of Facebook's user base at the time, and they define the world
population ``W`` over which uniqueness is measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..errors import UnknownLocationError

#: Sentinel location meaning "no location filter" (available since ~2020).
WORLDWIDE = "WW"


@dataclass(frozen=True, slots=True)
class Country:
    """A country and its Facebook monthly-active-user count."""

    code: str
    name: str
    fb_users_millions: float

    @property
    def fb_users(self) -> int:
        """Number of Facebook users as an absolute count."""
        return int(round(self.fb_users_millions * 1_000_000))


#: Table 3 of the paper: the 50 largest Facebook countries in January 2017.
TOP_50_COUNTRIES: tuple[Country, ...] = (
    Country("US", "United States", 203),
    Country("IN", "India", 161),
    Country("BR", "Brazil", 114),
    Country("ID", "Indonesia", 91),
    Country("MX", "Mexico", 70),
    Country("PH", "Philippines", 56),
    Country("TR", "Turkey", 46),
    Country("TH", "Thailand", 42),
    Country("VN", "Vietnam", 42),
    Country("GB", "United Kingdom", 39),
    Country("EG", "Egypt", 33),
    Country("FR", "France", 33),
    Country("DE", "Germany", 30),
    Country("IT", "Italy", 30),
    Country("AR", "Argentina", 29),
    Country("PK", "Pakistan", 28),
    Country("CO", "Colombia", 26),
    Country("JP", "Japan", 26),
    Country("BD", "Bangladesh", 23),
    Country("ES", "Spain", 23),
    Country("CA", "Canada", 22),
    Country("MY", "Malaysia", 20),
    Country("PE", "Peru", 19),
    Country("KR", "South Korea", 18),
    Country("TW", "Taiwan", 18),
    Country("DZ", "Algeria", 16),
    Country("NG", "Nigeria", 16),
    Country("AU", "Australia", 15),
    Country("IQ", "Iraq", 14),
    Country("PL", "Poland", 14),
    Country("SA", "Saudi Arabia", 14),
    Country("ZA", "South Africa", 14),
    Country("MA", "Morocco", 13),
    Country("VE", "Venezuela", 13),
    Country("CL", "Chile", 12),
    Country("MM", "Myanmar", 12),
    Country("RU", "Russia", 12),
    Country("NL", "Netherlands", 10),
    Country("EC", "Ecuador", 9.80),
    Country("RO", "Romania", 8.60),
    Country("AE", "UA Emirates", 7.70),
    Country("NP", "Nepal", 6.70),
    Country("BE", "Belgium", 6.50),
    Country("SE", "Sweden", 6.20),
    Country("TN", "Tunisia", 6.10),
    Country("KE", "Kenya", 6),
    Country("PT", "Portugal", 5.90),
    Country("UA", "Ukraine", 5.90),
    Country("GT", "Guatemala", 5.50),
    Country("HU", "Hungary", 5.30),
)

_BY_CODE: dict[str, Country] = {country.code: country for country in TOP_50_COUNTRIES}

#: Facebook monthly active users worldwide at the end of 2020 (Section 5).
FB_WORLDWIDE_MAU_2020 = 2_800_000_000


def country_codes() -> tuple[str, ...]:
    """Codes of the 50 countries, in Table 3 order."""
    return tuple(country.code for country in TOP_50_COUNTRIES)


def get_country(code: str) -> Country:
    """Return the country for ``code`` or raise :class:`UnknownLocationError`."""
    try:
        return _BY_CODE[code]
    except KeyError:
        raise UnknownLocationError(code) from None

def is_known_location(code: str) -> bool:
    """True if ``code`` is the worldwide sentinel or a Table 3 country."""
    return code == WORLDWIDE or code in _BY_CODE


def total_user_base(codes: Iterable[str] | None = None) -> int:
    """Total Facebook users across ``codes`` (default: all 50 countries).

    Passing the worldwide sentinel anywhere in ``codes`` returns the 2020
    worldwide MAU figure, matching the behaviour of the nanotargeting
    experiment, which targeted the whole platform.
    """
    if codes is None:
        return sum(country.fb_users for country in TOP_50_COUNTRIES)
    codes = tuple(codes)
    if WORLDWIDE in codes:
        return FB_WORLDWIDE_MAU_2020
    return sum(get_country(code).fb_users for code in codes)


def location_fraction(codes: Iterable[str] | None = None) -> float:
    """Fraction of the 50-country user base covered by ``codes``.

    The worldwide sentinel yields a fraction greater than 1 because the
    2020 worldwide MAU exceeds the January 2017 50-country base.
    """
    base = total_user_base(None)
    return total_user_base(codes) / base
