"""Counter-based deterministic jitter for the reach model.

The reach model perturbs every audience with a small log-normal jitter that
must be (a) identical every time the same interest *set* is queried, (b)
independent of the order in which the interests are listed, and (c) cheap to
evaluate for thousands of combinations at once.  The original implementation
hashed the sorted combination with BLAKE2b and built a fresh
:class:`numpy.random.Generator` per query, which made the per-call Generator
construction the dominant cost of large collections.

This module replaces that with a Philox-style counter construction built
from the SplitMix64 finaliser, fully vectorised over numpy ``uint64``
arrays:

1. every interest id is mixed with the model key into a 64-bit *token hash*;
2. the seed of a combination is the wrapping **sum** of its token hashes —
   addition is commutative, so the seed depends only on the interest set,
   and the seeds of all ``1..N`` prefixes of an ordered list fall out of a
   single ``cumsum`` (this is what makes the prefix kernel O(N));
3. each seed is finalised through two independent SplitMix64 streams into
   two uniforms, combined by Box–Muller into one standard normal draw.

The same kernel serves the scalar and the batched entry points, so a scalar
query and the corresponding element of a batched query are bit-identical.
"""

from __future__ import annotations

import numpy as np

#: SplitMix64 constants (Steele, Lea & Flood; also used by Java's
#: ``SplittableRandom``).
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)

#: Stream separators so that the two uniforms feeding Box–Muller come from
#: independent finalisations of the same counter.
_STREAM_A = np.uint64(0xA5A5A5A5A5A5A5A5)
_STREAM_B = np.uint64(0xC3C3C3C3C3C3C3C3)

_TWO_PI = 2.0 * np.pi
_INV_2_53 = float(2.0**-53)


def _mix64(values: np.ndarray) -> np.ndarray:
    """SplitMix64 finaliser over a ``uint64`` array (wrapping arithmetic)."""
    with np.errstate(over="ignore"):
        values = (values ^ (values >> np.uint64(30))) * _MIX_1
        values = (values ^ (values >> np.uint64(27))) * _MIX_2
        return values ^ (values >> np.uint64(31))


def jitter_key(seed: int) -> np.uint64:
    """Derive the 64-bit jitter key from a model seed."""
    return _mix64(np.asarray([seed % (2**64)], dtype=np.uint64))[0]


def interest_token_hashes(interest_ids: np.ndarray, key: np.uint64) -> np.ndarray:
    """Per-interest 64-bit hashes keyed by the model's jitter key."""
    tokens = np.asarray(interest_ids, dtype=np.int64).astype(np.uint64)
    with np.errstate(over="ignore"):
        return _mix64((tokens + _GAMMA) ^ key)


def prefix_seeds(
    interest_ids: np.ndarray, key: np.uint64, *, axis: int = -1
) -> np.ndarray:
    """Jitter seeds for every prefix ``1..N`` of an ordered id list.

    Because the combination seed is a wrapping sum of per-id hashes, the
    seed of prefix ``k`` is the ``k``-th cumulative sum — one vectorised
    pass instead of ``N`` independent hash-and-seed constructions.  The
    value for prefix ``k`` only depends on the first ``k`` ids, so a
    truncated call returns a bit-identical prefix of the full result.

    ``interest_ids`` may be a 2D (panel) matrix of ordered id rows; the
    cumulative sum then runs along ``axis`` (default: the last axis, i.e.
    one independent prefix stream per row, bit-identical to calling the 1D
    form on each row).
    """
    hashes = interest_token_hashes(interest_ids, key)
    with np.errstate(over="ignore"):
        return np.cumsum(hashes, axis=axis, dtype=np.uint64)


def combination_seed(interest_ids: np.ndarray, key: np.uint64) -> np.uint64:
    """Jitter seed of one interest set (order-independent)."""
    return prefix_seeds(interest_ids, key)[-1]


def lognormal_jitter(seeds: np.ndarray, log10_sigma: float) -> np.ndarray:
    """Deterministic log-normal jitter factors ``10 ** N(0, sigma)``.

    One standard normal is derived per seed via Box–Muller over two
    SplitMix64-finalised uniforms.  Purely elementwise, so scalar and
    batched calls agree bitwise.
    """
    seeds = np.asarray(seeds, dtype=np.uint64)
    if log10_sigma <= 0:
        return np.ones(seeds.shape, dtype=float)
    bits_a = _mix64(seeds ^ _STREAM_A)
    bits_b = _mix64(seeds ^ _STREAM_B)
    # 53-bit mantissas; u1 is shifted into (0, 1] so that log(u1) is finite.
    u1 = ((bits_a >> np.uint64(11)) + np.uint64(1)).astype(float) * _INV_2_53
    u2 = (bits_b >> np.uint64(11)).astype(float) * _INV_2_53
    normal = np.sqrt(-2.0 * np.log(u1)) * np.cos(_TWO_PI * u2)
    return 10.0 ** (log10_sigma * normal)
