"""Analytic world-scale audience (reach) model.

The paper retrieves, from the Facebook Ads Manager API, the Potential Reach
of audiences defined by 1..25 interests over a 1.5B-user base.  That API is
not available offline, so this module provides a statistical stand-in: a
model of how many of the ``W`` users in the selected locations hold *all*
interests of a combination.

Independence between interests would be wildly wrong — a user's interests
are strongly correlated (someone interested in "trail running shoes" is far
more likely than a random user to also be interested in "ultramarathons").
We capture that with a *conditional-retention* model: sort the interests of
a combination from rarest to most popular with marginal probabilities
``p_(1) <= p_(2) <= ...``; the fraction of users holding all of them is

    p(S) = p_(1) * prod_{k >= 2} r_k,      r_k = min(1, boost_k * p_(k) ** alpha)

where ``alpha`` in (0, 1) is the correlation exponent (``alpha = 1`` recovers
independence) and ``boost_k > 1`` applies when interest ``k`` shares a topic
with the rarest interest, reflecting the stronger co-occurrence of same-topic
interests.  A small deterministic log-normal jitter keyed on the combination
makes repeated queries for the same audience return identical values while
different combinations of similar rarity spread realistically.

The single parameter ``alpha`` reproduces both regimes of the paper: the
least-popular selection becomes unique after ~4 interests and the random
selection after ~22 (Table 1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._rng import stable_hash
from ..catalog import InterestCatalog
from ..config import ReachModelConfig
from ..errors import ConfigurationError
from .backend import ReachBackend
from .countries import location_fraction, total_user_base


class StatisticalReachModel(ReachBackend):
    """Audience-size model over the paper's 1.5B-user base."""

    def __init__(
        self,
        catalog: InterestCatalog,
        config: ReachModelConfig | None = None,
        *,
        world_population: float | None = None,
    ) -> None:
        self._catalog = catalog
        self._config = config or ReachModelConfig()
        if world_population is None:
            self._world = float(total_user_base())
        else:
            self._world = float(world_population)
        if self._world <= 0:
            raise ConfigurationError("world_population must be positive")

    # -- properties ---------------------------------------------------------

    @property
    def catalog(self) -> InterestCatalog:
        """The interest catalog the model reads marginal audiences from."""
        return self._catalog

    @property
    def config(self) -> ReachModelConfig:
        """The reach-model configuration."""
        return self._config

    @property
    def correlation_alpha(self) -> float:
        """The conditional-retention exponent currently in use."""
        return self._config.correlation_alpha

    def world_size(self, locations: Sequence[str] | None = None) -> float:
        """Total user base for ``locations`` (the full base when ``None``)."""
        if locations is None:
            return self._world
        return self._world * location_fraction(locations)

    # -- marginals ------------------------------------------------------------

    def marginal_probability(self, interest_id: int) -> float:
        """Fraction of the world base holding ``interest_id``."""
        audience = self._catalog.audience_size(interest_id)
        return min(1.0, audience / self._world)

    def marginal_audience(
        self, interest_id: int, locations: Sequence[str] | None = None
    ) -> float:
        """Audience of a single interest restricted to ``locations``."""
        return self.marginal_probability(interest_id) * self.world_size(locations)

    # -- combinations ----------------------------------------------------------

    def intersection_probability(self, interest_ids: Sequence[int]) -> float:
        """Fraction of users holding *all* interests in ``interest_ids``."""
        ids = [int(i) for i in interest_ids]
        if not ids:
            return 1.0
        probs = np.array([self.marginal_probability(i) for i in ids], dtype=float)
        topics = [self._catalog.get(i).topic for i in ids]
        order = np.argsort(probs, kind="stable")
        sorted_probs = probs[order]
        sorted_topics = [topics[int(i)] for i in order]
        rarest_topic = sorted_topics[0]
        probability = float(sorted_probs[0])
        alpha = self._config.correlation_alpha
        boost = 1.0 + self._config.topic_affinity_boost
        for k in range(1, len(ids)):
            retention = sorted_probs[k] ** alpha
            if sorted_topics[k] == rarest_topic:
                retention *= boost
            probability *= min(1.0, retention)
        return min(probability, float(sorted_probs[0]))

    def union_probability(self, interest_ids: Sequence[int]) -> float:
        """Fraction of users holding *at least one* interest in the set."""
        ids = [int(i) for i in interest_ids]
        if not ids:
            return 0.0
        probs = np.array([self.marginal_probability(i) for i in ids], dtype=float)
        return float(1.0 - np.prod(1.0 - probs))

    def audience_for(
        self,
        interest_ids: Sequence[int],
        locations: Sequence[str] | None = None,
        *,
        combine: str = "and",
    ) -> float:
        """Audience size of an interest combination restricted to locations.

        The value is *not* floored or rounded; the Ads API layer applies the
        Potential Reach reporting rules.
        """
        ids = tuple(int(i) for i in interest_ids)
        base = self.world_size(locations)
        if not ids:
            return base
        if combine == "and":
            probability = self.intersection_probability(ids)
        elif combine == "or":
            probability = self.union_probability(ids)
        else:
            raise ConfigurationError(f"unknown combine mode: {combine!r}")
        audience = base * probability * self._jitter(ids)
        # The jitter never pushes an AND-audience above its rarest marginal.
        if combine == "and":
            rarest = min(self.marginal_audience(i, locations) for i in ids)
            audience = min(audience, rarest)
        return max(audience, 0.0)

    # -- internals ------------------------------------------------------------

    def _jitter(self, interest_ids: tuple[int, ...]) -> float:
        """Deterministic log-normal jitter keyed on the interest combination.

        The jitter is intentionally independent of the location filter and of
        the AND/OR mode, so that the model's monotonicity invariants (adding
        a location never shrinks an audience, narrowing never grows it) hold
        exactly and not just in expectation.
        """
        sigma = self._config.jitter_log10_sigma
        if sigma <= 0:
            return 1.0
        seed = stable_hash(self._config.seed, tuple(sorted(interest_ids)))
        rng = np.random.default_rng(seed % (2**63))
        return float(10.0 ** rng.normal(0.0, sigma))
