"""Analytic world-scale audience (reach) model.

The paper retrieves, from the Facebook Ads Manager API, the Potential Reach
of audiences defined by 1..25 interests over a 1.5B-user base.  That API is
not available offline, so this module provides a statistical stand-in: a
model of how many of the ``W`` users in the selected locations hold *all*
interests of a combination.

Independence between interests would be wildly wrong — a user's interests
are strongly correlated (someone interested in "trail running shoes" is far
more likely than a random user to also be interested in "ultramarathons").
We capture that with a *conditional-retention* model: sort the interests of
a combination from rarest to most popular with marginal probabilities
``p_(1) <= p_(2) <= ...``; the fraction of users holding all of them is

    p(S) = p_(1) * prod_{k >= 2} r_k,      r_k = min(1, boost_k * p_(k) ** alpha)

where ``alpha`` in (0, 1) is the correlation exponent (``alpha = 1`` recovers
independence) and ``boost_k > 1`` applies when interest ``k`` shares a topic
with the rarest interest, reflecting the stronger co-occurrence of same-topic
interests.  A small deterministic log-normal jitter keyed on the combination
makes repeated queries for the same audience return identical values while
different combinations of similar rarity spread realistically.

The single parameter ``alpha`` reproduces both regimes of the paper: the
least-popular selection becomes unique after ~4 interests and the random
selection after ~22 (Table 1).

Batch kernel design
-------------------
The paper-scale measurement queries, for every panel user, all ``1..N``
prefixes of one ordered interest list — the hot path of the whole pipeline.
Evaluating each prefix independently costs O(N) marginal lookups, one sort
and one fresh jitter Generator per prefix, i.e. O(N^2) work per user.  The
batched kernel (:meth:`StatisticalReachModel.prefix_audiences`) instead:

* caches the catalog marginals and topic codes as id-indexed numpy arrays
  (built once, looked up with a single ``searchsorted`` per query);
* tracks the rarest-so-far interest with ``minimum.accumulate`` and turns
  the conditional-retention product into cumulative log-sums, so all ``N``
  prefix intersection probabilities come out of one O(N log N) pass;
* draws the jitter from the counter-based construction in
  :mod:`repro.reach.jitter` — one cumulative sum of per-id hashes instead
  of ``N`` Generator constructions.

Every prefix value depends only on the ids before it, so the scalar entry
points (:meth:`audience_for`, :meth:`intersection_probability`) route
through the same kernel and return bit-identical values to the batched
path.  Repeated queries with the same id order are exactly identical;
querying a *permutation* of the same set agrees to floating-point rounding
(the cumulative log-sums accumulate in query order, so the last few ULPs
can differ — only the jitter factor is exactly order-independent).  :meth:`audience_for_batch` additionally decomposes an arbitrary
combination list into maximal prefix chains so that batched Ads-API queries
over prefix families hit the O(N) kernel once per chain.

At panel scale, :meth:`StatisticalReachModel.prefix_audiences_panel` lifts
the whole kernel one level further: it takes a padded ``(n_users, width)``
matrix of ordered id rows and computes every user's 1..N prefix audiences
in one chunked cumulative sweep (axis-wise cumulative minima/log-sums plus
a ≤ 25-step column sweep for the per-topic boost corrections), sharing the
marginal arrays and the SplitMix64 jitter stream so each row is
bit-identical to the per-user and scalar paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._rng import stable_hash
from ..cache import BuildCache, catalog_stage_key, stable_fingerprint
from ..catalog import DEFAULT_WORLD_POPULATION, InterestCatalog
from ..config import CatalogConfig, ReachModelConfig
from ..errors import ConfigurationError, UnknownInterestError
from .backend import ReachBackend
from .countries import location_fraction, total_user_base
from .jitter import (
    combination_seed,
    jitter_key,
    lognormal_jitter,
    prefix_seeds,
)

#: Bound on the per-instance memoisation caches for scalar lookups.
_SCALAR_CACHE_SIZE = 4096


@dataclass(frozen=True)
class ReachModelSpec:
    """Everything needed to rebuild a :class:`StatisticalReachModel`.

    The sharded execution layer's process workers cannot cheaply ship a
    live model (its catalog holds one object per interest); instead a shard
    task carries this frozen, hashable spec and each worker rebuilds — and
    memoises — the model from config + seed.  Catalog generation and the
    jitter key are fully deterministic, so a rebuilt model returns
    bit-identical audiences to the original (pinned by
    ``tests/test_exec_sharding.py``).
    """

    catalog_config: CatalogConfig
    reach_config: ReachModelConfig
    catalog_seed: int | None = None
    catalog_world_population: float = DEFAULT_WORLD_POPULATION
    world_population: float | None = None

    def fingerprint(self) -> str:
        """Stable content fingerprint of the model this spec rebuilds.

        Follows the config fingerprint contract (:mod:`repro.config`):
        equal specs — and only equal specs — share a digest, across
        process restarts.  Process workers key their per-worker model
        memo on it (:mod:`repro.exec.tasks`).
        """
        return stable_fingerprint(
            "ReachModelSpec",
            {
                "catalog_config": self.catalog_config.to_dict(),
                "reach_config": self.reach_config.to_dict(),
                "catalog_seed": self.catalog_seed,
                "catalog_world_population": self.catalog_world_population,
                "world_population": self.world_population,
            },
        )

    def build(self, *, cache: "BuildCache | None" = None) -> "StatisticalReachModel":
        """Rebuild the model this spec describes.

        With a :class:`~repro.cache.BuildCache`, the catalog generation —
        the expensive part — is keyed by the same catalog-stage
        fingerprint :func:`repro.pipeline.build_catalog` uses, so a
        worker that already compiled a sweep simulation reuses its
        catalog here (and vice versa) — and a cache with a disk tier lets
        a cold process worker *load* the catalog from the shared root
        instead of regenerating it.  The model shell itself is always
        fresh: its memo caches are per-instance run state.
        """

        def generate() -> InterestCatalog:
            return InterestCatalog.generate(
                self.catalog_config,
                world_population=self.catalog_world_population,
                seed=self.catalog_seed,
            )

        if cache is None:
            catalog = generate()
        else:
            # Local import: repro.io reaches this module through the fdvt
            # → exec chain, so a module-level import would cycle.
            from ..io.artifacts import CATALOG_CODEC

            key = catalog_stage_key(
                self.catalog_config, self.catalog_seed, self.catalog_world_population
            )
            catalog = cache.get_or_build(key, generate, codec=CATALOG_CODEC)
        return StatisticalReachModel(
            catalog,
            self.reach_config,
            world_population=self.world_population,
            spec=self,
        )


class StatisticalReachModel(ReachBackend):
    """Audience-size model over the paper's 1.5B-user base."""

    def __init__(
        self,
        catalog: InterestCatalog,
        config: ReachModelConfig | None = None,
        *,
        world_population: float | None = None,
        spec: ReachModelSpec | None = None,
    ) -> None:
        self._catalog = catalog
        self._config = config or ReachModelConfig()
        self._spec = spec
        if world_population is None:
            self._world = float(total_user_base())
        else:
            self._world = float(world_population)
        if self._world <= 0:
            raise ConfigurationError("world_population must be positive")
        self._jitter_key = jitter_key(
            stable_hash(self._config.seed, "reach-jitter")
        )
        # Id-indexed catalog arrays, built lazily on first use.
        self._sorted_ids: np.ndarray | None = None
        self._marginal_array: np.ndarray | None = None
        self._topic_codes: np.ndarray | None = None
        self._n_topic_codes: int = 0
        # Bounded memo caches for repeated scalar queries (nanotargeting
        # planner, countermeasure evaluation, FDVT risk reports).
        self._marginal_cache: dict[int, float] = {}
        self._jitter_cache: dict[tuple[int, ...], float] = {}

    # -- properties ---------------------------------------------------------

    @property
    def catalog(self) -> InterestCatalog:
        """The interest catalog the model reads marginal audiences from."""
        return self._catalog

    @property
    def config(self) -> ReachModelConfig:
        """The reach-model configuration."""
        return self._config

    @property
    def spec(self) -> ReachModelSpec | None:
        """A rebuildable spec for this model, when it was built from one."""
        return self._spec

    @property
    def correlation_alpha(self) -> float:
        """The conditional-retention exponent currently in use."""
        return self._config.correlation_alpha

    def world_size(self, locations: Sequence[str] | None = None) -> float:
        """Total user base for ``locations`` (the full base when ``None``)."""
        if locations is None:
            return self._world
        return self._world * location_fraction(locations)

    # -- marginals ------------------------------------------------------------

    def marginal_probability(self, interest_id: int) -> float:
        """Fraction of the world base holding ``interest_id``."""
        key = int(interest_id)
        cached = self._marginal_cache.get(key)
        if cached is None:
            position = self._positions(np.asarray([key], dtype=np.int64))[0]
            cached = float(self._marginal_array[position])
            if len(self._marginal_cache) >= _SCALAR_CACHE_SIZE:
                self._marginal_cache.pop(next(iter(self._marginal_cache)))
            self._marginal_cache[key] = cached
        return cached

    def marginal_audience(
        self, interest_id: int, locations: Sequence[str] | None = None
    ) -> float:
        """Audience of a single interest restricted to ``locations``."""
        return self.marginal_probability(interest_id) * self.world_size(locations)

    # -- combinations ----------------------------------------------------------

    def intersection_probability(self, interest_ids: Sequence[int]) -> float:
        """Fraction of users holding *all* interests in ``interest_ids``."""
        ids = np.asarray([int(i) for i in interest_ids], dtype=np.int64)
        if ids.size == 0:
            return 1.0
        return float(self.prefix_intersection_probabilities(ids)[-1])

    def prefix_intersection_probabilities(
        self, ordered_ids: Sequence[int]
    ) -> np.ndarray:
        """Intersection probability of every prefix ``1..N`` of an id list.

        ``result[k - 1]`` equals ``intersection_probability(ordered_ids[:k])``
        bit-for-bit; the whole vector is computed in a single vectorised
        cumulative pass (O(N log N) instead of O(N^2)).
        """
        ids = np.asarray([int(i) for i in ordered_ids], dtype=np.int64)
        if ids.size == 0:
            return np.empty(0, dtype=float)
        positions = self._positions(ids)
        probs = self._marginal_array[positions]
        topics = self._topic_codes[positions]
        return self._prefix_probabilities(probs, topics)

    def union_probability(self, interest_ids: Sequence[int]) -> float:
        """Fraction of users holding *at least one* interest in the set."""
        ids = np.asarray([int(i) for i in interest_ids], dtype=np.int64)
        if ids.size == 0:
            return 0.0
        probs = self._marginal_array[self._positions(ids)]
        # cumprod keeps the reduction order identical for any padded batch
        # evaluation of the same combination.
        return float(1.0 - np.cumprod(1.0 - probs)[-1])

    def audience_for(
        self,
        interest_ids: Sequence[int],
        locations: Sequence[str] | None = None,
        *,
        combine: str = "and",
    ) -> float:
        """Audience size of an interest combination restricted to locations.

        The value is *not* floored or rounded; the Ads API layer applies the
        Potential Reach reporting rules.
        """
        ids = tuple(int(i) for i in interest_ids)
        base = self.world_size(locations)
        if not ids:
            return base
        if combine == "and":
            # Shared prefix kernel: the full-set audience is the last prefix.
            return float(self.prefix_audiences(ids, locations)[-1])
        if combine == "or":
            probability = self.union_probability(ids)
            audience = base * probability * self._jitter(ids)
            return max(audience, 0.0)
        raise ConfigurationError(f"unknown combine mode: {combine!r}")

    def prefix_audiences(
        self,
        ordered_ids: Sequence[int],
        locations: Sequence[str] | None = None,
    ) -> np.ndarray:
        """Audience sizes of every prefix ``1..N`` of an ordered id list.

        This is the batched counterpart of calling :meth:`audience_for` on
        each prefix (AND semantics) and returns bit-identical values, one
        vectorised pass instead of N scalar queries.
        """
        ids = np.asarray([int(i) for i in ordered_ids], dtype=np.int64)
        base = self.world_size(locations)
        if ids.size == 0:
            return np.empty(0, dtype=float)
        positions = self._positions(ids)
        probs = self._marginal_array[positions]
        topics = self._topic_codes[positions]
        intersections = self._prefix_probabilities(probs, topics)
        jitters = lognormal_jitter(
            prefix_seeds(ids, self._jitter_key), self._config.jitter_log10_sigma
        )
        audiences = base * intersections * jitters
        # The jitter never pushes an AND-audience above its rarest marginal.
        rarest = base * np.minimum.accumulate(probs)
        return np.maximum(np.minimum(audiences, rarest), 0.0)

    def prefix_audiences_panel(
        self,
        id_matrix: np.ndarray,
        counts: Sequence[int] | np.ndarray,
        locations: Sequence[str] | None = None,
    ) -> np.ndarray:
        """Prefix audiences for a whole panel of ordered id lists at once.

        ``id_matrix`` is a padded ``(n_users, width)`` integer matrix whose
        row ``u`` holds the first ``counts[u]`` ordered interest ids of one
        user (entries beyond ``counts[u]`` are padding and never read).  The
        result has the same shape; ``result[u, k]`` equals
        ``prefix_audiences(id_matrix[u, :counts[u]], locations)[k]``
        bit-for-bit for ``k < counts[u]`` and is ``NaN`` elsewhere.

        This is the panel-scale collection kernel: every cumulative quantity
        (running minima, log-sums, per-topic boost corrections, jitter
        seeds) runs row-parallel over the whole matrix, so the users × N
        measurement of the paper costs a handful of array sweeps instead of
        one Python iteration per user.
        """
        ids = np.asarray(id_matrix, dtype=np.int64)
        if ids.ndim != 2:
            raise ConfigurationError("id_matrix must be a 2D (n_users, width) matrix")
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != (ids.shape[0],):
            raise ConfigurationError("counts must hold one entry per id_matrix row")
        if counts.size and (
            int(counts.min()) < 0 or int(counts.max()) > ids.shape[1]
        ):
            raise ConfigurationError("counts must lie in [0, id_matrix width]")
        n_users, width = ids.shape
        result = np.full((n_users, width), np.nan, dtype=float)
        if n_users == 0 or width == 0 or not counts.any():
            return result
        base = self.world_size(locations)
        valid = np.arange(width)[None, :] < counts[:, None]
        self._ensure_catalog_arrays()
        # Padding cells are pointed at a real catalog entry so the gathers
        # stay in bounds; their values are garbage and masked out at the end
        # (every kernel stage is prefix-local, so right-hand padding can
        # never leak into a valid cell).
        safe_ids = np.where(valid, ids, self._sorted_ids[0])
        positions = np.searchsorted(self._sorted_ids, safe_ids)
        positions = np.minimum(positions, len(self._sorted_ids) - 1)
        mismatched = (self._sorted_ids[positions] != safe_ids) & valid
        if mismatched.any():
            raise UnknownInterestError(int(safe_ids[mismatched][0]))
        probs = self._marginal_array[positions]
        topics = self._topic_codes[positions]
        intersections = self._prefix_probabilities_panel(probs, topics)
        jitters = lognormal_jitter(
            prefix_seeds(safe_ids, self._jitter_key, axis=1),
            self._config.jitter_log10_sigma,
        )
        audiences = base * intersections * jitters
        rarest = base * np.minimum.accumulate(probs, axis=1)
        clipped = np.maximum(np.minimum(audiences, rarest), 0.0)
        result[valid] = clipped[valid]
        return result

    def audience_for_batch(
        self,
        combinations: Sequence[Sequence[int]],
        locations: Sequence[str] | None = None,
        *,
        combine: str = "and",
    ) -> np.ndarray:
        """Audience sizes for many combinations in one call.

        Equivalent to looping :meth:`audience_for` (bit-identical results).
        Consecutive AND-combinations that extend each other by one interest
        — the prefix families issued by the audience-size collector — are
        detected and served by a single :meth:`prefix_audiences` kernel call
        per chain, turning the O(N^2) per-user query loop into O(N).
        """
        combos = [tuple(int(i) for i in combination) for combination in combinations]
        results = np.empty(len(combos), dtype=float)
        if not combos:
            return results
        base = self.world_size(locations)
        if combine == "or":
            for index, combo in enumerate(combos):
                results[index] = self.audience_for(combo, locations, combine="or")
            return results
        if combine != "and":
            raise ConfigurationError(f"unknown combine mode: {combine!r}")
        start = 0
        while start < len(combos):
            # Grow the maximal prefix chain starting at ``start``.
            end = start + 1
            previous = combos[start]
            while end < len(combos):
                candidate = combos[end]
                if (
                    len(candidate) == len(previous) + 1
                    and candidate[: len(previous)] == previous
                ):
                    previous = candidate
                    end += 1
                else:
                    break
            longest = combos[end - 1]
            if longest:
                values = self.prefix_audiences(longest, locations)
            else:
                values = np.empty(0, dtype=float)
            for index in range(start, end):
                length = len(combos[index])
                results[index] = base if length == 0 else values[length - 1]
            start = end
        return results

    # -- internals ------------------------------------------------------------

    def _ensure_catalog_arrays(self) -> None:
        if self._sorted_ids is not None:
            return
        sorted_ids = self._catalog.interest_ids
        audiences = self._catalog.all_audience_sizes().astype(float)
        marginal_array = np.minimum(1.0, audiences / self._world)
        codes: dict[str, int] = {}
        topic_codes = np.empty(len(sorted_ids), dtype=np.int64)
        # Catalog iteration yields interests in ascending id order, matching
        # the sorted id / audience arrays.
        for index, interest in enumerate(self._catalog):
            topic_codes[index] = codes.setdefault(interest.topic, len(codes))
        # Publish the guard attribute (_sorted_ids) last: concurrent shard
        # kernels on a thread runner may race into this builder, and under
        # the GIL the worst case must be a redundant rebuild of identical
        # arrays, never a half-initialised view.
        self._marginal_array = marginal_array
        self._topic_codes = topic_codes
        self._n_topic_codes = len(codes)
        self._sorted_ids = sorted_ids

    def _positions(self, ids: np.ndarray) -> np.ndarray:
        """Positions of ``ids`` in the id-indexed catalog arrays."""
        self._ensure_catalog_arrays()
        positions = np.searchsorted(self._sorted_ids, ids)
        positions = np.minimum(positions, len(self._sorted_ids) - 1)
        mismatched = self._sorted_ids[positions] != ids
        if mismatched.any():
            raise UnknownInterestError(int(ids[np.argmax(mismatched)]))
        return positions

    def _prefix_probabilities(
        self, probs: np.ndarray, topics: np.ndarray
    ) -> np.ndarray:
        """Conditional-retention intersection probability of every prefix.

        All operations are prefix-local (cumulative minima, sums and per-
        topic cumulative sums), so ``result[:k]`` of a truncated call is
        bit-identical to the first ``k`` entries of the full call — the
        property that lets scalar queries share this kernel.
        """
        n = probs.size
        alpha = self._config.correlation_alpha
        boost = 1.0 + self._config.topic_affinity_boost
        with np.errstate(all="ignore"):
            cumulative_min = np.minimum.accumulate(probs)
            previous_min = np.concatenate(([np.inf], cumulative_min[:-1]))
            new_min = probs < previous_min
            # Index of the rarest interest within each prefix (first winner
            # on ties, matching a stable sort by probability).
            rarest_index = np.maximum.accumulate(
                np.where(new_min, np.arange(n), 0)
            )
            retention = probs**alpha
            plain = np.minimum(1.0, retention)
            boosted = np.minimum(1.0, retention * boost)
            log_plain = np.log(plain)
            log_boost_delta = np.log(boosted) - log_plain
            total_log = np.cumsum(log_plain)
            # Per-topic cumulative boost corrections; only the column of the
            # prefix's rarest topic is consumed per row.
            codes, inverse = np.unique(topics, return_inverse=True)
            one_hot = inverse[:, None] == np.arange(codes.size)[None, :]
            topic_cumulative = np.cumsum(
                np.where(one_hot, log_boost_delta[:, None], 0.0), axis=0
            )
            rows = np.arange(n)
            rarest_topic = inverse[rarest_index]
            same_topic = topic_cumulative[rows, rarest_topic]
            log_probability = (
                np.log(probs[rarest_index])
                + (total_log - log_plain[rarest_index])
                + (same_topic - log_boost_delta[rarest_index])
            )
            return np.minimum(np.exp(log_probability), probs[rarest_index])

    def _prefix_probabilities_panel(
        self, probs: np.ndarray, topics: np.ndarray
    ) -> np.ndarray:
        """Row-parallel :meth:`_prefix_probabilities` over a panel matrix.

        Every cumulative operation of the scalar kernel is sequential along
        the row axis, so running it with ``axis=1`` reproduces each row
        bit-for-bit.  The only stage that is not a plain axis-wise reduction
        — the per-topic cumulative boost corrections — is swept column by
        column (at most ``width`` ≤ 25 steps, each vectorised over all
        users), accumulating per-(user, topic) running sums in exactly the
        order the scalar kernel's masked ``cumsum`` consumes them.
        """
        n_users, width = probs.shape
        alpha = self._config.correlation_alpha
        boost = 1.0 + self._config.topic_affinity_boost
        with np.errstate(all="ignore"):
            cumulative_min = np.minimum.accumulate(probs, axis=1)
            previous_min = np.concatenate(
                (np.full((n_users, 1), np.inf), cumulative_min[:, :-1]), axis=1
            )
            new_min = probs < previous_min
            rarest_index = np.maximum.accumulate(
                np.where(new_min, np.arange(width)[None, :], 0), axis=1
            )
            retention = probs**alpha
            plain = np.minimum(1.0, retention)
            boosted = np.minimum(1.0, retention * boost)
            log_plain = np.log(plain)
            log_boost_delta = np.log(boosted) - log_plain
            total_log = np.cumsum(log_plain, axis=1)
            rows = np.arange(n_users)
            rarest_topic = topics[rows[:, None], rarest_index]
            running = np.zeros((n_users, self._n_topic_codes), dtype=float)
            same_topic = np.empty_like(probs)
            for column in range(width):
                running[rows, topics[:, column]] += log_boost_delta[:, column]
                same_topic[:, column] = running[rows, rarest_topic[:, column]]
            rarest_probs = probs[rows[:, None], rarest_index]
            log_probability = (
                np.log(rarest_probs)
                + (total_log - log_plain[rows[:, None], rarest_index])
                + (same_topic - log_boost_delta[rows[:, None], rarest_index])
            )
            return np.minimum(np.exp(log_probability), rarest_probs)

    def _jitter(self, interest_ids: tuple[int, ...]) -> float:
        """Deterministic log-normal jitter keyed on the interest combination.

        The jitter is intentionally independent of the location filter and of
        the AND/OR mode, so that the model's monotonicity invariants (adding
        a location never shrinks an audience, narrowing never grows it) hold
        exactly and not just in expectation.  The value comes from the shared
        counter-based kernel in :mod:`repro.reach.jitter`, so a scalar query
        and the matching element of a batched prefix query agree bitwise.
        """
        sigma = self._config.jitter_log10_sigma
        if sigma <= 0:
            return 1.0
        key = tuple(sorted(interest_ids))
        cached = self._jitter_cache.get(key)
        if cached is None:
            seed = combination_seed(
                np.asarray(key, dtype=np.int64), self._jitter_key
            )
            cached = float(lognormal_jitter(np.asarray([seed]), sigma)[0])
            if len(self._jitter_cache) >= _SCALAR_CACHE_SIZE:
                self._jitter_cache.pop(next(iter(self._jitter_cache)))
            self._jitter_cache[key] = cached
        return cached
