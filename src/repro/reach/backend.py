"""The reach-backend protocol.

The simulated Ads Manager API (:mod:`repro.adsapi`) does not compute
audience sizes itself; it delegates to any object implementing
:class:`ReachBackend`.  Two implementations ship with the library:

* :class:`repro.reach.StatisticalReachModel` — an analytic model at the true
  world scale (1.5B users), used for the uniqueness analysis and the
  nanotargeting experiment;
* :class:`repro.population.PopulationReachBackend` — exact counting over an
  agent-based scaled population, used for delivery simulations and for
  validating the analytic model's semantics.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable


@runtime_checkable
class ReachBackend(Protocol):
    """Anything that can estimate the audience of an interest combination."""

    def audience_for(
        self,
        interest_ids: Sequence[int],
        locations: Sequence[str] | None = None,
        *,
        combine: str = "and",
    ) -> float:
        """Return the (unfloored) audience size of a targeting expression.

        Parameters
        ----------
        interest_ids:
            Interests defining the audience.  An empty sequence means "no
            interest filter", i.e. everyone in the selected locations.
        locations:
            Country codes restricting the audience, ``None`` or the
            worldwide sentinel meaning no restriction.
        combine:
            ``"and"`` requires users to hold every interest (the narrowing
            semantics used throughout the paper); ``"or"`` requires at least
            one.
        """
        ...  # pragma: no cover - protocol definition

    def world_size(self, locations: Sequence[str] | None = None) -> float:
        """Return the total user base for ``locations``."""
        ...  # pragma: no cover - protocol definition
