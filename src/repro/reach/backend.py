"""The reach-backend protocol.

The simulated Ads Manager API (:mod:`repro.adsapi`) does not compute
audience sizes itself; it delegates to any object implementing
:class:`ReachBackend`.  Two implementations ship with the library:

* :class:`repro.reach.StatisticalReachModel` — an analytic model at the true
  world scale (1.5B users), used for the uniqueness analysis and the
  nanotargeting experiment;
* :class:`repro.population.PopulationReachBackend` — exact counting over an
  agent-based scaled population, used for delivery simulations and for
  validating the analytic model's semantics.

Besides the scalar :meth:`~ReachBackend.audience_for`, the protocol carries
two batched entry points with loop-based default implementations, so any
backend is automatically batch-capable.  Backends with a vectorised kernel
(the statistical model) override them; callers get bit-identical results
either way, which is what lets the Ads API expose a single batched estimate
endpoint over heterogeneous backends.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np


@runtime_checkable
class ReachBackend(Protocol):
    """Anything that can estimate the audience of an interest combination."""

    def audience_for(
        self,
        interest_ids: Sequence[int],
        locations: Sequence[str] | None = None,
        *,
        combine: str = "and",
    ) -> float:
        """Return the (unfloored) audience size of a targeting expression.

        Parameters
        ----------
        interest_ids:
            Interests defining the audience.  An empty sequence means "no
            interest filter", i.e. everyone in the selected locations.
        locations:
            Country codes restricting the audience, ``None`` or the
            worldwide sentinel meaning no restriction.
        combine:
            ``"and"`` requires users to hold every interest (the narrowing
            semantics used throughout the paper); ``"or"`` requires at least
            one.
        """
        ...  # pragma: no cover - protocol definition

    def world_size(self, locations: Sequence[str] | None = None) -> float:
        """Return the total user base for ``locations``."""
        ...  # pragma: no cover - protocol definition

    def audience_for_batch(
        self,
        combinations: Sequence[Sequence[int]],
        locations: Sequence[str] | None = None,
        *,
        combine: str = "and",
    ) -> np.ndarray:
        """Audience sizes for many combinations at once.

        Must return exactly ``[audience_for(c, ...) for c in combinations]``;
        this default delegates to the scalar method, vectorised backends
        override it with a faster kernel.
        """
        return np.asarray(
            [
                self.audience_for(combination, locations, combine=combine)
                for combination in combinations
            ],
            dtype=float,
        )

    def prefix_audiences(
        self,
        ordered_ids: Sequence[int],
        locations: Sequence[str] | None = None,
    ) -> np.ndarray:
        """AND-audiences of every prefix ``1..N`` of an ordered id list.

        Must return exactly ``[audience_for(ordered_ids[:k], ...) for k in
        1..N]``; vectorised backends override it with an incremental kernel.
        """
        ids = tuple(int(i) for i in ordered_ids)
        return np.asarray(
            [
                self.audience_for(ids[: count + 1], locations)
                for count in range(len(ids))
            ],
            dtype=float,
        )

    def prefix_audiences_panel(
        self,
        id_matrix: np.ndarray,
        counts: Sequence[int] | np.ndarray,
        locations: Sequence[str] | None = None,
    ) -> np.ndarray:
        """Prefix audiences for a padded panel of ordered id rows.

        Row ``u`` of the result must equal
        ``prefix_audiences(id_matrix[u, :counts[u]], locations)`` bit-for-bit
        (``NaN`` beyond ``counts[u]``).  This default loops the per-row
        kernel; vectorised backends override it with a whole-panel sweep.
        """
        ids = np.asarray(id_matrix, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        result = np.full(ids.shape, np.nan, dtype=float)
        for row in range(ids.shape[0]):
            count = int(counts[row])
            if count:
                result[row, :count] = self.prefix_audiences(
                    ids[row, :count], locations
                )
        return result
