"""World-scale audience (reach) modelling."""

from .backend import ReachBackend
from .calibration import CalibrationResult, calibrate_correlation_alpha, median_cutpoint
from .countries import (
    FB_WORLDWIDE_MAU_2020,
    TOP_50_COUNTRIES,
    WORLDWIDE,
    Country,
    country_codes,
    get_country,
    is_known_location,
    location_fraction,
    total_user_base,
)
from .jitter import combination_seed, lognormal_jitter, prefix_seeds
from .model import ReachModelSpec, StatisticalReachModel

__all__ = [
    "CalibrationResult",
    "Country",
    "FB_WORLDWIDE_MAU_2020",
    "ReachBackend",
    "ReachModelSpec",
    "StatisticalReachModel",
    "combination_seed",
    "lognormal_jitter",
    "prefix_seeds",
    "TOP_50_COUNTRIES",
    "WORLDWIDE",
    "calibrate_correlation_alpha",
    "country_codes",
    "get_country",
    "is_known_location",
    "location_fraction",
    "median_cutpoint",
    "total_user_base",
]
