"""Per-tenant circuit breakers: one failing tenant degrades alone.

A classic closed → open → half-open breaker keyed on *consecutive*
request failures (injected :class:`~repro.errors.TransientApiError`-style
faults that exhaust their retry budget).  While open, the tenant's new
submissions are rejected at admission with a ``circuit_open`` response
carrying the remaining cooldown — already-queued work still executes, so
the breaker sheds future load without abandoning admitted requests.
After the cooldown the breaker goes half-open and admits a bounded number
of probe requests: the first probe success closes it, a probe failure
reopens it for a fresh cooldown.

All times are service virtual time, so breaker trajectories are
bit-reproducible in tests and chaos soaks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError

#: The three breaker states.
BREAKER_STATES = ("closed", "open", "half_open")


@dataclass
class CircuitBreaker:
    """A consecutive-failure circuit breaker on virtual time."""

    #: Consecutive failures that trip the breaker open.
    failure_threshold: int = 5
    #: Virtual seconds an open breaker rejects before probing.
    cooldown_seconds: float = 30.0
    #: Admissions allowed in the half-open state before a verdict.
    half_open_probes: int = 1

    _state: str = field(default="closed", init=False)
    _consecutive_failures: int = field(default=0, init=False)
    _opened_at: float = field(default=0.0, init=False)
    _probes_admitted: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be at least 1")
        if self.cooldown_seconds <= 0:
            raise ConfigurationError("cooldown_seconds must be positive")
        if self.half_open_probes < 1:
            raise ConfigurationError("half_open_probes must be at least 1")

    @property
    def state(self) -> str:
        """Current state name (without advancing time)."""
        return self._state

    def allow(self, now: float) -> bool:
        """Whether a new request from this tenant may be admitted at ``now``."""
        if self._state == "closed":
            return True
        if self._state == "open":
            if now - self._opened_at < self.cooldown_seconds:
                return False
            self._state = "half_open"
            self._probes_admitted = 0
        if self._probes_admitted >= self.half_open_probes:
            return False
        self._probes_admitted += 1
        return True

    def retry_after(self, now: float) -> float:
        """Remaining cooldown before the next probe could be admitted."""
        if self._state != "open":
            return 0.0
        return max(0.0, self.cooldown_seconds - (now - self._opened_at))

    def record_success(self) -> None:
        """A request for this tenant completed: close and reset."""
        self._state = "closed"
        self._consecutive_failures = 0
        self._probes_admitted = 0

    def record_failure(self, now: float) -> None:
        """A request failed; trip open on the threshold or a failed probe."""
        self._consecutive_failures += 1
        if self._state == "half_open" or (
            self._consecutive_failures >= self.failure_threshold
        ):
            self._state = "open"
            self._opened_at = now
            self._probes_admitted = 0

    def describe(self) -> dict:
        """A JSON-friendly snapshot (state + failure streak)."""
        return {
            "state": self._state,
            "consecutive_failures": self._consecutive_failures,
            "failure_threshold": self.failure_threshold,
            "cooldown_seconds": self.cooldown_seconds,
        }
