"""Replayable request traces and the trace driver for the reach service.

A :class:`RequestTrace` is a seeded, serialisable arrival schedule —
"tenant T submits this prefix family at virtual second S" — generated
from an interest catalog with the library-wide seed discipline, so the
same (seed, rate, tenants) triple always produces the same workload.
:func:`run_trace` replays one against a :class:`~repro.service.loop.ReachService`
tick by tick and aggregates every response into a
:class:`ServiceRunReport` (status counts, latency percentiles,
throughput, parity check hooks).  The CLI's ``repro-facebook serve``
command and the service benchmark stage both drive this path, so a
benchmark run can be re-executed verbatim from a saved trace file.

Termination is guaranteed without arrivals being gated on completions:
every admitted entry carries a deadline, so once the trace's arrivals
stop the queue drains — by service or by expiry — within a bounded
number of ticks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

from .._rng import as_generator, derive_seed
from ..errors import ConfigurationError
from .coalescer import direct_reach
from .responses import ReachRequest, ReachResponse

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..adsapi import AdsManagerAPI
    from ..catalog import InterestCatalog
    from .loop import ReachService

#: On-disk trace format version.
TRACE_VERSION = 1


@dataclass(frozen=True)
class TraceRequest:
    """One scheduled arrival: a request plus its virtual arrival time."""

    at: float
    request: ReachRequest

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError("arrival times must be >= 0")


@dataclass(frozen=True)
class RequestTrace:
    """A seeded, replayable arrival schedule (sorted by arrival time)."""

    requests: tuple[TraceRequest, ...]

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.requests, key=lambda item: (item.at, item.request.tenant))
        )
        object.__setattr__(self, "requests", ordered)

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def duration_seconds(self) -> float:
        """Virtual span from time zero to the last arrival."""
        return self.requests[-1].at if self.requests else 0.0

    @property
    def total_cells(self) -> int:
        """Summed request cost over the whole trace."""
        return sum(item.request.cost for item in self.requests)

    @classmethod
    def generate(
        cls,
        catalog: "InterestCatalog",
        *,
        seed: int,
        duration_seconds: float,
        requests_per_second: float,
        tenants: int = 4,
        min_interests: int = 2,
        max_interests: int = 8,
        timeout_seconds: float | None = None,
        hot_tenant_share: float = 0.0,
    ) -> "RequestTrace":
        """A uniform-arrival workload over ``tenants`` synthetic accounts.

        Arrivals are jittered uniformly inside each expected inter-arrival
        slot; interests are sampled dup-free from ``catalog``.  With
        ``hot_tenant_share`` in ``(0, 1]``, that share of requests goes to
        tenant 0 and the rest spread evenly — the fairness and overload
        tests use this to model one tenant swamping the service.
        """
        if duration_seconds <= 0 or requests_per_second <= 0:
            raise ConfigurationError("trace duration and rate must be positive")
        if tenants < 1:
            raise ConfigurationError("tenants must be at least 1")
        if not 1 <= min_interests <= max_interests:
            raise ConfigurationError(
                "need 1 <= min_interests <= max_interests for trace generation"
            )
        if not 0.0 <= hot_tenant_share <= 1.0:
            raise ConfigurationError("hot_tenant_share must be in [0, 1]")
        rng = as_generator(derive_seed(seed, "service-trace"))
        n_requests = max(1, int(round(duration_seconds * requests_per_second)))
        slot = duration_seconds / n_requests
        requests = []
        for i in range(n_requests):
            at = (i + float(rng.random())) * slot
            if hot_tenant_share > 0.0 and float(rng.random()) < hot_tenant_share:
                tenant_index = 0
            else:
                tenant_index = int(rng.integers(0, tenants))
            width = int(rng.integers(min_interests, max_interests + 1))
            interests = catalog.sample_ids(width, rng)
            requests.append(
                TraceRequest(
                    at=at,
                    request=ReachRequest(
                        tenant=f"tenant-{tenant_index:02d}",
                        interests=tuple(int(x) for x in interests),
                        timeout_seconds=timeout_seconds,
                    ),
                )
            )
        return cls(requests=tuple(requests))

    # -- (de)serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": TRACE_VERSION,
            "requests": [
                {
                    "at": item.at,
                    "tenant": item.request.tenant,
                    "interests": list(item.request.interests),
                    "timeout_seconds": item.request.timeout_seconds,
                }
                for item in self.requests
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RequestTrace":
        version = payload.get("version")
        if version != TRACE_VERSION:
            raise ConfigurationError(
                f"unsupported trace version: {version!r} (expected {TRACE_VERSION})"
            )
        return cls(
            requests=tuple(
                TraceRequest(
                    at=float(item["at"]),
                    request=ReachRequest(
                        tenant=item["tenant"],
                        interests=tuple(int(x) for x in item["interests"]),
                        timeout_seconds=item.get("timeout_seconds"),
                    ),
                )
                for item in payload.get("requests", [])
            )
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RequestTrace":
        return cls.from_dict(json.loads(Path(path).read_text()))


@dataclass(frozen=True)
class ServiceRunReport:
    """Everything one trace replay produced, aggregated."""

    responses: tuple[ReachResponse, ...]
    #: Virtual seconds the replay spanned (arrivals through drain).
    virtual_seconds: float
    ticks: int

    @property
    def status_counts(self) -> dict:
        counts: dict[str, int] = {}
        for response in self.responses:
            counts[response.status] = counts.get(response.status, 0) + 1
        return counts

    @property
    def completed(self) -> tuple[ReachResponse, ...]:
        return tuple(r for r in self.responses if r.ok)

    @property
    def shed_rate(self) -> float:
        """Fraction of all responses that were typed rejections."""
        if not self.responses:
            return 0.0
        return 1.0 - len(self.completed) / len(self.responses)

    @property
    def ok_latencies(self) -> tuple[float, ...]:
        """Virtual submission→completion latency of each served request."""
        return tuple(r.latency_seconds for r in self.completed)

    def latency_percentile(self, q: float) -> float:
        """Nearest-rank percentile of the served-request virtual latency."""
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError("percentile must be in [0, 100]")
        latencies = sorted(self.ok_latencies)
        if not latencies:
            return float("nan")
        rank = max(1, int(-(-q * len(latencies) // 100))) if q > 0 else 1
        return latencies[min(rank, len(latencies)) - 1]

    @property
    def virtual_qps(self) -> float:
        """Served requests per virtual second."""
        if self.virtual_seconds <= 0:
            return 0.0
        return len(self.completed) / self.virtual_seconds

    def parity_failures(
        self,
        reference: "AdsManagerAPI | Callable[[ReachRequest], Sequence[float]]",
        *,
        locations: Sequence[str] | None = None,
    ) -> list[ReachResponse]:
        """Served responses whose values differ from a direct bulk call.

        ``reference`` is either a *fresh* Ads API (billed by the check,
        so never the service's own instance) or a callable returning the
        expected values for a request.  Bit-equality, not tolerance: the
        service parity contract is exact.
        """
        if callable(reference) and not hasattr(reference, "estimate_reach_matrix"):
            expected = reference
        else:
            api = reference

            def expected(request: ReachRequest) -> Sequence[float]:
                return direct_reach(api, request, locations=locations)

        failures = []
        for response in self.completed:
            if tuple(expected(response.request)) != response.values:
                failures.append(response)
        return failures

    def summary(self) -> dict:
        """The JSON-friendly digest the CLI and benchmark stage print."""
        return {
            "responses": len(self.responses),
            "status_counts": self.status_counts,
            "shed_rate": self.shed_rate,
            "virtual_seconds": self.virtual_seconds,
            "ticks": self.ticks,
            "virtual_qps": self.virtual_qps,
            "latency_p50_seconds": self.latency_percentile(50.0),
            "latency_p99_seconds": self.latency_percentile(99.0),
        }


def run_trace(service: "ReachService", trace: RequestTrace) -> ServiceRunReport:
    """Replay ``trace`` against ``service`` and drain the queue.

    Arrivals with ``at <= now`` are submitted before each tick (in trace
    order), then the service ticks; after the last arrival the loop keeps
    ticking until the queue is empty.  Deterministic end to end: the same
    service construction and trace give bit-identical reports.
    """
    responses: list[ReachResponse] = []
    pending = list(trace.requests)
    cursor = 0
    start = service.now
    ticks = 0
    while cursor < len(pending) or service.queue_depth > 0:
        while cursor < len(pending) and pending[cursor].at <= service.now - start:
            rejection = service.submit(pending[cursor].request)
            if rejection is not None:
                responses.append(rejection)
            cursor += 1
        responses.extend(service.tick())
        ticks += 1
    return ServiceRunReport(
        responses=tuple(responses),
        virtual_seconds=service.now - start,
        ticks=ticks,
    )
