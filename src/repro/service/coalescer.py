"""Micro-batching coalescer: many queued queries, one bulk call, one bill.

Each service tick folds every popped request into a single padded
``(n_requests, max_prefix)`` id matrix and runs it through the staged
bulk endpoint exactly the way the sharded exec layer does:
validate → one merged :class:`~repro.adsapi.CallBill` settle → the pure
``compute_reach_matrix`` kernel → one bill record.  Because the prefix
kernel is row-local, row ``r`` of the coalesced matrix is bit-identical
to a direct one-request :meth:`~repro.adsapi.AdsManagerAPI.estimate_reach_matrix`
call for the same interests — the service's parity contract — and
because the bill is settled once per tick, billing stays exactly-once no
matter how many tenants share the batch or how many retries preceded it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..adsapi import AdsManagerAPI
    from .responses import ReachRequest


def coalesce_reach(
    api: "AdsManagerAPI",
    requests: Sequence["ReachRequest"],
    *,
    locations: Sequence[str] | None = None,
) -> list[tuple[float, ...]]:
    """Serve ``requests`` as one bulk call; one value tuple per request.

    The returned tuple for request ``r`` holds the Potential Reach of
    each prefix of ``r.interests``, bit-identical to a direct
    ``estimate_reach_matrix`` call on that row alone.  Rate-limit cost is
    one token per cell, settled as a single merged bill; with the API's
    ``auto_wait`` this fast-forwards the *API's* private clock, never the
    service's virtual clock, so deadline accounting stays untouched.
    """
    if not requests:
        return []
    width = max(request.cost for request in requests)
    ids = np.zeros((len(requests), width), dtype=np.int64)
    counts = np.zeros(len(requests), dtype=np.int64)
    for row, request in enumerate(requests):
        ids[row, : request.cost] = request.interests
        counts[row] = request.cost
    ids, counts, effective = api.validate_reach_matrix(
        ids, counts, locations=locations
    )
    bill = api.reach_matrix_bill(counts)
    api.settle_reach_bill(bill)
    matrix = api.compute_reach_matrix(ids, counts, effective)
    api.record_reach_bill(bill)
    return [
        tuple(float(v) for v in matrix[row, : int(counts[row])])
        for row in range(len(requests))
    ]


def direct_reach(
    api: "AdsManagerAPI",
    request: "ReachRequest",
    *,
    locations: Sequence[str] | None = None,
) -> tuple[float, ...]:
    """The reference value: one direct bulk-endpoint call for one request.

    Used by the parity checks (tests and the benchmark stage) to pin that
    coalesced service answers equal direct calls bit-for-bit.  Bills the
    given API — pass a fresh one to leave service accounting untouched.
    """
    ids = np.asarray([request.interests], dtype=np.int64)
    counts = np.asarray([request.cost], dtype=np.int64)
    matrix = api.estimate_reach_matrix(ids, counts, locations=locations)
    return tuple(float(v) for v in matrix[0, : request.cost])
