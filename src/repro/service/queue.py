"""Bounded pending queue with per-tenant lanes and deadline purging.

The queue is where the service's overload policy lives:

* **Bounded** — capacity is measured in reach-matrix *cells* (the same
  unit as admission tokens and billing), and :meth:`PendingQueue.has_room`
  is checked before anything is queued.  A full queue means the caller is
  shed with a typed ``overloaded`` response; nothing ever waits
  unboundedly.
* **Per-tenant lanes, round-robin service** — each tenant gets a FIFO
  lane and :meth:`PendingQueue.pop_batch` drains lanes round-robin under
  a per-tick cell budget, rotating the starting lane every tick.  A hot
  tenant can fill its own lane (and get itself shed at admission) but
  cannot starve the others: every tick each waiting tenant gets a slot
  before any lane gets a second one.
* **Deadline purging** — every entry carries an absolute virtual-time
  deadline; :meth:`PendingQueue.purge_expired` sweeps entries whose
  deadline passed so they are answered ``deadline_exceeded`` instead of
  rotting at the head of a lane.

Entries scheduled for a retry carry ``not_before`` (the backoff landing
time); a lane whose head is still backing off is skipped for the tick —
later entries of the same tenant do *not* overtake it, preserving
per-tenant FIFO order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .responses import ReachRequest


@dataclass
class QueuedRequest:
    """A queued request plus the mutable bookkeeping the loop needs."""

    #: Monotonic admission id — the fault-plan task index and jitter salt.
    index: int
    request: ReachRequest
    #: Service virtual time of admission.
    submitted_at: float
    #: Absolute virtual-time deadline; past it the request is shed.
    deadline: float
    #: Earliest virtual time the next attempt may run (retry backoff).
    not_before: float = 0.0
    #: Attempts already burned against the fault plan.
    attempt: int = 0
    #: Virtual latency accumulated from injected slow faults.
    latency_penalty: float = 0.0

    @property
    def cost(self) -> int:
        return self.request.cost


@dataclass
class PendingQueue:
    """Bounded per-tenant FIFO lanes drained round-robin."""

    #: Total queued cells the queue will hold before shedding.
    max_cells: int
    _lanes: dict[str, deque] = field(default_factory=dict)
    _cells: int = 0
    #: Rotating round-robin offset so no lane is structurally first.
    _rotation: int = 0

    def __post_init__(self) -> None:
        if self.max_cells < 1:
            raise ConfigurationError("max_cells must be at least 1")

    def __len__(self) -> int:
        return sum(len(lane) for lane in self._lanes.values())

    @property
    def queued_cells(self) -> int:
        """Cells currently held across all lanes."""
        return self._cells

    def has_room(self, cost: int) -> bool:
        """Whether ``cost`` more cells fit under the bound."""
        return self._cells + cost <= self.max_cells

    def push(self, entry: QueuedRequest) -> None:
        """Append ``entry`` to its tenant's lane (check :meth:`has_room` first)."""
        if not self.has_room(entry.cost):
            raise ConfigurationError(
                "push on a full queue — callers must check has_room and shed"
            )
        lane = self._lanes.get(entry.request.tenant)
        if lane is None:
            lane = self._lanes[entry.request.tenant] = deque()
        lane.append(entry)
        self._cells += entry.cost

    def requeue(self, entry: QueuedRequest) -> None:
        """Put a popped entry back at the *front* of its lane (retry backoff).

        The entry keeps its admission order: a retrying head blocks its
        own tenant's lane until ``not_before`` (per-tenant FIFO) but never
        blocks other tenants, which round-robin right past it.
        """
        lane = self._lanes.get(entry.request.tenant)
        if lane is None:
            lane = self._lanes[entry.request.tenant] = deque()
        lane.appendleft(entry)
        self._cells += entry.cost

    def purge_expired(self, now: float) -> list[QueuedRequest]:
        """Remove and return every entry whose deadline is strictly past."""
        expired: list[QueuedRequest] = []
        for tenant in list(self._lanes):
            lane = self._lanes[tenant]
            kept = deque()
            for entry in lane:
                if now > entry.deadline:
                    expired.append(entry)
                    self._cells -= entry.cost
                else:
                    kept.append(entry)
            if kept:
                self._lanes[tenant] = kept
            else:
                del self._lanes[tenant]
        return expired

    def pop_batch(self, now: float, max_cells: int) -> list[QueuedRequest]:
        """Pop up to ``max_cells`` worth of runnable entries, fairly.

        Visits tenant lanes round-robin (rotating the starting lane each
        call), taking one head entry per lane per round while the cell
        budget lasts.  A lane whose head has ``not_before > now`` is
        skipped whole — its later entries must not overtake the backoff —
        as is a lane whose head no longer fits the remaining budget.
        """
        if max_cells < 1:
            raise ConfigurationError("max_cells must be at least 1")
        tenants = sorted(self._lanes)
        if not tenants:
            return []
        start = self._rotation % len(tenants)
        self._rotation += 1
        order = tenants[start:] + tenants[:start]
        popped: list[QueuedRequest] = []
        budget = max_cells
        blocked: set[str] = set()
        progressed = True
        while budget > 0 and progressed:
            progressed = False
            for tenant in order:
                lane = self._lanes.get(tenant)
                if lane is None or tenant in blocked:
                    continue
                head = lane[0]
                if head.not_before > now or head.cost > budget:
                    blocked.add(tenant)
                    continue
                lane.popleft()
                if not lane:
                    del self._lanes[tenant]
                self._cells -= head.cost
                budget -= head.cost
                popped.append(head)
                progressed = True
                if budget <= 0:
                    break
        return popped
