"""Always-on reach service: admission, deadlines, shedding, degradation.

The traffic-facing subsystem over the warm simulation: a deterministic
virtual-time event loop (:class:`ReachService`) that admits per-tenant
reach queries through token buckets and circuit breakers, queues them
with deadlines in a bounded per-tenant-fair queue, coalesces each tick's
batch into one bulk ``estimate_reach_matrix`` call with one merged bill,
and sheds overload with typed responses instead of waiting.  See
:mod:`repro.service.loop` for the full overload policy.
"""

from .breaker import BREAKER_STATES, CircuitBreaker
from .coalescer import coalesce_reach, direct_reach
from .loop import ReachService, ServiceConfig, ServiceStats
from .queue import PendingQueue, QueuedRequest
from .responses import RESPONSE_STATUSES, ReachRequest, ReachResponse
from .trace import RequestTrace, ServiceRunReport, TraceRequest, run_trace

__all__ = [
    "BREAKER_STATES",
    "RESPONSE_STATUSES",
    "CircuitBreaker",
    "PendingQueue",
    "QueuedRequest",
    "ReachRequest",
    "ReachResponse",
    "ReachService",
    "RequestTrace",
    "ServiceConfig",
    "ServiceRunReport",
    "ServiceStats",
    "TraceRequest",
    "coalesce_reach",
    "direct_reach",
    "run_trace",
]
