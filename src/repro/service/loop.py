"""The always-on reach service: a deterministic virtual-time event loop.

:class:`ReachService` serves the paper's interactive Ads-Manager reach
workload from a warm :class:`~repro.pipeline.Simulation` without ever
queueing unboundedly.  The request path, in order:

1. **Admission** (:meth:`ReachService.submit`) — the request is validated
   row-locally (``invalid``), checked against the tenant's circuit
   breaker (``circuit_open``), charged to the tenant's per-account
   :class:`~repro.adsapi.ratelimit.TokenBucket` at one token per prefix
   cell (``throttled``), and finally placed in the bounded
   :class:`~repro.service.queue.PendingQueue` — or shed ``overloaded``
   when the queue bound is hit.  Every rejection is an immediate typed
   :class:`~repro.service.responses.ReachResponse` with a
   ``retry_after_seconds`` hint where one exists; admission returns
   ``None`` and the answer arrives from a later tick.

2. **Ticks** (:meth:`ReachService.tick`) — the virtual clock advances one
   tick, expired entries are shed ``deadline_exceeded``, and a fair
   round-robin batch is popped under the per-tick cell budget.  Injected
   faults (:class:`~repro.faults.FaultPlan`, decided per *request* by its
   admission index) fire per popped entry: transient/task errors send the
   entry back to its lane with exponential backoff (or fail it once the
   retry budget is exhausted — tripping the tenant's breaker on the way),
   slow faults add virtual latency that can itself blow the deadline
   *before* any token is billed.  Surviving entries are folded into one
   bulk ``estimate_reach_matrix`` call with one merged bill
   (:mod:`~repro.service.coalescer`), so billing is exactly-once per
   tick and every admitted answer is bit-identical to a direct call.

**What is shed, when, and what the client sees** — the overload policy in
one table: queue full at admission → ``overloaded`` (retry after one
tick); tenant bucket empty → ``throttled`` (retry when tokens refill);
breaker open → ``circuit_open`` (retry after the cooldown); deadline
passed while queued, or backoff/slow-fault latency would pass it →
``deadline_exceeded``; retry budget exhausted against faults →
``failed``.  Admitted requests are never silently dropped: every
submission produces exactly one response.

Two clocks, deliberately: the *service* clock (deadlines, backoff,
breaker cooldowns) is the injected virtual clock that tests and soaks
drive tick by tick; the backing API keeps its own private clock for
rate-limit refills and ``auto_wait`` fast-forwards, so billing-side time
never contaminates deadline accounting (the same separation the fault
layer's private backoff clocks rely on).

When neither ``retry`` nor ``faults`` is given the service picks up
:func:`~repro.faults.ambient_chaos` from the environment, so the CI
chaos lane soaks the service without any test changing its construction.
Crash faults are stripped — the service owns no workers to kill.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from ..adsapi import AdsManagerAPI
from ..adsapi.ratelimit import TokenBucket
from ..errors import (
    AdsApiError,
    ConfigurationError,
    InjectedFaultError,
    TransientApiError,
)
from ..faults import FaultPlan, RetryPolicy, ambient_chaos
from ..simclock import SimClock
from .breaker import CircuitBreaker
from .coalescer import coalesce_reach
from .queue import PendingQueue, QueuedRequest
from .responses import ReachRequest, ReachResponse


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of the reach service's overload policy."""

    #: Per-tenant admission rate (tokens per minute; one token per cell).
    tenant_requests_per_minute: float = 600.0
    #: Per-tenant admission burst (cells).
    tenant_burst: int = 50
    #: Bound on queued cells across all tenants (the load-shedding line).
    max_queue_cells: int = 256
    #: Cell budget of one coalesced batch (one bulk call per tick).
    max_batch_cells: int = 64
    #: Virtual seconds per tick.
    tick_seconds: float = 1.0
    #: Deadline granted when a request names no ``timeout_seconds``.
    default_timeout_seconds: float = 30.0
    #: Consecutive failures that open a tenant's breaker.
    breaker_failure_threshold: int = 5
    #: Virtual seconds an open breaker sheds before probing.
    breaker_cooldown_seconds: float = 30.0
    #: Probe admissions allowed while half-open.
    breaker_half_open_probes: int = 1
    #: Location filter shared by every served query (``None`` = worldwide).
    locations: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.tenant_requests_per_minute <= 0:
            raise ConfigurationError("tenant_requests_per_minute must be positive")
        if self.tenant_burst < 1:
            raise ConfigurationError("tenant_burst must be at least 1")
        if self.max_queue_cells < 1 or self.max_batch_cells < 1:
            raise ConfigurationError("queue and batch cell bounds must be >= 1")
        if self.tick_seconds <= 0:
            raise ConfigurationError("tick_seconds must be positive")
        if self.default_timeout_seconds <= 0:
            raise ConfigurationError("default_timeout_seconds must be positive")
        if self.locations is not None:
            object.__setattr__(self, "locations", tuple(self.locations))

    def describe(self) -> dict:
        """A JSON-friendly view of the service knobs."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class ServiceStats:
    """Monotonic counters of everything the service did."""

    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    retries: int = 0
    ticks: int = 0
    batches: int = 0
    cells_served: int = 0
    shed_invalid: int = 0
    shed_throttled: int = 0
    shed_overloaded: int = 0
    shed_circuit_open: int = 0
    shed_deadline: int = 0
    failed: int = 0

    @property
    def shed_total(self) -> int:
        """Every typed rejection (any status except ``ok``)."""
        return (
            self.shed_invalid
            + self.shed_throttled
            + self.shed_overloaded
            + self.shed_circuit_open
            + self.shed_deadline
            + self.failed
        )

    def as_dict(self) -> dict:
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        payload["shed_total"] = self.shed_total
        return payload


class ReachService:
    """A long-lived coalescing front end over one warm Ads API."""

    def __init__(
        self,
        api: AdsManagerAPI,
        *,
        config: ServiceConfig | None = None,
        clock: SimClock | None = None,
        retry: RetryPolicy | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        self._api = api
        self._config = config or ServiceConfig()
        self._clock = clock or SimClock()
        if retry is None and faults is None:
            retry, faults = ambient_chaos()
        if faults is not None:
            # The service owns no workers: a "crash" has nothing to kill.
            faults = faults.restricted("transient_api", "task_error", "slow")
            if retry is None:
                retry = RetryPolicy(max_attempts=faults.max_faults_per_task + 1)
        self._retry = retry
        self._faults = faults if faults is not None and faults.active else None
        self._queue = PendingQueue(max_cells=self._config.max_queue_cells)
        self._buckets: dict[str, TokenBucket] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._stats = ServiceStats()
        self._next_index = 0

    # -- accessors --------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current service virtual time."""
        return self._clock.now()

    @property
    def config(self) -> ServiceConfig:
        return self._config

    @property
    def api(self) -> AdsManagerAPI:
        """The backing Ads API (its clock is private to billing)."""
        return self._api

    @property
    def queue_depth(self) -> int:
        """Entries currently queued."""
        return len(self._queue)

    def breaker_state(self, tenant: str) -> str:
        """The named tenant's breaker state ("closed" if never seen)."""
        breaker = self._breakers.get(tenant)
        return breaker.state if breaker is not None else "closed"

    def stats(self) -> dict:
        """Counters plus per-tenant admission/breaker snapshots."""
        return {
            "now": self.now,
            "queue_depth": self.queue_depth,
            "queued_cells": self._queue.queued_cells,
            "counters": self._stats.as_dict(),
            "tenants": {
                tenant: {
                    "bucket": self._buckets[tenant].describe(),
                    "breaker": self._breakers[tenant].describe(),
                }
                for tenant in sorted(self._buckets)
            },
        }

    @property
    def counters(self) -> ServiceStats:
        return self._stats

    # -- admission --------------------------------------------------------------

    def submit(self, request: ReachRequest) -> ReachResponse | None:
        """Admit ``request`` (returns ``None``) or shed it with a typed response.

        Admitted requests resolve from a later :meth:`tick`; rejected ones
        get their response immediately — the service never blocks a caller.
        """
        now = self.now
        self._stats.submitted += 1
        invalid = self._validate(request)
        if invalid is not None:
            self._stats.shed_invalid += 1
            return self._reject(request, "invalid", invalid, now)
        breaker = self._breaker(request.tenant)
        if not breaker.allow(now):
            self._stats.shed_circuit_open += 1
            return self._reject(
                request,
                "circuit_open",
                f"tenant {request.tenant!r} breaker is {breaker.state}",
                now,
                retry_after=breaker.retry_after(now),
            )
        bucket = self._bucket(request.tenant)
        if not bucket.try_acquire(request.cost):
            self._stats.shed_throttled += 1
            return self._reject(
                request,
                "throttled",
                f"tenant {request.tenant!r} admission budget exhausted "
                f"({request.cost} cells requested)",
                now,
                retry_after=bucket.seconds_until_available(request.cost),
            )
        if not self._queue.has_room(request.cost):
            self._stats.shed_overloaded += 1
            return self._reject(
                request,
                "overloaded",
                f"pending queue full ({self._queue.queued_cells}/"
                f"{self._config.max_queue_cells} cells)",
                now,
                retry_after=self._config.tick_seconds,
            )
        timeout = (
            request.timeout_seconds
            if request.timeout_seconds is not None
            else self._config.default_timeout_seconds
        )
        entry = QueuedRequest(
            index=self._next_index,
            request=request,
            submitted_at=now,
            deadline=now + timeout,
        )
        self._next_index += 1
        self._queue.push(entry)
        self._stats.admitted += 1
        return None

    # -- the event loop ----------------------------------------------------------

    def tick(self) -> list[ReachResponse]:
        """Advance one tick and return every response it resolved."""
        self._clock.advance(self._config.tick_seconds)
        self._stats.ticks += 1
        now = self.now
        responses: list[ReachResponse] = []
        for entry in self._queue.purge_expired(now):
            responses.append(self._expire(entry, now, "deadline passed while queued"))
        batch: list[QueuedRequest] = []
        for entry in self._queue.pop_batch(now, self._config.max_batch_cells):
            survivor = self._inject(entry, now, responses)
            if survivor is not None:
                batch.append(survivor)
        if batch:
            values = coalesce_reach(
                self._api,
                [entry.request for entry in batch],
                locations=self._config.locations,
            )
            self._stats.batches += 1
            for entry, row in zip(batch, values):
                self._breaker(entry.request.tenant).record_success()
                self._stats.completed += 1
                self._stats.cells_served += entry.cost
                responses.append(
                    ReachResponse(
                        request=entry.request,
                        status="ok",
                        values=row,
                        submitted_at=entry.submitted_at,
                        completed_at=now + entry.latency_penalty,
                        attempts=entry.attempt + 1,
                    )
                )
        return responses

    def run_until_idle(self, *, max_ticks: int = 10_000) -> list[ReachResponse]:
        """Tick until the queue drains; every entry resolves (deadlines bound it)."""
        responses: list[ReachResponse] = []
        ticks = 0
        while len(self._queue) > 0:
            if ticks >= max_ticks:
                raise ConfigurationError(
                    f"queue failed to drain within {max_ticks} ticks"
                )
            responses.extend(self.tick())
            ticks += 1
        return responses

    # -- internals --------------------------------------------------------------

    def _inject(
        self,
        entry: QueuedRequest,
        now: float,
        responses: list[ReachResponse],
    ) -> QueuedRequest | None:
        """Fire the fault plan for ``entry``; return it iff it should run now.

        Faults are decided per request — the admission index is the fault
        plan's task index, the attempt counter advances per retry — so a
        chaos trajectory is a pure function of (plan seed, arrival order),
        bit-reproducible across runs.
        """
        if self._faults is None:
            return entry
        try:
            decision = self._faults.fire(entry.index, entry.attempt)
        except (TransientApiError, InjectedFaultError) as error:
            breaker = self._breaker(entry.request.tenant)
            breaker.record_failure(now)
            next_attempt = entry.attempt + 1
            retryable = self._retry is not None and self._retry.is_retryable(error)
            if not retryable or next_attempt >= self._retry.max_attempts:
                self._stats.failed += 1
                responses.append(
                    self._resolve(
                        entry,
                        "failed",
                        f"retry budget exhausted after {next_attempt} attempts: "
                        f"{type(error).__name__}: {error}",
                        now,
                    )
                )
                return None
            delay = self._retry.backoff_delay(entry.attempt, error, salt=entry.index)
            if now + delay > entry.deadline:
                responses.append(
                    self._expire(
                        entry, now, f"backoff of {delay:.2f}s lands past the deadline"
                    )
                )
                return None
            self._stats.retries += 1
            entry.attempt = next_attempt
            entry.not_before = now + delay
            self._queue.requeue(entry)
            return None
        if decision is not None and decision.kind == "slow":
            entry.latency_penalty += decision.seconds
            if now + entry.latency_penalty > entry.deadline:
                # Shed before billing: the deadline would pass mid-flight.
                responses.append(
                    self._expire(
                        entry,
                        now,
                        f"injected latency of {entry.latency_penalty:.2f}s "
                        "blows the deadline",
                    )
                )
                return None
        return entry

    def _validate(self, request: ReachRequest) -> str | None:
        """Row-local validation at admission; the reason when invalid."""
        if request.cost == 0:
            return "a reach request needs at least one interest"
        if request.cost > self._config.max_batch_cells:
            return (
                f"request of {request.cost} cells exceeds the per-tick batch "
                f"budget of {self._config.max_batch_cells}"
            )
        if request.cost > self._config.tenant_burst:
            # A cost above the bucket capacity could never be admitted no
            # matter how long the tenant waits — reject it loudly instead
            # of throttling forever.
            return (
                f"request of {request.cost} cells exceeds the tenant burst "
                f"capacity of {self._config.tenant_burst}"
            )
        try:
            self._api.validate_reach_matrix(
                np.asarray([request.interests], dtype=np.int64),
                np.asarray([request.cost], dtype=np.int64),
                locations=self._config.locations,
            )
        except AdsApiError as error:
            return str(error)
        return None

    def _expire(self, entry: QueuedRequest, now: float, reason: str) -> ReachResponse:
        self._stats.shed_deadline += 1
        return self._resolve(entry, "deadline_exceeded", reason, now)

    def _resolve(
        self, entry: QueuedRequest, status: str, detail: str, now: float
    ) -> ReachResponse:
        return ReachResponse(
            request=entry.request,
            status=status,
            detail=detail,
            submitted_at=entry.submitted_at,
            completed_at=now,
            attempts=entry.attempt + (1 if status == "failed" else 0),
        )

    def _reject(
        self,
        request: ReachRequest,
        status: str,
        detail: str,
        now: float,
        *,
        retry_after: float | None = None,
    ) -> ReachResponse:
        return ReachResponse(
            request=request,
            status=status,
            detail=detail,
            retry_after_seconds=retry_after,
            submitted_at=now,
            completed_at=now,
        )

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(
                requests_per_minute=self._config.tenant_requests_per_minute,
                burst=self._config.tenant_burst,
                clock=self._clock,
            )
            self._buckets[tenant] = bucket
        return bucket

    def _breaker(self, tenant: str) -> CircuitBreaker:
        breaker = self._breakers.get(tenant)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self._config.breaker_failure_threshold,
                cooldown_seconds=self._config.breaker_cooldown_seconds,
                half_open_probes=self._config.breaker_half_open_probes,
            )
            self._breakers[tenant] = breaker
        return breaker
