"""Request/response types of the always-on reach service.

One :class:`ReachRequest` is one tenant's prefix family — the ordered
interest list whose every prefix audience the paper's attacker reads off
the dashboard.  The service answers with a :class:`ReachResponse` whose
``status`` names exactly what happened; rejected work is *always* a typed
response (never an unbounded wait), so clients can distinguish "back off
and retry" (``throttled``, ``overloaded``, ``circuit_open`` — these carry
``retry_after_seconds`` hints) from "this request is gone"
(``deadline_exceeded``, ``failed``, ``invalid``).

Callers that prefer exceptions call :meth:`ReachResponse.raise_for_status`,
which maps each non-``ok`` status onto the :class:`~repro.errors.ServiceError`
hierarchy (and ``invalid`` onto the Ads API's own validation error).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    OverloadedError,
    RequestFailedError,
    TargetingValidationError,
    TenantThrottledError,
)

#: Every status a :class:`ReachResponse` can carry.
RESPONSE_STATUSES = (
    "ok",
    "invalid",
    "throttled",
    "overloaded",
    "deadline_exceeded",
    "circuit_open",
    "failed",
)


@dataclass(frozen=True)
class ReachRequest:
    """One tenant's reach query: a whole ordered prefix family.

    ``interests`` is the ordered interest-id list; the service returns one
    Potential Reach value per prefix (``interests[:1]``, ``interests[:2]``,
    …), exactly the row the bulk endpoint computes.  The request's
    admission cost is one token per prefix — :attr:`cost` cells — matching
    the per-cell billing of :meth:`~repro.adsapi.AdsManagerAPI.estimate_reach_matrix`.
    """

    tenant: str
    interests: tuple[int, ...]
    #: Seconds (service virtual time) the client will wait; ``None`` takes
    #: the service default.
    timeout_seconds: float | None = None

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ConfigurationError("a reach request needs a non-empty tenant")
        object.__setattr__(self, "interests", tuple(int(i) for i in self.interests))
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ConfigurationError("timeout_seconds must be positive when set")

    @property
    def cost(self) -> int:
        """Admission/billing cost in reach-matrix cells (one per prefix)."""
        return len(self.interests)


@dataclass(frozen=True)
class ReachResponse:
    """The service's answer to one :class:`ReachRequest`."""

    request: ReachRequest
    #: One of :data:`RESPONSE_STATUSES`.
    status: str
    #: Potential Reach per prefix (``status == "ok"`` only), bit-identical
    #: to a direct bulk-endpoint call for the same interests.
    values: tuple[float, ...] | None = None
    #: Human-readable reason for non-``ok`` statuses.
    detail: str = ""
    #: Backoff hint for retryable rejections, in service virtual seconds.
    retry_after_seconds: float | None = None
    #: Service virtual time the request was submitted / resolved.
    submitted_at: float = 0.0
    completed_at: float = 0.0
    #: Attempts the request burned against injected faults (>= 1 once it
    #: reached the execution stage).
    attempts: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.status not in RESPONSE_STATUSES:
            raise ConfigurationError(
                f"unknown response status: {self.status!r} "
                f"(expected one of {RESPONSE_STATUSES})"
            )
        if (self.status == "ok") != (self.values is not None):
            raise ConfigurationError("values must be set iff status is 'ok'")

    @property
    def ok(self) -> bool:
        """True when the request completed with reach values."""
        return self.status == "ok"

    @property
    def latency_seconds(self) -> float:
        """Virtual seconds from submission to resolution (any status)."""
        return self.completed_at - self.submitted_at

    def raise_for_status(self) -> None:
        """Raise the typed error matching a non-``ok`` status (no-op on ``ok``)."""
        if self.status == "ok":
            return
        message = self.detail or f"reach request rejected: {self.status}"
        if self.status == "invalid":
            raise TargetingValidationError(message)
        if self.status == "throttled":
            raise TenantThrottledError(
                message, retry_after_seconds=self.retry_after_seconds
            )
        if self.status == "overloaded":
            raise OverloadedError(
                message, retry_after_seconds=self.retry_after_seconds
            )
        if self.status == "deadline_exceeded":
            raise DeadlineExceededError(message)
        if self.status == "circuit_open":
            raise CircuitOpenError(
                message, retry_after_seconds=self.retry_after_seconds
            )
        raise RequestFailedError(message)
