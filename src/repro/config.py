"""Configuration objects for the reproduction pipeline.

Each stage of the pipeline is driven by a small frozen dataclass.  The
defaults reproduce the conditions of the paper: a world user base of roughly
1.5 billion users spread over the 50 largest Facebook countries, a minimum
reported audience ("Potential Reach" floor) of 20 users as in the January
2017 dataset, at most 25 interests and 50 locations per audience, and a
2,390-user FDVT panel.

Fingerprint contract
--------------------
Every config exposes :meth:`FingerprintedConfig.to_dict` (its dataclass
fields as plain data) and :meth:`FingerprintedConfig.fingerprint` — the
SHA-256 digest of the canonical sorted-key JSON encoding of
``{"kind": <class name>, "payload": to_dict()}`` (see
:func:`repro.cache.stable_fingerprint`).  The digest is *content
addressed*: stable across dict insertion order, process restarts and
``PYTHONHASHSEED``, seed-aware (seeds are ordinary fields), and two
configs fingerprint equal exactly when they compare equal.  The build
cache (:mod:`repro.cache`) and the staged pipeline
(:mod:`repro.pipeline`) key every expensive artifact on these digests.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace

from .cache import stable_fingerprint
from .errors import ConfigurationError

#: Potential Reach floor applied by Facebook when the paper's dataset was
#: collected (January 2017).
LEGACY_REACH_FLOOR = 20

#: Potential Reach floor applied by Facebook since 2018.
MODERN_REACH_FLOOR = 1_000

#: Maximum number of interests that can be combined in a single audience.
MAX_INTERESTS_PER_AUDIENCE = 25

#: Maximum number of locations that can be combined in a single audience.
MAX_LOCATIONS_PER_QUERY = 50

#: Minimum number of matched users required in a Custom Audience.
MIN_CUSTOM_AUDIENCE_SIZE = 100


class FingerprintedConfig:
    """Mixin giving every config dataclass the stable fingerprint contract."""

    def to_dict(self) -> dict:
        """The config's fields (recursively) as JSON-serialisable plain data."""
        return asdict(self)  # type: ignore[call-overload]

    def fingerprint(self) -> str:
        """Stable SHA-256 content fingerprint (see the module docstring).

        Equal configs — and only equal configs — share a fingerprint; any
        field change, including a seed change, produces a new digest.
        """
        return stable_fingerprint(type(self).__name__, self.to_dict())


@dataclass(frozen=True)
class CatalogConfig(FingerprintedConfig):
    """Configuration of the synthetic interest catalog.

    The paper observes 98,982 unique interests across its panel whose
    audience sizes have quartiles 113,193 / 418,530 / 1,719,925 (Figure 2).
    ``median_audience`` and ``log10_sigma`` parameterise the log-normal
    popularity model calibrated to those quartiles.
    """

    n_interests: int = 99_000
    n_topics: int = 24
    median_audience: float = 418_530.0
    log10_sigma: float = 0.878
    min_audience: int = 20
    max_audience_fraction: float = 0.35
    rare_tail_fraction: float = 0.07
    rare_tail_log10_mean: float = 2.0
    rare_tail_log10_sigma: float = 0.7
    seed: int = 1701

    def __post_init__(self) -> None:
        if self.n_interests <= 0:
            raise ConfigurationError("n_interests must be positive")
        if self.n_topics <= 0:
            raise ConfigurationError("n_topics must be positive")
        if self.median_audience <= self.min_audience:
            raise ConfigurationError("median_audience must exceed min_audience")
        if not 0.0 <= self.rare_tail_fraction < 1.0:
            raise ConfigurationError("rare_tail_fraction must be in [0, 1)")
        if not 0.0 < self.max_audience_fraction <= 1.0:
            raise ConfigurationError("max_audience_fraction must be in (0, 1]")


@dataclass(frozen=True)
class ReachModelConfig(FingerprintedConfig):
    """Configuration of the analytic world-scale reach model.

    ``correlation_alpha`` is the conditional-retention exponent: given that a
    user holds the rarest interest of a combination, the probability that
    they also hold another interest with marginal probability ``p`` is
    modelled as ``p ** correlation_alpha`` (instead of ``p`` under
    independence).  The default is calibrated so that the random-selection
    uniqueness cutpoints land in the ranges reported by Table 1.
    """

    correlation_alpha: float = 0.185
    jitter_log10_sigma: float = 0.06
    topic_affinity_boost: float = 0.35
    seed: int = 9218

    def __post_init__(self) -> None:
        if not 0.0 < self.correlation_alpha <= 1.0:
            raise ConfigurationError("correlation_alpha must be in (0, 1]")
        if self.jitter_log10_sigma < 0.0:
            raise ConfigurationError("jitter_log10_sigma must be non-negative")
        if self.topic_affinity_boost < 0.0:
            raise ConfigurationError("topic_affinity_boost must be non-negative")


@dataclass(frozen=True)
class PlatformConfig(FingerprintedConfig):
    """Limits and behaviour of the simulated Facebook advertising platform."""

    reach_floor: int = LEGACY_REACH_FLOOR
    max_interests_per_audience: int = MAX_INTERESTS_PER_AUDIENCE
    max_locations_per_query: int = MAX_LOCATIONS_PER_QUERY
    min_custom_audience_size: int = MIN_CUSTOM_AUDIENCE_SIZE
    allow_worldwide_location: bool = True
    narrow_audience_warning_threshold: int = 1_000
    rate_limit_requests_per_minute: int = 600
    rate_limit_burst: int = 60
    suspension_review_delay_hours: float = 96.0

    def __post_init__(self) -> None:
        if self.reach_floor < 1:
            raise ConfigurationError("reach_floor must be at least 1")
        if self.max_interests_per_audience < 1:
            raise ConfigurationError("max_interests_per_audience must be >= 1")
        if self.max_locations_per_query < 1:
            raise ConfigurationError("max_locations_per_query must be >= 1")
        if self.rate_limit_requests_per_minute <= 0:
            raise ConfigurationError("rate_limit_requests_per_minute must be > 0")
        if self.rate_limit_burst <= 0:
            raise ConfigurationError("rate_limit_burst must be > 0")

    @staticmethod
    def legacy_2017() -> "PlatformConfig":
        """Platform limits at the time the paper's dataset was collected."""
        return PlatformConfig(reach_floor=LEGACY_REACH_FLOOR, allow_worldwide_location=False)

    @staticmethod
    def modern_2020() -> "PlatformConfig":
        """Platform limits at the time the nanotargeting experiment ran."""
        return PlatformConfig(reach_floor=MODERN_REACH_FLOOR, allow_worldwide_location=True)


@dataclass(frozen=True)
class PanelConfig(FingerprintedConfig):
    """Configuration of the synthetic FDVT panel (Section 3 of the paper)."""

    n_users: int = 2_390
    n_men: int = 1_949
    n_women: int = 347
    n_gender_undisclosed: int = 94
    n_adolescents: int = 117
    n_early_adults: int = 1_374
    n_adults: int = 578
    n_matures: int = 19
    n_age_undisclosed: int = 302
    median_interests_per_user: float = 426.0
    interests_log10_sigma: float = 0.62
    min_interests_per_user: int = 1
    max_interests_per_user: int = 8_950
    popularity_bias_jitter: float = 0.28
    seed: int = 2390

    def __post_init__(self) -> None:
        if self.n_users <= 0:
            raise ConfigurationError("n_users must be positive")
        if self.n_men + self.n_women + self.n_gender_undisclosed != self.n_users:
            raise ConfigurationError("gender counts must sum to n_users")
        age_total = (
            self.n_adolescents
            + self.n_early_adults
            + self.n_adults
            + self.n_matures
            + self.n_age_undisclosed
        )
        if age_total != self.n_users:
            raise ConfigurationError("age-group counts must sum to n_users")
        if self.min_interests_per_user < 1:
            raise ConfigurationError("min_interests_per_user must be >= 1")
        if self.max_interests_per_user < self.min_interests_per_user:
            raise ConfigurationError("max_interests_per_user must be >= min")
        if self.popularity_bias_jitter < 0:
            raise ConfigurationError("popularity_bias_jitter must be non-negative")


@dataclass(frozen=True)
class PopulationConfig(FingerprintedConfig):
    """Configuration of the agent-based scaled population."""

    n_agents: int = 150_000
    scale_factor: float = 10_000.0
    median_interests_per_user: float = 220.0
    interests_log10_sigma: float = 0.55
    min_interests_per_user: int = 1
    max_interests_per_user: int = 4_000
    topics_per_user: int = 3
    seed: int = 77

    def __post_init__(self) -> None:
        if self.n_agents <= 0:
            raise ConfigurationError("n_agents must be positive")
        if self.scale_factor <= 0:
            raise ConfigurationError("scale_factor must be positive")
        if self.topics_per_user < 1:
            raise ConfigurationError("topics_per_user must be >= 1")


@dataclass(frozen=True)
class UniquenessConfig(FingerprintedConfig):
    """Configuration of the uniqueness analysis (Section 4)."""

    max_interests: int = 25
    probabilities: tuple[float, ...] = (0.5, 0.8, 0.9, 0.95)
    n_bootstrap: int = 10_000
    confidence_level: float = 0.95
    seed: int = 4242

    def __post_init__(self) -> None:
        if self.max_interests < 2:
            raise ConfigurationError("max_interests must be >= 2")
        for p in self.probabilities:
            if not 0.0 < p < 1.0:
                raise ConfigurationError("probabilities must lie in (0, 1)")
        if self.n_bootstrap < 1:
            raise ConfigurationError("n_bootstrap must be >= 1")
        if not 0.0 < self.confidence_level < 1.0:
            raise ConfigurationError("confidence_level must lie in (0, 1)")


@dataclass(frozen=True)
class ExperimentConfig(FingerprintedConfig):
    """Configuration of the nanotargeting experiment (Section 5)."""

    n_targets: int = 3
    interest_counts: tuple[int, ...] = (5, 7, 9, 12, 18, 20, 22)
    daily_budget_eur: float = 10.0
    initial_budget_eur: float = 70.0
    active_hours: float = 33.0
    cpm_eur: float = 3.5
    seed: int = 2020

    def __post_init__(self) -> None:
        if self.n_targets <= 0:
            raise ConfigurationError("n_targets must be positive")
        if not self.interest_counts:
            raise ConfigurationError("interest_counts must not be empty")
        if any(count < 1 for count in self.interest_counts):
            raise ConfigurationError("interest_counts must be positive")
        if self.daily_budget_eur <= 0 or self.initial_budget_eur <= 0:
            raise ConfigurationError("budgets must be positive")
        if self.active_hours <= 0:
            raise ConfigurationError("active_hours must be positive")
        if self.cpm_eur <= 0:
            raise ConfigurationError("cpm_eur must be positive")

    @property
    def success_group(self) -> tuple[int, ...]:
        """Interest counts the paper expects to succeed (12, 18, 20, 22)."""
        return tuple(count for count in self.interest_counts if count >= 12)

    @property
    def failure_group(self) -> tuple[int, ...]:
        """Interest counts the paper expects to fail (5, 7, 9)."""
        return tuple(count for count in self.interest_counts if count < 12)


@dataclass(frozen=True)
class ReproductionConfig(FingerprintedConfig):
    """Top-level configuration bundling every stage of the reproduction."""

    catalog: CatalogConfig = field(default_factory=CatalogConfig)
    reach: ReachModelConfig = field(default_factory=ReachModelConfig)
    platform: PlatformConfig = field(default_factory=PlatformConfig)
    panel: PanelConfig = field(default_factory=PanelConfig)
    population: PopulationConfig = field(default_factory=PopulationConfig)
    uniqueness: UniquenessConfig = field(default_factory=UniquenessConfig)
    experiment: ExperimentConfig = field(default_factory=ExperimentConfig)

    def with_panel_users(self, n_users: int) -> "ReproductionConfig":
        """Return a copy whose panel holds ``n_users`` users.

        Gender and age quotas are rescaled proportionally (rounded, with
        the undisclosed groups absorbing the remainder), keeping the
        paper's panel composition intact at any size.  This is the panel
        population knob of declarative scenario specs
        (:class:`repro.scenarios.ScenarioSpec`).
        """
        if n_users < 1:
            raise ConfigurationError("n_users must be >= 1")
        panel = _rescale_panel(self.panel, n_users)
        return replace(self, panel=panel)

    def scaled_down(self, factor: int = 20) -> "ReproductionConfig":
        """Return a copy sized for quick tests and examples.

        ``factor`` divides the catalog size, the panel size and the bootstrap
        count, keeping every ratio used by the paper intact.  Gender and age
        quotas of the panel are rescaled proportionally.
        """
        if factor < 1:
            raise ConfigurationError("factor must be >= 1")
        panel = _rescale_panel(self.panel, max(20, self.panel.n_users // factor))
        catalog = replace(
            self.catalog, n_interests=max(500, self.catalog.n_interests // factor)
        )
        uniqueness = replace(
            self.uniqueness, n_bootstrap=max(50, self.uniqueness.n_bootstrap // factor)
        )
        population = replace(
            self.population, n_agents=max(1_000, self.population.n_agents // factor)
        )
        return replace(
            self,
            panel=panel,
            catalog=catalog,
            uniqueness=uniqueness,
            population=population,
        )


def _rescale_panel(panel: PanelConfig, n_users: int) -> PanelConfig:
    """A copy of ``panel`` with ``n_users`` users and proportional quotas."""
    n_men = round(n_users * panel.n_men / panel.n_users)
    n_women = round(n_users * panel.n_women / panel.n_users)
    n_und = n_users - n_men - n_women
    n_adol = round(n_users * panel.n_adolescents / panel.n_users)
    n_early = round(n_users * panel.n_early_adults / panel.n_users)
    n_adult = round(n_users * panel.n_adults / panel.n_users)
    n_mature = round(n_users * panel.n_matures / panel.n_users)
    n_age_und = n_users - n_adol - n_early - n_adult - n_mature
    return replace(
        panel,
        n_users=n_users,
        n_men=n_men,
        n_women=n_women,
        n_gender_undisclosed=n_und,
        n_adolescents=n_adol,
        n_early_adults=n_early,
        n_adults=n_adult,
        n_matures=n_mature,
        n_age_undisclosed=n_age_und,
    )


def default_config() -> ReproductionConfig:
    """Return the full-scale configuration used by the paper reproduction."""
    return ReproductionConfig()


def quick_config(factor: int = 20) -> ReproductionConfig:
    """Return a scaled-down configuration suitable for tests and examples."""
    return default_config().scaled_down(factor)
