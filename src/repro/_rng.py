"""Deterministic random-number-generator plumbing.

All stochastic components of the library accept either an integer seed or a
:class:`numpy.random.Generator`.  The helpers here normalise that input and
derive independent, reproducible sub-streams keyed by arbitrary strings, so
that e.g. the panel generator and the reach model never share a stream even
when built from the same top-level seed.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

_DEFAULT_SEED = 20211102  # IMC '21 conference start date, used as a stable default.


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` maps to the library default seed (the pipeline stays fully
    reproducible unless the caller opts into a different seed), an ``int`` is
    used directly, and an existing generator is passed through unchanged.
    """
    if seed is None:
        return np.random.default_rng(_DEFAULT_SEED)
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"cannot build a random generator from {type(seed).__name__}")


def stable_hash(*keys: object, bits: int = 64) -> int:
    """Hash ``keys`` into a non-negative integer, stable across processes.

    Python's built-in :func:`hash` is salted per process for strings, so it
    cannot be used to derive reproducible seeds.  This helper feeds the
    ``repr`` of every key into BLAKE2b instead.
    """
    digest = hashlib.blake2b(digest_size=bits // 8)
    for key in keys:
        digest.update(repr(key).encode("utf-8"))
        digest.update(b"\x00")
    return int.from_bytes(digest.digest(), "big")


def derive_seed(base_seed: int, *keys: object) -> int:
    """Derive a child seed from ``base_seed`` and a sequence of keys."""
    return stable_hash(int(base_seed), *keys) % (2**63)


def derive_generator(base_seed: int, *keys: object) -> np.random.Generator:
    """Return a generator seeded from ``base_seed`` and ``keys``."""
    return np.random.default_rng(derive_seed(base_seed, *keys))


def spawn_generators(seed: SeedLike, names: Iterable[str]) -> dict[str, np.random.Generator]:
    """Spawn one independent generator per name in ``names``."""
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**62))
    elif seed is None:
        base = _DEFAULT_SEED
    else:
        base = int(seed)
    return {name: derive_generator(base, name) for name in names}
