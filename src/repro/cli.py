"""Command-line interface for the reproduction pipeline.

Installs as the ``repro-facebook`` console script and exposes one
sub-command per stage of the paper:

* ``dataset``          — generate and persist the synthetic catalog + panel;
* ``uniqueness``       — Section 4: estimate N_P for both strategies (Table 1);
* ``nanotargeting``    — Section 5: run the 21-campaign experiment (Table 2);
* ``fdvt-report``      — Section 6: print one panellist's interest-risk view;
* ``countermeasures``  — Section 8.3: evaluate the proposed platform rules.

Every sub-command accepts ``--factor`` (the scale divisor applied to the
paper-scale configuration; 1 reproduces the full-scale study) and ``--seed``.
The heavy commands (``uniqueness``, ``countermeasures``) additionally take
``--workers`` / ``--exec-backend`` to run their panel-scale sweeps through
the sharded execution layer (:mod:`repro.exec`); results are bit-identical
for every backend and worker count.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from . import build_simulation, default_config, quick_config
from .analysis import format_records, format_table
from .campaigns import AdvertiserWorkloadGenerator
from .countermeasures import (
    evaluate_attack_protection,
    evaluate_workload_impact,
    recommended_rules,
    run_protected_experiment,
)
from .io import (
    experiment_report_to_dict,
    save_catalog,
    save_panel,
    uniqueness_report_to_dict,
)
from .pipeline import Simulation


def _build(args: argparse.Namespace) -> Simulation:
    config = default_config() if args.factor <= 1 else quick_config(factor=args.factor)
    return build_simulation(config, seed=args.seed)


def _executor_from_args(simulation: Simulation, args: argparse.Namespace):
    """The ShardExecutor requested by --workers/--exec-backend (None = fused)."""
    workers = getattr(args, "workers", 1)
    backend = getattr(args, "exec_backend", None)
    if workers == 1 and backend is None:
        return None
    return simulation.executor(
        backend=backend or ("thread" if workers > 1 else "serial"),
        workers=workers,
    )


def _write_json(path: str | None, payload: dict) -> None:
    if not path:
        return
    output = Path(path)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"wrote {output}")


# -- sub-commands -------------------------------------------------------------------


def cmd_dataset(args: argparse.Namespace) -> int:
    """Generate the synthetic catalog and panel and save them as JSON."""
    simulation = _build(args)
    output_dir = Path(args.output_dir)
    catalog_path = save_catalog(simulation.catalog, output_dir / "catalog.json")
    panel_path = save_panel(simulation.panel, output_dir / "panel.json")
    print(f"catalog: {len(simulation.catalog):,} interests -> {catalog_path}")
    print(f"panel  : {len(simulation.panel):,} users -> {panel_path}")
    return 0


def cmd_uniqueness(args: argparse.Namespace) -> int:
    """Estimate N_P for both selection strategies (Table 1)."""
    simulation = _build(args)
    model = simulation.uniqueness_model()
    executor = _executor_from_args(simulation, args)
    strategies = simulation.strategies()
    probabilities = tuple(args.probabilities)
    rows = []
    payload = {}
    for strategy in strategies:
        report = model.estimate(
            strategy, probabilities=probabilities, executor=executor
        )
        rows.append(report.table_row())
        payload[strategy.name] = uniqueness_report_to_dict(report)
    print(format_records(rows))
    _write_json(args.output, payload)
    return 0


def cmd_nanotargeting(args: argparse.Namespace) -> int:
    """Run the nanotargeting experiment (Table 2)."""
    simulation = _build(args)
    experiment = simulation.nanotargeting_experiment(seed=args.seed)
    report = experiment.run(candidates=simulation.panel.users)
    print(format_records(report.table_rows()))
    print(
        f"successful campaigns: {report.success_count}/{report.n_campaigns}  "
        f"total cost: €{report.total_cost_eur():.2f}  "
        f"successful cost: €{report.successful_cost_eur():.2f}"
    )
    _write_json(args.output, experiment_report_to_dict(report))
    return 1 if args.fail_on_success and report.success_count else 0


def cmd_fdvt_report(args: argparse.Namespace) -> int:
    """Print the interest-risk report of one panellist (Figure 7)."""
    simulation = _build(args)
    extension = simulation.fdvt_extension()
    if args.user_id is not None:
        user = simulation.panel.get(args.user_id)
    else:
        user = next(
            u for u in sorted(simulation.panel.users, key=lambda u: u.interest_count)
            if u.interest_count >= args.min_interests
        )
    report = extension.build_risk_report(user)
    rows = [
        [entry.name[:48], entry.risk.value, entry.audience_size]
        for entry in report.entries[: args.limit]
    ]
    print(f"panel user #{user.user_id} ({user.country}), {user.interest_count} interests")
    print(format_table(["interest", "risk", "audience"], rows))
    counts = {level.value: count for level, count in report.risk_counts().items()}
    print(f"risk breakdown: {counts}")
    return 0


def cmd_countermeasures(args: argparse.Namespace) -> int:
    """Evaluate the Section 8.3 countermeasures."""
    simulation = _build(args)
    experiment = simulation.nanotargeting_experiment(seed=args.seed)
    targets = experiment.select_targets(simulation.panel.users)
    baseline = experiment.run(targets)

    protected_simulation = build_simulation(simulation.config, seed=args.seed)
    protected_experiment = protected_simulation.nanotargeting_experiment(seed=args.seed)
    protected = run_protected_experiment(
        protected_simulation.campaign_api,
        protected_simulation.delivery_engine,
        [protected_simulation.panel.get(t.user_id) for t in targets],
        list(recommended_rules()),
        experiment=protected_experiment,
    )
    effectiveness = evaluate_attack_protection(baseline, protected)
    workload = AdvertiserWorkloadGenerator(simulation.catalog).generate(
        args.workload_size, seed=args.seed or 0
    )
    impact = evaluate_workload_impact(
        simulation.campaign_api,
        workload,
        [recommended_rules()[0]],
        executor=_executor_from_args(simulation, args),
    )
    print(f"baseline successes : {baseline.success_count}/{baseline.n_campaigns}")
    print(f"protected successes: {protected.success_count}/{protected.n_campaigns}")
    print(f"attack reduction   : {effectiveness.attack_reduction:.0%}")
    print(
        f"benign impact      : {impact.rejected_campaigns}/{impact.total_campaigns} "
        f"campaigns rejected ({impact.rejection_rate:.2%})"
    )
    return 0


# -- parser ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-facebook",
        description="Reproduction of 'Unique on Facebook' (IMC 2021).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--factor",
            type=int,
            default=20,
            help="scale divisor applied to the paper-scale configuration (1 = full scale)",
        )
        sub.add_argument("--seed", type=int, default=None, help="override the default seeds")

    def add_exec(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--workers",
            type=int,
            default=1,
            help="worker count for the sharded execution layer (1 = fused pass)",
        )
        sub.add_argument(
            "--exec-backend",
            choices=("serial", "thread", "process"),
            default=None,
            help="shard runner backend (defaults to thread when --workers > 1)",
        )

    dataset = subparsers.add_parser("dataset", help="generate and save the synthetic dataset")
    add_common(dataset)
    dataset.add_argument("--output-dir", default="dataset", help="directory for the JSON files")
    dataset.set_defaults(handler=cmd_dataset)

    uniqueness = subparsers.add_parser("uniqueness", help="estimate N_P (Table 1)")
    add_common(uniqueness)
    add_exec(uniqueness)
    uniqueness.add_argument(
        "--probabilities",
        type=float,
        nargs="+",
        default=[0.5, 0.8, 0.9, 0.95],
        help="probabilities P for which N_P is estimated",
    )
    uniqueness.add_argument("--output", default=None, help="write the reports as JSON")
    uniqueness.set_defaults(handler=cmd_uniqueness)

    nanotargeting = subparsers.add_parser(
        "nanotargeting", help="run the nanotargeting experiment (Table 2)"
    )
    add_common(nanotargeting)
    nanotargeting.add_argument("--output", default=None, help="write the report as JSON")
    nanotargeting.add_argument(
        "--fail-on-success",
        action="store_true",
        help="exit with status 1 when any campaign nanotargets its user "
        "(useful as a regression check for countermeasure deployments)",
    )
    nanotargeting.set_defaults(handler=cmd_nanotargeting)

    fdvt = subparsers.add_parser("fdvt-report", help="print a user's interest-risk view")
    add_common(fdvt)
    fdvt.add_argument("--user-id", type=int, default=None, help="panel user id to inspect")
    fdvt.add_argument("--min-interests", type=int, default=30)
    fdvt.add_argument("--limit", type=int, default=15, help="rows to display")
    fdvt.set_defaults(handler=cmd_fdvt_report)

    countermeasures = subparsers.add_parser(
        "countermeasures", help="evaluate the Section 8.3 countermeasures"
    )
    add_common(countermeasures)
    add_exec(countermeasures)
    countermeasures.add_argument("--workload-size", type=int, default=500)
    countermeasures.set_defaults(handler=cmd_countermeasures)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
