"""Command-line interface for the reproduction pipeline.

Installs as the ``repro-facebook`` console script and exposes one
sub-command per stage of the paper:

* ``dataset``          — generate and persist the synthetic catalog + panel;
* ``uniqueness``       — Section 4: estimate N_P for both strategies (Table 1);
* ``nanotargeting``    — Section 5: run the 21-campaign experiment (Table 2);
* ``fdvt-report``      — Section 6: print one panellist's interest-risk view;
* ``countermeasures``  — Section 8.3: evaluate the proposed platform rules;
* ``scenario``         — the declarative orchestration layer
  (:mod:`repro.scenarios`): ``scenario list`` prints the registry,
  ``scenario run NAME`` runs one registered spec (with overrides),
  ``scenario sweep NAME --grid field=v1,v2 ...`` expands a grid and fans it
  across the shard-runner backends, and ``scenario sweep --spec file.json``
  sweeps a fully external grid (a JSON list of specs, or a base spec plus
  grid axes) on the same cached compile path — rows sharing catalog/panel
  fingerprints build those stages once (:mod:`repro.cache`);
* ``cache``            — the disk-backed artifact store: ``cache info``
  reports tier sizes, ``cache clear`` empties the root, ``cache prune
  --max-bytes N`` evicts least-recently-used artifacts down to a byte
  budget and ``cache warm`` pre-builds the artifacts for a scenario/grid
  so later cold runs load instead of rebuild.  The store root comes from ``--root``, the
  ``REPRO_CACHE_ROOT`` environment variable or ``~/.cache/repro-facebook``;
  setting ``REPRO_CACHE_ROOT`` also makes every other sub-command (and
  process workers) hydrate through it.  ``REPRO_CACHE_SIZE`` bounds the
  in-process LRU in front of it.

Every sub-command accepts ``--factor`` (the scale divisor applied to the
paper-scale configuration; 1 reproduces the full-scale study) and ``--seed``.
The heavy commands (``uniqueness``, ``countermeasures``, ``scenario``)
additionally take ``--workers`` / ``--exec-backend`` to run their
panel-scale sweeps through the sharded execution layer (:mod:`repro.exec`);
results are bit-identical for every backend and worker count.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import Counter
from dataclasses import replace
from pathlib import Path
from typing import Sequence

from . import PANEL_LAYOUTS, build_simulation, default_config, quick_config
from .analysis import format_records, format_table
from .cache import (
    BuildCache,
    DiskCache,
    build_cache,
    resolve_cache_root,
)
from .campaigns import AdvertiserWorkloadGenerator
from .countermeasures import (
    evaluate_attack_protection,
    evaluate_workload_impact,
    recommended_rules,
    run_protected_experiment,
)
from .io import (
    experiment_report_to_dict,
    save_catalog,
    save_panel,
    uniqueness_report_to_dict,
)
from ._rng import derive_seed
from .adsapi import AdsManagerAPI
from .config import PlatformConfig
from .errors import ConfigurationError, ReproError, ServiceError
from .faults import FaultPlan, RetryPolicy, WallClockRetryPolicy
from .pipeline import (
    Simulation,
    build_catalog,
    build_panel,
    panel_fingerprint,
)
from .exec import ShardExecutor
from .service import ReachService, RequestTrace, ServiceConfig, run_trace
from .simclock import SimClock
from .scenarios import (
    ScenarioSpec,
    SweepRunner,
    expand_grid,
    get_scenario,
    list_scenarios,
    run_scenario,
)
from .scenarios.sweep import ON_ERROR_MODES, coerce_axis_value, manifest_path_for

#: Exit codes of the console script: 0 success, 1 domain-level failure
#: (e.g. dead-lettered scenarios, --fail-on-success), 2 configuration
#: errors, 3 execution failures, 4 service-layer failures (the reach
#: service's typed rejections surfacing as errors).  Argparse usage
#: errors also exit 2.
EXIT_CONFIG_ERROR = 2
EXIT_EXEC_ERROR = 3
EXIT_SERVICE_ERROR = 4

#: argparse ``const`` sentinel for ``--manifest`` / ``--resume`` given
#: without a FILE: resolve a content-addressed path under the cache root.
_MANIFEST_AUTO = object()


def _build(args: argparse.Namespace) -> Simulation:
    config = default_config() if args.factor <= 1 else quick_config(factor=args.factor)
    # The process-global cache carries a disk tier when REPRO_CACHE_ROOT
    # is set, so repeat (and warmed) CLI runs hydrate the catalog/panel
    # stages from disk; results are bit-identical either way.
    return build_simulation(
        config,
        seed=args.seed,
        cache=build_cache(),
        panel_layout=getattr(args, "panel_layout", None),
    )


def _executor_from_args(simulation: Simulation, args: argparse.Namespace):
    """The ShardExecutor requested by --workers/--exec-backend (None = fused)."""
    workers = getattr(args, "workers", 1)
    backend = getattr(args, "exec_backend", None)
    if workers == 1 and backend is None:
        return None
    return simulation.executor(
        backend=backend or ("thread" if workers > 1 else "serial"),
        workers=workers,
    )


def _scenario_executor(args: argparse.Namespace) -> ShardExecutor | None:
    """Like :func:`_executor_from_args`, without needing a simulation."""
    workers = getattr(args, "workers", 1)
    backend = getattr(args, "exec_backend", None)
    if workers == 1 and backend is None:
        return None
    return ShardExecutor(
        backend=backend or ("thread" if workers > 1 else "serial"), workers=workers
    )


def _write_json(path: str | None, payload: dict) -> None:
    if not path:
        return
    output = Path(path)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"wrote {output}")


# -- sub-commands -------------------------------------------------------------------


def cmd_dataset(args: argparse.Namespace) -> int:
    """Generate the synthetic catalog and panel and save them as JSON."""
    simulation = _build(args)
    output_dir = Path(args.output_dir)
    catalog_path = save_catalog(simulation.catalog, output_dir / "catalog.json")
    panel_path = save_panel(simulation.panel, output_dir / "panel.json")
    print(f"catalog: {len(simulation.catalog):,} interests -> {catalog_path}")
    print(f"panel  : {len(simulation.panel):,} users -> {panel_path}")
    return 0


def cmd_uniqueness(args: argparse.Namespace) -> int:
    """Estimate N_P for both selection strategies (Table 1)."""
    simulation = _build(args)
    model = simulation.uniqueness_model()
    executor = _executor_from_args(simulation, args)
    strategies = simulation.strategies()
    probabilities = tuple(args.probabilities)
    rows = []
    payload = {}
    for strategy in strategies:
        report = model.estimate(
            strategy, probabilities=probabilities, executor=executor
        )
        rows.append(report.table_row())
        payload[strategy.name] = uniqueness_report_to_dict(report)
    print(format_records(rows))
    _write_json(args.output, payload)
    return 0


def cmd_nanotargeting(args: argparse.Namespace) -> int:
    """Run the nanotargeting experiment (Table 2)."""
    simulation = _build(args)
    experiment = simulation.nanotargeting_experiment(seed=args.seed)
    report = experiment.run(candidates=simulation.panel.users)
    print(format_records(report.table_rows()))
    print(
        f"successful campaigns: {report.success_count}/{report.n_campaigns}  "
        f"total cost: €{report.total_cost_eur():.2f}  "
        f"successful cost: €{report.successful_cost_eur():.2f}"
    )
    _write_json(args.output, experiment_report_to_dict(report))
    return 1 if args.fail_on_success and report.success_count else 0


def cmd_fdvt_report(args: argparse.Namespace) -> int:
    """Print the interest-risk report of one panellist (Figure 7)."""
    simulation = _build(args)
    extension = simulation.fdvt_extension()
    if args.user_id is not None:
        user = simulation.panel.get(args.user_id)
    else:
        user = next(
            u for u in sorted(simulation.panel.users, key=lambda u: u.interest_count)
            if u.interest_count >= args.min_interests
        )
    report = extension.build_risk_report(user)
    rows = [
        [entry.name[:48], entry.risk.value, entry.audience_size]
        for entry in report.entries[: args.limit]
    ]
    print(f"panel user #{user.user_id} ({user.country}), {user.interest_count} interests")
    print(format_table(["interest", "risk", "audience"], rows))
    counts = {level.value: count for level, count in report.risk_counts().items()}
    print(f"risk breakdown: {counts}")
    return 0


def cmd_countermeasures(args: argparse.Namespace) -> int:
    """Evaluate the Section 8.3 countermeasures."""
    simulation = _build(args)
    experiment = simulation.nanotargeting_experiment(seed=args.seed)
    targets = experiment.select_targets(simulation.panel.users)
    baseline = experiment.run(targets)

    protected_simulation = build_simulation(
        simulation.config, seed=args.seed, panel_layout=getattr(args, "panel_layout", None)
    )
    protected_experiment = protected_simulation.nanotargeting_experiment(seed=args.seed)
    protected = run_protected_experiment(
        protected_simulation.campaign_api,
        protected_simulation.delivery_engine,
        [protected_simulation.panel.get(t.user_id) for t in targets],
        list(recommended_rules()),
        experiment=protected_experiment,
    )
    effectiveness = evaluate_attack_protection(baseline, protected)
    workload = AdvertiserWorkloadGenerator(simulation.catalog).generate(
        args.workload_size, seed=args.seed or 0
    )
    impact = evaluate_workload_impact(
        simulation.campaign_api,
        workload,
        [recommended_rules()[0]],
        executor=_executor_from_args(simulation, args),
    )
    print(f"baseline successes : {baseline.success_count}/{baseline.n_campaigns}")
    print(f"protected successes: {protected.success_count}/{protected.n_campaigns}")
    print(f"attack reduction   : {effectiveness.attack_reduction:.0%}")
    print(
        f"benign impact      : {impact.rejected_campaigns}/{impact.total_campaigns} "
        f"campaigns rejected ({impact.rejection_rate:.2%})"
    )
    return 0


def cmd_scenario_list(args: argparse.Namespace) -> int:
    """Print every registered scenario spec."""
    rows = [
        [spec.name, spec.study, f"factor={spec.factor}", spec.description]
        for spec in list_scenarios()
    ]
    print(format_table(["scenario", "study", "scale", "description"], rows))
    return 0


def _parse_grid(entries: Sequence[str]) -> dict[str, list]:
    """``field=v1,v2`` CLI entries into :func:`expand_grid` axes.

    Value coercion is delegated to
    :func:`repro.scenarios.sweep.coerce_axis_value`, which derives types
    from the ScenarioSpec schema itself.
    """
    axes: dict[str, list] = {}
    for entry in entries:
        field, separator, values = entry.partition("=")
        if not separator or not values:
            raise SystemExit(f"--grid expects field=v1,v2,..., got {entry!r}")
        try:
            axes[field] = [
                coerce_axis_value(field, token) for token in values.split(",")
            ]
        except (ConfigurationError, ValueError) as exc:
            raise SystemExit(f"--grid {entry!r}: {exc}") from None
    return axes


def _apply_overrides(spec: ScenarioSpec, args: argparse.Namespace) -> ScenarioSpec:
    overrides = {}
    if args.factor is not None:
        overrides["factor"] = args.factor
    if args.seed is not None:
        overrides["seed"] = args.seed
    return replace(spec, **overrides) if overrides else spec


def _scenario_with_overrides(args: argparse.Namespace) -> ScenarioSpec:
    return _apply_overrides(get_scenario(args.name), args)


def _load_spec_file(path: str, args: argparse.Namespace) -> tuple[ScenarioSpec, ...]:
    """Parse a ``--spec`` file into the grid of scenarios to sweep.

    Two shapes are accepted (both made of :meth:`ScenarioSpec.to_dict`
    payloads, so a registry export round-trips):

    * a JSON **list** of spec dictionaries — the grid, row by row;
    * a JSON **object** ``{"base": <spec dict>, "grid": {field: [values]}}``
      — expanded with :func:`repro.scenarios.expand_grid` exactly like
      ``--grid`` axes (``grid`` optional; omitted means the base alone).

    ``--factor`` / ``--seed`` overrides apply to every row (list shape) or
    to the base spec before expansion (object shape).  Malformed files
    exit with a diagnostic instead of a traceback.
    """
    spec_path = Path(path)
    try:
        payload = json.loads(spec_path.read_text())
    except OSError as exc:
        raise SystemExit(f"--spec {path}: cannot read file ({exc})") from None
    except ValueError as exc:
        raise SystemExit(f"--spec {path}: not valid JSON ({exc})") from None

    def check_unique_names(specs: tuple[ScenarioSpec, ...]) -> tuple[ScenarioSpec, ...]:
        counts = Counter(spec.name for spec in specs)
        duplicates = sorted(name for name, count in counts.items() if count > 1)
        if duplicates:
            raise SystemExit(f"--spec {path}: duplicate scenario names: {duplicates}")
        return specs

    def spec_from(entry: object) -> ScenarioSpec:
        if not isinstance(entry, dict):
            raise SystemExit(
                f"--spec {path}: every spec must be a JSON object, "
                f"got {type(entry).__name__}"
            )
        return _apply_overrides(ScenarioSpec.from_dict(entry), args)

    try:
        if isinstance(payload, list):
            if not payload:
                raise SystemExit(f"--spec {path}: the spec list is empty")
            return check_unique_names(tuple(spec_from(entry) for entry in payload))
        if isinstance(payload, dict):
            if "base" not in payload:
                raise SystemExit(
                    f"--spec {path}: expected a list of specs or an object "
                    "with a 'base' spec (and optional 'grid' axes)"
                )
            unknown = set(payload) - {"base", "grid"}
            if unknown:
                raise SystemExit(
                    f"--spec {path}: unknown top-level keys: {sorted(unknown)}"
                )
            base = spec_from(payload["base"])
            axes = payload.get("grid")
            if axes is None:
                axes = {}
            if not isinstance(axes, dict):
                raise SystemExit(f"--spec {path}: 'grid' must map fields to value lists")
            for field, values in axes.items():
                if not isinstance(values, list):
                    raise SystemExit(
                        f"--spec {path}: grid axis {field!r} must be a JSON list "
                        f"of values, got {type(values).__name__}"
                    )
            return check_unique_names(
                expand_grid(base, {name: list(values) for name, values in axes.items()})
            )
    except (ConfigurationError, TypeError, ValueError) as exc:
        raise SystemExit(f"--spec {path}: {exc}") from None
    raise SystemExit(f"--spec {path}: expected a JSON list or object")


def cmd_scenario_run(args: argparse.Namespace) -> int:
    """Run one registered scenario through the Experiment protocol."""
    spec = _scenario_with_overrides(args)
    result = run_scenario(spec, executor=_scenario_executor(args))
    print(f"scenario {result.scenario} ({result.study}, seed={result.seed})")
    for line in result.summary:
        print(f"  {line}")
    print(format_records([{"scenario": result.scenario, **result.metrics_dict}]))
    _write_json(args.output, result.to_dict())
    return 0


def _sweep_fault_layer(
    args: argparse.Namespace,
) -> tuple[RetryPolicy | None, FaultPlan | None]:
    """The (retry, faults) pair requested by --retries/--fault-rate.

    ``--wall-clock-retries`` swaps the simulated-time policy for
    :class:`WallClockRetryPolicy` (seeded full jitter, real sleeps
    between attempts) — the run manifest notes which clock a sweep used.
    """
    if getattr(args, "wall_clock_retries", False):
        def policy(max_attempts: int) -> RetryPolicy:
            return WallClockRetryPolicy(
                max_attempts=max_attempts,
                jitter_seed=derive_seed(args.fault_seed or 0, "cli-wall-jitter"),
            )
    else:
        policy = RetryPolicy
    retry = policy(max_attempts=args.retries + 1) if args.retries else None
    faults = None
    if args.fault_rate:
        faults = FaultPlan(
            seed=derive_seed(args.fault_seed or 0, "cli-faults"),
            transient_rate=args.fault_rate / 3.0,
            error_rate=args.fault_rate / 3.0,
            slow_rate=args.fault_rate / 3.0,
        )
        if retry is None:
            # Injection without retries would just kill the sweep; pair it
            # with the plan's convergence bound by default.
            retry = policy(max_attempts=faults.max_faults_per_task + 1)
    return retry, faults


def cmd_scenario_sweep(args: argparse.Namespace) -> int:
    """Expand a grid over one scenario and fan it across the runner backends.

    The grid comes either from a registered scenario plus ``--grid`` axes,
    or — fully externally — from a ``--spec`` JSON file (a list of spec
    dictionaries, or a base spec with grid axes).  Both ride the same
    cached compile path: rows sharing catalog/panel fingerprints build
    those stages once.

    Fault tolerance: ``--retries`` enables per-scenario retries,
    ``--on-error skip`` dead-letters failing scenarios instead of
    aborting, ``--manifest [FILE]`` persists per-scenario outcomes
    incrementally, and ``--resume [FILE]`` re-runs only the scenarios a
    previous manifest did not complete (matched by full-spec
    fingerprint).  Given without FILE, both default to a
    content-addressed path under the cache root (``REPRO_CACHE_ROOT`` or
    ``~/.cache/repro-facebook``) derived from the resolved grid, so
    resume state and cache hydration share one root; a bare ``--resume``
    whose manifest does not exist yet simply starts fresh.
    ``--fault-rate`` injects deterministic chaos for drills.  Exit
    status is 1 when any scenario dead-lettered.
    """
    if args.spec is not None:
        if args.name is not None:
            raise SystemExit("give either a registered scenario name or --spec, not both")
        if args.grid:
            raise SystemExit("--grid belongs in the --spec file's 'grid' object")
        specs = _load_spec_file(args.spec, args)
    else:
        if args.name is None:
            raise SystemExit("a registered scenario name (or --spec FILE) is required")
        base = _scenario_with_overrides(args)
        specs = expand_grid(base, _parse_grid(args.grid))
    executor = _scenario_executor(args) or ShardExecutor()
    retry, faults = _sweep_fault_layer(args)
    runner = SweepRunner(
        executor=executor,
        seed=args.sweep_seed,
        retry=retry,
        faults=faults,
        on_error=args.on_error,
    )
    manifest_path = args.manifest
    resume = args.resume
    if manifest_path is _MANIFEST_AUTO or resume is _MANIFEST_AUTO:
        auto_path = manifest_path_for(runner.resolve(specs))
        if manifest_path is _MANIFEST_AUTO:
            manifest_path = auto_path
        if resume is _MANIFEST_AUTO:
            # A bare --resume with no manifest yet is a fresh run, not an
            # error — the first interrupted attempt creates the file.
            resume = auto_path if auto_path.is_file() else None
    report = runner.run_report(
        specs, resume=resume, manifest_path=manifest_path
    )
    results = report.results
    print(
        f"swept {len(results)} scenarios on {executor.describe()} "
        f"(sweep seed: {args.sweep_seed})"
    )
    counts = report.counts()
    if counts["retried"] or counts["resumed"] or counts["failed"]:
        print(
            f"outcomes: {counts['completed']}/{counts['total']} completed, "
            f"{counts['retried']} retried, {counts['resumed']} resumed, "
            f"{counts['failed']} dead-lettered"
        )
    print(format_records(results.table_rows()))
    if manifest_path:
        print(f"manifest: {manifest_path}")
    _write_json(args.output, {"scenarios": results.to_dicts()})
    if not report.ok:
        for line in report.failure_lines():
            print(line, file=sys.stderr)
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the always-on reach service against a (generated or saved) trace.

    Builds a warm simulation, stands up a :class:`~repro.service.ReachService`
    over a fresh modern-platform API, replays a request trace through it
    (``--trace FILE`` for a saved one, otherwise a seeded synthetic
    workload from ``--duration``/``--rps``/``--tenants``) and prints the
    run report: status counts, shed rate, P50/P99 virtual latency and
    throughput.  ``--fault-rate`` injects deterministic chaos into the
    service tick; ``--verify-parity`` re-checks every served answer
    against a direct bulk call and fails loudly on any mismatch.
    """
    simulation = _build(args)
    api = AdsManagerAPI(
        simulation.reach_model,
        platform=PlatformConfig.modern_2020(),
        clock=SimClock(),
    )
    config = ServiceConfig(
        tenant_requests_per_minute=args.tenant_rpm,
        tenant_burst=args.tenant_burst,
        max_queue_cells=args.max_queue_cells,
        max_batch_cells=args.max_batch_cells,
        tick_seconds=args.tick_seconds,
        default_timeout_seconds=args.timeout_seconds,
    )
    retry, faults = _sweep_fault_layer(args)
    service = ReachService(api, config=config, retry=retry, faults=faults)
    if args.trace:
        trace = RequestTrace.load(args.trace)
        print(f"loaded trace: {args.trace} ({len(trace)} requests)")
    else:
        trace = RequestTrace.generate(
            simulation.catalog,
            seed=args.seed if args.seed is not None else 0,
            duration_seconds=args.duration,
            requests_per_second=args.rps,
            tenants=args.tenants,
            hot_tenant_share=args.hot_share,
        )
    if args.trace_out:
        path = trace.save(args.trace_out)
        print(f"wrote trace: {path}")
    start = time.perf_counter()
    report = run_trace(service, trace)
    wall_seconds = time.perf_counter() - start
    summary = report.summary()
    served = len(report.completed)
    print(
        f"served {served}/{summary['responses']} requests over "
        f"{summary['virtual_seconds']:g} virtual seconds "
        f"({summary['ticks']} ticks, {wall_seconds:.3f}s wall)"
    )
    print(f"status counts: {summary['status_counts']}")
    print(
        f"shed rate: {summary['shed_rate']:.3f}  "
        f"virtual qps: {summary['virtual_qps']:.2f}  "
        f"wall qps: {served / wall_seconds if wall_seconds > 0 else float('inf'):.1f}"
    )
    print(
        f"latency (virtual): p50 {summary['latency_p50_seconds']:g}s  "
        f"p99 {summary['latency_p99_seconds']:g}s"
    )
    parity_ok = None
    if args.verify_parity:
        reference = AdsManagerAPI(
            simulation.reach_model,
            platform=PlatformConfig.modern_2020(),
            clock=SimClock(),
        )
        failures = report.parity_failures(reference)
        parity_ok = not failures
        if failures:
            print(
                f"PARITY FAILURE: {len(failures)} served response(s) differ "
                "from direct bulk calls",
                file=sys.stderr,
            )
        else:
            print(f"parity: all {served} served responses match direct calls")
    _write_json(
        args.output,
        {
            "summary": summary,
            "wall_seconds": wall_seconds,
            "service": service.stats(),
            "parity_ok": parity_ok,
        },
    )
    if parity_ok is False:
        return 1
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Describe a deterministic fault plan (and preview what would fire)."""
    plan = FaultPlan(
        seed=derive_seed(args.seed or 0, "cli-faults"),
        transient_rate=args.transient_rate,
        error_rate=args.error_rate,
        slow_rate=args.slow_rate,
        crash_rate=args.crash_rate,
    )
    print("fault plan:")
    for key, value in plan.describe().items():
        print(f"  {key}: {value}")
    retry = RetryPolicy(max_attempts=args.retries + 1)
    print("retry policy (sim clock — offline sweeps):")
    for key, value in retry.describe().items():
        print(f"  {key}: {value}")
    wall = WallClockRetryPolicy(
        max_attempts=args.retries + 1,
        jitter_seed=derive_seed(args.seed or 0, "cli-wall-jitter"),
    )
    print("retry policy (wall clock — always-on service, full jitter):")
    for key, value in wall.describe().items():
        print(f"  {key}: {value}")
    decisions = plan.preview(args.tasks, args.attempts)
    print(
        f"preview: {len(decisions)} fault(s) over {args.tasks} task(s) "
        f"x {args.attempts} attempt(s)"
    )
    for decision in decisions:
        detail = f" ({decision.seconds:g}s)" if decision.seconds else ""
        print(
            f"  task {decision.task_index} attempt {decision.attempt}: "
            f"{decision.kind}{detail}"
        )
    converges = retry.max_attempts > plan.max_faults_per_task
    print(
        "convergence: "
        + (
            "guaranteed (max_attempts > max_faults_per_task)"
            if converges
            else "NOT guaranteed — raise --retries above max_faults_per_task"
        )
    )
    return 0


def _format_bytes(count: int) -> str:
    """Human-readable byte count (binary units)."""
    size = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024.0 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024.0
    return f"{int(count)} B"  # pragma: no cover - unreachable


def _cache_disk(args: argparse.Namespace) -> DiskCache:
    """The disk tier addressed by ``--root`` / REPRO_CACHE_ROOT / default."""
    return DiskCache(resolve_cache_root(getattr(args, "root", None)))


def cmd_cache_info(args: argparse.Namespace) -> int:
    """Report the disk tier's root, artifact counts and byte totals."""
    info = _cache_disk(args).info()
    print(f"cache root: {info['root']}")
    print(f"artifacts : {info['artifacts']} ({_format_bytes(info['bytes'])})")
    for kind in sorted(info["kinds"]):
        entry = info["kinds"][kind]
        print(f"  {kind}: {entry['count']} ({_format_bytes(entry['bytes'])})")
    print(f"manifests : {info['manifests']}")
    return 0


def cmd_cache_clear(args: argparse.Namespace) -> int:
    """Remove every artifact and sweep manifest under the cache root."""
    disk = _cache_disk(args)
    removed = disk.clear()
    print(f"removed {removed} file(s) from {disk.root}")
    return 0


def cmd_cache_prune(args: argparse.Namespace) -> int:
    """Evict least-recently-used artifacts until the root fits a byte budget.

    Recency is artifact mtime — refreshed on every disk hit — so the
    artifacts still hydrating runs survive and cold leftovers from old
    sweeps go first.  Eviction is per-file unlink: a reader that already
    opened a pruned artifact keeps its file handle, and a key pruned
    mid-build is simply rebuilt and republished on the next miss.
    """
    disk = _cache_disk(args)
    stats = disk.prune(args.max_bytes)
    print(f"cache root: {disk.root}")
    print(
        f"pruned {stats['removed']} artifact(s) ({_format_bytes(stats['freed_bytes'])}); "
        f"{_format_bytes(stats['remaining_bytes'])} of "
        f"{_format_bytes(args.max_bytes)} budget in use"
    )
    return 0


def cmd_cache_warm(args: argparse.Namespace) -> int:
    """Pre-build and publish the catalog/panel artifacts for a spec or grid.

    With a registered scenario name (plus optional ``--grid`` axes) or a
    ``--spec`` file, warms every distinct catalog/panel stage of the
    resolved grid; without one, warms the default ``--factor``/``--seed``
    configuration the other sub-commands build.  A later run against the
    same root — any process, any worker count — hydrates those stages
    from disk instead of rebuilding them, bit-identically.
    """
    disk = _cache_disk(args)
    cache = BuildCache(disk=disk)
    if args.spec is not None:
        if args.name is not None:
            raise SystemExit("give either a registered scenario name or --spec, not both")
        if args.grid:
            raise SystemExit("--grid belongs in the --spec file's 'grid' object")
        specs = _load_spec_file(args.spec, args)
    elif args.name is not None:
        base = _scenario_with_overrides(args)
        specs = expand_grid(base, _parse_grid(args.grid))
    else:
        specs = ()
    if specs:
        if args.sweep_seed is not None:
            specs = tuple(spec.derived(args.sweep_seed) for spec in specs)
        jobs = [(spec.config(), spec.seed) for spec in specs]
    else:
        config = (
            default_config()
            if (args.factor or 20) <= 1
            else quick_config(factor=args.factor or 20)
        )
        jobs = [(config, args.seed)]
    seen: set[str] = set()
    for config, seed in jobs:
        stage_key = panel_fingerprint(config, seed)
        if stage_key in seen:
            continue
        seen.add(stage_key)
        catalog = build_catalog(config, seed=seed, cache=cache)
        build_panel(config, seed=seed, catalog=catalog, cache=cache)
    info = cache.cache_info()
    print(f"cache root: {disk.root}")
    print(
        f"warmed {len(seen)} stage group(s): {info.misses} artifact(s) built, "
        f"{info.disk_hits} already on disk"
    )
    if info.disk_store_errors:
        print(
            f"warning: {info.disk_store_errors} artifact(s) could not be "
            "published (unwritable root?)",
            file=sys.stderr,
        )
        return 1
    return 0


# -- parser ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-facebook",
        description="Reproduction of 'Unique on Facebook' (IMC 2021).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--factor",
            type=int,
            default=20,
            help="scale divisor applied to the paper-scale configuration (1 = full scale)",
        )
        sub.add_argument("--seed", type=int, default=None, help="override the default seeds")
        sub.add_argument(
            "--panel-layout",
            choices=PANEL_LAYOUTS,
            default=None,
            help=(
                "panel storage layout (default: columnar, or the "
                "REPRO_PANEL_LAYOUT environment variable); content is "
                "bit-identical either way"
            ),
        )

    def add_exec(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--workers",
            type=int,
            default=1,
            help="worker count for the sharded execution layer (1 = fused pass)",
        )
        sub.add_argument(
            "--exec-backend",
            choices=("serial", "thread", "process"),
            default=None,
            help="shard runner backend (defaults to thread when --workers > 1)",
        )

    dataset = subparsers.add_parser("dataset", help="generate and save the synthetic dataset")
    add_common(dataset)
    dataset.add_argument("--output-dir", default="dataset", help="directory for the JSON files")
    dataset.set_defaults(handler=cmd_dataset)

    uniqueness = subparsers.add_parser("uniqueness", help="estimate N_P (Table 1)")
    add_common(uniqueness)
    add_exec(uniqueness)
    uniqueness.add_argument(
        "--probabilities",
        type=float,
        nargs="+",
        default=[0.5, 0.8, 0.9, 0.95],
        help="probabilities P for which N_P is estimated",
    )
    uniqueness.add_argument("--output", default=None, help="write the reports as JSON")
    uniqueness.set_defaults(handler=cmd_uniqueness)

    nanotargeting = subparsers.add_parser(
        "nanotargeting", help="run the nanotargeting experiment (Table 2)"
    )
    add_common(nanotargeting)
    nanotargeting.add_argument("--output", default=None, help="write the report as JSON")
    nanotargeting.add_argument(
        "--fail-on-success",
        action="store_true",
        help="exit with status 1 when any campaign nanotargets its user "
        "(useful as a regression check for countermeasure deployments)",
    )
    nanotargeting.set_defaults(handler=cmd_nanotargeting)

    fdvt = subparsers.add_parser("fdvt-report", help="print a user's interest-risk view")
    add_common(fdvt)
    fdvt.add_argument("--user-id", type=int, default=None, help="panel user id to inspect")
    fdvt.add_argument("--min-interests", type=int, default=30)
    fdvt.add_argument("--limit", type=int, default=15, help="rows to display")
    fdvt.set_defaults(handler=cmd_fdvt_report)

    countermeasures = subparsers.add_parser(
        "countermeasures", help="evaluate the Section 8.3 countermeasures"
    )
    add_common(countermeasures)
    add_exec(countermeasures)
    countermeasures.add_argument("--workload-size", type=int, default=500)
    countermeasures.set_defaults(handler=cmd_countermeasures)

    scenario = subparsers.add_parser(
        "scenario", help="declarative scenario orchestration (repro.scenarios)"
    )
    scenario_subs = scenario.add_subparsers(dest="scenario_command", required=True)

    scenario_list = scenario_subs.add_parser("list", help="print the scenario registry")
    scenario_list.set_defaults(handler=cmd_scenario_list)

    def add_scenario_common(
        sub: argparse.ArgumentParser, *, name_required: bool = True
    ) -> None:
        if name_required:
            sub.add_argument(
                "name", help="registered scenario name (see `scenario list`)"
            )
        else:
            sub.add_argument(
                "name",
                nargs="?",
                default=None,
                help="registered scenario name (omit when sweeping a --spec file)",
            )
        sub.add_argument(
            "--factor", type=int, default=None, help="override the spec's scale divisor"
        )
        sub.add_argument(
            "--seed", type=int, default=None, help="override the spec's seed"
        )
        add_exec(sub)
        sub.add_argument("--output", default=None, help="write the results as JSON")

    scenario_run = scenario_subs.add_parser(
        "run", help="run one registered scenario"
    )
    add_scenario_common(scenario_run)
    scenario_run.set_defaults(handler=cmd_scenario_run)

    scenario_sweep = scenario_subs.add_parser(
        "sweep", help="expand a grid over one scenario and run it sharded"
    )
    add_scenario_common(scenario_sweep, name_required=False)
    scenario_sweep.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="sweep a fully external grid: a JSON list of scenario specs, or "
        "an object {'base': spec, 'grid': {field: [values]}}; rows sharing "
        "catalog/panel fingerprints build those stages once",
    )
    scenario_sweep.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="FIELD=V1,V2",
        help="one grid axis (repeatable); tuple fields join elements with '+', "
        "e.g. --grid strategies=least_popular+random,random --grid seed=1,2,3",
    )
    scenario_sweep.add_argument(
        "--sweep-seed",
        type=int,
        default=None,
        help="derive per-scenario seeds from this base (specs with explicit "
        "seeds keep them)",
    )
    scenario_sweep.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retries per scenario for transient failures (0 = fail fast)",
    )
    scenario_sweep.add_argument(
        "--on-error",
        choices=ON_ERROR_MODES,
        default="raise",
        help="what to do when a scenario exhausts its retries: abort the "
        "sweep, or dead-letter it and return the partial results",
    )
    scenario_sweep.add_argument(
        "--manifest",
        nargs="?",
        const=_MANIFEST_AUTO,
        default=None,
        metavar="FILE",
        help="persist per-scenario outcomes to FILE after every chunk "
        "(a killed sweep leaves a valid --resume point); without FILE, "
        "a content-addressed path under the cache root (REPRO_CACHE_ROOT "
        "or ~/.cache/repro-facebook) derived from the resolved grid",
    )
    scenario_sweep.add_argument(
        "--resume",
        nargs="?",
        const=_MANIFEST_AUTO,
        default=None,
        metavar="FILE",
        help="resume from a previous run's manifest: completed scenarios "
        "whose spec fingerprint still matches hydrate instead of re-running; "
        "without FILE, the same cache-root default path as --manifest "
        "(missing manifest = fresh run)",
    )
    scenario_sweep.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="inject deterministic chaos: per-attempt fault probability, "
        "split across transient API errors, task errors and slow rows",
    )
    scenario_sweep.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="seed of the injected fault plan (chaos replays bit-identically)",
    )
    scenario_sweep.add_argument(
        "--wall-clock-retries",
        action="store_true",
        help="back off on real time with seeded full jitter instead of the "
        "simulated clock (the manifest notes which clock a run used)",
    )
    scenario_sweep.set_defaults(handler=cmd_scenario_sweep)

    serve = subparsers.add_parser(
        "serve",
        help="run the always-on reach service against a request trace",
    )
    add_common(serve)
    serve.add_argument(
        "--trace", default=None, metavar="FILE", help="replay a saved request trace"
    )
    serve.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="save the (generated) trace for exact replay",
    )
    serve.add_argument(
        "--duration", type=float, default=30.0, help="generated-trace span (virtual s)"
    )
    serve.add_argument(
        "--rps", type=float, default=8.0, help="generated-trace arrival rate"
    )
    serve.add_argument(
        "--tenants", type=int, default=4, help="generated-trace tenant count"
    )
    serve.add_argument(
        "--hot-share",
        type=float,
        default=0.0,
        help="share of generated requests sent by one hot tenant (0 = even)",
    )
    serve.add_argument(
        "--tenant-rpm",
        type=float,
        default=600.0,
        help="per-tenant admission rate (cells per minute)",
    )
    serve.add_argument(
        "--tenant-burst", type=int, default=50, help="per-tenant admission burst (cells)"
    )
    serve.add_argument(
        "--max-queue-cells", type=int, default=256, help="bound on queued cells"
    )
    serve.add_argument(
        "--max-batch-cells", type=int, default=64, help="cell budget per coalesced tick"
    )
    serve.add_argument(
        "--tick-seconds", type=float, default=1.0, help="virtual seconds per tick"
    )
    serve.add_argument(
        "--timeout-seconds",
        type=float,
        default=30.0,
        help="default request deadline (virtual seconds)",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry budget per admitted request against injected faults",
    )
    serve.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="inject deterministic chaos into the service tick",
    )
    serve.add_argument(
        "--fault-seed", type=int, default=None, help="seed of the injected fault plan"
    )
    serve.add_argument(
        "--wall-clock-retries",
        action="store_true",
        help="compute retry backoff with the wall-clock policy's full jitter "
        "(delays still elapse in service virtual time)",
    )
    serve.add_argument(
        "--verify-parity",
        action="store_true",
        help="re-check every served answer against a direct bulk call",
    )
    serve.add_argument(
        "--output", default=None, metavar="FILE", help="write the run report as JSON"
    )
    serve.set_defaults(handler=cmd_serve)

    faults = subparsers.add_parser(
        "faults",
        help="describe a deterministic fault plan and preview what would fire",
    )
    faults.add_argument("--seed", type=int, default=None, help="fault-plan seed")
    faults.add_argument("--transient-rate", type=float, default=0.1)
    faults.add_argument("--error-rate", type=float, default=0.05)
    faults.add_argument("--slow-rate", type=float, default=0.05)
    faults.add_argument("--crash-rate", type=float, default=0.0)
    faults.add_argument(
        "--retries", type=int, default=3, help="retry budget to check convergence against"
    )
    faults.add_argument(
        "--tasks", type=int, default=16, help="tasks covered by the preview"
    )
    faults.add_argument(
        "--attempts", type=int, default=2, help="attempts per task in the preview"
    )
    faults.set_defaults(handler=cmd_faults)

    cache = subparsers.add_parser(
        "cache",
        help="inspect, clear or warm the disk-backed artifact store",
        description="Manage the content-addressed artifact store the build "
        "cache hydrates from (REPRO_CACHE_ROOT; in-process LRU bound: "
        "REPRO_CACHE_SIZE). Artifacts are keyed by stage fingerprint, "
        "version-tagged and digest-checked, so corrupted or stale files "
        "are rebuilt, never trusted.",
    )
    cache_subs = cache.add_subparsers(dest="cache_command", required=True)

    def add_cache_root(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--root",
            default=None,
            metavar="DIR",
            help="cache root (default: REPRO_CACHE_ROOT or ~/.cache/repro-facebook)",
        )

    cache_info = cache_subs.add_parser(
        "info", help="report artifact counts and sizes under the cache root"
    )
    add_cache_root(cache_info)
    cache_info.set_defaults(handler=cmd_cache_info)

    cache_clear = cache_subs.add_parser(
        "clear", help="remove every artifact and sweep manifest under the root"
    )
    add_cache_root(cache_clear)
    cache_clear.set_defaults(handler=cmd_cache_clear)

    cache_prune = cache_subs.add_parser(
        "prune",
        help="evict least-recently-used artifacts down to a byte budget",
    )
    add_cache_root(cache_prune)
    cache_prune.add_argument(
        "--max-bytes",
        type=int,
        required=True,
        metavar="N",
        help="byte budget to shrink the artifact store to (oldest-mtime "
        "artifacts are unlinked first; disk hits refresh mtime)",
    )
    cache_prune.set_defaults(handler=cmd_cache_prune)

    cache_warm = cache_subs.add_parser(
        "warm",
        help="pre-build the catalog/panel artifacts for a scenario or grid",
    )
    add_cache_root(cache_warm)
    cache_warm.add_argument(
        "name",
        nargs="?",
        default=None,
        help="registered scenario name to warm (omit for the default "
        "--factor/--seed configuration, or use --spec)",
    )
    cache_warm.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="warm every stage of an external spec/grid file "
        "(same format as `scenario sweep --spec`)",
    )
    cache_warm.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="FIELD=V1,V2",
        help="grid axes over the named scenario (same syntax as "
        "`scenario sweep --grid`)",
    )
    cache_warm.add_argument(
        "--factor", type=int, default=None, help="scale divisor (default 20)"
    )
    cache_warm.add_argument(
        "--seed", type=int, default=None, help="seed of the warmed stages"
    )
    cache_warm.add_argument(
        "--sweep-seed",
        type=int,
        default=None,
        help="derive per-scenario seeds like `scenario sweep --sweep-seed`",
    )
    cache_warm.set_defaults(handler=cmd_cache_warm)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by the console script.

    Library failures surface as a one-line stderr diagnostic and a
    distinct exit code — :data:`EXIT_CONFIG_ERROR` (2) for configuration
    errors, :data:`EXIT_SERVICE_ERROR` (4) for reach-service failures,
    :data:`EXIT_EXEC_ERROR` (3) for everything else the library raises —
    never a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ConfigurationError as error:
        print(f"repro-facebook: configuration error: {error}", file=sys.stderr)
        return EXIT_CONFIG_ERROR
    except ServiceError as error:
        print(
            f"repro-facebook: service error: {type(error).__name__}: {error}",
            file=sys.stderr,
        )
        return EXIT_SERVICE_ERROR
    except ReproError as error:
        print(
            f"repro-facebook: {type(error).__name__}: {error}", file=sys.stderr
        )
        return EXIT_EXEC_ERROR


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
