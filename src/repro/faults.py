"""Deterministic fault injection and retry policies for the exec layer.

The paper's attacker runs multi-week campaigns against a flaky,
rate-limited Ads Manager API: requests time out, workers die, rate limits
bite.  This module gives the reproduction the same adversity **on
demand and bit-reproducibly**:

* :class:`FaultPlan` — a seeded, picklable description of *which* faults
  fire *where*.  Every decision is a pure function of
  ``(plan.seed, task_index, attempt)`` via :func:`repro._rng.stable_hash`,
  so a chaos run replays identically across processes, backends and
  worker counts.  Rates select between four fault kinds: transient API
  errors (:class:`~repro.errors.TransientApiError`), injected shard-task
  exceptions (:class:`~repro.errors.InjectedFaultError`), slow shards
  (simulated latency on a private clock) and worker crashes
  (:class:`~repro.errors.WorkerCrashError` in-process, a genuine
  ``os._exit`` inside process-pool workers).

* :class:`RetryPolicy` — bounded attempts with exponential backoff
  measured on **simulated** time (a private :class:`~repro.simclock.SimClock`
  per task, never the API's billing clock, which token buckets refill
  from), honouring ``retry_after_seconds`` hints from rate-limit style
  errors, with an optional per-task deadline.

* :class:`WallClockRetryPolicy` — the same backoff contract driven by
  *real* time with seeded full jitter: backoff sleeps on the wall clock
  (injectable ``timer``/``sleeper`` keep tests virtual and reproducible)
  and each delay is drawn uniformly from ``[0, exponential cap]`` so a
  fleet of retrying callers decorrelates instead of stampeding.  This is
  the policy an always-on service runs; offline sweeps keep the
  simulated-time default.

* :func:`guarded_call` — the retry loop itself: injects faults from a
  plan, retries per policy, and returns ``(value, attempts)``.

* Injection depth — a plan fires either at the **guard** boundary (the
  default: before the task body, where PR 6 injected) or, with
  ``depth="kernel"``, *inside* the task body at the sites that opted in
  via :func:`fire_inner` (the bulk reach kernel in
  :mod:`repro.exec.tasks`, hence mid-stream inside ``collect_stream``
  blocks).  Kernel-depth faults surface while accumulators hold partial
  state, chaos-testing the merge paths; the decision stream is the same
  pure function of ``(seed, task_index, attempt)`` either way.

Determinism contract
--------------------
``FaultPlan.max_faults_per_task`` bounds how many attempts of one task
can fault.  Whenever ``RetryPolicy.max_attempts > max_faults_per_task``
every task is *guaranteed* to eventually run clean, and because shard
tasks are pure functions of their inputs the winning attempt's result is
bit-identical to the fault-free run.  Billing stays exactly-once for the
same reason: shard tasks never touch the API budget — bills are computed
and settled once by the coordinator (see :mod:`repro.core.collection`) —
so a discarded attempt leaves no billing trace by construction.
"""

from __future__ import annotations

import contextvars
import os
import time
from dataclasses import dataclass, fields, replace
from typing import Callable, TypeVar

from ._rng import derive_seed, stable_hash
from .errors import (
    ConfigurationError,
    InjectedFaultError,
    RateLimitExceededError,
    TransientApiError,
    WorkerCrashError,
)
from .simclock import SimClock

_T = TypeVar("_T")
_R = TypeVar("_R")

#: The fault kinds a plan can inject, in cumulative-rate order.
FAULT_KINDS = ("transient_api", "task_error", "slow", "crash")

#: Where a plan's decisions fire: at the retry-guard boundary (before the
#: task body), inside the task body at :func:`fire_inner` sites
#: (``"kernel"``), inside the build cache's disk-tier load/store paths
#: (``"cache"`` — see :class:`repro.cache.DiskCache`), or inside the
#: API's bill-settling step (``"billing"`` — see
#: :meth:`repro.adsapi.AdsManagerAPI.settle_reach_bill`, which fires
#: *before* any accounting mutates so a faulted settle retries
#: exactly-once).
FAULT_DEPTHS = ("guard", "kernel", "cache", "billing")

#: Environment variables read by :func:`ambient_chaos` (the CI chaos lane).
FAULT_RATE_ENV = "REPRO_FAULT_RATE"
FAULT_SEED_ENV = "REPRO_FAULT_SEED"

#: Exit status used by simulated hard crashes inside process-pool workers.
CRASH_EXIT_CODE = 23


@dataclass(frozen=True)
class FaultDecision:
    """One resolved fault: what fires for ``(task_index, attempt)``."""

    kind: str
    task_index: int
    attempt: int
    #: Simulated latency for "slow" faults, backoff hint for transient ones.
    seconds: float = 0.0


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, picklable schedule of injected faults.

    Rates are per-attempt probabilities in ``[0, 1]`` and must sum to at
    most 1.  The decision for a given ``(task_index, attempt)`` pair is a
    pure hash of the seed, so the same plan replays bit-identically on
    any backend, worker count or process.
    """

    seed: int
    #: Probability an attempt raises a retryable :class:`TransientApiError`.
    transient_rate: float = 0.0
    #: Probability an attempt raises an :class:`InjectedFaultError`.
    error_rate: float = 0.0
    #: Probability an attempt runs slow (simulated latency, no error).
    slow_rate: float = 0.0
    #: Probability an attempt crashes its worker.
    crash_rate: float = 0.0
    #: Simulated latency of a slow attempt (private-clock seconds).
    slow_seconds: float = 5.0
    #: ``retry_after_seconds`` hint carried by injected transient errors.
    retry_after_seconds: float = 2.0
    #: Hard bound on faulting attempts per task — attempts at or past this
    #: index always run clean, which (together with a retry policy allowing
    #: more attempts) guarantees every chaos run converges.
    max_faults_per_task: int = 2
    #: Where decisions fire: ``"guard"`` (before the task body, the PR 6
    #: boundary), ``"kernel"`` (inside the body at :func:`fire_inner`
    #: sites), ``"cache"`` (inside the disk tier's load/store paths —
    #: the tier degrades to rebuild, never to a partial artifact) or
    #: ``"billing"`` (inside the API's bill settle, before the bucket
    #: drains — a faulted settle leaves no billing trace, so the retry
    #: settles exactly once).  The inner depths inject error kinds only,
    #: since latency and worker exits belong to the guard layer.
    depth: str = "guard"

    def __post_init__(self) -> None:
        for name in ("transient_rate", "error_rate", "slow_rate", "crash_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {rate!r}")
        if self.total_rate > 1.0 + 1e-12:
            raise ConfigurationError(
                f"fault rates must sum to <= 1, got {self.total_rate:.4f}"
            )
        if self.max_faults_per_task < 0:
            raise ConfigurationError("max_faults_per_task must be >= 0")
        if self.slow_seconds < 0 or self.retry_after_seconds < 0:
            raise ConfigurationError("fault latencies must be >= 0")
        if self.depth not in FAULT_DEPTHS:
            raise ConfigurationError(
                f"unknown fault depth: {self.depth!r} (expected one of {FAULT_DEPTHS})"
            )
        if self.depth != "guard" and (self.slow_rate > 0 or self.crash_rate > 0):
            raise ConfigurationError(
                f"{self.depth}-depth plans inject error kinds only — "
                "slow_rate and crash_rate must be 0"
            )

    # -- construction --------------------------------------------------------------

    @classmethod
    def derive(cls, base_seed: int, *keys: object, **rates: float) -> "FaultPlan":
        """A plan whose seed is derived from ``base_seed`` and ``keys``.

        Mirrors the library-wide seed discipline: independent sub-streams
        keyed by strings, so e.g. a sweep-level plan and a shard-level
        plan built from the same base seed never correlate.
        """
        return cls(seed=derive_seed(base_seed, "faults", *keys), **rates)

    @property
    def total_rate(self) -> float:
        """Summed per-attempt fault probability across all kinds."""
        return self.transient_rate + self.error_rate + self.slow_rate + self.crash_rate

    @property
    def active(self) -> bool:
        """True when any fault can ever fire."""
        return self.total_rate > 0.0 and self.max_faults_per_task > 0

    def restricted(self, *kinds: str) -> "FaultPlan":
        """A copy injecting only the named kinds (other rates zeroed).

        Used to split responsibilities between layers: a sweep keeps the
        error kinds for its per-spec guard while handing only the
        ``"crash"`` kind down to the shard runner, so one configured rate
        never double-fires.
        """
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ConfigurationError(
                    f"unknown fault kind: {kind!r} (expected one of {FAULT_KINDS})"
                )
        keep = set(kinds)
        rate_fields = {
            "transient_api": "transient_rate",
            "task_error": "error_rate",
            "slow": "slow_rate",
            "crash": "crash_rate",
        }
        changes = {
            rate_name: 0.0
            for kind, rate_name in rate_fields.items()
            if kind not in keep
        }
        return replace(self, **changes)

    # -- decisions -----------------------------------------------------------------

    def decide(self, task_index: int, attempt: int) -> FaultDecision | None:
        """The fault (if any) for attempt ``attempt`` of task ``task_index``.

        Pure and stateless: the draw is ``stable_hash(seed, "fault",
        task_index, attempt)`` mapped to ``[0, 1)`` and compared against
        the cumulative rates, so every process computes the same answer.
        Attempts at or past ``max_faults_per_task`` never fault.
        """
        if attempt >= self.max_faults_per_task or self.total_rate <= 0.0:
            return None
        draw = stable_hash(self.seed, "fault", task_index, attempt) / 2.0**64
        edge = self.transient_rate
        if draw < edge:
            return FaultDecision(
                "transient_api", task_index, attempt, self.retry_after_seconds
            )
        edge += self.error_rate
        if draw < edge:
            return FaultDecision("task_error", task_index, attempt)
        edge += self.slow_rate
        if draw < edge:
            return FaultDecision("slow", task_index, attempt, self.slow_seconds)
        edge += self.crash_rate
        if draw < edge:
            return FaultDecision("crash", task_index, attempt)
        return None

    def fire(
        self, task_index: int, attempt: int, *, hard_crash: bool = False
    ) -> FaultDecision | None:
        """Act on the decision for ``(task_index, attempt)``.

        Raises the decided error kind, or returns the decision for
        non-raising kinds ("slow", or no fault as ``None``).  With
        ``hard_crash`` a "crash" decision terminates the interpreter via
        ``os._exit`` — only ever set inside process-pool workers, where
        it produces the genuine ``BrokenProcessPool`` the coordinator
        recovers from; in-process callers get a retryable
        :class:`WorkerCrashError` instead.
        """
        decision = self.decide(task_index, attempt)
        if decision is None:
            return None
        if decision.kind == "transient_api":
            raise TransientApiError(
                f"injected transient failure (task {task_index}, attempt {attempt})",
                retry_after_seconds=decision.seconds,
            )
        if decision.kind == "task_error":
            raise InjectedFaultError(
                f"injected task fault (task {task_index}, attempt {attempt})"
            )
        if decision.kind == "crash":
            if hard_crash:  # pragma: no cover - exits the worker process
                os._exit(CRASH_EXIT_CODE)
            raise WorkerCrashError(
                f"injected worker crash (task {task_index}, attempt {attempt})"
            )
        return decision  # "slow": latency only, handled by the caller's clock.

    # -- introspection -------------------------------------------------------------

    def describe(self) -> dict:
        """A JSON-friendly view of the plan's knobs."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def preview(self, n_tasks: int, attempts: int = 1) -> list[FaultDecision]:
        """Every fault the plan would fire over ``n_tasks`` x ``attempts``.

        Purely informational (powers ``repro-facebook faults``): lists the
        decisions in (task, attempt) order without raising anything.
        """
        if n_tasks < 0 or attempts < 0:
            raise ConfigurationError("preview dimensions must be >= 0")
        decisions = []
        for index in range(n_tasks):
            for attempt in range(attempts):
                decision = self.decide(index, attempt)
                if decision is not None:
                    decisions.append(decision)
        return decisions


#: Per-attempt injection context published by :func:`guarded_call` for
#: plans with ``depth != "guard"``: ``(plan, task_index, attempt)``.
#: Contextvars propagate through the task body only, so kernel-depth
#: faults cannot leak into unrelated code; process pools work because
#: the guarded call itself executes inside the worker.
_INNER_FAULTS: contextvars.ContextVar = contextvars.ContextVar(
    "repro_inner_faults", default=None
)


def fire_inner(site: str) -> None:
    """Fire the ambient fault plan at a named inner injection site.

    Deep code (the bulk API kernel, mid-stream collection blocks) calls
    this with its site name; it raises iff a :func:`guarded_call` higher
    up the stack published a plan whose ``depth`` matches ``site`` and
    that plan decides a fault for the current ``(task, attempt)``.  A
    no-op (and near-free) in every other situation, so hot paths can
    call it unconditionally.
    """
    context = _INNER_FAULTS.get()
    if context is None:
        return
    plan, task_index, attempt = context
    if plan.depth == site:
        plan.fire(task_index, attempt)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff on simulated time.

    Backoff is *simulated*: :func:`guarded_call` advances a private
    per-task :class:`~repro.simclock.SimClock`, so retries cost zero wall
    clock and — crucially — never advance the Ads API's billing clock
    (token buckets refill from that clock; touching it would break the
    bit-parity of rate-limiter state with the fault-free run).
    """

    #: Total attempts allowed (first try included); must be >= 1.
    max_attempts: int = 3
    #: Backoff before the first retry, in simulated seconds.
    base_delay_seconds: float = 0.5
    #: Exponential growth factor between consecutive backoffs.
    multiplier: float = 2.0
    #: Ceiling on a single backoff delay.
    max_delay_seconds: float = 60.0
    #: Optional budget of simulated seconds per task (backoff + slow time);
    #: exceeding it stops retrying even with attempts left.
    deadline_seconds: float | None = None
    #: Exception types considered transient.  Everything else fails fast.
    retryable: tuple[type[BaseException], ...] = (
        TransientApiError,
        RateLimitExceededError,
        WorkerCrashError,
        InjectedFaultError,
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay_seconds < 0 or self.max_delay_seconds < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigurationError("deadline_seconds must be > 0")
        object.__setattr__(self, "retryable", tuple(self.retryable))

    def is_retryable(self, error: BaseException) -> bool:
        """True when ``error`` is transient under this policy."""
        return isinstance(error, self.retryable)

    def backoff_delay(
        self,
        attempt: int,
        error: BaseException | None = None,
        *,
        salt: object = None,
    ) -> float:
        """Simulated seconds to back off after failed attempt ``attempt``.

        Exponential in the attempt index, capped by ``max_delay_seconds``;
        a ``retry_after_seconds`` hint on the error (rate-limit style)
        raises the floor — the caller must wait at least that long.
        ``salt`` is accepted for interface parity with the jittered
        wall-clock policy (which decorrelates per-caller delays with it)
        and ignored here — simulated backoff is deterministic by design.
        """
        delay = min(
            self.base_delay_seconds * self.multiplier ** max(attempt, 0),
            self.max_delay_seconds,
        )
        hint = getattr(error, "retry_after_seconds", None)
        if hint is not None:
            delay = max(delay, float(hint))
        return delay

    def waiter(self) -> "BackoffWaiter":
        """A fresh per-task waiter measuring backoff on a private sim clock."""
        return _SimWaiter()

    def describe(self) -> dict:
        """A JSON-friendly view of the policy's knobs."""
        return {
            "clock": "sim",
            "max_attempts": self.max_attempts,
            "base_delay_seconds": self.base_delay_seconds,
            "multiplier": self.multiplier,
            "max_delay_seconds": self.max_delay_seconds,
            "deadline_seconds": self.deadline_seconds,
            "retryable": tuple(cls.__name__ for cls in self.retryable),
        }


@dataclass(frozen=True)
class WallClockRetryPolicy(RetryPolicy):
    """Bounded retries with full-jitter exponential backoff on real time.

    The backoff *contract* is :class:`RetryPolicy`'s — bounded attempts,
    exponential cap, ``retry_after_seconds`` floors, optional deadline —
    but the clock is the wall clock: :func:`guarded_call` genuinely sleeps
    between attempts and measures the deadline against elapsed real time.
    This is the policy a long-lived service runs (offline sweeps keep the
    simulated default so chaos drills cost zero wall clock).

    Each delay uses *full jitter*: drawn uniformly from ``[0, cap]`` where
    ``cap`` is the deterministic exponential delay, so many callers
    retrying the same outage decorrelate instead of stampeding.  The draw
    is seeded — a pure hash of ``(jitter_seed, attempt, salt)`` — so every
    schedule is reproducible; pass a distinct ``salt`` per caller (the
    reach service salts with the request id) to decorrelate them.

    ``timer`` / ``sleeper`` default to :func:`time.monotonic` /
    :func:`time.sleep`; tests inject a virtual pair to drive the policy
    without sleeping (the policy stays picklable because the defaults are
    resolved lazily, not stored).
    """

    #: Seed of the full-jitter draws (reproducible backoff schedules).
    jitter_seed: int = 0
    #: Monotonic-seconds source (``None`` → :func:`time.monotonic`).
    timer: Callable[[], float] | None = None
    #: Blocking sleep (``None`` → :func:`time.sleep`).
    sleeper: Callable[[float], None] | None = None

    def backoff_delay(
        self,
        attempt: int,
        error: BaseException | None = None,
        *,
        salt: object = None,
    ) -> float:
        """Wall-clock seconds to back off: full jitter under the exponential cap."""
        cap = min(
            self.base_delay_seconds * self.multiplier ** max(attempt, 0),
            self.max_delay_seconds,
        )
        fraction = stable_hash(self.jitter_seed, "wall-jitter", attempt, salt) / 2.0**64
        delay = cap * fraction
        hint = getattr(error, "retry_after_seconds", None)
        if hint is not None:
            delay = max(delay, float(hint))
        return delay

    def waiter(self) -> "BackoffWaiter":
        """A waiter that sleeps for real (or on the injected timer pair)."""
        return _WallWaiter(
            self.timer if self.timer is not None else time.monotonic,
            self.sleeper if self.sleeper is not None else time.sleep,
        )

    def describe(self) -> dict:
        """A JSON-friendly view of the policy's knobs."""
        payload = super().describe()
        payload["clock"] = "wall"
        payload["jitter"] = "full"
        payload["jitter_seed"] = self.jitter_seed
        return payload


class BackoffWaiter:
    """How :func:`guarded_call` spends backoff time (sim or wall clock)."""

    def elapsed(self) -> float:
        """Seconds this task has spent backing off (plus slow faults)."""
        raise NotImplementedError  # pragma: no cover - interface

    def wait(self, seconds: float) -> None:
        """Spend ``seconds`` of backoff time."""
        raise NotImplementedError  # pragma: no cover - interface


class _SimWaiter(BackoffWaiter):
    """Backoff on a private simulated clock (free, never the billing clock)."""

    def __init__(self) -> None:
        self._clock = SimClock()

    def elapsed(self) -> float:
        return self._clock.now()

    def wait(self, seconds: float) -> None:
        self._clock.advance(seconds)


class _WallWaiter(BackoffWaiter):
    """Backoff that really sleeps, measured against a monotonic timer."""

    def __init__(
        self, timer: Callable[[], float], sleeper: Callable[[float], None]
    ) -> None:
        self._timer = timer
        self._sleeper = sleeper
        self._start = timer()

    def elapsed(self) -> float:
        return self._timer() - self._start

    def wait(self, seconds: float) -> None:
        if seconds > 0:
            self._sleeper(seconds)


def guarded_call(
    fn: Callable[[_T], _R],
    task: _T,
    *,
    index: int,
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    base_attempt: int = 0,
    hard_crash: bool = False,
) -> tuple[_R, int]:
    """Run ``fn(task)`` under fault injection and retries.

    Returns ``(result, attempts)`` where ``attempts`` counts every try
    made here (earlier tries folded in via ``base_attempt`` are not
    re-counted).  Guard-depth faults fire *before* the task body — shard
    tasks are pure, so a failed attempt leaves no partial state and the
    winning attempt's result is bit-identical to a fault-free call.
    Kernel-depth plans are instead published for the duration of the
    task body so :func:`fire_inner` sites deep inside it (the bulk API
    kernel, mid-stream collection blocks) raise mid-work.  Retryable
    errors (per ``retry``) back off through the policy's waiter — a
    private :class:`~repro.simclock.SimClock` for the default policy, a
    real sleep for :class:`WallClockRetryPolicy`; non-retryable errors,
    an exhausted attempt budget or a blown deadline re-raise the last
    error.

    ``base_attempt`` offsets the fault-decision stream: a coordinator
    resubmitting work after a pool crash passes the attempts already
    burned so the plan does not replay the same fault forever.
    """
    max_attempts = retry.max_attempts if retry is not None else 1
    deadline = retry.deadline_seconds if retry is not None else None
    waiter = retry.waiter() if retry is not None else _SimWaiter()
    tries = 0
    while True:
        attempt = base_attempt + tries
        tries += 1
        try:
            if faults is not None and faults.depth == "guard":
                decision = faults.fire(index, attempt, hard_crash=hard_crash)
                if decision is not None and decision.kind == "slow":
                    waiter.wait(decision.seconds)
            if faults is not None and faults.depth != "guard":
                token = _INNER_FAULTS.set((faults, index, attempt))
                try:
                    return fn(task), tries
                finally:
                    _INNER_FAULTS.reset(token)
            return fn(task), tries
        except Exception as error:
            if retry is None or not retry.is_retryable(error) or tries >= max_attempts:
                _attach_attempts(error, tries)
                raise
            delay = retry.backoff_delay(attempt, error, salt=index)
            if deadline is not None and waiter.elapsed() + delay > deadline:
                _attach_attempts(error, tries)
                raise
            waiter.wait(delay)


def _attach_attempts(error: BaseException, tries: int) -> None:
    """Best-effort annotation of how many attempts a failure burned.

    Dead-letter reporting reads this back via ``getattr(error,
    "attempts", 1)``; exceptions without a ``__dict__`` just go without.
    """
    try:
        error.attempts = tries  # type: ignore[attr-defined]
    except (AttributeError, TypeError):  # pragma: no cover - slotted exceptions
        pass


def run_guarded(
    fn: Callable[[_T], _R],
    task: _T,
    *,
    index: int,
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    base_attempt: int = 0,
    hard_crash: bool = False,
) -> _R:
    """:func:`guarded_call` returning only the result (attempt count dropped)."""
    value, _ = guarded_call(
        fn,
        task,
        index=index,
        retry=retry,
        faults=faults,
        base_attempt=base_attempt,
        hard_crash=hard_crash,
    )
    return value


def ambient_chaos() -> tuple[RetryPolicy | None, FaultPlan | None]:
    """The (retry, faults) pair requested via the environment, if any.

    The CI chaos lane sets :data:`FAULT_RATE_ENV` (and optionally
    :data:`FAULT_SEED_ENV`) so the *entire* test suite runs under fault
    injection with retries enabled — any parity break the retry layer
    would cause surfaces suite-wide.  Returns ``(None, None)`` when the
    rate variable is unset or zero.  The rate is split evenly across the
    three error kinds (crashes are opt-in only: ambient crashes inside
    arbitrary test processes would be indistinguishable from real bugs).
    """
    raw = os.environ.get(FAULT_RATE_ENV)
    if raw is None:
        return None, None
    try:
        rate = float(raw)
    except ValueError as error:
        raise ConfigurationError(
            f"{FAULT_RATE_ENV} must be a float, got {raw!r}"
        ) from error
    if rate == 0.0:
        return None, None
    if not 0.0 < rate <= 1.0:
        raise ConfigurationError(f"{FAULT_RATE_ENV} must be in (0, 1], got {rate!r}")
    seed = int(os.environ.get(FAULT_SEED_ENV, "0") or "0")
    plan = FaultPlan(
        seed=derive_seed(seed, "ambient-chaos"),
        transient_rate=rate / 3.0,
        error_rate=rate / 3.0,
        slow_rate=rate / 3.0,
    )
    retry = RetryPolicy(max_attempts=plan.max_faults_per_task + 1)
    return retry, plan
