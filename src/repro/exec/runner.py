"""Shard runners: serial, thread-pool and process-pool backends.

A runner executes one picklable-or-not task function over the shards of an
:class:`~repro.exec.plan.ExecutionPlan`.  All runners preserve shard order
(results line up with the submitted tasks), so callers can concatenate
blocks without bookkeeping, and all offer two consumption styles:

* :meth:`ShardRunner.run` — execute everything and return the result list;
* :meth:`ShardRunner.stream` — an iterator yielding results in shard order
  as they become available (lazily computed on the serial backend), which
  is what feeds streaming sinks without buffering the whole result set.

The process backend requires tasks to be picklable; shard tasks built by
:func:`~repro.exec.tasks.shard_backend_payload` swap the live reach model
for its :class:`~repro.reach.ReachModelSpec` so workers rebuild the model
from config + seed instead of shipping catalog objects around.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterator, Protocol, Sequence, TypeVar, runtime_checkable

from ..errors import ConfigurationError

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Names of the available runner backends, serial first.
RUNNER_BACKENDS = ("serial", "thread", "process")


@runtime_checkable
class ShardRunner(Protocol):
    """Executes a task function over shard tasks, preserving order."""

    #: Backend name ("serial", "thread" or "process").
    name: str
    #: Worker count (1 for the serial backend).
    workers: int
    #: True when tasks cross a pickling boundary (process pool).
    requires_pickling: bool

    def run(self, fn: Callable[[_T], _R], tasks: Sequence[_T]) -> list[_R]:
        """Execute ``fn`` over every task and return results in task order."""
        ...  # pragma: no cover - protocol definition

    def stream(self, fn: Callable[[_T], _R], tasks: Sequence[_T]) -> Iterator[_R]:
        """Yield results in task order as they complete."""
        ...  # pragma: no cover - protocol definition


class SerialRunner:
    """Runs every shard in the calling thread, lazily when streamed."""

    name = "serial"
    workers = 1
    requires_pickling = False

    def run(self, fn: Callable[[_T], _R], tasks: Sequence[_T]) -> list[_R]:
        return [fn(task) for task in tasks]

    def stream(self, fn: Callable[[_T], _R], tasks: Sequence[_T]) -> Iterator[_R]:
        for task in tasks:
            yield fn(task)


class _PoolRunner:
    """Shared machinery of the pooled backends (one pool per call)."""

    name: str
    requires_pickling: bool

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self.workers = int(workers)

    def _pool(self):
        raise NotImplementedError  # pragma: no cover - abstract hook

    def run(self, fn: Callable[[_T], _R], tasks: Sequence[_T]) -> list[_R]:
        if not tasks:
            return []
        with self._pool() as pool:
            return list(pool.map(fn, tasks))

    def stream(self, fn: Callable[[_T], _R], tasks: Sequence[_T]) -> Iterator[_R]:
        if not tasks:
            return
        pool = self._pool()
        try:
            futures = [pool.submit(fn, task) for task in tasks]
            for future in futures:
                yield future.result()
        finally:
            # Abandoned streams cancel whatever has not started yet.
            pool.shutdown(wait=True, cancel_futures=True)


class ThreadRunner(_PoolRunner):
    """Runs shards on a thread pool.

    NumPy releases the GIL inside its array kernels, so thread workers
    overlap on multi-core hosts without any pickling; on a single core the
    per-shard cache locality still beats the fused whole-panel pass.
    """

    name = "thread"
    requires_pickling = False

    def _pool(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(max_workers=self.workers)


class ProcessRunner(_PoolRunner):
    """Runs shards on a process pool (tasks must be picklable)."""

    name = "process"
    requires_pickling = True

    def _pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.workers)


def make_runner(backend: str, workers: int = 1) -> ShardRunner:
    """Build the runner for ``backend`` ("serial", "thread" or "process")."""
    if workers < 1:
        raise ConfigurationError("workers must be >= 1")
    if backend == "serial":
        if workers != 1:
            raise ConfigurationError("the serial backend runs with exactly 1 worker")
        return SerialRunner()
    if backend == "thread":
        return ThreadRunner(workers)
    if backend == "process":
        return ProcessRunner(workers)
    raise ConfigurationError(
        f"unknown runner backend: {backend!r} (expected one of {RUNNER_BACKENDS})"
    )
